// Core vocabulary types shared by every RISA module.
//
// The paper's disaggregated datacenter (DDC) pools three resource kinds --
// CPU, RAM and storage -- into single-type "boxes".  Almost every subsystem
// (topology, allocation, metrics) is indexed by ResourceType, so it lives
// here together with the strongly-typed integer-id helper used for rack/box/
// brick/link identifiers.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string_view>

namespace risa {

/// The three disaggregated resource kinds of the dReDBox-style architecture
/// (paper §3.1).  Values are dense so they can index std::array directly.
enum class ResourceType : std::uint8_t {
  Cpu = 0,
  Ram = 1,
  Storage = 2,
};

/// Number of resource kinds; the paper's scheduling problem is fixed at 3.
inline constexpr std::size_t kNumResourceTypes = 3;

/// All resource kinds in canonical order, for range-for iteration.
inline constexpr std::array<ResourceType, kNumResourceTypes> kAllResources = {
    ResourceType::Cpu, ResourceType::Ram, ResourceType::Storage};

/// Dense index of a resource type (0..2).
[[nodiscard]] constexpr std::size_t index(ResourceType t) noexcept {
  return static_cast<std::size_t>(t);
}

/// Human-readable name ("CPU", "RAM", "STO").
[[nodiscard]] constexpr std::string_view name(ResourceType t) noexcept {
  switch (t) {
    case ResourceType::Cpu: return "CPU";
    case ResourceType::Ram: return "RAM";
    case ResourceType::Storage: return "STO";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, ResourceType t);

/// A std::array keyed by ResourceType.  Used pervasively for per-type
/// capacities, availabilities and requirements.
template <typename T>
class PerResource {
 public:
  constexpr PerResource() = default;
  constexpr explicit PerResource(const T& fill) { values_.fill(fill); }
  constexpr PerResource(T cpu, T ram, T sto) : values_{cpu, ram, sto} {}

  [[nodiscard]] constexpr T& operator[](ResourceType t) noexcept {
    return values_[index(t)];
  }
  [[nodiscard]] constexpr const T& operator[](ResourceType t) const noexcept {
    return values_[index(t)];
  }

  [[nodiscard]] constexpr T& cpu() noexcept { return values_[0]; }
  [[nodiscard]] constexpr T& ram() noexcept { return values_[1]; }
  [[nodiscard]] constexpr T& storage() noexcept { return values_[2]; }
  [[nodiscard]] constexpr const T& cpu() const noexcept { return values_[0]; }
  [[nodiscard]] constexpr const T& ram() const noexcept { return values_[1]; }
  [[nodiscard]] constexpr const T& storage() const noexcept { return values_[2]; }

  [[nodiscard]] constexpr auto begin() noexcept { return values_.begin(); }
  [[nodiscard]] constexpr auto end() noexcept { return values_.end(); }
  [[nodiscard]] constexpr auto begin() const noexcept { return values_.begin(); }
  [[nodiscard]] constexpr auto end() const noexcept { return values_.end(); }

  friend constexpr bool operator==(const PerResource&, const PerResource&) = default;

 private:
  std::array<T, kNumResourceTypes> values_{};
};

/// CRTP-free strongly typed integer identifier.  `Tag` disambiguates id
/// spaces (RackTag, BoxTag, ...) so a BoxId cannot be passed where a RackId
/// is expected.  Ids are dense indices assigned by the owning container.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid = ~underlying_type{0};

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }
  [[nodiscard]] static constexpr Id invalid() noexcept { return Id{kInvalid}; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_ = kInvalid;
};

struct RackTag {};
struct BoxTag {};
struct BrickTag {};
struct LinkTag {};
struct SwitchTag {};
struct VmTag {};
struct CircuitTag {};

using RackId = Id<RackTag>;
using BoxId = Id<BoxTag>;        ///< Global (cluster-wide) box index.
using BrickId = Id<BrickTag>;    ///< Global brick index.
using LinkId = Id<LinkTag>;
using SwitchId = Id<SwitchTag>;
using VmId = Id<VmTag>;
using CircuitId = Id<CircuitTag>;

}  // namespace risa

template <typename Tag>
struct std::hash<risa::Id<Tag>> {
  std::size_t operator()(risa::Id<Tag> id) const noexcept {
    return std::hash<typename risa::Id<Tag>::underlying_type>{}(id.value());
  }
};
