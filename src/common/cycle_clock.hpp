// Raw cycle/tick counter for micro-timing hot paths.  steady_clock::now()
// costs ~30 ns per call through the vDSO; the engine times every placement
// attempt (two reads per arrival), which at the 500k-VM bench scale puts
// the *instrumentation* near 20% of the run.  A raw TSC read is ~5 ns and
// needs no syscall.  Ticks are meaningless on their own: callers accumulate
// raw deltas and convert once at the end against a wall-clock interval
// measured over the same span (Engine::run already brackets the run with
// steady_clock for sim_wall_seconds, so calibration is free).
//
// x86-64 TSCs have been invariant (constant-rate, monotonic across P-states)
// on everything produced in the last decade; aarch64's cntvct_el0 is
// architecturally constant-rate.  Other targets fall back to steady_clock,
// trading speed for portability -- correctness never depends on the tick
// rate, only the reported scheduler_exec_seconds does, and that is excluded
// from the determinism fingerprint (sim/sweep.hpp).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace risa {

struct CycleClock {
  [[nodiscard]] static std::uint64_t now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t ticks;
    asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
    return ticks;
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }
};

}  // namespace risa
