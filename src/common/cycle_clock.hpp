// Raw cycle/tick counter for micro-timing hot paths.  steady_clock::now()
// costs ~30 ns per call through the vDSO; the engine times every placement
// attempt (two reads per arrival), which at the 500k-VM bench scale puts
// the *instrumentation* near 20% of the run.  A raw TSC read is ~5 ns and
// needs no syscall.  Ticks are meaningless on their own: callers accumulate
// raw deltas and convert once at the end against a wall-clock interval
// measured over the same span (Engine::run already brackets the run with
// steady_clock for sim_wall_seconds, so calibration is free).
//
// x86-64 TSCs have been invariant (constant-rate, monotonic across P-states)
// on everything produced in the last decade; aarch64's cntvct_el0 is
// architecturally constant-rate.  Other targets fall back to steady_clock,
// trading speed for portability -- correctness never depends on the tick
// rate, only the reported scheduler_exec_seconds does, and that is excluded
// from the determinism fingerprint (sim/sweep.hpp).
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace risa {

struct CycleClock {
  [[nodiscard]] static std::uint64_t now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t ticks;
    asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
    return ticks;
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }
};

/// Nestable cycle-clock spans with *exclusive* per-slot attribution: while
/// an inner span runs, the enclosing span's clock is paused, so the sum of
/// all slot ticks equals the total covered time exactly (never more) and
/// converts to a set of phase times bounded by the run's wall clock.
///
/// begin(slot)/end() pairs must nest like scopes (max depth `MaxDepth`).
/// When disabled every call is a single predictable branch, so the helper
/// can stay compiled into hot loops permanently (sim/phase_profiler.hpp).
template <std::size_t Slots, std::size_t MaxDepth = 8>
class CycleSpanStack {
 public:
  void enable(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void reset() noexcept {
    ticks_.fill(0);
    depth_ = 0;
  }

  void begin(std::size_t slot) noexcept {
    if (!enabled_) return;
    const std::uint64_t t = CycleClock::now();
    if (depth_ > 0) ticks_[stack_[depth_ - 1]] += t - mark_;
    stack_[depth_++] = slot;
    mark_ = t;
  }

  void end() noexcept {
    if (!enabled_) return;
    const std::uint64_t t = CycleClock::now();
    ticks_[stack_[--depth_]] += t - mark_;
    mark_ = t;  // the enclosing span (if any) resumes here
  }

  /// Attribute `delta` ticks to `slot` out of the currently running span's
  /// open segment -- with zero extra clock reads.  For work the caller
  /// already brackets with its own CycleClock reads (the engine times every
  /// try_place for scheduler_exec_seconds regardless of profiling), the
  /// measured delta lies provably inside the open segment, so advancing
  /// `mark_` by the same amount subtracts it from the enclosing span
  /// exactly: attribution stays exclusive and the sum stays <= wall.
  void carve(std::size_t slot, std::uint64_t delta) noexcept {
    if (!enabled_) return;
    ticks_[slot] += delta;
    mark_ += delta;
  }

  [[nodiscard]] std::uint64_t ticks(std::size_t slot) const noexcept {
    return ticks_[slot];
  }

 private:
  std::array<std::uint64_t, Slots> ticks_{};
  std::array<std::size_t, MaxDepth> stack_{};
  std::size_t depth_ = 0;
  std::uint64_t mark_ = 0;
  bool enabled_ = false;
};

/// RAII span over a CycleSpanStack: begins `slot` on construction, ends on
/// scope exit -- safe across early returns in the engine's admit path.
template <typename Stack>
class ScopedCycleSpan {
 public:
  ScopedCycleSpan(Stack& stack, std::size_t slot) noexcept : stack_(stack) {
    stack_.begin(slot);
  }
  ~ScopedCycleSpan() { stack_.end(); }
  ScopedCycleSpan(const ScopedCycleSpan&) = delete;
  ScopedCycleSpan& operator=(const ScopedCycleSpan&) = delete;

 private:
  Stack& stack_;
};

}  // namespace risa
