// Unit arithmetic for the disaggregated architecture of Table 1.
//
// Physical resource amounts (cores, GB, Gb/s) are carried as exact integers:
// RAM/storage in MiB-like "megabytes" (the paper's Azure RAM sizes include
// 0.75 GB, so GB alone is not integral), bandwidth in Mb/s.  Boxes allocate
// in discrete *units*: 1 CPU unit = 4 cores, 1 RAM unit = 4 GB, 1 storage
// unit = 64 GB (Table 1); requests are ceil-divided into units.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace risa {

/// Integer count of allocation units (bricks are 16 units each).
using Units = std::int64_t;

/// Megabytes (10^6-ish granularity is irrelevant; it is an exact integer
/// carrier for fractional-GB sizes such as Azure's 0.75 GB = 768 MB).
using Megabytes = std::int64_t;

/// Mb/s carrier for bandwidth (1 Gb/s = 1000 Mb/s).
using MbitsPerSec = std::int64_t;

/// Simulated time in abstract "time units" (paper §5.1).  The photonic
/// energy model converts to seconds via PhotonicConfig::seconds_per_time_unit.
using SimTime = double;

[[nodiscard]] constexpr Megabytes gb(double gigabytes) noexcept {
  return static_cast<Megabytes>(gigabytes * 1024.0 + 0.5);
}

[[nodiscard]] constexpr MbitsPerSec gbps(double gigabits_per_sec) noexcept {
  return static_cast<MbitsPerSec>(gigabits_per_sec * 1000.0 + 0.5);
}

[[nodiscard]] constexpr double to_gb(Megabytes mb) noexcept {
  return static_cast<double>(mb) / 1024.0;
}

[[nodiscard]] constexpr double to_gbps(MbitsPerSec mbps) noexcept {
  return static_cast<double>(mbps) / 1000.0;
}

/// Ceiling division for non-negative integers.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T num, T den) {
  if (den <= 0) throw std::invalid_argument("ceil_div: non-positive divisor");
  if (num < 0) throw std::invalid_argument("ceil_div: negative numerator");
  return (num + den - 1) / den;
}

/// Unit granularity of the disaggregated architecture (Table 1).
struct UnitScale {
  std::int64_t cores_per_cpu_unit = 4;     ///< "CPU unit: 4 cores"
  Megabytes mb_per_ram_unit = gb(4.0);     ///< "RAM unit: 4 GB"
  Megabytes mb_per_storage_unit = gb(64.0);///< "Storage unit: 64 GB"

  /// Units needed for a raw demand of the given type.  CPU demand is in
  /// cores; RAM/storage demand is in megabytes.
  [[nodiscard]] Units to_units(ResourceType t, std::int64_t raw) const {
    switch (t) {
      case ResourceType::Cpu: return ceil_div<std::int64_t>(raw, cores_per_cpu_unit);
      case ResourceType::Ram: return ceil_div<std::int64_t>(raw, mb_per_ram_unit);
      case ResourceType::Storage: return ceil_div<std::int64_t>(raw, mb_per_storage_unit);
    }
    throw std::logic_error("to_units: bad resource type");
  }

  friend constexpr bool operator==(const UnitScale&, const UnitScale&) = default;
};

/// Precomputed demand->units conversion for the placement hot path.  Every
/// try_place starts with three ceil-divisions; Table 1's granularities
/// (4 cores, 4 GB, 64 GB) are all powers of two, where the ~25-cycle 64-bit
/// divide collapses to a shift.  Non-power-of-two scales keep the exact
/// divide, so results are bit-identical to UnitScale::to_units for every
/// input.
class UnitConverter {
 public:
  UnitConverter() : UnitConverter(UnitScale{}) {}
  explicit UnitConverter(const UnitScale& scale) {
    set(ResourceType::Cpu, scale.cores_per_cpu_unit);
    set(ResourceType::Ram, scale.mb_per_ram_unit);
    set(ResourceType::Storage, scale.mb_per_storage_unit);
  }

  [[nodiscard]] Units to_units(ResourceType t, std::int64_t raw) const {
    if (raw < 0) throw std::invalid_argument("ceil_div: negative numerator");
    const auto i = index(t);
    const std::int64_t num = raw + den_[i] - 1;
    return shift_[i] >= 0 ? num >> shift_[i] : num / den_[i];
  }

 private:
  void set(ResourceType t, std::int64_t den) {
    if (den <= 0) throw std::invalid_argument("ceil_div: non-positive divisor");
    den_[index(t)] = den;
    shift_[index(t)] =
        (den & (den - 1)) == 0
            ? static_cast<int>(std::countr_zero(static_cast<std::uint64_t>(den)))
            : -1;
  }

  std::array<std::int64_t, kNumResourceTypes> den_{};
  std::array<int, kNumResourceTypes> shift_{};
};

/// A per-type vector of unit counts; the currency of all allocation code.
using UnitVector = PerResource<Units>;

/// Component-wise helpers for UnitVector.
[[nodiscard]] constexpr UnitVector operator+(UnitVector a, const UnitVector& b) noexcept {
  for (ResourceType t : kAllResources) a[t] += b[t];
  return a;
}

[[nodiscard]] constexpr UnitVector operator-(UnitVector a, const UnitVector& b) noexcept {
  for (ResourceType t : kAllResources) a[t] -= b[t];
  return a;
}

/// True when every component of `a` is <= the matching component of `b`
/// (i.e. demand `a` fits within availability `b`).
[[nodiscard]] constexpr bool fits_within(const UnitVector& a, const UnitVector& b) noexcept {
  for (ResourceType t : kAllResources) {
    if (a[t] > b[t]) return false;
  }
  return true;
}

[[nodiscard]] constexpr bool all_zero(const UnitVector& v) noexcept {
  for (ResourceType t : kAllResources) {
    if (v[t] != 0) return false;
  }
  return true;
}

[[nodiscard]] constexpr bool any_negative(const UnitVector& v) noexcept {
  for (ResourceType t : kAllResources) {
    if (v[t] < 0) return true;
  }
  return false;
}

/// Pretty "cpu=4,ram=2,sto=2" rendering used in logs and error messages.
[[nodiscard]] std::string to_string(const UnitVector& v);

}  // namespace risa
