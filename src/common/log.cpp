#include "common/log.hpp"

#include <iostream>

namespace risa {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  std::ostream& os = sink_ ? *sink_ : std::cerr;
  os << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace risa
