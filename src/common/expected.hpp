// Minimal Result<T, E> used for fallible operations where exceptions would
// be noise (allocation attempts fail constantly by design: a failed
// placement is a *drop*, not a program error).
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace risa {

/// Wrapper that marks a value as the error alternative of Result.
template <typename E>
struct Err {
  E error;
};

template <typename E>
Err(E) -> Err<E>;

/// A tiny std::expected stand-in (the toolchain's libstdc++ 12 lacks it).
/// Holds either a value T or an error E.
template <typename T, typename E = std::string>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> err) : data_(std::in_place_index<1>, std::move(err.error)) {}

  [[nodiscard]] bool ok() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & {
    check_ok();
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    check_ok();
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const& {
    if (ok()) throw std::logic_error("Result::error() on ok result");
    return std::get<1>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

  T* operator->() {
    check_ok();
    return &std::get<0>(data_);
  }
  const T* operator->() const {
    check_ok();
    return &std::get<0>(data_);
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void check_ok() const {
    if (!ok()) {
      if constexpr (std::is_convertible_v<E, std::string>) {
        throw std::runtime_error("Result::value() on error: " +
                                 std::string(std::get<1>(data_)));
      } else {
        throw std::runtime_error("Result::value() on error result");
      }
    }
  }

  std::variant<T, E> data_;
};

}  // namespace risa
