// Small string helpers shared by config parsing, CSV IO and report
// formatting.  Kept dependency-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace risa {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers that throw std::runtime_error with the offending text.
[[nodiscard]] std::int64_t parse_i64(std::string_view s);
[[nodiscard]] double parse_f64(std::string_view s);
[[nodiscard]] bool parse_bool(std::string_view s);

/// printf-style formatting into std::string.
[[nodiscard]] std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace risa
