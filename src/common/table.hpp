// ASCII table renderer used by the bench harness to print paper-style
// rows/series ("Figure 9: power consumption ...") in a stable, diff-friendly
// layout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace risa {

class TextTable {
 public:
  enum class Align { Left, Right };

  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

}  // namespace risa
