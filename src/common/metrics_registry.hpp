// Named typed metric series with O(1) hot-path updates (DESIGN.md §14).
//
// Registration (`counter()` / `gauge()` / `histogram()`) is the cold
// path: a linear name scan, find-or-create, returning a dense `Id`.
// Callers register once per run and hold the ids; `add` / `set` /
// `observe` are then a single array index -- no hashing, no string
// compare, no allocation per event.
//
// `reset()` zeroes every value but keeps the registrations (and their
// ids) alive, so a sweep lane can reuse one registry across cells the
// same way the engine reuses its arenas.  `snapshot_json()` exports all
// series in registration order -- deterministic given deterministic
// registration, which the engine guarantees by registering everything
// up front in `Telemetry::begin_run`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"

namespace risa {

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

  /// Find-or-create.  Re-registering the same name returns the same id;
  /// registering one name under two kinds throws std::invalid_argument.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name);

  void add(Id id, std::int64_t by = 1) noexcept { counters_[id] += by; }
  void set(Id id, double value) noexcept { gauges_[id] = value; }
  void observe(Id id, double sample) { hists_[id].add(sample); }

  [[nodiscard]] std::int64_t counter_value(Id id) const noexcept {
    return counters_[id];
  }
  [[nodiscard]] double gauge_value(Id id) const noexcept {
    return gauges_[id];
  }
  [[nodiscard]] const Log2Histogram& histogram_value(Id id) const noexcept {
    return hists_[id];
  }

  /// Name of a registered series, or "" if (name, kind) is absent.
  [[nodiscard]] std::string_view name_of(Kind kind, Id id) const noexcept;
  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }

  /// Zero all values; registrations and ids survive (sweep-lane reuse).
  void reset();

  /// {"counters":{...},"gauges":{...},"histograms":{...}} in
  /// registration order.  Histograms export count/p50/p99/max.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  struct Series {
    std::string name;
    Kind kind;
    Id slot;
  };

  Id find_or_register(std::string_view name, Kind kind);

  std::vector<Series> series_;
  std::vector<std::int64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Log2Histogram> hists_;
};

}  // namespace risa
