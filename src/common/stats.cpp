#include "common/stats.hpp"

#include <string>

namespace risa {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void TimeWeightedMean::update(double t, double value) {
  if (!started_) {
    started_ = true;
    t_first_ = t;
    t_last_ = t;
    value_ = value;
    peak_ = value;
    return;
  }
  if (t < t_last_) {
    throw std::invalid_argument("TimeWeightedMean: time went backwards");
  }
  area_ += value_ * (t - t_last_);
  t_last_ = t;
  value_ = value;
  peak_ = std::max(peak_, value);
}

double TimeWeightedMean::integral(double t_end) const {
  if (!started_) return 0.0;
  if (t_end < t_last_) {
    throw std::invalid_argument("TimeWeightedMean: t_end before last update");
  }
  return area_ + value_ * (t_end - t_last_);
}

double TimeWeightedMean::mean(double t_end) const {
  if (!started_) return 0.0;
  const double span = t_end - t_first_;
  if (span <= 0.0) return value_;
  return integral(t_end) / span;
}

double Percentiles::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("Percentiles: no samples");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Percentiles: p out of [0,100]");
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p == 0.0) return samples_.front();
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

void CounterSet::increment(std::string_view key, std::int64_t by) {
  for (auto& [k, v] : items_) {
    if (k == key) {
      v += by;
      return;
    }
  }
  items_.emplace_back(std::string(key), by);
}

std::int64_t CounterSet::get(std::string_view key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return v;
  }
  return 0;
}

}  // namespace risa
