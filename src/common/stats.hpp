// Statistical accumulators used by the simulation metrics layer.
//
// Two families:
//   * sample statistics (RunningStats, Percentiles) over discrete
//     observations such as per-VM latency;
//   * time-weighted statistics (TimeWeightedMean) that integrate a
//     piecewise-constant signal such as utilization or power over the
//     simulated horizon, which is how the paper reports "average CPU
//     utilization 64.66%".
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace risa {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Merge another accumulator (Chan et al. parallel combination).
  void merge(const RunningStats& other) noexcept;

  /// Checkpointable accumulator state; restore() continues the identical
  /// Welford recurrence (bit-exact given the same subsequent adds).
  struct State {
    std::uint64_t n;
    double mean, m2, sum, min, max;
  };
  [[nodiscard]] State save() const noexcept {
    return {static_cast<std::uint64_t>(n_), mean_, m2_, sum_, min_, max_};
  }
  void restore(const State& s) noexcept {
    n_ = static_cast<std::size_t>(s.n);
    mean_ = s.mean;
    m2_ = s.m2;
    sum_ = s.sum;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integrates a piecewise-constant signal over time.  Call `update(t, v)`
/// whenever the signal changes to value `v` at time `t`; `mean(t_end)` is
/// the time-weighted average over [t_first, t_end].
class TimeWeightedMean {
 public:
  void update(double t, double value);

  /// Time-weighted mean over the observed interval, extending the last
  /// value to `t_end`.
  [[nodiscard]] double mean(double t_end) const;

  /// Integral of the signal over [t_first, t_end].
  [[nodiscard]] double integral(double t_end) const;

  [[nodiscard]] double current() const noexcept { return value_; }
  [[nodiscard]] bool empty() const noexcept { return !started_; }
  [[nodiscard]] double peak() const noexcept { return peak_; }

  /// Checkpointable integrator state (see RunningStats::State).
  struct State {
    std::uint8_t started;
    double t_first, t_last, value, area, peak;
  };
  [[nodiscard]] State save() const noexcept {
    return {started_ ? std::uint8_t{1} : std::uint8_t{0},
            t_first_, t_last_, value_, area_, peak_};
  }
  void restore(const State& s) noexcept {
    started_ = s.started != 0;
    t_first_ = s.t_first;
    t_last_ = s.t_last;
    value_ = s.value;
    area_ = s.area;
    peak_ = s.peak;
  }

 private:
  bool started_ = false;
  double t_first_ = 0.0;
  double t_last_ = 0.0;
  double value_ = 0.0;
  double area_ = 0.0;
  double peak_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentiles over a stored sample (nearest-rank method).
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  /// p in [0, 100].  Nearest-rank: ceil(p/100 * N)-th smallest.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Simple named counter map with deterministic ordering, for drop reasons
/// and event tallies.  Keys are taken as string_view so hot callers (the
/// engine's per-drop accounting) never materialize a std::string: a key is
/// copied only the first time it appears.
class CounterSet {
 public:
  void increment(std::string_view key, std::int64_t by = 1);
  [[nodiscard]] std::int64_t get(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::int64_t>>& items() const noexcept {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::int64_t>> items_;
};

}  // namespace risa
