#include "common/units.hpp"

#include <ostream>
#include <sstream>

#include "common/types.hpp"

namespace risa {

std::ostream& operator<<(std::ostream& os, ResourceType t) {
  return os << name(t);
}

std::string to_string(const UnitVector& v) {
  std::ostringstream os;
  os << "cpu=" << v.cpu() << ",ram=" << v.ram() << ",sto=" << v.storage();
  return os.str();
}

}  // namespace risa
