// Fixed-width bitmask over rack ids.
//
// The placement hot path asks two set-shaped questions per VM -- "which
// racks can host the whole demand" (INTRA_RACK_POOL) and "which racks can
// host each resource individually" (SUPER_RACK) -- and then needs O(1)
// membership tests from the NULB-style scans.  A fixed-width bitmask makes
// membership a single bit test, intersection a handful of word ANDs, and
// ascending-id iteration (the round-robin order) a countr_zero loop, all
// without touching the heap.  Width is capped at kMaxRacks; Cluster rejects
// larger configurations at construction.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace risa {

class RackSet {
 public:
  /// Hard cap on addressable racks (the paper's cluster has 18; the
  /// capacity-planning sweeps stay well under this).  Kept small so
  /// clearing/intersecting a set stays a handful of word ops on the hot
  /// path; bump if a scenario ever needs more racks.
  static constexpr std::uint32_t kMaxRacks = 256;
  static constexpr std::size_t kWords = kMaxRacks / 64;

  constexpr RackSet() = default;

  constexpr void set(RackId r) noexcept {
    words_[r.value() >> 6] |= std::uint64_t{1} << (r.value() & 63);
  }
  constexpr void reset(RackId r) noexcept {
    words_[r.value() >> 6] &= ~(std::uint64_t{1} << (r.value() & 63));
  }
  [[nodiscard]] constexpr bool test(RackId r) const noexcept {
    return (words_[r.value() >> 6] >> (r.value() & 63)) & 1u;
  }

  constexpr void clear() noexcept { words_.fill(0); }

  /// Bulk-install one 64-bit word of membership (bits for racks
  /// [word*64, word*64+63]); used by the index's lane queries.
  constexpr void set_word(std::size_t word, std::uint64_t bits) noexcept {
    words_[word] = bits;
  }

  /// Raw membership word (racks [word*64, word*64+63]).  Word granularity is
  /// also the index's shard granularity, so sharded scans AND one filter
  /// word against one availability word instead of testing per rack.
  [[nodiscard]] constexpr std::uint64_t word(std::size_t word) const noexcept {
    return words_[word];
  }

  [[nodiscard]] constexpr bool empty() const noexcept {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr std::size_t count() const noexcept {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// Smallest set rack id >= `from`, or RackId::invalid() when none.
  [[nodiscard]] constexpr RackId next(std::uint32_t from) const noexcept {
    if (from >= kMaxRacks) return RackId::invalid();
    std::size_t word = from >> 6;
    std::uint64_t w = words_[word] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (w != 0) {
        return RackId{static_cast<std::uint32_t>(word * 64 +
                      static_cast<std::uint32_t>(std::countr_zero(w)))};
      }
      if (++word >= kWords) return RackId::invalid();
      w = words_[word];
    }
  }

  /// Visit every set rack id in ascending order.
  template <typename F>
  constexpr void for_each(F&& fn) const {
    for (std::size_t word = 0; word < kWords; ++word) {
      std::uint64_t w = words_[word];
      while (w != 0) {
        const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
        fn(RackId{static_cast<std::uint32_t>(word * 64 + bit)});
        w &= w - 1;
      }
    }
  }

  constexpr RackSet& operator&=(const RackSet& other) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) words_[i] &= other.words_[i];
    return *this;
  }
  constexpr RackSet& operator|=(const RackSet& other) noexcept {
    for (std::size_t i = 0; i < kWords; ++i) words_[i] |= other.words_[i];
    return *this;
  }

  friend constexpr bool operator==(const RackSet&, const RackSet&) = default;

 private:
  std::array<std::uint64_t, kWords> words_{};
};

}  // namespace risa
