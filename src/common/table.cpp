#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace risa {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
  aligns_[0] = Align::Left;  // first column is usually a label
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) throw std::out_of_range("TextTable: bad column");
  aligns_[column] = align;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      os << ' ';
      if (aligns_[c] == Align::Right) os << std::string(pad, ' ');
      os << cells[c];
      if (aligns_[c] == Align::Left) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace risa
