// Fixed-layout binary stream helpers for engine checkpoints.
//
// Every value is written little-endian regardless of host byte order so a
// checkpoint taken on one machine resumes on another; doubles travel as
// their IEEE-754 bit patterns (bit_cast through uint64), which is what
// makes a resumed run bit-identical rather than merely close.  Readers
// throw std::runtime_error on a short stream instead of returning garbage.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace risa::bin {

inline void put_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

inline void put_u32(std::ostream& os, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(b, 4);
}

inline void put_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  os.write(b, 8);
}

inline void put_i64(std::ostream& os, std::int64_t v) {
  put_u64(os, static_cast<std::uint64_t>(v));
}

inline void put_f64(std::ostream& os, double v) {
  put_u64(os, std::bit_cast<std::uint64_t>(v));
}

inline void put_str(std::ostream& os, std::string_view s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::uint8_t get_u8(std::istream& is) {
  const int c = is.get();
  if (c == std::istream::traits_type::eof()) {
    throw std::runtime_error("checkpoint: truncated stream");
  }
  return static_cast<std::uint8_t>(c);
}

inline std::uint32_t get_u32(std::istream& is) {
  char b[4];
  if (!is.read(b, 4)) throw std::runtime_error("checkpoint: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

inline std::uint64_t get_u64(std::istream& is) {
  char b[8];
  if (!is.read(b, 8)) throw std::runtime_error("checkpoint: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
  }
  return v;
}

inline std::int64_t get_i64(std::istream& is) {
  return static_cast<std::int64_t>(get_u64(is));
}

inline double get_f64(std::istream& is) {
  return std::bit_cast<double>(get_u64(is));
}

inline std::string get_str(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  if (n > (1ULL << 32)) {
    throw std::runtime_error("checkpoint: implausible string length");
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0 && !is.read(s.data(), static_cast<std::streamsize>(n))) {
    throw std::runtime_error("checkpoint: truncated stream");
  }
  return s;
}

}  // namespace risa::bin
