#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace risa {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

Histogram Histogram::from_data(const std::vector<double>& data, std::size_t bins) {
  if (data.empty()) throw std::invalid_argument("Histogram::from_data: empty");
  const auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  double lo = *mn;
  double hi = *mx;
  if (lo == hi) hi = lo + 1.0;  // degenerate range: widen like matplotlib
  Histogram h(lo, hi, bins);
  for (double x : data) h.add(x);
  return h;
}

std::size_t Histogram::bin_of(double x) const {
  if (x < lo_ || x > hi_) {
    throw std::out_of_range("Histogram: sample outside [lo, hi]");
  }
  // matplotlib: last bin is closed ([lo_k, hi] rather than [lo_k, hi_k)).
  if (x == hi_) return counts_.size() - 1;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  return std::min(bin, counts_.size() - 1);
}

void Histogram::add(double x) {
  ++counts_[bin_of(x)];
  ++total_;
}

std::int64_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram: bad bin");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram: bad bin");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram: bad bin");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::percentile(double p) const {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Histogram::percentile: p outside [0, 100]");
  }
  if (total_ == 0) {
    throw std::logic_error("Histogram::percentile: empty histogram");
  }
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cumulative += counts_[b];
    if (cumulative >= rank) return bin_hi(b);
  }
  return hi_;
}

Log2Histogram::Log2Histogram(std::size_t sub_bins) : sub_bins_(sub_bins) {
  if (sub_bins == 0) {
    throw std::invalid_argument("Log2Histogram: zero sub-bins");
  }
  // One underflow bin for [0, 1), then 64 octaves of sub_bins each -- the
  // full positive range of a 64-bit tick counter.
  counts_.assign(1 + 64 * sub_bins_, 0);
}

std::size_t Log2Histogram::bin_of(double x) const noexcept {
  if (!(x >= 1.0)) return 0;  // [0, 1), negatives and NaN
  int exp = 0;
  // frexp: x = m * 2^exp with m in [0.5, 1), so the octave is exp - 1.
  const double m = std::frexp(x, &exp);
  const auto octave = static_cast<std::size_t>(exp - 1);
  if (octave >= 64) return counts_.size() - 1;
  // m - 0.5 in [0, 0.5) sweeps the octave linearly: sub = floor(2(m-1/2)*S).
  auto sub = static_cast<std::size_t>((m - 0.5) * 2.0 *
                                      static_cast<double>(sub_bins_));
  sub = std::min(sub, sub_bins_ - 1);
  return 1 + octave * sub_bins_ + sub;
}

double Log2Histogram::bin_hi(std::size_t bin) const noexcept {
  if (bin == 0) return 1.0;
  const std::size_t octave = (bin - 1) / sub_bins_;
  const std::size_t sub = (bin - 1) % sub_bins_;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) /
                              static_cast<double>(sub_bins_),
                    static_cast<int>(octave));
}

void Log2Histogram::add(double x) noexcept {
  ++counts_[bin_of(x)];
  ++total_;
}

double Log2Histogram::percentile(double p) const {
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Log2Histogram::percentile: p outside [0, 100]");
  }
  if (total_ == 0) {
    throw std::logic_error("Log2Histogram::percentile: empty histogram");
  }
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cumulative += counts_[b];
    if (cumulative >= rank) return bin_hi(b) * scale_;
  }
  return bin_hi(counts_.size() - 1) * scale_;
}

void Log2Histogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::string Histogram::to_string(int bar_width) const {
  std::ostringstream os;
  const std::int64_t peak = counts_.empty()
      ? 0
      : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "[" << bin_lo(b) << ", " << bin_hi(b)
       << (b + 1 == counts_.size() ? "]" : ")") << "  " << counts_[b] << "  ";
    if (peak > 0) {
      const auto len = static_cast<int>(
          static_cast<double>(counts_[b]) / static_cast<double>(peak) *
          bar_width);
      for (int i = 0; i < len; ++i) os << '#';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace risa
