// Equal-width histogram matching matplotlib's `hist(x, bins=N)` semantics.
//
// Figure 6 of the paper characterizes the Azure workloads with 10-bin
// histograms over [min, max]; reproducing its exact counts requires the same
// binning rule: N equal-width bins spanning [min, max], where the final bin
// is closed on both sides.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace risa {

class Histogram {
 public:
  /// Fixed-range histogram with `bins` equal-width bins over [lo, hi].
  Histogram(double lo, double hi, std::size_t bins);

  /// Build with matplotlib auto-range: lo = min(data), hi = max(data).
  static Histogram from_data(const std::vector<double>& data, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_of(double x) const;
  [[nodiscard]] std::int64_t count(std::size_t bin) const;
  [[nodiscard]] const std::vector<std::int64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Nearest-rank percentile at bin resolution: the upper edge of the first
  /// bin whose cumulative count reaches ceil(p/100 * total).  p in [0, 100];
  /// throws std::logic_error on an empty histogram.  Used by the scheduler
  /// perf baseline (p50/p99 per-placement latency).
  [[nodiscard]] double percentile(double p) const;

  /// Text rendering: one `[lo, hi) count` row per bin plus a bar.
  [[nodiscard]] std::string to_string(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Bounded-memory log-scale histogram for latency percentiles at any
/// sample count.
///
/// `Histogram::from_data` needs the full sample vector (unbounded memory at
/// 10M placements) and auto-ranges its equal-width bins over [min, max]: one
/// outlier stretches the range until every typical sample lands in bin 0 and
/// p50 == p99 (the BENCH_engine.json 5M-row degeneration).  This sink is
/// streaming instead: each octave [2^k, 2^(k+1)) is split into
/// `sub_bins` equal-width sub-bins, so the relative quantization error is
/// bounded by 1/sub_bins regardless of range, the footprint is a fixed
/// `1 + 64 * sub_bins` counters, and nothing is stored per sample.
///
/// Samples are non-negative; values below 1.0 share an underflow bin (the
/// engine records raw TSC tick deltas, so sub-unit values only occur for
/// zero deltas).  `percentile` uses the same nearest-rank rule as Histogram
/// and reports the upper edge of the selected bin, scaled by
/// `set_value_scale` (the engine's ticks-to-nanoseconds calibration, known
/// only at end of run).
class Log2Histogram {
 public:
  explicit Log2Histogram(std::size_t sub_bins = 16);

  void add(double x) noexcept;

  /// Multiplier applied to bin edges on read-out (default 1.0).
  void set_value_scale(double scale) noexcept { scale_ = scale; }

  [[nodiscard]] std::int64_t total() const noexcept { return total_; }

  /// Nearest-rank percentile (p in [0, 100]); upper edge of the selected
  /// bin times the value scale.  Throws std::logic_error when empty.
  [[nodiscard]] double percentile(double p) const;

  /// Drop all counts; bin layout and value scale are retained.
  void clear() noexcept;

 private:
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

  std::size_t sub_bins_;
  double scale_ = 1.0;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace risa
