// Equal-width histogram matching matplotlib's `hist(x, bins=N)` semantics.
//
// Figure 6 of the paper characterizes the Azure workloads with 10-bin
// histograms over [min, max]; reproducing its exact counts requires the same
// binning rule: N equal-width bins spanning [min, max], where the final bin
// is closed on both sides.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace risa {

class Histogram {
 public:
  /// Fixed-range histogram with `bins` equal-width bins over [lo, hi].
  Histogram(double lo, double hi, std::size_t bins);

  /// Build with matplotlib auto-range: lo = min(data), hi = max(data).
  static Histogram from_data(const std::vector<double>& data, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bin_of(double x) const;
  [[nodiscard]] std::int64_t count(std::size_t bin) const;
  [[nodiscard]] const std::vector<std::int64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::int64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Nearest-rank percentile at bin resolution: the upper edge of the first
  /// bin whose cumulative count reaches ceil(p/100 * total).  p in [0, 100];
  /// throws std::logic_error on an empty histogram.  Used by the scheduler
  /// perf baseline (p50/p99 per-placement latency).
  [[nodiscard]] double percentile(double p) const;

  /// Text rendering: one `[lo, hi) count` row per bin plus a bar.
  [[nodiscard]] std::string to_string(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace risa
