#include "common/trace_writer.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace risa {
namespace {

// Shortest round-trip-safe formatting for a trace number.  Chrome's
// reader takes any JSON number; %.17g is exact for doubles but noisy,
// so try %g first and fall back when it loses information.  NaN/inf are
// not JSON -- clamp to 0 so one bad sample cannot poison the file.
void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  int n = std::snprintf(buf, sizeof buf, "%g", v);
  double back = 0.0;
  if (std::sscanf(buf, "%lf", &back) != 1 || back != v) {
    n = std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out.append(buf, static_cast<std::size_t>(n));
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, Options options)
    : opts_(options) {
  owned_.open(path, std::ios::binary | std::ios::trunc);
  if (owned_.is_open()) {
    sink_ = &owned_;
    open_stream();
  } else {
    failed_ = true;
  }
}

TraceWriter::TraceWriter(std::ostream& sink, Options options)
    : opts_(options), sink_(&sink) {
  open_stream();
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::open_stream() {
  if (opts_.ring_capacity == 0) opts_.ring_capacity = 1;
  ring_.reserve(opts_.ring_capacity);
  *sink_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  body_end_ = sink_->tellp();
  if (body_end_ == std::streampos(-1)) {
    failed_ = true;
    return;
  }
  write_footer();  // an aborted run with zero events is still valid JSON
}

void TraceWriter::span(const char* name, const char* cat, double ts_us,
                       double dur_us, std::uint32_t tid) {
  push(Event{name, cat, ts_us, dur_us, tid, 'X'});
}

void TraceWriter::instant(const char* name, const char* cat, double ts_us,
                          std::uint32_t tid) {
  push(Event{name, cat, ts_us, 0.0, tid, 'i'});
}

void TraceWriter::counter(const char* name, const char* cat, double ts_us,
                          double value) {
  push(Event{name, cat, ts_us, value, 0, 'C'});
}

void TraceWriter::process_name(std::string_view name) {
  if (!ok() || closed_) return;
  if (!body_empty_ || !meta_.empty()) meta_ += ',';
  meta_ += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\"";
  append_escaped(meta_, name);
  meta_ += "\"}}";
}

void TraceWriter::thread_name(std::uint32_t tid, std::string_view name) {
  if (!ok() || closed_) return;
  if (!body_empty_ || !meta_.empty()) meta_ += ',';
  meta_ += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
  append_num(meta_, static_cast<double>(tid));
  meta_ += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
  append_escaped(meta_, name);
  meta_ += "\"}}";
}

void TraceWriter::push(const Event& e) {
  if (!ok() || closed_) {
    ++dropped_;
    return;
  }
  if (ring_.size() >= opts_.ring_capacity) {
    if (opts_.flush_on_full) {
      flush();
      if (!ok()) {  // flush detected a sink failure
        ++dropped_;
        return;
      }
    } else {
      ++dropped_;
      return;
    }
  }
  ring_.push_back(e);
  ++emitted_;
}

void TraceWriter::serialize(const Event& e, std::string& out) const {
  out += "{\"ph\":\"";
  out += e.ph;
  out += "\",\"pid\":1,\"tid\":";
  append_num(out, static_cast<double>(e.tid));
  out += ",\"ts\":";
  append_num(out, e.ts);
  if (e.ph == 'X') {
    out += ",\"dur\":";
    append_num(out, e.a);
  } else if (e.ph == 'i') {
    out += ",\"s\":\"t\"";
  }
  out += ",\"name\":\"";
  append_escaped(out, e.name);
  out += "\",\"cat\":\"";
  append_escaped(out, e.cat);
  out += '"';
  if (e.ph == 'C') {
    out += ",\"args\":{\"value\":";
    append_num(out, e.a);
    out += '}';
  }
  out += '}';
}

void TraceWriter::flush() {
  if (!ok() || closed_) return;
  if (meta_.empty() && ring_.empty()) return;
  chunk_.clear();
  chunk_ += meta_;  // metadata already carries its leading comma
  meta_.clear();
  bool first = body_empty_ && chunk_.empty();
  for (const Event& e : ring_) {
    if (!first) chunk_ += ',';
    first = false;
    serialize(e, chunk_);
  }
  ring_.clear();
  if (chunk_.empty()) return;
  body_empty_ = false;
  sink_->seekp(body_end_);
  sink_->write(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
  body_end_ = sink_->tellp();
  write_footer();
  sink_->flush();
  if (!*sink_) failed_ = true;
}

void TraceWriter::write_footer() {
  // The footer only ever grows (the body extends, `dropped_` is
  // monotone), so a rewrite never leaves stale bytes past the end.
  chunk_.clear();
  chunk_ += "],\"overflowDropped\":";
  append_num(chunk_, static_cast<double>(dropped_));
  chunk_ += '}';
  sink_->write(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
}

void TraceWriter::close() {
  if (sink_ == nullptr || closed_) return;
  if (ok()) {
    flush();
    if (ok() && dropped_ > 0) {
      // flush() skips empty rings; make sure the final drop count lands.
      sink_->seekp(body_end_);
      write_footer();
      sink_->flush();
    }
  }
  closed_ = true;
  if (owned_.is_open()) owned_.close();
}

}  // namespace risa
