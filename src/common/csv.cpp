#include "common/csv.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace risa {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else if (ch == '\r') {
      // tolerate CRLF
    } else {
      cur += ch;
    }
  }
  if (in_quotes) throw std::runtime_error("CSV: unbalanced quotes");
  cells.push_back(std::move(cur));
  return cells;
}

std::vector<std::vector<std::string>> CsvReader::read_all(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_line(line));
  }
  return rows;
}

}  // namespace risa
