// Lane-wise SIMD kernels for the rack-availability index (DESIGN.md §10).
//
// The placement hot path asks one vector-shaped question, millions of times
// per run: "which of these 64 contiguous u16 availability lanes are >= a
// u16 demand?"  The answer is a 64-bit rack mask, which is exactly one
// RackSet word.  This header provides that kernel -- ge_mask64 -- in four
// bit-identical flavours:
//
//   * AVX2  (32 lanes/op)  when the compiler targets it (__AVX2__),
//   * SSE2  (16 lanes/op)  on any x86-64 baseline (__SSE2__),
//   * NEON  ( 8 lanes/op)  on AArch64 (__ARM_NEON),
//   * scalar               everywhere else.
//
// Selection is at compile time: the RISA_ENABLE_SIMD CMake option defines
// RISA_ENABLE_SIMD; without it (OFF) the scalar kernel is compiled
// regardless of the target ISA.  The scalar kernel is *always* available
// under simd::detail so differential tests and the index microbenchmark
// can compare the dispatched kernel against the reference within one
// binary.  All flavours produce the same bits for the same input -- the
// tests/test_core_index_simd.cpp property suite pins this.
//
// The unsigned >= on u16 lanes has no direct x86 instruction; both vector
// paths use the saturating-subtract identity
//     a >= b  <=>  saturating(b - a) == 0
// which needs only epu16 subs + epi16 cmpeq (SSE2-era ops).
#pragma once

#include <cstdint>

#if defined(RISA_ENABLE_SIMD)
#if defined(__AVX2__)
#include <immintrin.h>
#define RISA_SIMD_BACKEND_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define RISA_SIMD_BACKEND_SSE2 1
#elif defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define RISA_SIMD_BACKEND_NEON 1
#endif
#endif  // RISA_ENABLE_SIMD

namespace risa::simd {

namespace detail {

/// Reference kernel: bit i of the result is set iff lanes[i] >= threshold.
/// Compiled unconditionally; the vector kernels must match it bit for bit.
[[nodiscard]] inline std::uint64_t ge_mask64_scalar(
    const std::uint16_t* lanes, std::uint16_t threshold) noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 64; ++i) {
    out |= std::uint64_t{lanes[i] >= threshold} << i;
  }
  return out;
}

}  // namespace detail

#if defined(RISA_SIMD_BACKEND_AVX2)

inline constexpr bool kEnabled = true;
inline constexpr const char* kBackend = "avx2";

[[nodiscard]] inline std::uint64_t ge_mask64(const std::uint16_t* lanes,
                                             std::uint16_t threshold) noexcept {
  const __m256i thr = _mm256_set1_epi16(static_cast<short>(threshold));
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t out = 0;
  for (int half = 0; half < 2; ++half) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lanes + 32 * half));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lanes + 32 * half + 16));
    // lanes >= thr  <=>  saturating(thr - lanes) == 0 (per u16 lane).
    const __m256i ga = _mm256_cmpeq_epi16(_mm256_subs_epu16(thr, a), zero);
    const __m256i gb = _mm256_cmpeq_epi16(_mm256_subs_epu16(thr, b), zero);
    // packs interleaves 128-bit lanes: [a0-7, b0-7, a8-15, b8-15]; the
    // permute restores ascending lane order before the byte movemask.
    __m256i packed = _mm256_packs_epi16(ga, gb);
    packed = _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
    const auto bits =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(packed));
    out |= static_cast<std::uint64_t>(bits) << (32 * half);
  }
  return out;
}

#elif defined(RISA_SIMD_BACKEND_SSE2)

inline constexpr bool kEnabled = true;
inline constexpr const char* kBackend = "sse2";

[[nodiscard]] inline std::uint64_t ge_mask64(const std::uint16_t* lanes,
                                             std::uint16_t threshold) noexcept {
  const __m128i thr = _mm_set1_epi16(static_cast<short>(threshold));
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t out = 0;
  for (int q = 0; q < 4; ++q) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 16 * q));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 16 * q + 8));
    const __m128i ga = _mm_cmpeq_epi16(_mm_subs_epu16(thr, a), zero);
    const __m128i gb = _mm_cmpeq_epi16(_mm_subs_epu16(thr, b), zero);
    // 0xFFFF lanes saturate to 0xFF bytes under the signed pack (-1 -> -1).
    const auto bits = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_packs_epi16(ga, gb)));
    out |= static_cast<std::uint64_t>(bits) << (16 * q);
  }
  return out;
}

#elif defined(RISA_SIMD_BACKEND_NEON)

inline constexpr bool kEnabled = true;
inline constexpr const char* kBackend = "neon";

[[nodiscard]] inline std::uint64_t ge_mask64(const std::uint16_t* lanes,
                                             std::uint16_t threshold) noexcept {
  const uint16x8_t thr = vdupq_n_u16(threshold);
  const uint8x8_t bit = {1, 2, 4, 8, 16, 32, 64, 128};
  std::uint64_t out = 0;
  for (int o = 0; o < 8; ++o) {
    const uint16x8_t v = vld1q_u16(lanes + 8 * o);
    const uint16x8_t m = vcgeq_u16(v, thr);          // 0xFFFF / 0 per lane
    const uint8x8_t narrowed = vshrn_n_u16(m, 8);    // 0xFF / 0 per lane
    const std::uint8_t byte = vaddv_u8(vand_u8(narrowed, bit));
    out |= static_cast<std::uint64_t>(byte) << (8 * o);
  }
  return out;
}

#else

inline constexpr bool kEnabled = false;
inline constexpr const char* kBackend = "scalar";

[[nodiscard]] inline std::uint64_t ge_mask64(const std::uint16_t* lanes,
                                             std::uint16_t threshold) noexcept {
  return detail::ge_mask64_scalar(lanes, threshold);
}

#endif

}  // namespace risa::simd
