// Deterministic pseudo-random infrastructure.
//
// Every stochastic element of the reproduction (synthetic workload sizes,
// Poisson arrivals, shuffles) draws from a seeded xoshiro256** generator so
// that experiments are bit-reproducible across runs and platforms.  We do
// not use std::mt19937/std::uniform_int_distribution because their outputs
// are not guaranteed identical across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace risa {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9271e6c0de5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance 2^128 steps; yields an independent stream for parallel use.
  void jump() noexcept;

  /// Raw 256-bit state, for checkpoint/restore of in-flight streams.  A
  /// generator restored from state() continues the identical sequence.
  using State = std::array<std::uint64_t, 4>;
  [[nodiscard]] const State& state() const noexcept { return state_; }
  void set_state(const State& s) noexcept { state_ = s; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Deterministic distributions built on Xoshiro256.  Algorithms are fixed
/// here (not delegated to <random>) for cross-platform reproducibility.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9271e6c0de5eedULL) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive (Lemire's unbiased method).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// process with rate 1/mean, as in the paper's arrival model).
  [[nodiscard]] double exponential(double mean);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60).
  [[nodiscard]] std::int64_t poisson(double mean);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  [[nodiscard]] Xoshiro256& generator() noexcept { return gen_; }
  [[nodiscard]] const Xoshiro256& generator() const noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
};

}  // namespace risa
