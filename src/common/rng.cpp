#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace risa {

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (void)(*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (l < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform01() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("uniform: lo > hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: non-positive mean");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("poisson: negative mean");
  if (mean == 0) return 0;
  if (mean < 60.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    double prod = uniform01();
    std::int64_t n = 0;
    while (prod > limit) {
      prod *= uniform01();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large means.
  const double u1 = uniform01();
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1 <= 0 ? 0x1.0p-53 : u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = mean + std::sqrt(mean) * z + 0.5;
  return v < 0 ? 0 : static_cast<std::int64_t>(v);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("weighted_index: zero total weight");
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // numeric edge: attribute to the last bucket
}

}  // namespace risa
