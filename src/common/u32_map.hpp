// Open-addressing hash map from std::uint32_t keys to movable values.
//
// Built for the simulation hot paths (DESIGN.md §7): unlike
// std::unordered_map, which heap-allocates one node per insertion, this map
// stores slots inline in a single flat array, so steady-state churn
// (insert on VM placement, erase on departure) performs zero heap
// allocations once the table has grown to its peak occupancy.  The table
// only allocates when it rehashes (amortized doubling at 3/4 load), and
// clear() retains capacity for the engine-reuse path.
//
// Collision policy: linear probing with backward-shift deletion (no
// tombstones, so lookup cost never degrades under sustained churn).  The
// hash is a Fibonacci multiplier taking the top bits, which spreads the
// dense sequential VM ids the workloads produce.
//
// REFERENCE STABILITY HAZARD: references and pointers into the table are
// invalidated by find_or_insert (a growth rehash moves every *resident*
// entry, not just the new one) and by erase (backward-shift deletion
// relocates probe-cluster neighbors).  Callers that must hold a record
// across insertions belong on common/slot_arena.hpp instead, whose
// find_or_insert hands out slab-stable references -- the engine's per-VM
// record table moved there for exactly this reason (DESIGN.md §13), and
// tests/test_common_slot_arena.cpp asserts the arena's stability contract
// differentially against this map.
//
// Key restriction: 0xFFFFFFFF is reserved as the empty-slot sentinel.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace risa {

template <typename V>
class U32Map {
 public:
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;

  /// Value for `key`, default-constructed and inserted when absent.
  V& find_or_insert(std::uint32_t key) {
    check_key(key);
    if ((size_ + 1) * 4 > capacity() * 3) grow();
    std::size_t i = home(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == key) return slot.value;
      if (slot.key == kEmptyKey) {
        slot.key = key;
        // Slots vacated by erase()/clear() keep their moved-from value;
        // hand every claimant a freshly constructed one.
        slot.value = V{};
        ++size_;
        return slot.value;
      }
      i = next(i);
    }
  }

  [[nodiscard]] V* find(std::uint32_t key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] const V* find(std::uint32_t key) const noexcept {
    if (size_ == 0 || key == kEmptyKey) return nullptr;
    std::size_t i = home(key);
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      i = next(i);
    }
  }

  /// Remove `key`; returns false when absent.  Backward-shift deletion:
  /// every displaced successor in the probe cluster moves one hole closer
  /// to its home slot, so no tombstones accumulate.
  bool erase(std::uint32_t key) noexcept {
    if (size_ == 0 || key == kEmptyKey) return false;
    std::size_t i = home(key);
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == kEmptyKey) return false;
      if (slot.key == key) break;
      i = next(i);
    }
    // i holds the doomed entry; scan the cluster forward, moving back any
    // entry whose probe distance reaches the hole.
    std::size_t hole = i;
    std::size_t probe = i;
    while (true) {
      probe = next(probe);
      const Slot& cand = slots_[probe];
      if (cand.key == kEmptyKey) break;
      const std::size_t cand_home = home(cand.key);
      const std::size_t cand_dist = distance(cand_home, probe);
      if (cand_dist >= distance(hole, probe)) {
        slots_[hole] = std::move(slots_[probe]);
        hole = probe;
      }
    }
    slots_[hole].key = kEmptyKey;
    slots_[hole].value = V{};  // release value-owned resources eagerly
    --size_;
    return true;
  }

  /// Drop every entry, retaining table capacity.  Stale values stay in
  /// their slots until find_or_insert reclaims them (see there).
  void clear() noexcept {
    if (size_ == 0) return;
    for (Slot& slot : slots_) slot.key = kEmptyKey;
    size_ = 0;
  }

  /// Pre-size so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (n * 4 > want * 3) want *= 2;
    if (want > capacity()) rehash(want);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Invoke `fn(key, const V&)` for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (size_ == 0) return;
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;  // power of two

  struct Slot {
    std::uint32_t key = kEmptyKey;
    V value{};
  };

  static void check_key(std::uint32_t key) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("U32Map: key 0xFFFFFFFF is reserved");
    }
  }

  [[nodiscard]] std::size_t home(std::uint32_t key) const noexcept {
    // Fibonacci hashing; the top log2(capacity) bits index the table.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (capacity() - 1);
  }

  /// Cyclic probe distance from `from` forward to `to`.
  [[nodiscard]] std::size_t distance(std::size_t from,
                                     std::size_t to) const noexcept {
    return (to - from) & (capacity() - 1);
  }

  void grow() { rehash(slots_.empty() ? kMinCapacity : capacity() * 2); }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    shift_ = 64;
    for (std::size_t c = new_capacity; c > 1; c /= 2) --shift_;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      std::size_t i = home(slot.key);
      while (slots_[i].key != kEmptyKey) i = next(i);
      slots_[i] = std::move(slot);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  unsigned shift_ = 64;  // 64 - log2(capacity); 64 while empty
};

}  // namespace risa
