// Generation-stamped slot arena: a dense value slab + free list fronted by
// a paged u32 key -> slot directory.  The engine's per-VM record table
// (DESIGN.md §13): workload indices are dense and arrive in a sliding
// window (old VMs depart as new ones arrive), so a direct paged index
// beats hashing on every per-event lookup -- no Fibonacci mix, no probe
// chain, no load-factor rehash -- while RSS stays bounded by the live
// census plus the key window, never the stream length.
//
// Layout:
//
//   slab       -- pages of {key, gen, value} slots (kSlabPageSize each),
//                 allocated once and never moved, so every reference
//                 find_or_insert() or find() hands out stays valid until
//                 that key is erased.  This is the contract U32Map cannot
//                 give (its find_or_insert may rehash and move *resident*
//                 entries); the engine's admission/retry paths lean on it.
//   free list  -- LIFO stack of vacant slot ids; steady-state churn
//                 (insert on admission, erase on departure) recycles slots
//                 with zero heap traffic.
//   directory  -- pages of kDirPageSize key->slot entries, allocated on
//                 first touch and recycled through a pool when their last
//                 key is erased, so a 10M-index stream with a few-thousand
//                 live census holds a handful of pages, not 10M entries.
//
// Generation stamps: every erase bumps the slot's `gen`, so a stale slot
// id (held across the value's death and the slot's reuse) is detectable --
// the differential tests pin slot reuse and stamp bumps explicitly.
//
// Key restriction: 0xFFFFFFFF is reserved (same sentinel as U32Map, so the
// two are drop-in interchangeable for the differential tests).  Keys index
// the directory directly: the arena is built for *dense* key spaces (the
// engine's workload indices), where max_key/kDirPageSize pointer cells of
// root vector are negligible.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace risa {

template <typename V>
class SlotArena {
 public:
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Value for `key`, default-constructed and inserted when absent.  The
  /// returned reference is STABLE: it remains valid across any number of
  /// later insertions/erasures, until `key` itself is erased.
  V& find_or_insert(std::uint32_t key) {
    check_key(key);
    DirPage& page = dir_page_for(key);
    std::uint32_t& entry = page.slot_of[key % kDirPageSize];
    if (entry != kNoSlot) return slot_ref(entry).value;
    const std::uint32_t s = acquire_slot();
    entry = s;
    ++page.occupancy;
    Slot& slot = slot_ref(s);
    slot.key = key;
    // Slots vacated by erase()/clear() keep a default value already, but a
    // fresh assignment keeps the claim contract identical to U32Map's.
    slot.value = V{};
    ++size_;
    return slot.value;
  }

  [[nodiscard]] V* find(std::uint32_t key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] const V* find(std::uint32_t key) const noexcept {
    const std::uint32_t s = slot_of(key);
    return s == kNoSlot ? nullptr : &slot_ref(s).value;
  }

  /// Remove `key`; returns false when absent.  Bumps the slot's generation
  /// stamp, releases the value eagerly, and recycles the directory page
  /// when its last key leaves (RSS tracks the live key window).
  bool erase(std::uint32_t key) {
    const std::uint32_t s = slot_of(key);
    if (s == kNoSlot) return false;
    Slot& slot = slot_ref(s);
    slot.key = kEmptyKey;
    slot.value = V{};  // release value-owned resources eagerly
    ++slot.gen;        // stamp: any reference held past this point is stale
    free_.push_back(s);
    const std::size_t pi = key / kDirPageSize;
    DirPage& page = *dir_[pi];
    page.slot_of[key % kDirPageSize] = kNoSlot;
    --size_;
    if (--page.occupancy == 0) {
      dir_pool_.push_back(std::move(dir_[pi]));
    }
    return true;
  }

  /// Drop every entry, retaining slab capacity and pooling every directory
  /// page.  The free list is rebuilt lowest-slot-on-top, so a reused arena
  /// assigns the same slot sequence as a fresh one.
  void clear() {
    for (auto& page : slab_pages_) {
      for (std::size_t i = 0; i < kSlabPageSize; ++i) {
        Slot& slot = page[i];
        if (slot.key != kEmptyKey) {
          slot.key = kEmptyKey;
          slot.value = V{};
          ++slot.gen;
        }
      }
    }
    const std::size_t cap = slab_pages_.size() * kSlabPageSize;
    free_.clear();
    free_.reserve(cap);
    for (std::size_t s = cap; s-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(s));
    }
    for (auto& page : dir_) {
      if (page != nullptr) dir_pool_.push_back(std::move(page));
    }
    size_ = 0;
  }

  /// Pre-size the slab for `n` concurrent entries (directory pages stay
  /// on-demand: which key range is live depends on the stream).
  void reserve(std::size_t n) {
    while (slab_pages_.size() * kSlabPageSize < n) append_slab_page();
    if (size_ == 0) {
      // Rebuild lowest-on-top so pre-sizing never perturbs the slot
      // sequence a growing arena would have assigned.
      const std::size_t cap = slab_pages_.size() * kSlabPageSize;
      free_.clear();
      free_.reserve(cap);
      for (std::size_t s = cap; s-- > 0;) {
        free_.push_back(static_cast<std::uint32_t>(s));
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Invoke `fn(key, const V&)` for every entry, in slot (slab) order --
  /// unspecified to callers, exactly like U32Map's hash order (the engine
  /// sorts collected indices before acting on them).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (size_ == 0) return;
    for (const auto& page : slab_pages_) {
      for (std::size_t i = 0; i < kSlabPageSize; ++i) {
        const Slot& slot = page[i];
        if (slot.key != kEmptyKey) fn(slot.key, slot.value);
      }
    }
  }

  // ---- introspection (tests; none of these sit on the engine hot path) --

  /// Slot id currently backing `key`, or kNoSlot.
  [[nodiscard]] std::uint32_t slot_of(std::uint32_t key) const noexcept {
    if (key == kEmptyKey) return kNoSlot;
    const std::size_t pi = key / kDirPageSize;
    if (pi >= dir_.size() || dir_[pi] == nullptr) return kNoSlot;
    return dir_[pi]->slot_of[key % kDirPageSize];
  }

  /// Generation stamp of slot `s` (bumped on every erase of that slot).
  [[nodiscard]] std::uint32_t slot_generation(std::uint32_t s) const noexcept {
    return slot_ref(s).gen;
  }

  [[nodiscard]] std::size_t slab_capacity() const noexcept {
    return slab_pages_.size() * kSlabPageSize;
  }
  [[nodiscard]] std::size_t directory_pages_live() const noexcept {
    std::size_t n = 0;
    for (const auto& page : dir_) n += page != nullptr ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t directory_pages_pooled() const noexcept {
    return dir_pool_.size();
  }

 private:
  static constexpr std::size_t kSlabPageSize = 512;
  static constexpr std::size_t kDirPageSize = 4096;

  struct Slot {
    std::uint32_t key = kEmptyKey;
    std::uint32_t gen = 0;
    V value{};
  };

  struct DirPage {
    std::array<std::uint32_t, kDirPageSize> slot_of;
    std::uint32_t occupancy = 0;
  };

  static void check_key(std::uint32_t key) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("SlotArena: key 0xFFFFFFFF is reserved");
    }
  }

  [[nodiscard]] Slot& slot_ref(std::uint32_t s) noexcept {
    return slab_pages_[s / kSlabPageSize][s % kSlabPageSize];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t s) const noexcept {
    return slab_pages_[s / kSlabPageSize][s % kSlabPageSize];
  }

  DirPage& dir_page_for(std::uint32_t key) {
    const std::size_t pi = key / kDirPageSize;
    if (pi >= dir_.size()) dir_.resize(pi + 1);
    if (dir_[pi] == nullptr) {
      if (!dir_pool_.empty()) {
        dir_[pi] = std::move(dir_pool_.back());
        dir_pool_.pop_back();
      } else {
        dir_[pi] = std::make_unique<DirPage>();
      }
      dir_[pi]->slot_of.fill(kNoSlot);
      dir_[pi]->occupancy = 0;
    }
    return *dir_[pi];
  }

  void append_slab_page() {
    const std::size_t base = slab_pages_.size() * kSlabPageSize;
    slab_pages_.push_back(std::make_unique<Slot[]>(kSlabPageSize));
    // Lowest-on-top: a draining free list hands out ascending slot ids.
    for (std::size_t i = kSlabPageSize; i-- > 0;) {
      free_.push_back(static_cast<std::uint32_t>(base + i));
    }
  }

  std::uint32_t acquire_slot() {
    if (free_.empty()) append_slab_page();
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }

  std::vector<std::unique_ptr<Slot[]>> slab_pages_;
  std::vector<std::uint32_t> free_;
  std::vector<std::unique_ptr<DirPage>> dir_;
  std::vector<std::unique_ptr<DirPage>> dir_pool_;
  std::size_t size_ = 0;
};

}  // namespace risa
