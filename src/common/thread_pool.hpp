// A small fixed-size worker pool for the scenario-sweep layer.
//
// Design goals, in order: deterministic integration (results are written to
// caller-owned slots, never through shared mutable aggregates), exception
// transparency (the first worker exception is rethrown on the caller's
// thread), and simplicity (mutex + condition variable; the sweep's unit of
// work is an entire discrete-event simulation, so queue overhead is noise).
//
// run_indexed() is the primary entry point: it executes `fn(slot, index)`
// for every index in [0, n) with dynamic load balancing over an atomic
// cursor.  `slot` identifies the executing worker lane ([0, size())) and is
// stable for the duration of one run_indexed call, which lets callers pin
// per-lane state -- the sweep runner keeps one reusable simulation engine
// per slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace risa {

class ThreadPool {
 public:
  /// `threads` <= 0 asks for a single worker; callers wanting the machine
  /// default resolve it first (common/flags: default_thread_count()).
  explicit ThreadPool(int threads) {
    const std::size_t n = threads > 0 ? static_cast<std::size_t>(threads) : 1;
    workers_.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue one job.  Exceptions escaping the job are captured; the first
  /// one is rethrown from the next wait() on the submitting thread.
  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(std::move(job));
    }
    cv_.notify_one();
  }

  /// Block until every submitted job has finished, then rethrow the first
  /// captured job exception, if any.
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
    if (first_error_ != nullptr) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  /// Run `fn(slot, index)` for every index in [0, n); blocks until done.
  /// Indices are claimed dynamically from an atomic cursor, so long and
  /// short work items balance across workers; each claimed index runs
  /// exactly once regardless of worker count.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t slot,
                                            std::size_t index)>& fn) {
    std::atomic<std::size_t> next{0};
    for (std::size_t slot = 0; slot < size(); ++slot) {
      submit([&, slot] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < n; i = next.fetch_add(1, std::memory_order_relaxed)) {
          fn(slot, i);
        }
      });
    }
    wait();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        job = std::move(queue_.front());
        queue_.pop();
        ++running_;
      }
      try {
        job();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_;
      }
      idle_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       // queue -> workers
  std::condition_variable idle_cv_;  // workers -> wait()
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace risa
