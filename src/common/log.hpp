// Lightweight leveled logger.  The simulator is hot-path sensitive (the
// paper's Figure 11/12 reproduce *scheduler execution time*), so logging is
// compiled around an early level check and disabled entirely inside the
// timed regions.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace risa {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Logger {
 public:
  /// Process-wide logger.  Defaults to Info on stderr.
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Redirect output (tests use this to capture messages). Pass nullptr to
  /// restore stderr.
  void set_sink(std::ostream* sink) noexcept { sink_ = sink; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Info;
  std::ostream* sink_ = nullptr;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace risa

#define RISA_LOG(level)                                        \
  if (!::risa::Logger::instance().enabled(::risa::LogLevel::level)) { \
  } else                                                       \
    ::risa::detail::LogLine(::risa::LogLevel::level)
