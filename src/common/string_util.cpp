#include "common/string_util.hpp"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace risa {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(s.substr(start));
      break;
    }
    parts.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::int64_t parse_i64(std::string_view s) {
  try {
    std::size_t pos = 0;
    const std::string str(trim(s));
    const std::int64_t v = std::stoll(str, &pos);
    if (pos != str.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("parse_i64: bad integer '" + std::string(s) + "'");
  }
}

double parse_f64(std::string_view s) {
  try {
    std::size_t pos = 0;
    const std::string str(trim(s));
    const double v = std::stod(str, &pos);
    if (pos != str.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("parse_f64: bad number '" + std::string(s) + "'");
  }
}

bool parse_bool(std::string_view s) {
  const std::string v = to_lower(trim(s));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("parse_bool: bad boolean '" + std::string(s) + "'");
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw std::runtime_error("strformat: formatting error");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace risa
