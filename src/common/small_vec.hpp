// A vector with inline storage for the first N elements.
//
// The placement hot path builds several tiny sequences per VM whose sizes
// are topologically bounded in every realistic configuration (circuit hops,
// brick slices, circuits per VM).  Storing them inline removes the per-VM
// heap round-trips that dominated the commit phase; pathological
// configurations (e.g. a box with hundreds of bricks) spill to a normal
// heap vector transparently.
//
// Restricted to trivially copyable element types, which keeps the
// implementation a simple memcpy-able buffer; every current use site (ids,
// BrickSlice) satisfies this.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace risa {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is limited to trivially copyable types");

 public:
  SmallVec() = default;

  void push_back(const T& value) {
    if (!spilled_) {
      if (inline_size_ < N) {
        inline_[inline_size_++] = value;
        return;
      }
      // Overflow: move the inline prefix to the heap and continue there.
      spill_.reserve(2 * N);
      spill_.assign(inline_.begin(), inline_.begin() + inline_size_);
      spilled_ = true;
    }
    spill_.push_back(value);
  }

  /// Grow by one default-constructed element and return it.
  T& emplace_back() {
    push_back(T{});
    return back();
  }

  void resize(std::size_t n, const T& fill = T{}) {
    while (size() > n) pop_back();
    while (size() < n) push_back(fill);
  }

  void pop_back() noexcept {
    if (spilled_) {
      spill_.pop_back();
    } else {
      --inline_size_;
    }
  }

  void clear() noexcept {
    inline_size_ = 0;
    spill_.clear();
    spilled_ = false;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return spilled_ ? spill_.size() : inline_size_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] T* data() noexcept {
    return spilled_ ? spill_.data() : inline_.data();
  }
  [[nodiscard]] const T* data() const noexcept {
    return spilled_ ? spill_.data() : inline_.data();
  }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] T& front() noexcept { return data()[0]; }
  [[nodiscard]] const T& front() const noexcept { return data()[0]; }
  [[nodiscard]] T& back() noexcept { return data()[size() - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data()[size() - 1]; }

  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size(); }
  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size(); }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::array<T, N> inline_{};
  std::uint32_t inline_size_ = 0;
  bool spilled_ = false;
  std::vector<T> spill_;
};

}  // namespace risa
