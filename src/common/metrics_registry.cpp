#include "common/metrics_registry.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace risa {
namespace {

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  int n = std::snprintf(buf, sizeof buf, "%g", v);
  double back = 0.0;
  if (std::sscanf(buf, "%lf", &back) != 1 || back != v) {
    n = std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out.append(buf, static_cast<std::size_t>(n));
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::find_or_register(std::string_view name,
                                                      Kind kind) {
  for (const Series& s : series_) {
    if (s.name == name) {
      if (s.kind != kind) {
        throw std::invalid_argument("MetricsRegistry: series '" +
                                    std::string(name) +
                                    "' registered under two kinds");
      }
      return s.slot;
    }
  }
  Id slot = 0;
  switch (kind) {
    case Kind::Counter:
      slot = static_cast<Id>(counters_.size());
      counters_.push_back(0);
      break;
    case Kind::Gauge:
      slot = static_cast<Id>(gauges_.size());
      gauges_.push_back(0.0);
      break;
    case Kind::Histogram:
      slot = static_cast<Id>(hists_.size());
      hists_.emplace_back();
      break;
  }
  series_.push_back(Series{std::string(name), kind, slot});
  return slot;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return find_or_register(name, Kind::Counter);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  return find_or_register(name, Kind::Gauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name) {
  return find_or_register(name, Kind::Histogram);
}

std::string_view MetricsRegistry::name_of(Kind kind, Id id) const noexcept {
  for (const Series& s : series_) {
    if (s.kind == kind && s.slot == id) return s.name;
  }
  return {};
}

void MetricsRegistry::reset() {
  for (std::int64_t& c : counters_) c = 0;
  for (double& g : gauges_) g = 0.0;
  for (Log2Histogram& h : hists_) h.clear();
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const Series& s : series_) {
    if (s.kind != Kind::Counter) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ':';
    append_json_number(out, static_cast<double>(counters_[s.slot]));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const Series& s : series_) {
    if (s.kind != Kind::Gauge) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ':';
    append_json_number(out, gauges_[s.slot]);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const Series& s : series_) {
    if (s.kind != Kind::Histogram) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    const Log2Histogram& h = hists_[s.slot];
    out += ":{\"count\":";
    append_json_number(out, static_cast<double>(h.total()));
    out += ",\"p50\":";
    append_json_number(out, h.total() > 0 ? h.percentile(50.0) : 0.0);
    out += ",\"p99\":";
    append_json_number(out, h.total() > 0 ? h.percentile(99.0) : 0.0);
    out += ",\"max\":";
    append_json_number(out, h.total() > 0 ? h.percentile(100.0) : 0.0);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace risa
