#include "common/flags.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>

namespace risa {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  if (find(name) != nullptr) {
    throw std::logic_error("Flags: duplicate flag --" + name);
  }
  entries_.push_back({name, default_value, default_value, help});
}

Flags::Entry* Flags::find(const std::string& name) {
  for (auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Flags::Entry* Flags::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    Entry* e = find(arg);
    if (e == nullptr) throw std::runtime_error("Flags: unknown flag --" + arg);
    if (!has_value) {
      // Boolean presence form, or take the next argv as value.
      if (e->default_value == "false" || e->default_value == "true") {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::runtime_error("Flags: missing value for --" + arg);
      }
    }
    e->value = std::move(value);
  }
  return positional;
}

std::string Flags::str(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) throw std::logic_error("Flags: undefined flag --" + name);
  return e->value;
}

std::int64_t Flags::i64(const std::string& name) const {
  return std::stoll(str(name));
}

double Flags::f64(const std::string& name) const { return std::stod(str(name)); }

bool Flags::b(const std::string& name) const {
  const std::string v = str(name);
  return v == "true" || v == "1" || v == "yes";
}

bool Flags::parse_or_usage(int argc, const char* const* argv,
                           std::vector<std::string>* positional_out) {
  try {
    std::vector<std::string> positional = parse(argc, argv);
    if (positional_out != nullptr) {
      *positional_out = std::move(positional);
    } else if (!positional.empty()) {
      throw std::runtime_error("unexpected positional argument '" +
                               positional.front() + "'");
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << usage(argv[0]);
    return false;
  }
  return true;
}

int default_thread_count() {
  if (const char* env = std::getenv("RISA_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void define_threads_flag(Flags& flags, int default_value) {
  flags.define("threads", std::to_string(default_value),
               "Worker threads for the scenario sweep (0 = RISA_THREADS env "
               "override, else hardware concurrency)");
}

int thread_count(const Flags& flags) {
  return resolve_thread_count(flags.i64("threads"));
}

int resolve_thread_count(long long requested) {
  return requested > 0 ? static_cast<int>(requested) : default_thread_count();
}

namespace {

/// Strict integer parse for --threads values; malformed input must not be
/// silently coerced (0 would resolve to "auto", overriding the serial
/// default of the timing-fidelity benches).
long long parse_threads_value(const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    std::cerr << "invalid --threads value '" << text << "'\n";
    std::exit(1);
  }
  return v;
}

}  // namespace

int consume_threads_flag(int& argc, char** argv, int absent_default) {
  long long requested = absent_default;
  int out = 1;
  constexpr std::string_view kPrefix = "--threads=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      requested = parse_threads_value(argv[++i]);
    } else if (arg.rfind(kPrefix, 0) == 0) {
      // argv suffixes stay NUL-terminated, so .data() is a valid C string.
      requested = parse_threads_value(arg.substr(kPrefix.size()).data());
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return resolve_thread_count(requested);
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& e : entries_) {
    os << "  --" << e.name << " (default: " << e.default_value << ")\n      "
       << e.help << "\n";
  }
  return os.str();
}

}  // namespace risa
