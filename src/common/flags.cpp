#include "common/flags.hpp"

#include <sstream>
#include <stdexcept>

namespace risa {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  if (find(name) != nullptr) {
    throw std::logic_error("Flags: duplicate flag --" + name);
  }
  entries_.push_back({name, default_value, default_value, help});
}

Flags::Entry* Flags::find(const std::string& name) {
  for (auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const Flags::Entry* Flags::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    Entry* e = find(arg);
    if (e == nullptr) throw std::runtime_error("Flags: unknown flag --" + arg);
    if (!has_value) {
      // Boolean presence form, or take the next argv as value.
      if (e->default_value == "false" || e->default_value == "true") {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::runtime_error("Flags: missing value for --" + arg);
      }
    }
    e->value = std::move(value);
  }
  return positional;
}

std::string Flags::str(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) throw std::logic_error("Flags: undefined flag --" + name);
  return e->value;
}

std::int64_t Flags::i64(const std::string& name) const {
  return std::stoll(str(name));
}

double Flags::f64(const std::string& name) const { return std::stod(str(name)); }

bool Flags::b(const std::string& name) const {
  const std::string v = str(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& e : entries_) {
    os << "  --" << e.name << " (default: " << e.default_value << ")\n      "
       << e.help << "\n";
  }
  return os.str();
}

}  // namespace risa
