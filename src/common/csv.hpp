// Minimal CSV reader/writer for workload traces and experiment results.
// Supports quoted fields with embedded commas/quotes (RFC 4180 subset) --
// enough to round-trip our own traces and to export results for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace risa {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  /// Escape one cell per RFC 4180 (quote when it contains , " or newline).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

class CsvReader {
 public:
  /// Parse a whole stream; returns rows of cells.  Throws on unbalanced
  /// quotes.  Empty trailing line is ignored.
  [[nodiscard]] static std::vector<std::vector<std::string>> read_all(std::istream& is);

  /// Parse one CSV line (no embedded newlines).
  [[nodiscard]] static std::vector<std::string> parse_line(const std::string& line);
};

}  // namespace risa
