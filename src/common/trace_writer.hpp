// Buffered Chrome-trace / Perfetto JSON writer (DESIGN.md §14).
//
// Emits the "JSON object format" Perfetto still ingests natively: a
// top-level object with a `traceEvents` array of duration (`ph:"X"`),
// instant (`ph:"i"`), counter (`ph:"C"`) and metadata (`ph:"M"`)
// events.  Three properties matter to the engine:
//
//   * Hot-path cost is one bounds check plus a POD store.  `span()` /
//     `instant()` / `counter()` append a 48-byte record to a bounded
//     in-memory ring; serialization (snprintf, stream writes) happens
//     only at flush boundaries.  Event/category names must therefore be
//     string literals (or otherwise outlive the writer) -- the ring
//     stores the pointers, not copies.
//
//   * The output file is valid JSON after every flush.  Each flush
//     seeks back over the previous footer, appends the new chunk, and
//     rewrites the `],"overflowDropped":N,...}` footer.  A run that
//     aborts between flushes loses at most one ring of events, never
//     the file's parseability.
//
//   * The ring is bounded.  When it fills, either the writer flushes
//     in place (`flush_on_full`, the default) or the *new* event is
//     dropped and counted in `dropped()`, which also lands in the
//     footer as `overflowDropped` -- so a post-hoc reader can tell a
//     quiet run from a truncated one.
//
// Timestamps are microseconds (the Chrome trace contract).  The sim
// layer maps 1 time-unit -> 1 us for sim-time tracks and wall seconds
// -> us for the profiler track.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace risa {

class TraceWriter {
 public:
  struct Options {
    std::size_t ring_capacity = std::size_t{1} << 16;
    /// On ring-full: true flushes in place (no loss, costs a write on
    /// the hot path); false drops the new event and counts it.
    bool flush_on_full = true;
  };

  /// Opens `path` for writing; `ok()` reports failure (the writer then
  /// counts every event as dropped instead of crashing the run).
  explicit TraceWriter(const std::string& path) : TraceWriter(path, Options()) {}
  TraceWriter(const std::string& path, Options options);
  /// Non-owning sink, for tests.  The stream must support seekp/tellp.
  explicit TraceWriter(std::ostream& sink) : TraceWriter(sink, Options()) {}
  TraceWriter(std::ostream& sink, Options options);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  [[nodiscard]] bool ok() const noexcept { return sink_ != nullptr && !failed_; }

  /// Complete duration span on thread-track `tid`; `ts`/`dur` in us.
  void span(const char* name, const char* cat, double ts_us, double dur_us,
            std::uint32_t tid);
  /// Thread-scoped instant event.
  void instant(const char* name, const char* cat, double ts_us,
               std::uint32_t tid);
  /// Counter-track sample (Perfetto renders one track per name).
  void counter(const char* name, const char* cat, double ts_us, double value);

  /// Metadata (cold path -- serialized immediately into a side buffer,
  /// emitted ahead of the next chunk).  Names are copied.
  void process_name(std::string_view name);
  void thread_name(std::uint32_t tid, std::string_view name);

  /// Drains the ring into the sink and rewrites the footer, leaving the
  /// file valid JSON.  No-op when closed or failed.
  void flush();
  /// Final flush + footer; further events count as dropped.
  void close();

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return ring_.size(); }

 private:
  struct Event {
    const char* name;
    const char* cat;
    double ts;
    double a;  // dur (X) or value (C); unused for i
    std::uint32_t tid;
    char ph;
  };

  void open_stream();
  void push(const Event& e);
  void serialize(const Event& e, std::string& out) const;
  void write_footer();

  Options opts_;
  std::ofstream owned_;
  std::ostream* sink_ = nullptr;
  std::vector<Event> ring_;
  std::string meta_;   // pre-serialized metadata events awaiting flush
  std::string chunk_;  // serialization scratch, reused across flushes
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::streampos body_end_{};
  bool body_empty_ = true;  // no comma before the first event
  bool closed_ = false;
  bool failed_ = false;
};

}  // namespace risa
