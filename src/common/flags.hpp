// Tiny command-line flag parser for the examples and bench binaries.
// Syntax: --name=value | --name value | --bool-flag.  Unknown flags are an
// error so typos surface immediately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace risa {

class Flags {
 public:
  /// Register flags before parse().  `help` is printed by usage().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parse argv; throws std::runtime_error on unknown flag or missing value.
  /// Returns positional (non-flag) arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t i64(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] bool b(const std::string& name) const;

  [[nodiscard]] std::string usage(const std::string& program) const;

  /// parse() with the standard CLI error policy: on failure, print the
  /// error and usage to stderr and return false (the caller exits 1).
  /// Positional arguments are rejected unless `positional_out` is given.
  [[nodiscard]] bool parse_or_usage(int argc, const char* const* argv,
                                    std::vector<std::string>* positional_out =
                                        nullptr);

 private:
  struct Entry {
    std::string name;
    std::string value;
    std::string default_value;
    std::string help;
  };

  Entry* find(const std::string& name);
  [[nodiscard]] const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

// --- Worker-thread count plumbing -------------------------------------------
//
// Every driver that fans a scenario matrix over the sweep runner takes the
// same `--threads N` flag: 0 (the usual default) resolves to the RISA_THREADS
// environment override when set, else to std::thread::hardware_concurrency.

/// RISA_THREADS env override when positive, else hardware concurrency
/// (minimum 1).
[[nodiscard]] int default_thread_count();

/// Define `--threads` on `flags`.  `default_value` 0 = auto (see above);
/// timing-sensitive drivers (Figures 11/12) pass 1.
void define_threads_flag(Flags& flags, int default_value = 0);

/// Resolve the parsed `--threads` value: positive values pass through,
/// everything else resolves via default_thread_count().
[[nodiscard]] int thread_count(const Flags& flags);

/// Resolve a raw requested count with the same rule (for callers without a
/// Flags instance).
[[nodiscard]] int resolve_thread_count(long long requested);

/// Consume `--threads[=N]` / `--threads N` from argv before it reaches an
/// argument parser that rejects foreign flags (the google-benchmark
/// binaries), compacting argv/argc in place.  Returns the resolved count;
/// when the flag is absent, resolves `absent_default` instead (0 = auto).
[[nodiscard]] int consume_threads_flag(int& argc, char** argv,
                                       int absent_default = 0);

}  // namespace risa
