// Tiny command-line flag parser for the examples and bench binaries.
// Syntax: --name=value | --name value | --bool-flag.  Unknown flags are an
// error so typos surface immediately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace risa {

class Flags {
 public:
  /// Register flags before parse().  `help` is printed by usage().
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parse argv; throws std::runtime_error on unknown flag or missing value.
  /// Returns positional (non-flag) arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t i64(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] bool b(const std::string& name) const;

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Entry {
    std::string name;
    std::string value;
    std::string default_value;
    std::string help;
  };

  Entry* find(const std::string& name);
  [[nodiscard]] const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;
};

}  // namespace risa
