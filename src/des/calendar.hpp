// The event calendar: a d-ary min-heap keyed on (time, seq), templated
// over the event payload.
//
//   * BasicCalendar<EventFn>      -- the generic closure calendar behind
//     des::Simulator (tests, stochastic processes).
//   * BasicCalendar<std::uint32_t> -- the engine's departures-only heap:
//     a 24-byte POD entry, so push/pop never touch the allocator once the
//     backing vector has grown to the peak live-VM count.
//
// The heap is hand-rolled (rather than std::priority_queue) for two
// reasons: pop() moves the entry out instead of copying it (priority_queue
// only exposes a const top()), and the arity is tunable -- the default 4
// halves the tree depth, trading a few comparisons per level for
// cache-friendlier sift paths on large heaps.
//
// reset(first_seq) restarts sequence numbering at an arbitrary base: the
// engine numbers departures starting at the arrival count so the merged
// arrival-cursor/departure-heap stream preserves the historical global
// FIFO order (arrivals seeded seq 0..N-1 win every equal-time tie; see
// DESIGN.md §7).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "des/event.hpp"

namespace risa::des {

template <typename Payload, unsigned Arity = 4>
class BasicCalendar {
  static_assert(Arity >= 2, "BasicCalendar: arity must be at least 2");

 public:
  struct Entry {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(SimTime time, Payload payload) {
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] SimTime next_time() const noexcept { return heap_.front().time; }
  [[nodiscard]] const Entry& top() const noexcept { return heap_.front(); }

  /// Remove and return the earliest event (moved out, never copied).
  [[nodiscard]] Entry pop() {
    Entry out = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return out;
  }

  /// Drop every entry and restart sequence numbering at `first_seq`; the
  /// backing vector's capacity is retained (the engine-reuse path).
  void reset(std::uint64_t first_seq = 0) noexcept {
    heap_.clear();
    next_seq_ = first_seq;
  }

  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  [[nodiscard]] std::uint64_t scheduled_total() const noexcept {
    return next_seq_;
  }

  /// Raw heap array in storage order, for checkpointing.  Restoring the
  /// entries verbatim reproduces the exact same heap -- and therefore the
  /// identical pop order -- because the array already satisfies the heap
  /// property it was serialized with.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return heap_;
  }
  void restore(std::vector<Entry> entries, std::uint64_t next_seq) {
    heap_ = std::move(entries);
    next_seq_ = next_seq;
  }

 private:
  /// Min-heap ordering: earliest time first, FIFO within equal times.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  // Both sifts percolate a hole: the moving entry is lifted out once and
  // displaced entries shift into the hole (one move per level instead of
  // std::swap's three), with a single placement at the final position.

  void sift_up(std::size_t i) {
    Entry e = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!before(e, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(e);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    Entry e = std::move(heap_[i]);
    while (true) {
      const std::size_t first_child = i * Arity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end_child = std::min(first_child + Arity, n);
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], e)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(e);
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

/// The closure calendar des::Simulator runs on.
using Calendar = BasicCalendar<EventFn>;
using Event = Calendar::Entry;

}  // namespace risa::des
