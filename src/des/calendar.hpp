// The event calendar: a binary min-heap keyed on (time, seq).
#pragma once

#include <queue>
#include <vector>

#include "des/event.hpp"

namespace risa::des {

class Calendar {
 public:
  void push(SimTime time, EventFn fn) {
    heap_.push(Event{time, next_seq_++, std::move(fn)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] SimTime next_time() const { return heap_.top().time; }

  /// Remove and return the earliest event.
  [[nodiscard]] Event pop() {
    // std::priority_queue::top() is const&; move out via const_cast is UB,
    // so copy the small struct (fn is a shared-state function object; the
    // copy is cheap relative to event handling).
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return next_seq_; }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace risa::des
