// Reusable stochastic processes on top of the simulator kernel.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "des/simulator.hpp"

namespace risa::des {

/// A Poisson arrival process: fires `on_arrival(index)` N times with
/// exponential inter-arrival gaps of the given mean, matching the paper's
/// "requests are produced dynamically based on a Poisson distribution with
/// a mean interarrival period of 10 time units".
class PoissonArrivals {
 public:
  PoissonArrivals(double mean_interarrival, std::size_t count,
                  std::function<void(Simulator&, std::size_t)> on_arrival)
      : mean_(mean_interarrival), count_(count),
        on_arrival_(std::move(on_arrival)) {
    if (mean_ <= 0) {
      throw std::invalid_argument("PoissonArrivals: non-positive mean");
    }
  }

  /// Schedules the first arrival; subsequent arrivals self-schedule.
  void start(Simulator& sim, Rng& rng) {
    if (count_ == 0) return;
    schedule_next(sim, rng, 0);
  }

 private:
  void schedule_next(Simulator& sim, Rng& rng, std::size_t index) {
    const double gap = rng.exponential(mean_);
    sim.schedule_after(gap, [this, &rng, index](Simulator& s) {
      on_arrival_(s, index);
      if (index + 1 < count_) schedule_next(s, rng, index + 1);
    });
  }

  double mean_;
  std::size_t count_;
  std::function<void(Simulator&, std::size_t)> on_arrival_;
};

}  // namespace risa::des
