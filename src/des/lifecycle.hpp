// Lifecycle events: the typed POD payload of the engine's merged DES
// stream (DESIGN.md §8).
//
// PR 3 split the event loop into two streams -- a sorted arrival cursor
// (seq 0..N-1, the workload index) merged against a departures-only POD
// calendar numbered from N.  This header generalizes the calendar payload
// from "a departing VM index" to a small tagged event so *every* injected
// event family (departures, scripted box failures/repairs, retry
// re-placements) shares one calendar and one (time, seq) total order:
//
//   * arrivals never enter the calendar -- they keep seq 0..N-1 through
//     the cursor and win every equal-time tie against injected events;
//   * injected events are numbered N, N+1, ... in push order, which is
//     itself deterministic (scripted time-triggered events at reset, then
//     departures/retries in placement order), so runs are bit-reproducible
//     at any sweep thread count.
//
// The payload stays a 12-byte POD: calendar push/pop never touches the
// allocator once the backing vector has grown to the peak pending-event
// count (the PR 3 allocation-free contract).
#pragma once

#include <cstdint>
#include <string_view>

namespace risa::des {

/// Every event family of the simulation loop.  Arrival is listed for
/// completeness (timeline/diagnostics); arrival events stream from the
/// engine's sorted cursor and are never stored in the calendar.
enum class LifecycleKind : std::uint8_t {
  Arrival = 0,    ///< VM admission attempt (cursor stream, seq < N)
  Departure = 1,  ///< end of a placement's holding interval
  BoxFail = 2,    ///< scripted fault: a box goes offline, residents die
  BoxRepair = 3,  ///< scripted repair: the box rejoins the pool
  Retry = 4,      ///< re-placement attempt for a dropped/killed VM
  LinkFail = 5,   ///< scripted fault: a fabric link dies, circuits over it too
  LinkRepair = 6, ///< scripted repair: the link admits circuits again
  Migrate = 7,    ///< defragmentation sweep: re-place worst-spread live VMs
};

[[nodiscard]] constexpr std::string_view name(LifecycleKind k) noexcept {
  switch (k) {
    case LifecycleKind::Arrival: return "arrival";
    case LifecycleKind::Departure: return "departure";
    case LifecycleKind::BoxFail: return "box-fail";
    case LifecycleKind::BoxRepair: return "box-repair";
    case LifecycleKind::Retry: return "retry";
    case LifecycleKind::LinkFail: return "link-fail";
    case LifecycleKind::LinkRepair: return "link-repair";
    case LifecycleKind::Migrate: return "migrate";
  }
  return "?";
}

/// Calendar payload.  `subject` is the VM index (Departure/Retry), the
/// fault-plan action index (BoxFail/BoxRepair/LinkFail/LinkRepair -- the
/// action is resolved to concrete victims when the event fires, so seeded
/// random draws happen in stream order), or the sweep ordinal (Migrate).
/// `epoch` tombstones stale departures: a VM killed by a failure -- or
/// re-placed by a migration sweep -- leaves its scheduled departure in the
/// calendar, and the next successful placement opens a new epoch; a
/// departure is executed only when its epoch matches the subject's current
/// placement epoch.
struct LifecycleEvent {
  LifecycleKind kind = LifecycleKind::Departure;
  std::uint32_t subject = 0;
  std::uint32_t epoch = 0;
};

}  // namespace risa::des
