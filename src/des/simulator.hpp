// The discrete-event simulator: a clock plus a calendar.
//
// Handlers receive the simulator and may schedule further events.  Time
// never goes backwards; scheduling into the past throws.  `run()` drains
// the calendar (optionally up to a horizon) and returns the final clock.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "des/calendar.hpp"

namespace risa::des {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` at absolute time `when` (>= now).
  void schedule_at(SimTime when, EventFn fn) {
    if (when < now_) {
      throw std::invalid_argument("Simulator: scheduling into the past");
    }
    calendar_.push(when, std::move(fn));
  }

  /// Schedule `fn` after a non-negative delay.
  void schedule_after(SimTime delay, EventFn fn) {
    if (delay < 0) {
      throw std::invalid_argument("Simulator: negative delay");
    }
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the calendar drains or the next event exceeds `until`.
  /// Returns the clock value after the last executed event.
  SimTime run(SimTime until = std::numeric_limits<SimTime>::infinity()) {
    while (!calendar_.empty() && calendar_.next_time() <= until) {
      Event e = calendar_.pop();
      now_ = e.time;
      ++executed_;
      e.payload(*this);
    }
    return now_;
  }

  /// Execute exactly one event; returns false when the calendar is empty.
  bool step() {
    if (calendar_.empty()) return false;
    Event e = calendar_.pop();
    now_ = e.time;
    ++executed_;
    e.payload(*this);
    return true;
  }

  [[nodiscard]] bool idle() const noexcept { return calendar_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return calendar_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  SimTime now_ = 0.0;
  Calendar calendar_;
  std::uint64_t executed_ = 0;
};

}  // namespace risa::des
