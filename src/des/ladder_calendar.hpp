// LadderCalendar: an O(1)-amortized bucketed priority queue keyed on
// (time, seq), with a pop order provably identical to BasicCalendar's
// d-ary heap (DESIGN.md §12).
//
// Three tiers, earliest times lowest:
//
//   bottom  -- a fully sorted run of imminent events (ascending storage
//              with a dequeue cursor, so pop() is a cursor bump); drained
//              before any bucket is read.
//   rungs   -- up to kMaxRungs arrays of time buckets.  Rung i+1 is spawned
//              lazily on dequeue by re-bucketing rung i's current bucket at
//              a finer width; small or degenerate (all-equal-time) buckets
//              are sorted straight into bottom instead.
//   top     -- an unsorted epoch of far-future events.  When every lower
//              tier is empty, the whole epoch is bucketed into a fresh rung
//              (or sorted into bottom when small) and `top_start_` advances
//              to the epoch's max time, so later pushes split cleanly.
//
// Pushes append to top when time >= top_start_, else land in the first
// (coarsest) rung whose bucketing function maps the time at or past the
// rung's dequeue cursor, else insertion-sort into bottom.  Every tier move
// sorts by (time, seq), so ties pop FIFO exactly like the heap.
//
// Order-identity argument (the differential test in tests/test_des.cpp pins
// it): within a rung, the bucket index idx(t) = clamp(floor((t - start) /
// width)) is a deterministic nondecreasing function of t -- so bucket a's
// times never exceed bucket b's for a < b, and equal times always share a
// bucket (never split across a tier boundary).  An entry is routed below a
// rung's cursor -- to a finer rung or to bottom -- only when idx(t) < cur,
// the same test every resident of those lower tiers once passed, so lower
// tiers hold strictly earlier times.  Draining bottom, then rungs finest to
// coarsest bucket by bucket, then top therefore emits a globally sorted
// (time, seq) sequence.  The comparisons use only idx(t) itself (never a
// separately computed bucket boundary), which keeps the argument exact
// under floating-point rounding: monotonicity of idx is all that is needed.
//
// Like BasicCalendar, the structure never schedules into the past: pushes
// at or after the last popped (time, seq) are the engine's contract, and
// equal-time pushes during a drain insert into bottom behind their already
// popped predecessors (their seq is larger, so FIFO order is preserved).
//
// Checkpointing serializes the *sorted* entry sequence (sorted_entries());
// restore() accepts entries in any order -- it reloads them as a fresh top
// epoch with top_start_ = -inf, which is exactly the state of a calendar
// whose every entry was pushed and none popped, so a v1 checkpoint's
// verbatim heap array restores bit-identically too (DESIGN.md §12).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "des/event.hpp"

namespace risa::des {

template <typename Payload>
class LadderCalendar {
 public:
  struct Entry {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(SimTime time, Payload payload) {
    Entry e{time, next_seq_++, std::move(payload)};
    ++size_;
    if (e.time >= top_start_) {
      top_min_ = std::min(top_min_, e.time);
      top_max_ = std::max(top_max_, e.time);
      top_.push_back(std::move(e));
      return;
    }
    for (std::size_t i = 0; i < nrungs_; ++i) {
      Rung& r = rungs_[i];
      const std::size_t idx = r.bucket_index(e.time);
      if (idx >= r.cur) {
        r.buckets[idx].push_back(std::move(e));
        ++r.count;
        return;
      }
    }
    // Earlier than every pending bucket: insertion-sort into the sorted
    // bottom run, behind its dequeue cursor.  Ascending storage makes the
    // hot tie-storm case -- a push at the current minimum time, which
    // carries the largest seq of its equal-time run -- an append at (or
    // near) the end, not an O(run) front shift.
    const auto pos = std::upper_bound(
        bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_),
        bottom_.end(), e, before);
    bottom_.insert(pos, std::move(e));
  }

  /// Bulk append for an admission window (DESIGN.md §13): pushes every
  /// (time, payload) pair in order, assigning consecutive seqs -- entry
  /// for entry identical to the same sequence of push() calls, so the pop
  /// order is provably unchanged; one call per window replaces one call
  /// per admitted VM.  Times route independently (a window's departures
  /// spread across the tiers like any other pushes).
  void push_bulk(std::span<const std::pair<SimTime, Payload>> entries) {
    if (entries.size() > 1 && top_.capacity() < top_.size() + entries.size()) {
      // Steady-state windows land mostly in top (departures are far
      // future); one reserve keeps the loop below reallocation-free.
      top_.reserve(top_.size() + entries.size());
    }
    for (const auto& [time, payload] : entries) push(time, payload);
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Earliest pending (time, seq) entry.  May surface a bucket into the
  /// sorted bottom tier first, hence non-const (amortized into pop cost).
  [[nodiscard]] SimTime next_time() {
    if (bottom_pos_ >= bottom_.size()) surface();
    return bottom_[bottom_pos_].time;
  }
  [[nodiscard]] const Entry& top() {
    if (bottom_pos_ >= bottom_.size()) surface();
    return bottom_[bottom_pos_];
  }

  /// Remove and return the earliest event (moved out, never copied).
  [[nodiscard]] Entry pop() {
    assert(size_ > 0);
    if (bottom_pos_ >= bottom_.size()) surface();
    Entry out = std::move(bottom_[bottom_pos_++]);
    if (bottom_pos_ >= bottom_.size()) {
      bottom_.clear();  // capacity retained
      bottom_pos_ = 0;
    }
    if (--size_ == 0) {
      // Fully drained: discard exhausted rung shells so the next epoch
      // starts clean, and reopen top as the universal push catchment.
      for (std::size_t i = 0; i < nrungs_; ++i) rungs_[i].clear();
      nrungs_ = 0;
      rearm_empty();
    }
    return out;
  }

  /// Drop every entry and restart sequence numbering at `first_seq`; all
  /// backing storage capacity is retained (the engine-reuse path).
  void reset(std::uint64_t first_seq = 0) noexcept {
    bottom_.clear();
    bottom_pos_ = 0;
    top_.clear();
    for (std::size_t i = 0; i < nrungs_; ++i) rungs_[i].clear();
    nrungs_ = 0;
    size_ = 0;
    rearm_empty();
    next_seq_ = first_seq;
  }

  void reserve(std::size_t capacity) {
    top_.reserve(capacity);
    bottom_.reserve(std::min<std::size_t>(capacity, kBottomThreshold * 4));
  }

  [[nodiscard]] std::uint64_t scheduled_total() const noexcept {
    return next_seq_;
  }

  /// Every pending entry in ascending (time, seq) order -- the canonical
  /// checkpoint serialization (tier structure is an implementation detail;
  /// DESIGN.md §12).
  [[nodiscard]] std::vector<Entry> sorted_entries() const {
    std::vector<Entry> out;
    out.reserve(size_);
    out.insert(out.end(),
               bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_pos_),
               bottom_.end());
    for (std::size_t i = 0; i < nrungs_; ++i) {
      const Rung& r = rungs_[i];
      for (std::size_t b = r.cur; b < r.nbuckets; ++b) {
        out.insert(out.end(), r.buckets[b].begin(), r.buckets[b].end());
      }
    }
    out.insert(out.end(), top_.begin(), top_.end());
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return before(a, b); });
    return out;
  }

  /// Reload from serialized entries (any order: sorted canonical form or a
  /// v1 checkpoint's verbatim heap array) and continue numbering at
  /// `next_seq`.  The entries become a fresh top epoch with top_start_ =
  /// -inf -- the state of a calendar that pushed everything and popped
  /// nothing -- so the continued pop order is identical by the general
  /// order argument above.
  void restore(std::vector<Entry> entries, std::uint64_t next_seq) {
    reset(next_seq);
    size_ = entries.size();
    top_ = std::move(entries);
    for (const Entry& e : top_) {
      top_min_ = std::min(top_min_, e.time);
      top_max_ = std::max(top_max_, e.time);
    }
  }

 private:
  /// Below this population a bucket (or top epoch) is sorted straight into
  /// bottom instead of spawning a finer rung.
  static constexpr std::size_t kBottomThreshold = 48;
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = 4096;

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  struct Rung {
    double start = 0.0;
    double width = 1.0;
    std::size_t cur = 0;       ///< dequeue cursor: buckets < cur are drained
    std::size_t nbuckets = 0;  ///< buckets in use this spawn
    std::size_t count = 0;     ///< entries resident in buckets >= cur
    std::vector<std::vector<Entry>> buckets;  ///< capacity reused across spawns

    /// clamp(floor((t - start) / width)): deterministic and nondecreasing
    /// in t, the only property the order argument relies on.  The clamp is
    /// computed in double so a far-future time cannot overflow the cast.
    [[nodiscard]] std::size_t bucket_index(double t) const noexcept {
      const double q = std::floor((t - start) / width);
      if (!(q > 0.0)) return 0;
      const double last = static_cast<double>(nbuckets - 1);
      return q >= last ? nbuckets - 1 : static_cast<std::size_t>(q);
    }

    void clear() noexcept {
      for (std::size_t b = 0; b < nbuckets; ++b) buckets[b].clear();
      cur = 0;
      nbuckets = 0;
      count = 0;
    }
  };

  void rearm_empty() noexcept {
    // Everything drained: future pushes may carry any time, so reopen top
    // as the universal catchment (cheapest tier to land in).
    top_start_ = -std::numeric_limits<double>::infinity();
    top_min_ = std::numeric_limits<double>::infinity();
    top_max_ = -std::numeric_limits<double>::infinity();
  }

  /// Take `src` (unsorted) as the new bottom tier, sorted ascending with
  /// the dequeue cursor at the minimum.
  void sort_into_bottom(std::vector<Entry>& src) {
    assert(bottom_pos_ >= bottom_.size());
    bottom_.swap(src);
    src.clear();
    bottom_pos_ = 0;
    std::sort(bottom_.begin(), bottom_.end(), before);
  }

  /// Spawn a fresh rung over `src`'s [lo, hi] span and distribute it.
  void spawn_rung(std::vector<Entry>& src, double lo, double hi) {
    assert(nrungs_ < kMaxRungs && lo < hi);
    Rung& r = rungs_[nrungs_++];
    const std::size_t want =
        std::clamp(src.size(), kMinBuckets, kMaxBuckets);
    if (r.buckets.size() < want) r.buckets.resize(want);
    r.start = lo;
    r.width = (hi - lo) / static_cast<double>(want);
    if (!(r.width > 0.0)) {
      // Underflowed span (hi - lo denormal-tiny): treat as degenerate.
      --nrungs_;
      sort_into_bottom(src);
      return;
    }
    r.cur = 0;
    r.nbuckets = want;
    r.count = src.size();
    for (Entry& e : src) {
      r.buckets[r.bucket_index(e.time)].push_back(std::move(e));
    }
    src.clear();
  }

  /// Make bottom non-empty.  Precondition: size_ > 0, bottom drained.
  void surface() {
    assert(size_ > 0);
    while (bottom_pos_ >= bottom_.size()) {
      if (nrungs_ > 0) {
        Rung& r = rungs_[nrungs_ - 1];
        while (r.cur < r.nbuckets && r.buckets[r.cur].empty()) ++r.cur;
        if (r.cur >= r.nbuckets) {
          assert(r.count == 0);
          r.clear();
          --nrungs_;
          continue;
        }
        std::vector<Entry>& b = r.buckets[r.cur];
        r.count -= b.size();
        ++r.cur;  // residents of this bucket move down, never back
        if (b.size() <= kBottomThreshold || nrungs_ >= kMaxRungs) {
          sort_into_bottom(b);
          continue;
        }
        double lo = b.front().time, hi = b.front().time;
        for (const Entry& e : b) {
          lo = std::min(lo, e.time);
          hi = std::max(hi, e.time);
        }
        if (lo == hi) {
          sort_into_bottom(b);  // tie storm: a finer width cannot split it
        } else {
          spawn_rung(b, lo, hi);
        }
      } else {
        // Lower tiers empty: the top epoch is everything pending.
        assert(!top_.empty());
        const double lo = top_min_, hi = top_max_;
        top_start_ = hi;  // later pushes at >= hi start the next epoch
        top_min_ = std::numeric_limits<double>::infinity();
        top_max_ = -std::numeric_limits<double>::infinity();
        if (top_.size() <= kBottomThreshold || lo == hi) {
          sort_into_bottom(top_);
        } else {
          spawn_rung(top_, lo, hi);
        }
      }
    }
  }

  std::vector<Entry> bottom_;   ///< sorted ascending from bottom_pos_
  std::size_t bottom_pos_ = 0;  ///< dequeue cursor; [pos, size) is pending
  std::array<Rung, kMaxRungs> rungs_;
  std::size_t nrungs_ = 0;
  std::vector<Entry> top_;
  double top_start_ = -std::numeric_limits<double>::infinity();
  double top_min_ = std::numeric_limits<double>::infinity();
  double top_max_ = -std::numeric_limits<double>::infinity();
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace risa::des
