// Discrete-event primitives.
//
// Events are (time, sequence) ordered: the sequence number is a global
// monotonically increasing counter so simultaneous events execute in
// scheduling (FIFO) order -- determinism the reproduction depends on.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.hpp"

namespace risa::des {

class Simulator;

using EventFn = std::function<void(Simulator&)>;

struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  EventFn fn;
};

/// Min-heap ordering: earliest time first, FIFO within equal times.
struct EventAfter {
  [[nodiscard]] bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

}  // namespace risa::des
