// Discrete-event primitives.
//
// Events are (time, sequence) ordered: the sequence number is a
// monotonically increasing counter so simultaneous events execute in
// scheduling (FIFO) order -- determinism the reproduction depends on.
//
// Two event representations share that ordering contract (DESIGN.md §7):
//   * the generic closure payload (EventFn) used by des::Simulator for
//     tests and stochastic processes, where flexibility beats throughput;
//   * typed POD payloads (a bare VM index in the engine's departure
//     calendar; the arrival/departure distinction is the merge branch in
//     Engine::run, not a stored tag) used by the simulation hot loop,
//     where an event must cost zero heap allocations.
// BasicCalendar (calendar.hpp) is templated over the payload so both ride
// the same heap implementation and the same (time, seq) tie-breaking.
#pragma once

#include <functional>

#include "common/units.hpp"

namespace risa::des {

class Simulator;

using EventFn = std::function<void(Simulator&)>;

}  // namespace risa::des
