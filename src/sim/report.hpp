// Report rendering: turns SimMetrics into the paper-style tables the bench
// harness prints ("measured" next to "paper" for every figure).
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "workload/vm.hpp"

namespace risa::sim {

/// Figure 5: inter-rack VM assignment counts (one workload, all algorithms).
[[nodiscard]] TextTable figure5_table(const std::vector<SimMetrics>& runs);

/// Figure 7: % inter-rack assignments (several workloads x algorithms).
[[nodiscard]] TextTable figure7_table(const std::vector<SimMetrics>& runs);

/// Figure 8: intra- and inter-rack network utilization.
[[nodiscard]] TextTable figure8_table(const std::vector<SimMetrics>& runs);

/// Figure 9: optical-component power (kW).
[[nodiscard]] TextTable figure9_table(const std::vector<SimMetrics>& runs);

/// Figure 10: average CPU-RAM round-trip latency (ns).
[[nodiscard]] TextTable figure10_table(const std::vector<SimMetrics>& runs);

/// Figures 11/12: scheduler execution time.  `figure` is "fig11"/"fig12".
[[nodiscard]] TextTable exec_time_table(const std::vector<SimMetrics>& runs,
                                        const std::string& figure);

/// §5.1 text: average utilization per resource (one workload).
[[nodiscard]] TextTable utilization_table(const std::vector<SimMetrics>& runs);

/// Full diagnostic dump of every collected metric.
[[nodiscard]] TextTable full_metrics_table(const std::vector<SimMetrics>& runs);

/// Lifecycle outcomes of a fault-scenario sweep (DESIGN.md §8): per cell,
/// the kill/requeue/retry counters, final placement outcomes and the
/// degraded-operation time.  One row per sweep cell, labeled by the cell's
/// fault plan.
[[nodiscard]] TextTable lifecycle_table(const std::vector<SweepResult>& results);

/// Defragmentation outcomes of a migration sweep (DESIGN.md §9): per cell,
/// committed migrations, inter-rack recoveries, the double-charge window
/// total, the admission vs net-of-recovered inter-rack fractions and the
/// resulting optical power.  One row per sweep cell, labeled by the cell's
/// migration and fault plans.
[[nodiscard]] TextTable migration_table(const std::vector<SweepResult>& results);

// --- Unified sweep emitters --------------------------------------------------
//
// Every driver (figure benches, ablations, examples) emits machine-readable
// results through these two functions, so output formats live in exactly one
// place.  One row/object per sweep cell, stable key order, full SimMetrics.

/// JSON document: {"benchmark": ..., "cells": [...]}.
[[nodiscard]] std::string sweep_json(const std::string& benchmark,
                                     const std::vector<SweepResult>& results);
bool write_sweep_json(const std::string& path, const std::string& benchmark,
                      const std::vector<SweepResult>& results);

/// CSV: header + one row per cell (same fields as sweep_json).
[[nodiscard]] std::string sweep_csv(const std::vector<SweepResult>& results);
bool write_sweep_csv(const std::string& path,
                     const std::vector<SweepResult>& results);

// --- Scheduler perf baseline (BENCH_scheduler*.json) ------------------------
//
// The fig11/fig12 bench binaries emit a machine-readable baseline so every
// future change can be diffed against the committed numbers: per-algorithm
// total scheduler time, placement throughput, and per-placement latency
// percentiles (p50/p99 via the bounded-memory Log2Histogram, whose
// log-scale bins keep sub-microsecond resolution even when millions of
// samples share a tail -- the fixed 1000-bin linear histogram collapsed
// p50 and p99 into one bin at 5M+ VMs).

/// One (workload, algorithm) row of the baseline.
struct SchedulerBenchEntry {
  std::string workload;
  std::string algorithm;
  std::uint64_t total_vms = 0;
  std::uint64_t placed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t inter_rack = 0;
  double sched_s = 0.0;             ///< total seconds inside try_place
  double placements_per_sec = 0.0;  ///< attempts / sched_s
  double sim_s = 0.0;               ///< end-to-end Engine::run wall seconds
  double events_per_sec = 0.0;      ///< DES events / sim_s
  double p50_ns = 0.0;              ///< median per-placement latency
  double p99_ns = 0.0;
  /// Streaming rows only: the source's standalone synthesis seconds (the
  /// stream drained without an engine).  sim_s *includes* this -- a pull
  /// run generates arrivals inside the timed window, which a materialized
  /// row pays before its timer starts -- so the engine-only throughput
  /// comparable with materialized rows is events / (sim_s - source_s).
  /// <0 = not recorded (materialized rows).
  double source_s = -1.0;
  double peak_rss_mb = -1.0;        ///< VmHWM when measured; <0 = not recorded
  /// Phase-attributed wall-time breakdown (sim/phase_profiler.hpp), emitted
  /// as a `profile` block when the run enabled profiling.
  PhaseProfile profile{};
};

/// Distill baseline entries from a latency-recording sweep (the unified
/// path: SweepRunner(1) with record_latency keeps the timed sections both
/// single-threaded and serial, so sched_s stays comparable across
/// baselines).  Throws std::invalid_argument when latency was not recorded.
[[nodiscard]] std::vector<SchedulerBenchEntry> scheduler_bench_entries(
    const std::vector<SweepResult>& results);

/// Serialize entries as a stable-keyed JSON document.
[[nodiscard]] std::string scheduler_bench_json(
    const std::string& benchmark, const std::vector<SchedulerBenchEntry>& entries);

/// Write the JSON to `path`; returns false (after logging to stderr) on
/// I/O failure.
bool write_scheduler_bench_json(const std::string& path,
                                const std::string& benchmark,
                                const std::vector<SchedulerBenchEntry>& entries);

/// Consume a `--emit_json[=path]` flag from argv before it reaches
/// benchmark::Initialize (which rejects flags it does not own), compacting
/// argv/argc in place.  Returns the output path -- `default_path` when the
/// flag carries no value -- or the empty string when the flag is absent.
[[nodiscard]] std::string consume_emit_json_flag(int& argc, char** argv,
                                                 const char* default_path);

}  // namespace risa::sim
