// Report rendering: turns SimMetrics into the paper-style tables the bench
// harness prints ("measured" next to "paper" for every figure).
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/metrics.hpp"

namespace risa::sim {

/// Figure 5: inter-rack VM assignment counts (one workload, all algorithms).
[[nodiscard]] TextTable figure5_table(const std::vector<SimMetrics>& runs);

/// Figure 7: % inter-rack assignments (several workloads x algorithms).
[[nodiscard]] TextTable figure7_table(const std::vector<SimMetrics>& runs);

/// Figure 8: intra- and inter-rack network utilization.
[[nodiscard]] TextTable figure8_table(const std::vector<SimMetrics>& runs);

/// Figure 9: optical-component power (kW).
[[nodiscard]] TextTable figure9_table(const std::vector<SimMetrics>& runs);

/// Figure 10: average CPU-RAM round-trip latency (ns).
[[nodiscard]] TextTable figure10_table(const std::vector<SimMetrics>& runs);

/// Figures 11/12: scheduler execution time.  `figure` is "fig11"/"fig12".
[[nodiscard]] TextTable exec_time_table(const std::vector<SimMetrics>& runs,
                                        const std::string& figure);

/// §5.1 text: average utilization per resource (one workload).
[[nodiscard]] TextTable utilization_table(const std::vector<SimMetrics>& runs);

/// Full diagnostic dump of every collected metric.
[[nodiscard]] TextTable full_metrics_table(const std::vector<SimMetrics>& runs);

}  // namespace risa::sim
