#include "sim/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace risa::sim {
namespace {

// Synthetic thread-track ids (pid is always 1).
constexpr std::uint32_t kTidWindows = 1;
constexpr std::uint32_t kTidEvents = 2;
constexpr std::uint32_t kTidPhases = 3;

// Category names as they appear in the trace's "cat" field.
constexpr const char* kCatLifecycle = "lifecycle";
constexpr const char* kCatPlacement = "placement";
constexpr const char* kCatPower = "power";
constexpr const char* kCatCalendar = "calendar";
constexpr const char* kCatPhase = "phase";  // profiler track, never masked

// Event names must be static-lifetime (TraceWriter stores pointers).
constexpr const char* drop_event_name(core::DropReason r) noexcept {
  switch (r) {
    case core::DropReason::NoComputeResources: return "drop:no-compute";
    case core::DropReason::NoNetworkResources: return "drop:no-network";
  }
  return "drop:?";
}

constexpr const char* fault_event_name(des::LifecycleKind k) noexcept {
  switch (k) {
    case des::LifecycleKind::BoxFail: return "box-fail";
    case des::LifecycleKind::BoxRepair: return "box-repair";
    case des::LifecycleKind::LinkFail: return "link-fail";
    case des::LifecycleKind::LinkRepair: return "link-repair";
    default: return "fault:?";
  }
}

constexpr const char* kill_event_name(des::LifecycleKind cause) noexcept {
  switch (cause) {
    case des::LifecycleKind::BoxFail: return "kill:box-fail";
    case des::LifecycleKind::LinkFail: return "kill:link-fail";
    default: return "kill";
  }
}

}  // namespace

std::uint32_t parse_trace_categories(std::string_view csv) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view tok = csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    if (tok == "lifecycle") {
      mask |= kTraceLifecycle;
    } else if (tok == "placement") {
      mask |= kTracePlacement;
    } else if (tok == "power") {
      mask |= kTracePower;
    } else if (tok == "calendar") {
      mask |= kTraceCalendar;
    } else if (tok == "all") {
      mask |= kTraceAllCategories;
    } else if (tok == "none") {
      // explicit empty mask (registry-only telemetry)
    } else {
      throw std::invalid_argument("unknown trace category '" +
                                  std::string(tok) +
                                  "' (lifecycle|placement|power|calendar|"
                                  "all|none)");
    }
  }
  return mask;
}

Telemetry::Telemetry(TelemetryConfig config) : config_(std::move(config)) {
  TraceWriter::Options opts;
  opts.ring_capacity = config_.ring_capacity;
  opts.flush_on_full = config_.flush_on_full;
  // An empty path yields a failed writer (no file, events counted as
  // dropped) -- registry-only telemetry without a second code path.
  writer_ = std::make_unique<TraceWriter>(config_.trace_path, opts);
}

Telemetry::Telemetry(TelemetryConfig config, std::ostream& sink)
    : config_(std::move(config)) {
  TraceWriter::Options opts;
  opts.ring_capacity = config_.ring_capacity;
  opts.flush_on_full = config_.flush_on_full;
  writer_ = std::make_unique<TraceWriter>(sink, opts);
}

Telemetry::~Telemetry() { close(); }

void Telemetry::close() {
  if (writer_) writer_->close();
}

void Telemetry::begin_run(std::string_view algorithm,
                          std::string_view workload, double now_tu) {
  if (!series_ready_) {
    admitted_ = registry_.counter("vm.admitted");
    dropped_ = registry_.counter("vm.dropped");
    for (std::size_t i = 0; i < core::kNumDropReasons; ++i) {
      std::string key = "vm.dropped.";
      key += core::name(static_cast<core::DropReason>(i));
      drop_reason_[i] = registry_.counter(key);
    }
    killed_ = registry_.counter("vm.killed");
    requeued_ = registry_.counter("vm.requeued");
    retries_ = registry_.counter("vm.retries");
    retry_placed_ = registry_.counter("vm.retry_placed");
    migrated_ = registry_.counter("vm.migrated");
    faults_ = registry_.counter("fault.events");
    windows_ = registry_.counter("loop.admission_windows");
    window_span_ = registry_.histogram("loop.window_arrivals");
    live_vms_ = registry_.gauge("census.live_vms");
    holding_power_ = registry_.gauge("power.holding_w");
    series_ready_ = true;
  }
  // Re-arm the sampler at the run's opening sim time: a fresh run
  // samples from t=0, a resumed run from the restored `now` -- no
  // telemetry state crosses the checkpoint.
  next_sample_ = now_tu;
  TraceWriter& w = *writer_;
  if (w.ok()) {
    std::string proc = std::string(algorithm) + " / " + std::string(workload);
    w.process_name(proc);
    w.thread_name(kTidWindows, "sim.windows");
    w.thread_name(kTidEvents, "sim.events");
    w.thread_name(kTidPhases, "phases.wall");
  }
}

void Telemetry::emit_counter(const char* name, std::uint32_t cat_bit,
                             const char* cat_name, double t, double v) {
  if (category(cat_bit)) writer_->counter(name, cat_name, t, v);
}

void Telemetry::sample(double t, const CounterSample& s) {
  registry_.set(live_vms_, static_cast<double>(s.live_vms));
  registry_.set(holding_power_, s.holding_power_w);
  emit_counter("live_vms", kTraceLifecycle, kCatLifecycle, t,
               static_cast<double>(s.live_vms));
  emit_counter("offline_boxes", kTraceLifecycle, kCatLifecycle, t,
               static_cast<double>(s.offline_boxes));
  emit_counter("failed_links", kTraceLifecycle, kCatLifecycle, t,
               static_cast<double>(s.failed_links));
  emit_counter("arrival_ring_depth", kTracePlacement, kCatPlacement, t,
               static_cast<double>(s.arrival_ring_depth));
  emit_counter("calendar_events", kTraceCalendar, kCatCalendar, t,
               static_cast<double>(s.calendar_events));
  emit_counter("holding_power_w", kTracePower, kCatPower, t,
               s.holding_power_w);
  next_sample_ = config_.sample_cadence_tu > 0.0
                     ? t + config_.sample_cadence_tu
                     : t;
}

void Telemetry::admission_window(double t0, double t1, std::uint64_t arrivals,
                                 std::uint64_t placed) {
  registry_.add(windows_);
  registry_.add(admitted_, static_cast<std::int64_t>(placed));
  registry_.observe(window_span_, static_cast<double>(arrivals));
  if (category(kTracePlacement)) {
    writer_->span("admission", kCatPlacement, t0, t1 - t0, kTidWindows);
  }
}

void Telemetry::settlement_window(double t, std::uint64_t departures) {
  if (category(kTracePlacement)) {
    writer_->span("settlement", kCatPlacement, t, 0.0, kTidWindows);
    (void)departures;
  }
}

void Telemetry::migration_sweep(double t, std::uint64_t migrated) {
  registry_.add(migrated_, static_cast<std::int64_t>(migrated));
  if (category(kTracePlacement)) {
    writer_->span("migration-sweep", kCatPlacement, t, 0.0, kTidWindows);
  }
}

void Telemetry::drop(double t, core::DropReason reason) {
  registry_.add(dropped_);
  registry_.add(drop_reason_[static_cast<std::size_t>(reason)]);
  if (category(kTraceLifecycle)) {
    writer_->instant(drop_event_name(reason), kCatLifecycle, t, kTidEvents);
  }
}

void Telemetry::kill(double t, des::LifecycleKind cause) {
  registry_.add(killed_);
  if (category(kTraceLifecycle)) {
    writer_->instant(kill_event_name(cause), kCatLifecycle, t, kTidEvents);
  }
}

void Telemetry::requeue(double t) {
  registry_.add(requeued_);
  if (category(kTraceLifecycle)) {
    writer_->instant("requeue", kCatLifecycle, t, kTidEvents);
  }
}

void Telemetry::retry(double t, bool placed) {
  registry_.add(retries_);
  if (placed) registry_.add(retry_placed_);
  if (category(kTraceLifecycle)) {
    writer_->instant(placed ? "retry:placed" : "retry:failed", kCatLifecycle,
                     t, kTidEvents);
  }
}

void Telemetry::fault(double t, des::LifecycleKind kind) {
  registry_.add(faults_);
  if (category(kTraceLifecycle)) {
    writer_->instant(fault_event_name(kind), kCatLifecycle, t, kTidEvents);
  }
}

void Telemetry::finish_run(const PhaseProfile* profile) {
  if (profile != nullptr && profile->recorded) {
    // Phase seconds -> sequential wall-time spans.  The cursor persists
    // across runs so a reused Telemetry (sweep lane) appends disjoint
    // span groups instead of overlapping at ts=0.
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      const double us = profile->seconds[i] * 1e6;
      if (us <= 0.0) continue;
      writer_->span(kPhaseNames[i].data(), kCatPhase, phase_cursor_us_, us,
                    kTidPhases);
      phase_cursor_us_ += us;
    }
  }
  writer_->flush();
}

// ---------------------------------------------------------------------
// Offline reader: a single-pass recursive-descent scan of the Chrome
// trace JSON.  Events are aggregated as they parse -- memory stays
// O(distinct names), so multi-hundred-MB CI traces summarize in a few
// tens of MB.

namespace {

class JsonScanner {
 public:
  explicit JsonScanner(std::istream& in) : in_(in) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON: " + what + " at byte " +
                             std::to_string(pos_));
  }

  int peek() {
    skip_ws();
    return in_.peek();
  }
  int get() {
    int c = in_.get();
    if (c != EOF) ++pos_;
    return c;
  }
  void expect(char want) {
    skip_ws();
    int c = get();
    if (c != want) {
      fail(std::string("expected '") + want + "'");
    }
  }
  bool try_consume(char want) {
    skip_ws();
    if (in_.peek() == want) {
      get();
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      int c = get();
      if (c == EOF) fail("unterminated string");
      if (c == '"') return out;
      if (c == '\\') {
        int e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              int h = get();
              if (!std::isxdigit(h)) fail("bad \\u escape");
            }
            out += '?';  // summaries never need the exact code point
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += static_cast<char>(c);
      }
    }
  }

  double parse_number() {
    skip_ws();
    std::string tok;
    int c = in_.peek();
    while (c != EOF && (std::isdigit(c) || c == '-' || c == '+' || c == '.' ||
                        c == 'e' || c == 'E')) {
      tok += static_cast<char>(get());
      c = in_.peek();
    }
    if (tok.empty()) fail("expected number");
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
    return v;
  }

  /// Skip any JSON value (validating as it goes).
  void skip_value() {
    int c = peek();
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      get();
      if (try_consume('}')) return;
      do {
        parse_string();
        expect(':');
        skip_value();
      } while (try_consume(','));
      expect('}');
    } else if (c == '[') {
      get();
      if (try_consume(']')) return;
      do {
        skip_value();
      } while (try_consume(','));
      expect(']');
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      parse_number();
    }
  }

  void literal(const char* word) {
    skip_ws();
    for (const char* p = word; *p != '\0'; ++p) {
      if (get() != *p) fail(std::string("expected '") + word + "'");
    }
  }

  void skip_ws() {
    int c = in_.peek();
    while (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      get();
      c = in_.peek();
    }
  }

 private:
  std::istream& in_;
  std::size_t pos_ = 0;
};

struct RawEvent {
  std::string name;
  char ph = '\0';
  double ts = 0.0;
  double dur = 0.0;
  double value = 0.0;
  std::uint32_t tid = 0;
  bool has_value = false;
};

RawEvent parse_event(JsonScanner& s) {
  RawEvent e;
  s.expect('{');
  if (s.try_consume('}')) return e;
  do {
    std::string key = s.parse_string();
    s.expect(':');
    if (key == "name") {
      e.name = s.parse_string();
    } else if (key == "ph") {
      std::string ph = s.parse_string();
      e.ph = ph.empty() ? '\0' : ph[0];
    } else if (key == "ts") {
      e.ts = s.parse_number();
    } else if (key == "dur") {
      e.dur = s.parse_number();
    } else if (key == "tid") {
      e.tid = static_cast<std::uint32_t>(s.parse_number());
    } else if (key == "args") {
      s.expect('{');
      if (!s.try_consume('}')) {
        do {
          std::string akey = s.parse_string();
          s.expect(':');
          if (akey == "value") {
            e.value = s.parse_number();
            e.has_value = true;
          } else {
            s.skip_value();
          }
        } while (s.try_consume(','));
        s.expect('}');
      }
    } else {
      s.skip_value();
    }
  } while (s.try_consume(','));
  s.expect('}');
  return e;
}

template <typename Agg>
Agg& find_or_add(std::vector<Agg>& v, const std::string& name) {
  for (Agg& a : v) {
    if (a.name == name) return a;
  }
  v.push_back(Agg{});
  v.back().name = name;
  return v.back();
}

/// Per-tid stack of open-span end times for the strict-nesting check.
struct NestState {
  std::uint32_t tid;
  std::vector<double> open_ends;
};

}  // namespace

TraceSummary summarize_trace(std::istream& in) {
  JsonScanner s(in);
  TraceSummary out;
  std::vector<NestState> nests;
  std::vector<std::pair<std::string, double>> counter_last_ts;

  s.expect('{');
  if (!s.try_consume('}')) {
    do {
      std::string key = s.parse_string();
      s.expect(':');
      if (key == "traceEvents") {
        s.expect('[');
        if (!s.try_consume(']')) {
          do {
            RawEvent e = parse_event(s);
            if (e.ph == 'M') continue;  // metadata
            ++out.events;
            if (e.ph == 'X') {
              auto& agg = find_or_add(out.spans, e.name);
              ++agg.count;
              agg.total_us += e.dur;
              agg.max_us = std::max(agg.max_us, e.dur);
              NestState* ns = nullptr;
              for (NestState& n : nests) {
                if (n.tid == e.tid) ns = &n;
              }
              if (ns == nullptr) {
                nests.push_back(NestState{e.tid, {}});
                ns = &nests.back();
              }
              // Events appear in emission order (nondecreasing ts per
              // tid); pop spans that ended before this one starts, then
              // require full containment in whatever is still open.
              while (!ns->open_ends.empty() && ns->open_ends.back() <= e.ts) {
                ns->open_ends.pop_back();
              }
              if (!ns->open_ends.empty() &&
                  e.ts + e.dur > ns->open_ends.back()) {
                out.spans_nest = false;
              }
              ns->open_ends.push_back(e.ts + e.dur);
            } else if (e.ph == 'C') {
              auto& agg = find_or_add(out.counters, e.name);
              if (agg.samples == 0) {
                agg.min = agg.max = e.value;
              } else {
                agg.min = std::min(agg.min, e.value);
                agg.max = std::max(agg.max, e.value);
              }
              ++agg.samples;
              agg.sum += e.value;
              bool found = false;
              for (auto& [cname, last] : counter_last_ts) {
                if (cname == e.name) {
                  if (e.ts < last) out.counters_monotone = false;
                  last = e.ts;
                  found = true;
                }
              }
              if (!found) counter_last_ts.emplace_back(e.name, e.ts);
            } else if (e.ph == 'i' || e.ph == 'I') {
              ++find_or_add(out.instants, e.name).count;
            }
          } while (s.try_consume(','));
          s.expect(']');
        }
      } else if (key == "overflowDropped") {
        out.overflow_dropped = static_cast<std::uint64_t>(s.parse_number());
      } else {
        s.skip_value();
      }
    } while (s.try_consume(','));
    s.expect('}');
  }
  s.skip_ws();
  if (in.peek() != EOF) s.fail("trailing content after top-level object");

  std::sort(out.spans.begin(), out.spans.end(),
            [](const TraceSummary::SpanAgg& a, const TraceSummary::SpanAgg& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return out;
}

TraceSummary summarize_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  return summarize_trace(in);
}

std::string format_trace_summary(const TraceSummary& summary,
                                 std::size_t top_n) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "trace: %llu events, %llu overflow-dropped, well-formed: %s\n",
                static_cast<unsigned long long>(summary.events),
                static_cast<unsigned long long>(summary.overflow_dropped),
                summary.well_formed() ? "yes" : "NO");
  out += line;
  if (!summary.spans_nest) out += "  VIOLATION: spans do not strictly nest\n";
  if (!summary.counters_monotone) {
    out += "  VIOLATION: counter samples not monotone in ts\n";
  }
  out += "top spans by total time:\n";
  std::size_t shown = 0;
  for (const auto& sp : summary.spans) {
    if (shown++ >= top_n) break;
    std::snprintf(line, sizeof line, "  %-24s n=%-10llu total=%.3fms max=%.3fms\n",
                  sp.name.c_str(), static_cast<unsigned long long>(sp.count),
                  sp.total_us / 1e3, sp.max_us / 1e3);
    out += line;
  }
  if (summary.spans.empty()) out += "  (none)\n";
  out += "counters (min/mean/max):\n";
  for (const auto& c : summary.counters) {
    const double mean = c.samples > 0 ? c.sum / static_cast<double>(c.samples)
                                      : 0.0;
    std::snprintf(line, sizeof line,
                  "  %-24s n=%-10llu min=%.6g mean=%.6g max=%.6g\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.samples),
                  c.min, mean, c.max);
    out += line;
  }
  if (summary.counters.empty()) out += "  (none)\n";
  out += "instants:\n";
  for (const auto& i : summary.instants) {
    std::snprintf(line, sizeof line, "  %-24s n=%llu\n", i.name.c_str(),
                  static_cast<unsigned long long>(i.count));
    out += line;
  }
  if (summary.instants.empty()) out += "  (none)\n";
  return out;
}

}  // namespace risa::sim
