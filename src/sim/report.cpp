#include "sim/report.hpp"

#include "sim/experiments.hpp"

namespace risa::sim {

TextTable figure5_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Algorithm", "Inter-rack VMs (measured)", "Paper",
               "Any-pair inter", "Placed", "Dropped"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.algorithm,
               std::to_string(m.inter_rack_placements),
               paper_cell("fig5", m.workload, m.algorithm, 0),
               std::to_string(m.any_pair_inter_rack),
               std::to_string(m.placed), std::to_string(m.dropped)});
  }
  return t;
}

TextTable figure7_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "Inter-rack % (measured)", "Paper %"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.inter_rack_fraction() * 100.0, 2),
               paper_cell("fig7", m.workload, m.algorithm, 1)});
  }
  return t;
}

TextTable figure8_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "Intra % (measured)",
               "Intra % (paper)", "Inter % (measured)", "Inter % (paper)"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.avg_intra_net_utilization * 100.0, 2),
               paper_cell("fig8-intra", m.workload, m.algorithm, 1),
               TextTable::num(m.avg_inter_net_utilization * 100.0, 2),
               paper_cell("fig8-inter", m.workload, m.algorithm, 1)});
  }
  return t;
}

TextTable figure9_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "Power kW (measured)",
               "Power kW (paper)", "Transceiver kW", "Switch-trim kW"});
  for (const SimMetrics& m : runs) {
    const double horizon_s = m.horizon_tu;  // 1 tu = 1 s by default
    const double txr_kw = m.energy.transceiver_j / horizon_s / 1000.0;
    const double trim_kw = m.energy.switch_trimming_j / horizon_s / 1000.0;
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.avg_optical_power_w / 1000.0, 2),
               paper_cell("fig9", m.workload, m.algorithm, 2),
               TextTable::num(txr_kw, 2), TextTable::num(trim_kw, 2)});
  }
  return t;
}

TextTable figure10_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "CPU-RAM RTT ns (measured)",
               "Paper ns"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.cpu_ram_latency_ns.mean(), 1),
               paper_cell("fig10", m.workload, m.algorithm, 0)});
  }
  return t;
}

TextTable exec_time_table(const std::vector<SimMetrics>& runs,
                          const std::string& figure) {
  TextTable t({"Workload", "Algorithm", "Sched time s (measured)",
               "Paper s (authors' testbed)", "Relative to RISA"});
  // Relative column: normalize to the RISA run of the same workload.
  auto risa_time = [&](const std::string& workload) {
    for (const SimMetrics& m : runs) {
      if (m.workload == workload && m.algorithm == "RISA") {
        return m.scheduler_exec_seconds;
      }
    }
    return 0.0;
  };
  for (const SimMetrics& m : runs) {
    const double base = risa_time(m.workload);
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.scheduler_exec_seconds, 4),
               paper_cell(figure, m.workload, m.algorithm, 0),
               base > 0 ? TextTable::num(m.scheduler_exec_seconds / base, 2) +
                              "x"
                        : "-"});
  }
  return t;
}

TextTable utilization_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "CPU % (avg)", "RAM % (avg)",
               "STO % (avg)", "CPU/RAM/STO % (paper)"});
  for (const SimMetrics& m : runs) {
    std::string paper = paper_cell("text-util-cpu", m.workload, m.algorithm) +
                        "/" +
                        paper_cell("text-util-ram", m.workload, m.algorithm) +
                        "/" +
                        paper_cell("text-util-sto", m.workload, m.algorithm);
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.avg_utilization.cpu() * 100.0, 2),
               TextTable::num(m.avg_utilization.ram() * 100.0, 2),
               TextTable::num(m.avg_utilization.storage() * 100.0, 2),
               std::move(paper)});
  }
  return t;
}

TextTable full_metrics_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algo", "Placed", "Dropped", "CPU-RAM split",
               "Any-pair split", "Fallbacks", "CPU%", "RAM%", "STO%",
               "Intra%", "Inter%", "Power kW", "RTT ns", "Sched s"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm, std::to_string(m.placed),
               std::to_string(m.dropped),
               std::to_string(m.inter_rack_placements),
               std::to_string(m.any_pair_inter_rack),
               std::to_string(m.fallback_placements),
               TextTable::num(m.avg_utilization.cpu() * 100.0, 1),
               TextTable::num(m.avg_utilization.ram() * 100.0, 1),
               TextTable::num(m.avg_utilization.storage() * 100.0, 1),
               TextTable::num(m.avg_intra_net_utilization * 100.0, 1),
               TextTable::num(m.avg_inter_net_utilization * 100.0, 1),
               TextTable::num(m.avg_optical_power_w / 1000.0, 2),
               TextTable::num(m.cpu_ram_latency_ns.count() > 0
                                  ? m.cpu_ram_latency_ns.mean()
                                  : 0.0,
                              1),
               TextTable::num(m.scheduler_exec_seconds, 4)});
  }
  return t;
}

}  // namespace risa::sim
