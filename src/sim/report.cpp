#include "sim/report.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/csv.hpp"
#include "common/histogram.hpp"
#include "common/string_util.hpp"
#include "sim/experiments.hpp"

namespace risa::sim {

TextTable figure5_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Algorithm", "Inter-rack VMs (measured)", "Paper",
               "Any-pair inter", "Placed", "Dropped"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.algorithm,
               std::to_string(m.inter_rack_placements),
               paper_cell("fig5", m.workload, m.algorithm, 0),
               std::to_string(m.any_pair_inter_rack),
               std::to_string(m.placed), std::to_string(m.dropped)});
  }
  return t;
}

TextTable figure7_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "Inter-rack % (measured)", "Paper %"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.inter_rack_fraction() * 100.0, 2),
               paper_cell("fig7", m.workload, m.algorithm, 1)});
  }
  return t;
}

TextTable figure8_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "Intra % (measured)",
               "Intra % (paper)", "Inter % (measured)", "Inter % (paper)"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.avg_intra_net_utilization * 100.0, 2),
               paper_cell("fig8-intra", m.workload, m.algorithm, 1),
               TextTable::num(m.avg_inter_net_utilization * 100.0, 2),
               paper_cell("fig8-inter", m.workload, m.algorithm, 1)});
  }
  return t;
}

TextTable figure9_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "Power kW (measured)",
               "Power kW (paper)", "Transceiver kW", "Switch-trim kW"});
  for (const SimMetrics& m : runs) {
    const double horizon_s = m.horizon_tu;  // 1 tu = 1 s by default
    const double txr_kw = m.energy.transceiver_j / horizon_s / 1000.0;
    const double trim_kw = m.energy.switch_trimming_j / horizon_s / 1000.0;
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.avg_optical_power_w / 1000.0, 2),
               paper_cell("fig9", m.workload, m.algorithm, 2),
               TextTable::num(txr_kw, 2), TextTable::num(trim_kw, 2)});
  }
  return t;
}

TextTable figure10_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "CPU-RAM RTT ns (measured)",
               "Paper ns"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.cpu_ram_latency_ns.mean(), 1),
               paper_cell("fig10", m.workload, m.algorithm, 0)});
  }
  return t;
}

TextTable exec_time_table(const std::vector<SimMetrics>& runs,
                          const std::string& figure) {
  TextTable t({"Workload", "Algorithm", "Sched time s (measured)",
               "Paper s (authors' testbed)", "Relative to RISA"});
  // Relative column: normalize to the RISA run of the same workload.
  auto risa_time = [&](const std::string& workload) {
    for (const SimMetrics& m : runs) {
      if (m.workload == workload && m.algorithm == "RISA") {
        return m.scheduler_exec_seconds;
      }
    }
    return 0.0;
  };
  for (const SimMetrics& m : runs) {
    const double base = risa_time(m.workload);
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.scheduler_exec_seconds, 4),
               paper_cell(figure, m.workload, m.algorithm, 0),
               base > 0 ? TextTable::num(m.scheduler_exec_seconds / base, 2) +
                              "x"
                        : "-"});
  }
  return t;
}

TextTable utilization_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algorithm", "CPU % (avg)", "RAM % (avg)",
               "STO % (avg)", "CPU/RAM/STO % (paper)"});
  for (const SimMetrics& m : runs) {
    std::string paper = paper_cell("text-util-cpu", m.workload, m.algorithm) +
                        "/" +
                        paper_cell("text-util-ram", m.workload, m.algorithm) +
                        "/" +
                        paper_cell("text-util-sto", m.workload, m.algorithm);
    t.add_row({m.workload, m.algorithm,
               TextTable::num(m.avg_utilization.cpu() * 100.0, 2),
               TextTable::num(m.avg_utilization.ram() * 100.0, 2),
               TextTable::num(m.avg_utilization.storage() * 100.0, 2),
               std::move(paper)});
  }
  return t;
}

TextTable full_metrics_table(const std::vector<SimMetrics>& runs) {
  TextTable t({"Workload", "Algo", "Placed", "Dropped", "CPU-RAM split",
               "Any-pair split", "Fallbacks", "CPU%", "RAM%", "STO%",
               "Intra%", "Inter%", "Power kW", "RTT ns", "Sched s"});
  for (const SimMetrics& m : runs) {
    t.add_row({m.workload, m.algorithm, std::to_string(m.placed),
               std::to_string(m.dropped),
               std::to_string(m.inter_rack_placements),
               std::to_string(m.any_pair_inter_rack),
               std::to_string(m.fallback_placements),
               TextTable::num(m.avg_utilization.cpu() * 100.0, 1),
               TextTable::num(m.avg_utilization.ram() * 100.0, 1),
               TextTable::num(m.avg_utilization.storage() * 100.0, 1),
               TextTable::num(m.avg_intra_net_utilization * 100.0, 1),
               TextTable::num(m.avg_inter_net_utilization * 100.0, 1),
               TextTable::num(m.avg_optical_power_w / 1000.0, 2),
               TextTable::num(m.cpu_ram_latency_ns.count() > 0
                                  ? m.cpu_ram_latency_ns.mean()
                                  : 0.0,
                              1),
               TextTable::num(m.scheduler_exec_seconds, 4)});
  }
  return t;
}

TextTable lifecycle_table(const std::vector<SweepResult>& results) {
  TextTable t({"Fault plan", "Workload", "Algorithm", "Killed", "Requeued",
               "Retry-placed", "Placed", "Dropped", "Inter-rack %",
               "Degraded tu"});
  for (const SweepResult& r : results) {
    const SimMetrics& m = r.metrics;
    t.add_row({r.fault_plan, m.workload, m.algorithm,
               std::to_string(m.killed), std::to_string(m.requeued),
               std::to_string(m.retry_placed), std::to_string(m.placed),
               std::to_string(m.dropped),
               TextTable::num(m.inter_rack_fraction() * 100.0, 2),
               TextTable::num(m.degraded_tu, 1)});
  }
  return t;
}

TextTable migration_table(const std::vector<SweepResult>& results) {
  TextTable t({"Migration plan", "Fault plan", "Workload", "Algorithm",
               "Migrated", "Recovered", "Migration tu", "Inter-rack %",
               "Net inter-rack %", "Power kW", "Killed"});
  for (const SweepResult& r : results) {
    const SimMetrics& m = r.metrics;
    const double net_inter =
        m.total_vms > 0
            ? static_cast<double>(m.inter_rack_placements -
                                  std::min(m.interrack_vms_recovered,
                                           m.inter_rack_placements)) /
                  static_cast<double>(m.total_vms)
            : 0.0;
    t.add_row({r.migration_plan, r.fault_plan, m.workload, m.algorithm,
               std::to_string(m.migrated),
               std::to_string(m.interrack_vms_recovered),
               TextTable::num(m.migration_tu, 1),
               TextTable::num(m.inter_rack_fraction() * 100.0, 2),
               TextTable::num(net_inter * 100.0, 2),
               TextTable::num(m.avg_optical_power_w / 1000.0, 2),
               std::to_string(m.killed)});
  }
  return t;
}

namespace {

/// The unified per-cell field list, shared verbatim by the JSON and CSV
/// emitters so the two formats cannot drift apart.
struct CellField {
  const char* key;
  std::string (*render)(const SweepResult&);
};

std::string render_u64(std::uint64_t v) { return std::to_string(v); }

const CellField kCellFields[] = {
    {"scenario", [](const SweepResult& r) { return r.scenario; }},
    {"workload", [](const SweepResult& r) { return r.metrics.workload; }},
    {"seed", [](const SweepResult& r) { return render_u64(r.seed); }},
    {"fault_plan", [](const SweepResult& r) { return r.fault_plan; }},
    {"algorithm", [](const SweepResult& r) { return r.metrics.algorithm; }},
    {"total_vms",
     [](const SweepResult& r) { return render_u64(r.metrics.total_vms); }},
    {"placed",
     [](const SweepResult& r) { return render_u64(r.metrics.placed); }},
    {"dropped",
     [](const SweepResult& r) { return render_u64(r.metrics.dropped); }},
    {"inter_rack",
     [](const SweepResult& r) {
       return render_u64(r.metrics.inter_rack_placements);
     }},
    {"any_pair_inter_rack",
     [](const SweepResult& r) {
       return render_u64(r.metrics.any_pair_inter_rack);
     }},
    {"fallbacks",
     [](const SweepResult& r) {
       return render_u64(r.metrics.fallback_placements);
     }},
    {"killed",
     [](const SweepResult& r) { return render_u64(r.metrics.killed); }},
    {"requeued",
     [](const SweepResult& r) { return render_u64(r.metrics.requeued); }},
    {"retry_placed",
     [](const SweepResult& r) { return render_u64(r.metrics.retry_placed); }},
    {"degraded_tu",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.degraded_tu);
     }},
    {"migration_plan", [](const SweepResult& r) { return r.migration_plan; }},
    {"migrated",
     [](const SweepResult& r) { return render_u64(r.metrics.migrated); }},
    {"migration_tu",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.migration_tu);
     }},
    {"interrack_recovered",
     [](const SweepResult& r) {
       return render_u64(r.metrics.interrack_vms_recovered);
     }},
    {"avg_cpu_util",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.avg_utilization.cpu());
     }},
    {"avg_ram_util",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.avg_utilization.ram());
     }},
    {"avg_sto_util",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.avg_utilization.storage());
     }},
    {"avg_intra_net_util",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.avg_intra_net_utilization);
     }},
    {"avg_inter_net_util",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.avg_inter_net_utilization);
     }},
    {"avg_optical_power_w",
     [](const SweepResult& r) {
       return strformat("%.3f", r.metrics.avg_optical_power_w);
     }},
    {"cpu_ram_rtt_ns",
     [](const SweepResult& r) {
       return strformat("%.3f", r.metrics.cpu_ram_latency_ns.count() > 0
                                    ? r.metrics.cpu_ram_latency_ns.mean()
                                    : 0.0);
     }},
    {"sched_s",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.scheduler_exec_seconds);
     }},
    {"sim_s",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.sim_wall_seconds);
     }},
    {"events_per_sec",
     [](const SweepResult& r) {
       return strformat("%.0f", r.metrics.events_per_sec());
     }},
    {"horizon_tu",
     [](const SweepResult& r) {
       return strformat("%.6f", r.metrics.horizon_tu);
     }},
};

/// Keys whose values are emitted as JSON strings rather than numbers.
[[nodiscard]] bool is_string_field(const char* key) {
  const std::string_view k = key;
  return k == "scenario" || k == "workload" || k == "algorithm" ||
         k == "fault_plan" || k == "migration_plan";
}

/// Render a recorded PhaseProfile as a JSON object keyed by phase name
/// (sim/phase_profiler.hpp); the shared shape for sweep_json and
/// scheduler_bench_json `profile` blocks.
void append_profile_json(std::ostringstream& os, const PhaseProfile& p) {
  os << "\"profile\": {";
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    if (i > 0) os << ", ";
    os << '"' << kPhaseNames[i] << "\": " << strformat("%.6f", p.seconds[i]);
  }
  os << "}";
}

}  // namespace

std::string sweep_json(const std::string& benchmark,
                       const std::vector<SweepResult>& results) {
  std::ostringstream os;
  os << "{\n  \"benchmark\": \"" << benchmark << "\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "    {";
    bool first = true;
    for (const CellField& f : kCellFields) {
      if (!first) os << ", ";
      first = false;
      os << '"' << f.key << "\": ";
      if (is_string_field(f.key)) {
        os << '"' << f.render(results[i]) << '"';
      } else {
        os << f.render(results[i]);
      }
    }
    // Phase attribution rides along only when the sweep asked for it
    // (SweepSpec::record_profile), so existing documents are unchanged.
    if (results[i].metrics.profile.recorded) {
      os << ", ";
      append_profile_json(os, results[i].metrics.profile);
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool write_sweep_json(const std::string& path, const std::string& benchmark,
                      const std::vector<SweepResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "write_sweep_json: cannot open " << path << "\n";
    return false;
  }
  out << sweep_json(benchmark, results);
  out.flush();
  if (!out) {
    std::cerr << "write_sweep_json: write to " << path << " failed\n";
    return false;
  }
  return true;
}

std::string sweep_csv(const std::vector<SweepResult>& results) {
  std::ostringstream os;
  CsvWriter writer(os);
  std::vector<std::string> row;
  for (const CellField& f : kCellFields) row.emplace_back(f.key);
  writer.write_row(row);
  for (const SweepResult& r : results) {
    row.clear();
    for (const CellField& f : kCellFields) row.push_back(f.render(r));
    writer.write_row(row);
  }
  return os.str();
}

bool write_sweep_csv(const std::string& path,
                     const std::vector<SweepResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "write_sweep_csv: cannot open " << path << "\n";
    return false;
  }
  out << sweep_csv(results);
  out.flush();
  if (!out) {
    std::cerr << "write_sweep_csv: write to " << path << " failed\n";
    return false;
  }
  return true;
}

std::vector<SchedulerBenchEntry> scheduler_bench_entries(
    const std::vector<SweepResult>& results) {
  std::vector<SchedulerBenchEntry> entries;
  entries.reserve(results.size());
  for (const SweepResult& r : results) {
    if (r.latency_ns.empty() && r.metrics.total_vms > 0) {
      throw std::invalid_argument(
          "scheduler_bench_entries: sweep ran without record_latency");
    }
    SchedulerBenchEntry e;
    e.workload = r.metrics.workload;
    e.algorithm = r.metrics.algorithm;
    e.total_vms = r.metrics.total_vms;
    e.placed = r.metrics.placed;
    e.dropped = r.metrics.dropped;
    e.inter_rack = r.metrics.inter_rack_placements;
    e.sched_s = r.metrics.scheduler_exec_seconds;
    e.placements_per_sec =
        e.sched_s > 0.0
            ? static_cast<double>(r.metrics.total_vms) / e.sched_s
            : 0.0;
    e.sim_s = r.metrics.sim_wall_seconds;
    e.events_per_sec = r.metrics.events_per_sec();
    e.profile = r.metrics.profile;
    if (!r.latency_ns.empty()) {
      // Log-scale bins: resolution is relative (~1/16 of an octave), so the
      // percentiles stay meaningful no matter how many samples pile into
      // the distribution's tail (the old fixed-width 1000-bin histogram
      // degenerated to p50 == p99 once 5M+ samples shared one bin).
      Log2Histogram h;
      for (double ns : r.latency_ns) h.add(ns);
      e.p50_ns = h.percentile(50.0);
      e.p99_ns = h.percentile(99.0);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string scheduler_bench_json(const std::string& benchmark,
                                 const std::vector<SchedulerBenchEntry>& entries) {
  std::ostringstream os;
  os << "{\n  \"benchmark\": \"" << benchmark << "\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SchedulerBenchEntry& e = entries[i];
    os << "    {\"workload\": \"" << e.workload << "\", \"algorithm\": \""
       << e.algorithm << "\", \"total_vms\": " << e.total_vms
       << ", \"placed\": " << e.placed << ", \"dropped\": " << e.dropped
       << ", \"inter_rack\": " << e.inter_rack << ", \"sched_s\": "
       << strformat("%.6f", e.sched_s) << ", \"placements_per_sec\": "
       << strformat("%.0f", e.placements_per_sec) << ", \"sim_s\": "
       << strformat("%.6f", e.sim_s) << ", \"events_per_sec\": "
       << strformat("%.0f", e.events_per_sec) << ", \"p50_ns\": "
       << strformat("%.0f", e.p50_ns) << ", \"p99_ns\": "
       << strformat("%.0f", e.p99_ns);
    if (e.source_s >= 0.0) {
      os << ", \"source_s\": " << strformat("%.6f", e.source_s);
    }
    if (e.peak_rss_mb >= 0.0) {
      os << ", \"peak_rss_mb\": " << strformat("%.1f", e.peak_rss_mb);
    }
    if (e.profile.recorded) {
      os << ", ";
      append_profile_json(os, e.profile);
    }
    os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string consume_emit_json_flag(int& argc, char** argv,
                                   const char* default_path) {
  std::string path;
  int out = 1;
  constexpr std::string_view kPrefix = "--emit_json=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--emit_json") {
      path = default_path;
    } else if (arg.starts_with(kPrefix)) {
      path = arg.substr(kPrefix.size());
      if (path.empty()) path = default_path;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

bool write_scheduler_bench_json(const std::string& path,
                                const std::string& benchmark,
                                const std::vector<SchedulerBenchEntry>& entries) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "write_scheduler_bench_json: cannot open " << path << "\n";
    return false;
  }
  out << scheduler_bench_json(benchmark, entries);
  out.flush();
  if (!out) {
    std::cerr << "write_scheduler_bench_json: write to " << path << " failed\n";
    return false;
  }
  return true;
}

}  // namespace risa::sim
