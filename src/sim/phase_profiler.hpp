// Phase-attributed engine profiler (DESIGN.md §12): answers "where did the
// wall time go" for every run that asks, so perf work ships with an
// attribution table instead of guesses.
//
// The engine brackets its event-loop phases with cycle-clock spans
// (common/cycle_clock.hpp CycleSpanStack): raw TSC reads accumulated per
// phase with exclusive nesting (an inner span pauses its enclosing one), so
// the phase times always sum to <= sim_wall_seconds.  Ticks convert to
// seconds with the same end-of-run calibration scheduler_exec_seconds uses.
//
// Compiled in always, enabled per run (Engine::set_profiling /
// SweepSpec::record_profile): disabled, every hook is one predictable
// branch; enabled, each instrumented span costs two TSC reads per entry --
// except placement, which is carved out of the admission span for free by
// reusing the reads the run already makes for scheduler_exec_seconds
// (CycleSpanStack::carve).  Sub-span work cheaper than a TSC pair (the
// per-arrival ledger charge, the ladder's O(1) push) deliberately rides in
// its enclosing phase rather than being measured at ~2x its own cost.
// The result is measurement, not simulation -- it is never hashed into the
// metrics fingerprint and never serialized into checkpoints, exactly like
// sim_wall_seconds.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "common/cycle_clock.hpp"

namespace risa::sim {

/// The engine's instrumented event-loop phases.
enum class Phase : std::size_t {
  SourcePull = 0,  ///< arrival intake: ArrivalSource::next_batch + validation
  Admission,       ///< admission windows: try_place, state updates, ledger
  Placement,       ///< Allocator::try_place (carved; == scheduler_exec span)
  Calendar,        ///< LadderCalendar dequeue: merge query + tier surfacing
  Settlement,      ///< departure windows, fault kills, migration sweeps
  Ledger,          ///< PowerLedger lifecycle settlements (refunds, migrations)
  Checkpoint,      ///< checkpoint serialization + emit
  Merge,           ///< merge-loop residual: ring bookkeeping, event dispatch
};

inline constexpr std::size_t kNumPhases = 8;

/// CycleSpanStack slot index for a phase.
[[nodiscard]] inline constexpr std::size_t phase_slot(Phase p) noexcept {
  return static_cast<std::size_t>(p);
}

inline constexpr std::array<std::string_view, kNumPhases> kPhaseNames = {
    "source_pull", "admission",  "placement", "calendar",
    "settlement",  "ledger",     "checkpoint", "merge"};

/// Per-phase wall seconds for one run.  `recorded` distinguishes "profiling
/// was off" from an all-zero profile of a degenerate run.
struct PhaseProfile {
  std::array<double, kNumPhases> seconds{};
  bool recorded = false;

  [[nodiscard]] double total() const noexcept {
    double t = 0.0;
    for (const double s : seconds) t += s;
    return t;
  }
  [[nodiscard]] double operator[](Phase p) const noexcept {
    return seconds[static_cast<std::size_t>(p)];
  }
};

/// The engine's in-run accumulator: one slot per phase, nesting depth
/// bounded by the deepest hook chain (merge > settlement > ledger is
/// depth 3; 8 leaves headroom).  The Merge span wraps the whole event
/// loop and every other span nests inside it, so with exclusive
/// attribution Merge captures exactly the loop's residual scaffolding --
/// the ring/dispatch bookkeeping that was unattributed before §13.
using PhaseTimer = CycleSpanStack<kNumPhases, 8>;

inline void profile_from_ticks(PhaseProfile& out, const PhaseTimer& timer,
                               double seconds_per_tick) noexcept {
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    out.seconds[p] = static_cast<double>(timer.ticks(p)) * seconds_per_tick;
  }
  out.recorded = true;
}

}  // namespace risa::sim
