#include "sim/scenario_io.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

#include "common/string_util.hpp"

namespace risa::sim {

namespace {

/// One registered key: how to read it from / write it into a Scenario.
struct KeyBinding {
  std::string key;
  std::function<void(Scenario&, std::string_view)> set;
  std::function<std::string(const Scenario&)> get;
};

std::string bool_str(bool v) { return v ? "true" : "false"; }

const std::vector<KeyBinding>& bindings() {
  static const std::vector<KeyBinding> kBindings = [] {
    std::vector<KeyBinding> b;
    auto add = [&](std::string key,
                   std::function<void(Scenario&, std::string_view)> set,
                   std::function<std::string(const Scenario&)> get) {
      b.push_back({std::move(key), std::move(set), std::move(get)});
    };

    // --- cluster ----------------------------------------------------------
    add("cluster.racks",
        [](Scenario& s, std::string_view v) {
          s.cluster.racks = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) { return std::to_string(s.cluster.racks); });
    for (ResourceType t : kAllResources) {
      add("cluster.boxes_per_rack." + to_lower(name(t)),
          [t](Scenario& s, std::string_view v) {
            s.cluster.boxes_per_rack[t] =
                static_cast<std::uint32_t>(parse_i64(v));
          },
          [t](const Scenario& s) {
            return std::to_string(s.cluster.boxes_per_rack[t]);
          });
    }
    add("cluster.bricks_per_box",
        [](Scenario& s, std::string_view v) {
          s.cluster.bricks_per_box = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.cluster.bricks_per_box);
        });
    add("cluster.units_per_brick",
        [](Scenario& s, std::string_view v) {
          s.cluster.units_per_brick = parse_i64(v);
        },
        [](const Scenario& s) {
          return std::to_string(s.cluster.units_per_brick);
        });
    add("cluster.cores_per_cpu_unit",
        [](Scenario& s, std::string_view v) {
          s.cluster.unit_scale.cores_per_cpu_unit = parse_i64(v);
        },
        [](const Scenario& s) {
          return std::to_string(s.cluster.unit_scale.cores_per_cpu_unit);
        });
    add("cluster.gb_per_ram_unit",
        [](Scenario& s, std::string_view v) {
          s.cluster.unit_scale.mb_per_ram_unit = gb(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gb(s.cluster.unit_scale.mb_per_ram_unit);
          return os.str();
        });
    add("cluster.gb_per_storage_unit",
        [](Scenario& s, std::string_view v) {
          s.cluster.unit_scale.mb_per_storage_unit = gb(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gb(s.cluster.unit_scale.mb_per_storage_unit);
          return os.str();
        });

    // --- fabric -------------------------------------------------------------
    add("fabric.links_per_box",
        [](Scenario& s, std::string_view v) {
          s.fabric.links_per_box = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.links_per_box);
        });
    add("fabric.links_per_rack",
        [](Scenario& s, std::string_view v) {
          s.fabric.links_per_rack = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.links_per_rack);
        });
    add("fabric.link_capacity_gbps",
        [](Scenario& s, std::string_view v) {
          s.fabric.link_capacity = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.fabric.link_capacity);
          return os.str();
        });
    add("fabric.channel_rate_gbps",
        [](Scenario& s, std::string_view v) {
          s.fabric.channel_rate = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.fabric.channel_rate);
          return os.str();
        });
    add("fabric.box_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.box_switch_ports = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.box_switch_ports);
        });
    add("fabric.rack_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.rack_switch_ports =
              static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.rack_switch_ports);
        });
    add("fabric.inter_rack_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.inter_rack_switch_ports =
              static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.inter_rack_switch_ports);
        });
    add("fabric.racks_per_pod",
        [](Scenario& s, std::string_view v) {
          s.fabric.racks_per_pod = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.racks_per_pod);
        });
    add("fabric.links_per_pod",
        [](Scenario& s, std::string_view v) {
          s.fabric.links_per_pod = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.links_per_pod);
        });
    add("fabric.pod_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.pod_switch_ports =
              static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.pod_switch_ports);
        });

    // --- bandwidth (Table 2) -------------------------------------------------
    add("bandwidth.cpu_ram_gbps_per_unit",
        [](Scenario& s, std::string_view v) {
          s.bandwidth.cpu_ram_per_unit = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.bandwidth.cpu_ram_per_unit);
          return os.str();
        });
    add("bandwidth.ram_sto_gbps_per_unit",
        [](Scenario& s, std::string_view v) {
          s.bandwidth.ram_sto_per_unit = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.bandwidth.ram_sto_per_unit);
          return os.str();
        });
    auto basis_from = [](std::string_view v) {
      const std::string key = to_lower(trim(v));
      if (key == "cpu-units") return net::BandwidthBasis::CpuUnits;
      if (key == "ram-units") return net::BandwidthBasis::RamUnits;
      if (key == "sto-units") return net::BandwidthBasis::StorageUnits;
      throw std::runtime_error("scenario: bad bandwidth basis '" +
                               std::string(v) + "'");
    };
    add("bandwidth.cpu_ram_basis",
        [basis_from](Scenario& s, std::string_view v) {
          s.bandwidth.cpu_ram_basis = basis_from(v);
        },
        [](const Scenario& s) {
          return std::string(net::name(s.bandwidth.cpu_ram_basis));
        });
    add("bandwidth.ram_sto_basis",
        [basis_from](Scenario& s, std::string_view v) {
          s.bandwidth.ram_sto_basis = basis_from(v);
        },
        [](const Scenario& s) {
          return std::string(net::name(s.bandwidth.ram_sto_basis));
        });

    // --- photonics (SS3.2) -----------------------------------------------------
    add("photonics.alpha",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.mrr.alpha = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.mrr.alpha;
          return os.str();
        });
    add("photonics.trim_power_mw",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.mrr.trim_power_w = parse_f64(v) * 1e-3;
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.mrr.trim_power_w * 1e3;
          return os.str();
        });
    add("photonics.switch_power_mw",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.mrr.switch_power_w = parse_f64(v) * 1e-3;
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.mrr.switch_power_w * 1e3;
          return os.str();
        });
    add("photonics.transceiver_pj_per_bit",
        [](Scenario& s, std::string_view v) {
          s.photonics.transceiver.energy_per_bit_j = parse_f64(v) * 1e-12;
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.transceiver.energy_per_bit_j * 1e12;
          return os.str();
        });
    add("photonics.seconds_per_time_unit",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.seconds_per_time_unit = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.seconds_per_time_unit;
          return os.str();
        });

    // --- latency (SS5.2) -------------------------------------------------------
    add("latency.intra_rack_ns",
        [](Scenario& s, std::string_view v) {
          s.latency.intra_rack_ns = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.latency.intra_rack_ns;
          return os.str();
        });
    add("latency.inter_rack_ns",
        [](Scenario& s, std::string_view v) {
          s.latency.inter_rack_ns = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.latency.inter_rack_ns;
          return os.str();
        });
    add("latency.inter_pod_ns",
        [](Scenario& s, std::string_view v) {
          s.latency.inter_pod_ns = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.latency.inter_pod_ns;
          return os.str();
        });

    // --- allocator -------------------------------------------------------------
    add("allocator.companion",
        [](Scenario& s, std::string_view v) {
          const std::string key = to_lower(trim(v));
          if (key == "global-order") {
            s.allocator.companion = core::CompanionSearch::GlobalOrder;
          } else if (key == "anchor-rack-first") {
            s.allocator.companion = core::CompanionSearch::AnchorRackFirst;
          } else {
            throw std::runtime_error("scenario: bad companion search '" +
                                     std::string(v) + "'");
          }
        },
        [](const Scenario& s) {
          return s.allocator.companion == core::CompanionSearch::GlobalOrder
                     ? "global-order"
                     : "anchor-rack-first";
        });
    (void)bool_str;
    return b;
  }();
  return kBindings;
}

}  // namespace

Scenario load_scenario(std::istream& is) {
  Scenario scenario = Scenario::paper_defaults();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("scenario line " + std::to_string(line_no) +
                               ": expected 'key = value'");
    }
    const std::string key{trim(trimmed.substr(0, eq))};
    const std::string_view value = trim(trimmed.substr(eq + 1));
    bool found = false;
    for (const KeyBinding& binding : bindings()) {
      if (binding.key == key) {
        try {
          binding.set(scenario, value);
        } catch (const std::exception& e) {
          throw std::runtime_error("scenario line " + std::to_string(line_no) +
                                   " (" + key + "): " + e.what());
        }
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("scenario line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
  }
  scenario.validate();
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("scenario: cannot open " + path);
  return load_scenario(is);
}

void save_scenario(std::ostream& os, const Scenario& scenario) {
  os << "# RISA scenario (generated; see sim/scenario_io.hpp)\n";
  for (const KeyBinding& binding : bindings()) {
    os << binding.key << " = " << binding.get(scenario) << '\n';
  }
}

void save_scenario_file(const std::string& path, const Scenario& scenario) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("scenario: cannot open " + path);
  save_scenario(os, scenario);
  if (!os) throw std::runtime_error("scenario: write failed: " + path);
}

}  // namespace risa::sim
