#include "sim/scenario_io.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

#include "common/string_util.hpp"

namespace risa::sim {

namespace {

/// One registered key: how to read it from / write it into a Scenario.
struct KeyBinding {
  std::string key;
  std::function<void(Scenario&, std::string_view)> set;
  std::function<std::string(const Scenario&)> get;
};

std::string bool_str(bool v) { return v ? "true" : "false"; }

const std::vector<KeyBinding>& bindings() {
  static const std::vector<KeyBinding> kBindings = [] {
    std::vector<KeyBinding> b;
    auto add = [&](std::string key,
                   std::function<void(Scenario&, std::string_view)> set,
                   std::function<std::string(const Scenario&)> get) {
      b.push_back({std::move(key), std::move(set), std::move(get)});
    };

    // --- cluster ----------------------------------------------------------
    add("cluster.racks",
        [](Scenario& s, std::string_view v) {
          s.cluster.racks = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) { return std::to_string(s.cluster.racks); });
    for (ResourceType t : kAllResources) {
      add("cluster.boxes_per_rack." + to_lower(name(t)),
          [t](Scenario& s, std::string_view v) {
            s.cluster.boxes_per_rack[t] =
                static_cast<std::uint32_t>(parse_i64(v));
          },
          [t](const Scenario& s) {
            return std::to_string(s.cluster.boxes_per_rack[t]);
          });
    }
    add("cluster.bricks_per_box",
        [](Scenario& s, std::string_view v) {
          s.cluster.bricks_per_box = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.cluster.bricks_per_box);
        });
    add("cluster.units_per_brick",
        [](Scenario& s, std::string_view v) {
          s.cluster.units_per_brick = parse_i64(v);
        },
        [](const Scenario& s) {
          return std::to_string(s.cluster.units_per_brick);
        });
    add("cluster.cores_per_cpu_unit",
        [](Scenario& s, std::string_view v) {
          s.cluster.unit_scale.cores_per_cpu_unit = parse_i64(v);
        },
        [](const Scenario& s) {
          return std::to_string(s.cluster.unit_scale.cores_per_cpu_unit);
        });
    add("cluster.gb_per_ram_unit",
        [](Scenario& s, std::string_view v) {
          s.cluster.unit_scale.mb_per_ram_unit = gb(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gb(s.cluster.unit_scale.mb_per_ram_unit);
          return os.str();
        });
    add("cluster.gb_per_storage_unit",
        [](Scenario& s, std::string_view v) {
          s.cluster.unit_scale.mb_per_storage_unit = gb(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gb(s.cluster.unit_scale.mb_per_storage_unit);
          return os.str();
        });

    // --- fabric -------------------------------------------------------------
    add("fabric.links_per_box",
        [](Scenario& s, std::string_view v) {
          s.fabric.links_per_box = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.links_per_box);
        });
    add("fabric.links_per_rack",
        [](Scenario& s, std::string_view v) {
          s.fabric.links_per_rack = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.links_per_rack);
        });
    add("fabric.link_capacity_gbps",
        [](Scenario& s, std::string_view v) {
          s.fabric.link_capacity = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.fabric.link_capacity);
          return os.str();
        });
    add("fabric.channel_rate_gbps",
        [](Scenario& s, std::string_view v) {
          s.fabric.channel_rate = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.fabric.channel_rate);
          return os.str();
        });
    add("fabric.box_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.box_switch_ports = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.box_switch_ports);
        });
    add("fabric.rack_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.rack_switch_ports =
              static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.rack_switch_ports);
        });
    add("fabric.inter_rack_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.inter_rack_switch_ports =
              static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.inter_rack_switch_ports);
        });
    add("fabric.racks_per_pod",
        [](Scenario& s, std::string_view v) {
          s.fabric.racks_per_pod = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.racks_per_pod);
        });
    add("fabric.links_per_pod",
        [](Scenario& s, std::string_view v) {
          s.fabric.links_per_pod = static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.links_per_pod);
        });
    add("fabric.pod_switch_ports",
        [](Scenario& s, std::string_view v) {
          s.fabric.pod_switch_ports =
              static_cast<std::uint32_t>(parse_i64(v));
        },
        [](const Scenario& s) {
          return std::to_string(s.fabric.pod_switch_ports);
        });

    // --- bandwidth (Table 2) -------------------------------------------------
    add("bandwidth.cpu_ram_gbps_per_unit",
        [](Scenario& s, std::string_view v) {
          s.bandwidth.cpu_ram_per_unit = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.bandwidth.cpu_ram_per_unit);
          return os.str();
        });
    add("bandwidth.ram_sto_gbps_per_unit",
        [](Scenario& s, std::string_view v) {
          s.bandwidth.ram_sto_per_unit = gbps(parse_f64(v));
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << to_gbps(s.bandwidth.ram_sto_per_unit);
          return os.str();
        });
    auto basis_from = [](std::string_view v) {
      const std::string key = to_lower(trim(v));
      if (key == "cpu-units") return net::BandwidthBasis::CpuUnits;
      if (key == "ram-units") return net::BandwidthBasis::RamUnits;
      if (key == "sto-units") return net::BandwidthBasis::StorageUnits;
      throw std::runtime_error("scenario: bad bandwidth basis '" +
                               std::string(v) + "'");
    };
    add("bandwidth.cpu_ram_basis",
        [basis_from](Scenario& s, std::string_view v) {
          s.bandwidth.cpu_ram_basis = basis_from(v);
        },
        [](const Scenario& s) {
          return std::string(net::name(s.bandwidth.cpu_ram_basis));
        });
    add("bandwidth.ram_sto_basis",
        [basis_from](Scenario& s, std::string_view v) {
          s.bandwidth.ram_sto_basis = basis_from(v);
        },
        [](const Scenario& s) {
          return std::string(net::name(s.bandwidth.ram_sto_basis));
        });

    // --- photonics (SS3.2) -----------------------------------------------------
    add("photonics.alpha",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.mrr.alpha = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.mrr.alpha;
          return os.str();
        });
    add("photonics.trim_power_mw",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.mrr.trim_power_w = parse_f64(v) * 1e-3;
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.mrr.trim_power_w * 1e3;
          return os.str();
        });
    add("photonics.switch_power_mw",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.mrr.switch_power_w = parse_f64(v) * 1e-3;
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.mrr.switch_power_w * 1e3;
          return os.str();
        });
    add("photonics.transceiver_pj_per_bit",
        [](Scenario& s, std::string_view v) {
          s.photonics.transceiver.energy_per_bit_j = parse_f64(v) * 1e-12;
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.transceiver.energy_per_bit_j * 1e12;
          return os.str();
        });
    add("photonics.seconds_per_time_unit",
        [](Scenario& s, std::string_view v) {
          s.photonics.switch_energy.seconds_per_time_unit = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.photonics.switch_energy.seconds_per_time_unit;
          return os.str();
        });

    // --- latency (SS5.2) -------------------------------------------------------
    add("latency.intra_rack_ns",
        [](Scenario& s, std::string_view v) {
          s.latency.intra_rack_ns = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.latency.intra_rack_ns;
          return os.str();
        });
    add("latency.inter_rack_ns",
        [](Scenario& s, std::string_view v) {
          s.latency.inter_rack_ns = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.latency.inter_rack_ns;
          return os.str();
        });
    add("latency.inter_pod_ns",
        [](Scenario& s, std::string_view v) {
          s.latency.inter_pod_ns = parse_f64(v);
        },
        [](const Scenario& s) {
          std::ostringstream os;
          os << s.latency.inter_pod_ns;
          return os.str();
        });

    // --- allocator -------------------------------------------------------------
    add("allocator.companion",
        [](Scenario& s, std::string_view v) {
          const std::string key = to_lower(trim(v));
          if (key == "global-order") {
            s.allocator.companion = core::CompanionSearch::GlobalOrder;
          } else if (key == "anchor-rack-first") {
            s.allocator.companion = core::CompanionSearch::AnchorRackFirst;
          } else {
            throw std::runtime_error("scenario: bad companion search '" +
                                     std::string(v) + "'");
          }
        },
        [](const Scenario& s) {
          return s.allocator.companion == core::CompanionSearch::GlobalOrder
                     ? "global-order"
                     : "anchor-rack-first";
        });
    (void)bool_str;
    return b;
  }();
  return kBindings;
}

}  // namespace

Scenario load_scenario(std::istream& is) {
  Scenario scenario = Scenario::paper_defaults();
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("scenario line " + std::to_string(line_no) +
                               ": expected 'key = value'");
    }
    const std::string key{trim(trimmed.substr(0, eq))};
    const std::string_view value = trim(trimmed.substr(eq + 1));
    bool found = false;
    for (const KeyBinding& binding : bindings()) {
      if (binding.key == key) {
        try {
          binding.set(scenario, value);
        } catch (const std::exception& e) {
          throw std::runtime_error("scenario line " + std::to_string(line_no) +
                                   " (" + key + "): " + e.what());
        }
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("scenario line " + std::to_string(line_no) +
                               ": unknown key '" + key + "'");
    }
  }
  scenario.validate();
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("scenario: cannot open " + path);
  return load_scenario(is);
}

void save_scenario(std::ostream& os, const Scenario& scenario) {
  os << "# RISA scenario (generated; see sim/scenario_io.hpp)\n";
  for (const KeyBinding& binding : bindings()) {
    os << binding.key << " = " << binding.get(scenario) << '\n';
  }
}

void save_scenario_file(const std::string& path, const Scenario& scenario) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("scenario: cannot open " + path);
  save_scenario(os, scenario);
  if (!os) throw std::runtime_error("scenario: write failed: " + path);
}

// --- FaultPlan JSON ---------------------------------------------------------

namespace {

/// Render a double so it parses back to the same bits (%.17g is exact for
/// IEEE-754 binary64) while keeping round values short.
std::string json_number(double v) {
  std::string s = strformat("%.17g", v);
  const std::string shorter = strformat("%.15g", v);
  if (std::strtod(shorter.c_str(), nullptr) == v) return shorter;
  return s;
}

/// Minimal cursor-based parser for the fixed FaultPlan/MigrationPlan
/// schemas.  Not a general JSON library: it understands exactly the
/// objects, arrays, strings, numbers and booleans the schemas use, and
/// treats everything unknown as an error with position context.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view s, const char* what = "fault plan")
      : s_(s), what_(what) {}

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return i_ >= s_.size();
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') fail("escape sequences not supported");
      out.push_back(s_[i_++]);
    }
    if (i_ >= s_.size()) fail("unterminated string");
    ++i_;  // closing quote
    return out;
  }

  [[nodiscard]] double parse_number() {
    skip_ws();
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected a number");
    const std::string token{s_.substr(start, i_ - start)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return v;
  }

  /// Iterate "key": value members of an object whose '{' is next.
  /// `member` is called with each key and must consume the value.
  template <typename Fn>
  void parse_object(Fn&& member) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = parse_string();
      expect(':');
      member(key);
    } while (consume(','));
    expect('}');
  }

  /// `true` / `false` literal.
  [[nodiscard]] bool parse_bool() {
    skip_ws();
    if (s_.substr(i_, 4) == "true") {
      i_ += 4;
      return true;
    }
    if (s_.substr(i_, 5) == "false") {
      i_ += 5;
      return false;
    }
    fail("expected true or false");
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(std::string(what_) + " JSON (offset " +
                             std::to_string(i_) + "): " + msg);
  }

 private:
  std::string_view s_;
  const char* what_;
  std::size_t i_ = 0;
};

std::uint64_t as_u64(JsonCursor& c, double v, const char* what) {
  // Range-check BEFORE the cast: casting an out-of-range double to uint64
  // is undefined behavior, and !(v >= 0) also rejects NaN.  2^64 is
  // exactly representable, so the upper bound is a plain compare.
  constexpr double kTwoPow64 = 18446744073709551616.0;
  if (!(v >= 0.0) || v >= kTwoPow64 ||
      v != static_cast<double>(static_cast<std::uint64_t>(v))) {
    c.fail(std::string(what) + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

std::uint32_t as_u32(JsonCursor& c, double v, const char* what) {
  const std::uint64_t u = as_u64(c, v, what);
  if (u > 0xffffffffull) {
    c.fail(std::string(what) + " exceeds the 32-bit range");
  }
  return static_cast<std::uint32_t>(u);
}

FaultAction parse_action(JsonCursor& c) {
  FaultAction a;
  bool kind_seen = false;
  c.parse_object([&](const std::string& key) {
    if (key == "action") {
      const std::string kind = c.parse_string();
      if (kind == "fail") {
        a.kind = FaultAction::Kind::Fail;
      } else if (kind == "repair") {
        a.kind = FaultAction::Kind::Repair;
      } else if (kind == "link-fail") {
        a.kind = FaultAction::Kind::LinkFail;
      } else if (kind == "link-repair") {
        a.kind = FaultAction::Kind::LinkRepair;
      } else {
        c.fail("unknown action '" + kind +
               "' (fail | repair | link-fail | link-repair)");
      }
      kind_seen = true;
    } else if (key == "at_time") {
      a.at_time = c.parse_number();
    } else if (key == "after_admissions") {
      a.after_admissions =
          static_cast<std::int64_t>(as_u64(c, c.parse_number(), "after_admissions"));
    } else if (key == "box") {
      a.box = as_u32(c, c.parse_number(), "box");
    } else if (key == "random_boxes") {
      a.random_boxes = as_u32(c, c.parse_number(), "random_boxes");
    } else if (key == "link") {
      a.link = as_u32(c, c.parse_number(), "link");
    } else if (key == "random_links") {
      a.random_links = as_u32(c, c.parse_number(), "random_links");
    } else {
      c.fail("unknown action key '" + key + "'");
    }
  });
  if (!kind_seen) c.fail("action object missing \"action\"");
  return a;
}

const char* action_name(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::Fail: return "fail";
    case FaultAction::Kind::Repair: return "repair";
    case FaultAction::Kind::LinkFail: return "link-fail";
    case FaultAction::Kind::LinkRepair: return "link-repair";
  }
  return "?";
}

}  // namespace

std::string fault_plan_json(const FaultPlan& plan) {
  std::ostringstream os;
  os << "{\n  \"seed\": " << plan.seed << ",\n  \"retry\": {\"max_attempts\": "
     << plan.retry.max_attempts << ", \"delay_tu\": "
     << json_number(plan.retry.delay_tu) << "},\n  \"actions\": [";
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    const FaultAction& a = plan.actions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"action\": \""
       << action_name(a.kind) << '"';
    if (a.time_triggered()) {
      os << ", \"at_time\": " << json_number(a.at_time);
    } else {
      os << ", \"after_admissions\": " << a.after_admissions;
    }
    if (a.targets_links()) {
      if (a.link != FaultAction::kNoLink) {
        os << ", \"link\": " << a.link;
      } else {
        os << ", \"random_links\": " << a.random_links;
      }
    } else if (a.box != FaultAction::kNoBox) {
      os << ", \"box\": " << a.box;
    } else {
      os << ", \"random_boxes\": " << a.random_boxes;
    }
    os << '}';
  }
  os << (plan.actions.empty() ? "]\n" : "\n  ]\n") << "}\n";
  return os.str();
}

FaultPlan parse_fault_plan_json(std::string_view json) {
  JsonCursor c(json);
  FaultPlan plan;
  c.parse_object([&](const std::string& key) {
    if (key == "seed") {
      plan.seed = as_u64(c, c.parse_number(), "seed");
    } else if (key == "retry") {
      c.parse_object([&](const std::string& rkey) {
        if (rkey == "max_attempts") {
          plan.retry.max_attempts =
              as_u32(c, c.parse_number(), "max_attempts");
        } else if (rkey == "delay_tu") {
          plan.retry.delay_tu = c.parse_number();
        } else {
          c.fail("unknown retry key '" + rkey + "'");
        }
      });
    } else if (key == "actions") {
      c.expect('[');
      if (!c.consume(']')) {
        do {
          plan.actions.push_back(parse_action(c));
        } while (c.consume(','));
        c.expect(']');
      }
    } else {
      c.fail("unknown key '" + key + "'");
    }
  });
  if (!c.at_end()) c.fail("trailing content after plan object");
  try {
    plan.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("fault plan JSON: ") + e.what());
  }
  return plan;
}

FaultPlan load_fault_plan_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("fault plan: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_fault_plan_json(buf.str());
}

void save_fault_plan_file(const std::string& path, const FaultPlan& plan) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("fault plan: cannot open " + path);
  os << fault_plan_json(plan);
  if (!os) throw std::runtime_error("fault plan: write failed: " + path);
}

// --- MigrationPlan JSON -----------------------------------------------------

std::string migration_plan_json(const MigrationPlan& plan) {
  std::ostringstream os;
  os << "{\n  \"period_tu\": " << json_number(plan.period_tu)
     << ",\n  \"first_sweep_at\": " << json_number(plan.first_sweep_at)
     << ",\n  \"min_interrack_fraction\": "
     << json_number(plan.min_interrack_fraction)
     << ",\n  \"per_sweep_budget\": " << plan.per_sweep_budget
     << ",\n  \"total_budget\": " << plan.total_budget
     << ",\n  \"fixed_cost_tu\": " << json_number(plan.fixed_cost_tu)
     << ",\n  \"charge_transfer\": "
     << (plan.charge_transfer ? "true" : "false")
     << ",\n  \"only_if_improves\": "
     << (plan.only_if_improves ? "true" : "false")
     << ",\n  \"skip_while_degraded\": "
     << (plan.skip_while_degraded ? "true" : "false") << "\n}\n";
  return os.str();
}

MigrationPlan parse_migration_plan_json(std::string_view json) {
  JsonCursor c(json, "migration plan");
  MigrationPlan plan;
  c.parse_object([&](const std::string& key) {
    if (key == "period_tu") {
      plan.period_tu = c.parse_number();
    } else if (key == "first_sweep_at") {
      plan.first_sweep_at = c.parse_number();
    } else if (key == "min_interrack_fraction") {
      plan.min_interrack_fraction = c.parse_number();
    } else if (key == "per_sweep_budget") {
      plan.per_sweep_budget = as_u32(c, c.parse_number(), "per_sweep_budget");
    } else if (key == "total_budget") {
      plan.total_budget = as_u32(c, c.parse_number(), "total_budget");
    } else if (key == "fixed_cost_tu") {
      plan.fixed_cost_tu = c.parse_number();
    } else if (key == "charge_transfer") {
      plan.charge_transfer = c.parse_bool();
    } else if (key == "only_if_improves") {
      plan.only_if_improves = c.parse_bool();
    } else if (key == "skip_while_degraded") {
      plan.skip_while_degraded = c.parse_bool();
    } else {
      c.fail("unknown key '" + key + "'");
    }
  });
  if (!c.at_end()) c.fail("trailing content after plan object");
  try {
    plan.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("migration plan JSON: ") + e.what());
  }
  return plan;
}

MigrationPlan load_migration_plan_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("migration plan: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_migration_plan_json(buf.str());
}

void save_migration_plan_file(const std::string& path,
                              const MigrationPlan& plan) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("migration plan: cannot open " + path);
  os << migration_plan_json(plan);
  if (!os) throw std::runtime_error("migration plan: write failed: " + path);
}

}  // namespace risa::sim
