// Declarative live-migration / defragmentation scripting for one
// simulation run (DESIGN.md §9).
//
// RISA minimizes inter-rack allocations at admission time, but churn and
// faults fragment the cluster afterwards: a VM requeued while its home
// rack was degraded keeps paying inter-rack circuit power for its whole
// remaining lifetime.  A MigrationPlan schedules periodic defragmentation
// sweeps on the merged DES stream (des/lifecycle.hpp, MIGRATE events):
// each sweep picks the worst-spread live VMs and re-places them through
// the normal allocator path with their current boxes excluded, retiring
// the old circuits and opening new ones atomically at the sweep instant.
//
// The plan is data, not behavior -- like FaultPlan it rides Scenario /
// Engine::set_migration_plan / the sweep axis, so migration scenarios
// inherit the bit-exact thread-count determinism contract.  An empty plan
// (the default) reproduces the fault-only engine bit-for-bit.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace risa::sim {

struct MigrationPlan {
  static constexpr std::uint32_t kUnlimited = 0xffffffffu;

  /// Sweep cadence in simulated time units; <= 0 disables the plan.
  double period_tu = 0.0;
  /// Time of the first sweep; <= 0 schedules it one period in.
  double first_sweep_at = 0.0;
  /// A sweep acts only when at least this fraction of live VMs is spread
  /// across racks (0 = always act).  The threshold trigger of the plan:
  /// cheap periodic events that no-op until fragmentation builds up.
  double min_interrack_fraction = 0.0;
  /// Worst-spread candidates attempted per sweep event (the per-event
  /// migration budget).  0 disables the plan.
  std::uint32_t per_sweep_budget = 1;
  /// Total migrations committed per run (kUnlimited = no cap); 0 disables.
  std::uint32_t total_budget = kUnlimited;
  /// Fixed per-migration cost in time units, added to the transfer time.
  /// During the cost window the VM is charged on BOTH placements (the old
  /// circuits stay powered while state drains over the new ones).
  double fixed_cost_tu = 0.0;
  /// Add the state-transfer time to the cost window: the VM's RAM image
  /// moved over its CPU-RAM circuit bandwidth (Table 2 demand model).
  bool charge_transfer = true;
  /// Commit a re-placement only when it is strictly less spread than the
  /// current one; otherwise roll it back untouched.  Off = always move --
  /// a stress mode that can re-spread VMs, which also voids the
  /// "inter_rack_placements - interrack_vms_recovered" net-fraction
  /// reading (see sim/metrics.hpp).  Rarely useful for power.
  bool only_if_improves = true;
  /// Skip sweeps while the cluster is degraded (>= 1 box or link down):
  /// wait for repairs instead of defragmenting into a crippled fabric.
  bool skip_while_degraded = false;

  /// True when the plan changes nothing: the engine's empty-plan fast path
  /// is bit-identical to the fault-only (PR 4) event loop.
  [[nodiscard]] bool empty() const noexcept {
    return period_tu <= 0.0 || per_sweep_budget == 0 || total_budget == 0;
  }

  /// Absolute time of the first MIGRATE event of a nonempty plan.
  [[nodiscard]] double first_sweep_time() const noexcept {
    return first_sweep_at > 0.0 ? first_sweep_at : period_tu;
  }

  void validate() const {
    if (period_tu < 0.0) {
      throw std::invalid_argument("MigrationPlan: negative period");
    }
    if (first_sweep_at < 0.0) {
      throw std::invalid_argument("MigrationPlan: negative first_sweep_at");
    }
    if (fixed_cost_tu < 0.0) {
      throw std::invalid_argument("MigrationPlan: negative fixed cost");
    }
    if (min_interrack_fraction < 0.0 || min_interrack_fraction > 1.0) {
      throw std::invalid_argument(
          "MigrationPlan: min_interrack_fraction outside [0, 1]");
    }
  }

  friend bool operator==(const MigrationPlan&, const MigrationPlan&) = default;
};

}  // namespace risa::sim
