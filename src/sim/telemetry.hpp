// Run telemetry: Perfetto-compatible lifecycle tracing + a unified
// MetricsRegistry over the engine's event loop (DESIGN.md §14).
//
// A Telemetry object bundles one TraceWriter and one MetricsRegistry
// and exposes the narrow hook surface the engine calls from sites that
// already branch (window close, fault dispatch, drop/kill/requeue).
// The contract mirrors every prior observability layer:
//
//   * Disabled costs nothing.  The engine holds a `Telemetry*`; every
//     hook sits behind `if (tel != nullptr)` on branches the loop takes
//     anyway.  No TSC reads, no stores, no allocation on the disabled
//     path.
//
//   * Invisible when enabled.  Hooks only *read* simulation state;
//     metrics fingerprints are byte-identical with tracing on or off,
//     and telemetry state is never checkpointed -- resume re-arms the
//     sampler at the restored sim time (begin_run) and continues.
//
//   * Deterministic given a deterministic run.  Sim-time tracks derive
//     every ts from SimTime (1 tu -> 1 us); only the synthetic phase
//     track (wall seconds from the §13 profiler) varies run to run.
//
// Track layout (pid 1): tid 0 counter tracks, tid 1 "sim.windows"
// spans (admission / settlement / migration), tid 2 "sim.events"
// instants (drops, kills, requeues, retries, faults), tid 3
// "phases.wall" profiler spans.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics_registry.hpp"
#include "common/trace_writer.hpp"
#include "core/placement.hpp"
#include "des/lifecycle.hpp"
#include "sim/phase_profiler.hpp"

namespace risa::sim {

// Category bits: each trace event belongs to exactly one category and
// is emitted only when its bit is set in TelemetryConfig::categories.
// Registry counters always accrue (they are O(1) adds, exported once).
inline constexpr std::uint32_t kTraceLifecycle = 1u << 0;  ///< drops/kills/retries/faults + census counters
inline constexpr std::uint32_t kTracePlacement = 1u << 1;  ///< window spans + arrival-ring depth
inline constexpr std::uint32_t kTracePower = 1u << 2;      ///< holding/optical power track
inline constexpr std::uint32_t kTraceCalendar = 1u << 3;   ///< calendar census track
inline constexpr std::uint32_t kTraceAllCategories =
    kTraceLifecycle | kTracePlacement | kTracePower | kTraceCalendar;

/// Parse "lifecycle,placement,power,calendar" (or "all" / "none");
/// throws std::invalid_argument on an unknown token.
[[nodiscard]] std::uint32_t parse_trace_categories(std::string_view csv);

struct TelemetryConfig {
  /// Trace output path; empty writes no trace (registry still accrues
  /// when the ostream constructor is not used).
  std::string trace_path;
  std::uint32_t categories = kTraceAllCategories;
  /// Minimum sim-time between counter-track samples; 0 samples at every
  /// eligible window/event boundary.
  double sample_cadence_tu = 0.0;
  std::size_t ring_capacity = std::size_t{1} << 16;
  /// See TraceWriter::Options; tests pin exact overflow counts with
  /// this off.
  bool flush_on_full = true;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);
  /// Trace into a caller-owned stream (tests); config.trace_path ignored.
  Telemetry(TelemetryConfig config, std::ostream& sink);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool category(std::uint32_t bit) const noexcept {
    return (config_.categories & bit) != 0;
  }
  [[nodiscard]] MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] TraceWriter& writer() noexcept { return *writer_; }
  /// Flush + finalize the trace file (also done by the destructor).
  void close();

  // --- engine-facing hooks (all cold relative to the event loop) ------
  /// Called at the top of every run/resume: registers the series (ids
  /// are cached; re-registration is a no-op), re-arms the sampler at
  /// `now_tu` (resume picks up mid-run cleanly), emits run metadata.
  void begin_run(std::string_view algorithm, std::string_view workload,
                 double now_tu);

  /// Cheap cadence gate so the engine can skip building a sample.
  [[nodiscard]] bool sample_due(double t) const noexcept {
    return t >= next_sample_;
  }
  struct CounterSample {
    std::uint64_t live_vms = 0;
    std::uint64_t offline_boxes = 0;
    std::uint64_t failed_links = 0;
    std::uint64_t arrival_ring_depth = 0;
    std::uint64_t calendar_events = 0;
    double holding_power_w = 0.0;
  };
  void sample(double t, const CounterSample& s);

  void admission_window(double t0, double t1, std::uint64_t arrivals,
                        std::uint64_t placed);
  void settlement_window(double t, std::uint64_t departures);
  void migration_sweep(double t, std::uint64_t migrated);
  void drop(double t, core::DropReason reason);
  void kill(double t, des::LifecycleKind cause);
  void requeue(double t);
  void retry(double t, bool placed);
  void fault(double t, des::LifecycleKind kind);

  /// End of run: optional phase-profile export as a synthetic thread
  /// track (sequential wall-time spans; the cursor persists across runs
  /// so sweep reuse keeps spans disjoint), final flush.
  void finish_run(const PhaseProfile* profile);

 private:
  void emit_counter(const char* name, std::uint32_t cat_bit,
                    const char* cat_name, double t, double v);

  TelemetryConfig config_;
  MetricsRegistry registry_;
  std::unique_ptr<TraceWriter> writer_;
  double next_sample_ = 0.0;
  double phase_cursor_us_ = 0.0;  ///< wall-track write head (tid 3)
  bool series_ready_ = false;

  // Cached registry ids (registered in begin_run, stable across runs).
  MetricsRegistry::Id admitted_ = 0;
  MetricsRegistry::Id dropped_ = 0;
  std::array<MetricsRegistry::Id, core::kNumDropReasons> drop_reason_{};
  MetricsRegistry::Id killed_ = 0;
  MetricsRegistry::Id requeued_ = 0;
  MetricsRegistry::Id retries_ = 0;
  MetricsRegistry::Id retry_placed_ = 0;
  MetricsRegistry::Id migrated_ = 0;
  MetricsRegistry::Id faults_ = 0;
  MetricsRegistry::Id windows_ = 0;
  MetricsRegistry::Id window_span_ = 0;  ///< histogram: arrivals per window
  MetricsRegistry::Id live_vms_ = 0;
  MetricsRegistry::Id holding_power_ = 0;
};

// ---------------------------------------------------------------------
// Offline trace inspection (risa_cli --trace-summary).  A streaming
// single-pass reader over the Chrome-trace JSON: O(distinct names)
// memory, throws std::runtime_error on malformed JSON, and checks the
// §14 well-formedness contract on the fly (spans strictly nest per
// track, counter samples monotone in ts).

struct TraceSummary {
  struct SpanAgg {
    std::string name;
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  struct CounterAgg {
    std::string name;
    std::uint64_t samples = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };
  struct InstantAgg {
    std::string name;
    std::uint64_t count = 0;
  };
  std::vector<SpanAgg> spans;        ///< sorted by total_us descending
  std::vector<CounterAgg> counters;  ///< first-seen order
  std::vector<InstantAgg> instants;  ///< first-seen order
  std::uint64_t events = 0;
  std::uint64_t overflow_dropped = 0;
  bool spans_nest = true;          ///< X spans strictly nest per tid
  bool counters_monotone = true;   ///< per-name ts nondecreasing
  [[nodiscard]] bool well_formed() const noexcept {
    return spans_nest && counters_monotone;
  }
};

/// Parse + aggregate; throws std::runtime_error on malformed JSON.
[[nodiscard]] TraceSummary summarize_trace(std::istream& in);
[[nodiscard]] TraceSummary summarize_trace_file(const std::string& path);

/// Human-readable report (top-N spans by total time, counter
/// min/mean/max, instant counts, overflow drops).
[[nodiscard]] std::string format_trace_summary(const TraceSummary& summary,
                                               std::size_t top_n = 10);

}  // namespace risa::sim
