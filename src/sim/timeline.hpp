// Time-series recording: samples the cluster/fabric state at every
// placement and departure so runs can be plotted (utilization ramps, power
// draw over time, active-VM census).  Exported as CSV for external tooling;
// bench binaries optionally dump these next to their tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"

namespace risa::sim {

/// One sampled instant of a simulation run.
struct TimelinePoint {
  SimTime time = 0.0;
  std::uint64_t active_vms = 0;
  std::uint64_t placed_total = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t killed_total = 0;  ///< VMs killed by box/link failures so far
  std::uint64_t migrated_total = 0;///< committed live migrations so far
  std::uint32_t offline_boxes = 0; ///< boxes currently offline (degraded)
  std::uint32_t failed_links = 0;  ///< links currently failed (degraded)
  PerResource<double> utilization{0.0, 0.0, 0.0};
  double intra_net_utilization = 0.0;
  double inter_net_utilization = 0.0;
  double optical_power_w = 0.0;  ///< instantaneous holding power estimate
};

class Timeline {
 public:
  /// Record every k-th event to bound memory on long runs (1 = everything).
  explicit Timeline(std::uint32_t sample_every = 1)
      : sample_every_(sample_every == 0 ? 1 : sample_every) {}

  void record(const TimelinePoint& point);

  [[nodiscard]] const std::vector<TimelinePoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  /// Largest active-VM census seen.
  [[nodiscard]] std::uint64_t peak_active_vms() const noexcept {
    return peak_active_;
  }

  /// CSV export: header + one row per point.
  void write_csv(std::ostream& os) const;
  void save_csv(const std::string& path) const;

 private:
  std::uint32_t sample_every_;
  std::uint64_t seen_ = 0;
  std::uint64_t peak_active_ = 0;
  std::vector<TimelinePoint> points_;
};

}  // namespace risa::sim
