#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "common/cycle_clock.hpp"
#include "common/rng.hpp"
#include "sim/migration.hpp"

namespace risa::sim {

Engine::Engine(const Scenario& scenario, const std::string& algorithm)
    : scenario_(scenario), algorithm_(algorithm) {
  scenario_.validate();
  cluster_ = std::make_unique<topo::Cluster>(scenario_.cluster);
  fabric_ = std::make_unique<net::Fabric>(scenario_.cluster, scenario_.fabric);
  router_ = std::make_unique<net::Router>(*fabric_);
  circuits_ = std::make_unique<net::CircuitTable>(*router_);
  allocator_ = core::make_allocator(algorithm_, context(), scenario_.allocator);
}

core::AllocContext Engine::context() noexcept {
  core::AllocContext ctx;
  ctx.cluster = cluster_.get();
  ctx.fabric = fabric_.get();
  ctx.router = router_.get();
  ctx.circuits = circuits_.get();
  ctx.bandwidth = scenario_.bandwidth;
  return ctx;
}

void Engine::set_algorithm(const std::string& algorithm) {
  if (algorithm == algorithm_) return;
  // make_allocator validates the name; algorithm_ only changes on success.
  allocator_ = core::make_allocator(algorithm, context(), scenario_.allocator);
  algorithm_ = algorithm;
}

void Engine::reset() {
  // Order matters only for clarity: circuits are records over fabric state,
  // so both are wiped; nothing here touches the heap-allocated topology.
  cluster_->reset();
  fabric_->reset();
  circuits_->clear();
  allocator_->reset();
}

SimMetrics Engine::run(const wl::Workload& workload,
                       const std::string& workload_label) {
  using Clock = std::chrono::steady_clock;
  using des::LifecycleEvent;
  using des::LifecycleKind;
  const auto run_t0 = Clock::now();
  // Scheduler timing runs on raw cycle ticks (~5 ns a read vs ~30 ns for
  // steady_clock through the vDSO -- two reads per placement attempt made
  // the instrumentation itself a top-line cost at bench scale).  Ticks are
  // converted to seconds once at the end of the run, calibrated against the
  // steady_clock span the run measures anyway for sim_wall_seconds.
  const std::uint64_t run_ticks0 = CycleClock::now();

  reset();

  SimMetrics m;
  m.algorithm = std::string(allocator_->name());
  m.workload = workload_label;
  m.total_vms = workload.size();

  phot::PowerLedger ledger(scenario_.photonics, *fabric_);

  // Time-weighted signals.
  PerResource<TimeWeightedMean> util;
  TimeWeightedMean intra_util, inter_util;
  auto sample_signals = [&](SimTime t) {
    for (ResourceType ty : kAllResources) {
      util[ty].update(t, cluster_->utilization(ty));
    }
    intra_util.update(t, fabric_->intra_utilization());
    inter_util.update(t, fabric_->inter_utilization());
  };

  const std::size_t n = workload.size();

  // Fail fast on malformed input, before any event mutates state: a
  // negative lifetime would put a departure before its own arrival.
  for (const wl::VmRequest& vm : workload) {
    if (vm.lifetime < 0) {
      throw std::invalid_argument("Engine: negative lifetime in workload");
    }
  }

  // The run's fault and migration scripts (the scenario's, unless the
  // sweep layer swapped in other plans for this cell).  `lifecycle` gates
  // every injected-event branch so the empty-plans event loop stays
  // byte-for-byte the PR 3 path; `migrating` gates the sweep machinery on
  // top of it (an empty MigrationPlan is bit-identical to the fault-only
  // PR 4 loop).
  const FaultPlan& plan = fault_plan();
  plan.validate();
  const MigrationPlan& mig = migration_plan();
  mig.validate();
  const bool migrating = !mig.empty();
  const bool lifecycle = !plan.empty() || migrating;
  for (const FaultAction& a : plan.actions) {
    if (a.box != FaultAction::kNoBox && a.box >= cluster_->num_boxes()) {
      throw std::invalid_argument("Engine: FaultAction box id out of range");
    }
    if (a.link != FaultAction::kNoLink && a.link >= fabric_->num_links()) {
      throw std::invalid_argument("Engine: FaultAction link id out of range");
    }
  }

  // Arrival cursor: workload indices in (arrival, index) order.  The
  // generators emit cumulative-gap arrivals, so the common case is a
  // cheap is_sorted pass over an identity permutation; unsorted inputs
  // pay one in-place sort.  Index order breaks ties, which equals the
  // historical calendar order (arrival seq == workload index).
  arrival_order_.resize(n);
  std::iota(arrival_order_.begin(), arrival_order_.end(), 0u);
  if (!std::is_sorted(workload.begin(), workload.end(),
                      [](const wl::VmRequest& a, const wl::VmRequest& b) {
                        return a.arrival < b.arrival;
                      })) {
    std::sort(arrival_order_.begin(), arrival_order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (workload[a].arrival != workload[b].arrival) {
                  return workload[a].arrival < workload[b].arrival;
                }
                return a < b;
              });
  }

  // Dense live-VM tables, indexed by workload VM index.  resize() only
  // grows across reuse; the per-run O(N) flag clear replaces 2N hash-map
  // operations with a memset.  slot_of_ entries are garbage unless the
  // matching live_ flag is set, so no per-run initialization is needed
  // beyond the resize.
  if (slot_of_.size() < n) slot_of_.resize(n);
  live_.assign(n, 0);
  std::size_t live_count = 0;

  // Every pool slot starts free, lowest index on top of the stack, so a
  // reused engine assigns the same slot sequence as a fresh one.
  free_slots_.resize(slot_pool_.size());
  for (std::size_t s = 0; s < free_slots_.size(); ++s) {
    free_slots_[s] = static_cast<std::uint32_t>(free_slots_.size() - 1 - s);
  }
  auto acquire_slot = [&]() -> std::uint32_t {
    if (free_slots_.empty()) {
      slot_pool_.emplace_back();
      return static_cast<std::uint32_t>(slot_pool_.size() - 1);
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  };

  // Injected events restart their sequence numbering at N so every
  // equal-time tie against a pending arrival (seq = workload index < N)
  // resolves in the arrival's favor -- the exact order the closure
  // calendar produced, extended verbatim to fault/retry events.
  events_.reset(/*first_seq=*/n);

  // Lifecycle state: compiled fault triggers + per-VM interval/retry
  // bookkeeping.  Time-triggered actions enter the calendar up front (in
  // plan order, so their seq assignment is deterministic); admission-
  // triggered ones wait in a threshold-sorted queue and are injected at
  // the admission that crosses their threshold.
  Rng fault_rng(plan.seed);
  std::size_t admissions = 0;
  std::size_t next_admission_action = 0;
  auto action_kind = [](const FaultAction& a) {
    switch (a.kind) {
      case FaultAction::Kind::Fail: return LifecycleKind::BoxFail;
      case FaultAction::Kind::Repair: return LifecycleKind::BoxRepair;
      case FaultAction::Kind::LinkFail: return LifecycleKind::LinkFail;
      case FaultAction::Kind::LinkRepair: return LifecycleKind::LinkRepair;
    }
    throw std::logic_error("Engine: bad FaultAction kind");
  };
  if (lifecycle) {
    place_epoch_.assign(n, 0);
    place_time_.assign(n, 0.0);
    expected_hold_.assign(n, 0.0);
    attempts_.assign(n, 0);
    ever_placed_.assign(n, 0);
    admission_actions_.clear();
    for (std::uint32_t i = 0; i < plan.actions.size(); ++i) {
      const FaultAction& a = plan.actions[i];
      if (a.time_triggered()) {
        events_.push(a.at_time, LifecycleEvent{action_kind(a), i, 0});
      } else {
        admission_actions_.push_back(i);
      }
    }
    std::stable_sort(admission_actions_.begin(), admission_actions_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return plan.actions[a].after_admissions <
                              plan.actions[b].after_admissions;
                     });
  }

  // Migration budget + the seed sweep event.  Pushed after the
  // time-triggered fault actions so the injected seq assignment is
  // deterministic: plan actions in plan order, then the first MIGRATE,
  // then stream-order events (DESIGN.md §9 extends the §8 contract).
  std::uint32_t migration_budget = 0;
  if (migrating) {
    migration_budget = mig.total_budget;
    events_.push(mig.first_sweep_time(),
                 LifecycleEvent{LifecycleKind::Migrate, 0, 0});
  }

  // Instantaneous optical holding power, maintained incrementally for the
  // timeline (per-VM deltas computed at placement/departure/kill).
  double holding_power_w = 0.0;
  if (timeline_ != nullptr) holding_power_by_vm_.assign(n, 0.0);
  auto record_timeline = [&](SimTime t) {
    if (timeline_ == nullptr) return;
    TimelinePoint p;
    p.time = t;
    p.active_vms = live_count;
    p.placed_total = m.placed;
    p.dropped_total = m.dropped;
    p.killed_total = m.killed;
    p.migrated_total = m.migrated;
    p.offline_boxes = cluster_->offline_box_count();
    p.failed_links = fabric_->failed_link_count();
    for (ResourceType ty : kAllResources) {
      p.utilization[ty] = cluster_->utilization(ty);
    }
    p.intra_net_utilization = fabric_->intra_utilization();
    p.inter_net_utilization = fabric_->inter_utilization();
    p.optical_power_w = holding_power_w;
    timeline_->record(p);
  };

  sample_signals(0.0);

  std::uint64_t sched_ticks = 0;
  // Latency samples are pushed as raw tick deltas and rescaled to
  // nanoseconds at the end of the run, once the tick rate is known.
  const std::size_t latency_base =
      latency_sink_ != nullptr ? latency_sink_->size() : 0;
  SimTime now = 0.0;
  std::size_t cursor = 0;
  std::uint64_t executed = 0;

  // Degraded-operation integral: simulated time spent with >= 1 box
  // offline or link failed, accumulated per inter-event gap (state is
  // piecewise constant between events, exactly like the utilization
  // signals).
  SimTime last_event_t = 0.0;
  auto note_time = [&](SimTime t) {
    if (cluster_->offline_box_count() > 0 || fabric_->failed_link_count() > 0) {
      m.degraded_tu += t - last_event_t;
    }
    last_event_t = t;
  };

  // One placement attempt (arrival or retry) for `vm_index`, holding for
  // `expected` time units when it sticks.  On success all metrics/state
  // updates happen here -- in the exact order of the historical arrival
  // path, which keeps the empty-plan run bit-identical.  On failure the
  // reason lands in `drop_reason` and the caller applies its retry/drop
  // policy.
  core::DropReason drop_reason{};
  // Per-reason drop tallies, enum-indexed: the hot drop path increments a
  // plain counter instead of string-scanning the CounterSet per drop.
  // First-seen order is recorded so the end-of-run materialization into
  // drops_by_reason preserves the insertion order the fingerprint hashes.
  std::array<std::int64_t, core::kNumDropReasons> drop_counts{};
  std::array<core::DropReason, core::kNumDropReasons> drop_first_seen{};
  std::size_t drop_kinds = 0;
  auto count_drop = [&] {
    if (drop_counts[static_cast<std::size_t>(drop_reason)]++ == 0) {
      drop_first_seen[drop_kinds++] = drop_reason;
    }
  };
  auto admit = [&](std::uint32_t vm_index, double expected) -> bool {
    const wl::VmRequest& vm = workload[vm_index];
    const std::uint64_t t0 = CycleClock::now();
    auto placed = allocator_->try_place(vm);
    const std::uint64_t t1 = CycleClock::now();
    sched_ticks += t1 - t0;
    if (latency_sink_ != nullptr) {
      latency_sink_->push_back(static_cast<double>(t1 - t0));
    }

    if (!placed.ok()) {
      drop_reason = placed.error();
      return false;
    }
    const std::uint32_t slot = acquire_slot();
    slot_of_[vm_index] = slot;
    core::Placement& p = slot_pool_[slot];
    p = std::move(placed.value());
    live_[vm_index] = 1;
    ++live_count;
    ++admissions;
    if (!lifecycle) {
      ++m.placed;
    } else if (!ever_placed_[vm_index]) {
      ++m.placed;
      ever_placed_[vm_index] = 1;
    }
    if (p.inter_rack) ++m.any_pair_inter_rack;
    if (p.used_fallback) ++m.fallback_placements;

    // Figures 5/7/10 count a VM as inter-rack when its CPU and RAM racks
    // differ; the same flag drives the RTT sample (pod-aware in the
    // three-tier extension).  Counted per placement event, so a requeued
    // VM's re-placement samples again (diagnostic semantics under faults;
    // identical to the historical per-VM count when the plan is empty).
    const bool cpu_ram_inter =
        p.rack(ResourceType::Cpu) != p.rack(ResourceType::Ram);
    if (cpu_ram_inter) ++m.inter_rack_placements;
    const bool cross_pod =
        cpu_ram_inter && !fabric_->same_pod(p.rack(ResourceType::Cpu),
                                            p.rack(ResourceType::Ram));
    m.cpu_ram_latency_ns.add(
        scenario_.latency.rtt_ns(cpu_ram_inter, cross_pod));

    // Open the photonic charging interval at its expected length (Eq. (1)
    // prepay; a later kill settles the difference -- DESIGN.md §8).
    ledger.charge_vm(*circuits_, vm.id, expected);

    if (timeline_ != nullptr) {
      double vm_power = 0.0;
      circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
        vm_power +=
            phot::circuit_holding_power_w(scenario_.photonics, *fabric_, c);
      });
      holding_power_w += vm_power;
      holding_power_by_vm_[vm_index] = vm_power;
    }

    sample_signals(now);
    record_timeline(now);
    std::uint32_t epoch = 0;
    if (lifecycle) {
      place_time_[vm_index] = now;
      expected_hold_[vm_index] = expected;
      epoch = ++place_epoch_[vm_index];
    }
    events_.push(now + expected,
                 LifecycleEvent{LifecycleKind::Departure, vm_index, epoch});
    return true;
  };

  // Inject admission-triggered fault actions whose threshold the latest
  // successful placement crossed.  They enter the merged stream at `now`
  // (seq > N), so they fire after the admission that tripped them and
  // before any later-time event -- deterministically.
  auto fire_admission_triggers = [&] {
    while (next_admission_action < admission_actions_.size()) {
      const std::uint32_t ai = admission_actions_[next_admission_action];
      const FaultAction& a = plan.actions[ai];
      if (a.after_admissions > static_cast<std::int64_t>(admissions)) break;
      ++next_admission_action;
      events_.push(now, LifecycleEvent{action_kind(a), ai, 0});
    }
  };

  // Requeue `vm_index` when the retry budget allows; returns whether a
  // RETRY event was scheduled.  `pending_retries` keeps the migration
  // schedule alive across windows where every VM is dead but re-placements
  // are still coming (the post-failure stragglers are exactly what the
  // sweeps exist to recover).
  std::size_t pending_retries = 0;
  auto requeue = [&](std::uint32_t vm_index) -> bool {
    if (plan.retry.max_attempts == 0 ||
        attempts_[vm_index] >= plan.retry.max_attempts) {
      return false;
    }
    ++attempts_[vm_index];
    ++m.requeued;
    ++pending_retries;
    events_.push(now + plan.retry.delay_tu,
                 LifecycleEvent{LifecycleKind::Retry, vm_index, 0});
    return true;
  };

  // Kill a resident VM at `now`: settle its charging interval, tear down
  // circuits + compute, and requeue the remaining hold when policy allows.
  auto kill_vm = [&](std::uint32_t vm_index) {
    const wl::VmRequest& vm = workload[vm_index];
    const double held = now - place_time_[vm_index];
    const double unused = expected_hold_[vm_index] - held;
    ledger.refund_vm_truncation(*circuits_, vm.id, unused);
    allocator_->release(slot_pool_[slot_of_[vm_index]]);
    free_slots_.push_back(slot_of_[vm_index]);
    live_[vm_index] = 0;
    --live_count;
    ++m.killed;
    if (timeline_ != nullptr) {
      holding_power_w -= holding_power_by_vm_[vm_index];
      holding_power_by_vm_[vm_index] = 0.0;
    }
    if (unused > 0.0) {
      expected_hold_[vm_index] = unused;  // the re-placement's hold
      (void)requeue(vm_index);
    }
  };

  // Execute one scripted fail/repair action.  Random victims are drawn
  // here, in merged-stream order, from the plan's own RNG stream.
  // Transitions are idempotent (re-failing an offline victim is a no-op),
  // so duplicate random draws are harmless.
  auto execute_action = [&](std::uint32_t action_index, bool fail) {
    const FaultAction& a = plan.actions[action_index];
    if (a.targets_links()) {
      const std::uint32_t draws =
          a.link != FaultAction::kNoLink ? 1 : a.random_links;
      for (std::uint32_t k = 0; k < draws; ++k) {
        const LinkId victim =
            a.link != FaultAction::kNoLink
                ? LinkId{a.link}
                : LinkId{static_cast<std::uint32_t>(fault_rng.uniform_int(
                      0,
                      static_cast<std::int64_t>(fabric_->num_links()) - 1))};
        if (fabric_->link(victim).failed() == fail) continue;
        fabric_->set_link_failed(victim, fail);
        if (!fail) continue;
        // Dead-link teardown: every live VM holding a circuit that
        // traverses the failed link dies (scanned in VM-index order, so
        // kills -- and their requeues -- are deterministic).
        for (std::uint32_t i = 0; i < n; ++i) {
          if (!live_[i]) continue;
          bool hit = false;
          circuits_->for_each_circuit_of(
              workload[i].id, [&](const net::Circuit& c) {
                for (const LinkId lid : c.path.links) {
                  if (lid == victim) {
                    hit = true;
                    break;
                  }
                }
              });
          if (hit) kill_vm(i);
        }
      }
    } else {
      const std::uint32_t draws =
          a.box != FaultAction::kNoBox ? 1 : a.random_boxes;
      for (std::uint32_t k = 0; k < draws; ++k) {
        const BoxId victim =
            a.box != FaultAction::kNoBox
                ? BoxId{a.box}
                : BoxId{static_cast<std::uint32_t>(fault_rng.uniform_int(
                      0,
                      static_cast<std::int64_t>(cluster_->num_boxes()) - 1))};
        if (cluster_->box_unchecked(victim).offline() == fail) continue;
        cluster_->set_box_offline(victim, fail);
        if (!fail) continue;
        // Offline-box teardown: every resident VM dies with its circuits.
        for (std::uint32_t i = 0; i < n; ++i) {
          if (!live_[i]) continue;
          const core::Placement& p = slot_pool_[slot_of_[i]];
          for (ResourceType t : kAllResources) {
            if (p.box(t) == victim) {
              kill_vm(i);
              break;
            }
          }
        }
      }
    }
    sample_signals(now);
    record_timeline(now);
  };

  // One live-migration attempt at `now` (DESIGN.md §9).  Make-before-
  // break: the new placement is established through the normal allocator
  // path while the old one still holds its resources (the old boxes are
  // temporarily taken offline so the search cannot pick them -- restored
  // before any signal is sampled), then the old circuits and compute are
  // retired atomically.  The PowerLedger settles with a prepay-and-settle
  // split: the old circuits are charged through now + cost (the double-
  // charge window while state drains), the new ones prepay the remaining
  // hold.  Returns whether the migration committed.
  auto try_migrate = [&](std::uint32_t vm_index) -> bool {
    const wl::VmRequest& vm = workload[vm_index];
    core::Placement& old_p = slot_pool_[slot_of_[vm_index]];
    const int old_score = migration_spread_score(old_p, *fabric_);
    const double remaining =
        place_time_[vm_index] + expected_hold_[vm_index] - now;
    // remaining > cost is guaranteed by the sweep's candidate filter
    // (same instant, same inputs); both are still needed for settlement.
    const double cost = migration_cost_tu(
        mig, vm.ram_mb, old_p.demand.cpu_ram,
        scenario_.photonics.switch_energy.seconds_per_time_unit);
    const auto k_old =
        static_cast<std::uint32_t>(circuits_->circuit_count_of(vm.id));

    // Exclude the current boxes from the search (they are distinct: one
    // box per resource type), remembering exactly what we toggled.
    std::array<BoxId, kNumResourceTypes> toggled;
    std::size_t n_toggled = 0;
    for (ResourceType t : kAllResources) {
      const BoxId b = old_p.box(t);
      if (!cluster_->box_unchecked(b).offline()) {
        cluster_->set_box_offline(b, true);
        toggled[n_toggled++] = b;
      }
    }
    // Not counted into scheduler_exec_seconds or the latency sink:
    // Figures 11/12 measure admission scheduling only.
    auto placed = allocator_->try_place(vm);
    for (std::size_t k = 0; k < n_toggled; ++k) {
      cluster_->set_box_offline(toggled[k], false);
    }
    if (!placed.ok()) return false;  // nowhere better; placement untouched

    core::Placement new_p = std::move(placed.value());
    if (mig.only_if_improves &&
        migration_spread_score(new_p, *fabric_) >= old_score) {
      // No improvement: roll the fresh placement back untouched.  Its
      // circuits are exactly the suffix after the old placement's.
      circuits_->teardown_suffix(vm.id, k_old);
      for (ResourceType t : kAllResources) {
        cluster_->release(new_p.compute[index(t)]);
      }
      return false;
    }

    // Settle the ledger at the migration instant: the old circuits (the
    // prefix, in establishment order) refund their tail beyond the cost
    // window; the new ones open an interval for the remaining hold.
    std::size_t pos = 0;
    circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
      if (pos < k_old) {
        ledger.refund_circuit_truncation(c, remaining - cost);
      } else {
        ledger.charge_circuit(c, remaining);
      }
      ++pos;
    });

    // Retire the old placement: circuits, then compute.
    circuits_->teardown_prefix(vm.id, k_old);
    const bool was_inter =
        old_p.rack(ResourceType::Cpu) != old_p.rack(ResourceType::Ram);
    for (ResourceType t : kAllResources) {
      cluster_->release(old_p.compute[index(t)]);
    }

    const bool now_inter =
        new_p.rack(ResourceType::Cpu) != new_p.rack(ResourceType::Ram);
    old_p = std::move(new_p);  // the VM's pool slot is reused in place
    place_time_[vm_index] = now;
    expected_hold_[vm_index] = remaining;
    const std::uint32_t epoch = ++place_epoch_[vm_index];
    events_.push(now + remaining,
                 LifecycleEvent{LifecycleKind::Departure, vm_index, epoch});

    ++m.migrated;
    m.migration_tu += cost;
    if (was_inter && !now_inter) ++m.interrack_vms_recovered;

    if (timeline_ != nullptr) {
      double vm_power = 0.0;
      circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
        vm_power +=
            phot::circuit_holding_power_w(scenario_.photonics, *fabric_, c);
      });
      holding_power_w += vm_power - holding_power_by_vm_[vm_index];
      holding_power_by_vm_[vm_index] = vm_power;
    }
    sample_signals(now);
    record_timeline(now);
    return true;
  };

  // One defragmentation sweep at `now`: gather the spread live VMs whose
  // remaining hold outlasts their migration cost, rank them worst-first,
  // and attempt up to the per-sweep budget.  Allocation-free after the
  // scratch arena warms up.
  auto run_migration_sweep = [&] {
    if (mig.skip_while_degraded && (cluster_->offline_box_count() > 0 ||
                                    fabric_->failed_link_count() > 0)) {
      return;
    }
    mig_keys_.clear();
    std::size_t live = 0, spread = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!live_[i]) continue;
      ++live;
      const core::Placement& p = slot_pool_[slot_of_[i]];
      const int score = migration_spread_score(p, *fabric_);
      if (score <= 0) continue;
      ++spread;  // counts toward the fraction trigger even when doomed
      // Filter doomed candidates here, not in try_migrate: a near-departure
      // VM ranked first would otherwise burn a per-sweep attempt slot that
      // a long-lived straggler could have used.
      const double remaining = place_time_[i] + expected_hold_[i] - now;
      const double cost = migration_cost_tu(
          mig, workload[i].ram_mb, p.demand.cpu_ram,
          scenario_.photonics.switch_energy.seconds_per_time_unit);
      if (remaining <= cost) continue;
      mig_keys_.push_back(pack_candidate(score, i));
    }
    if (mig_keys_.empty() || live == 0) return;
    if (static_cast<double>(spread) <
        mig.min_interrack_fraction * static_cast<double>(live)) {
      return;
    }
    const std::size_t budget = std::min<std::size_t>(
        mig_keys_.size(),
        std::min<std::size_t>(mig.per_sweep_budget, migration_budget));
    rank_worst_spread(mig_keys_, budget);
    for (std::size_t k = 0; k < budget; ++k) {
      if (try_migrate(candidate_index(mig_keys_[k]))) --migration_budget;
    }
  };

  // The merged event loop.  Next event = min over the arrival cursor head
  // (time = arrival, seq = index) and the injected-event heap top; at
  // equal times the arrival's smaller seq wins, so the comparison reduces
  // to arrival_time <= injected_time.
  while (cursor < n || !events_.empty()) {
    const bool take_arrival =
        cursor < n &&
        (events_.empty() ||
         workload[arrival_order_[cursor]].arrival <= events_.next_time());

    if (take_arrival) {
      const std::uint32_t vm_index = arrival_order_[cursor++];
      const wl::VmRequest& vm = workload[vm_index];
      now = vm.arrival;
      if (lifecycle) note_time(now);
      ++executed;

      if (!admit(vm_index, vm.lifetime)) {
        if (!lifecycle || !requeue(vm_index)) {
          ++m.dropped;
          count_drop();
        }
        continue;
      }
      if (lifecycle) fire_admission_triggers();
    } else {
      const auto e = events_.pop();
      switch (e.payload.kind) {
        case LifecycleKind::Departure: {
          std::uint32_t vm_index = e.payload.subject;
          if (!live_[vm_index] ||
              (lifecycle && e.payload.epoch != place_epoch_[vm_index])) {
            if (!lifecycle) {
              throw std::logic_error("Engine: departure for unknown placement");
            }
            break;  // tombstone: this placement was killed by a box failure
          }
          now = e.time;
          if (lifecycle) note_time(now);
          // Same-timestamp departure run, settled as one batch: the
          // per-rack aggregate/index refresh is deferred and deduplicated
          // across the whole run (Cluster::release_batched), while box
          // ledgers, cluster totals, circuits, signals and the timeline
          // settle per event -- every sampled quantity stays exact.  No
          // placement can interleave: equal-time arrivals were all
          // consumed before this event (arrivals win every (time, seq)
          // tie), and any other injected kind ends the batch since events
          // leave the heap in (time, seq) order.
          cluster_->begin_release_batch();
          for (;;) {
            ++executed;
            allocator_->release_batched(slot_pool_[slot_of_[vm_index]]);
            free_slots_.push_back(slot_of_[vm_index]);
            live_[vm_index] = 0;
            --live_count;
            if (timeline_ != nullptr) {
              holding_power_w -= holding_power_by_vm_[vm_index];
              holding_power_by_vm_[vm_index] = 0.0;
            }
            sample_signals(now);
            record_timeline(now);

            bool more = false;
            while (!events_.empty() && events_.next_time() == now &&
                   events_.top().payload.kind == LifecycleKind::Departure) {
              const auto d = events_.pop();
              const std::uint32_t cand = d.payload.subject;
              if (!live_[cand] ||
                  (lifecycle && d.payload.epoch != place_epoch_[cand])) {
                if (!lifecycle) {
                  throw std::logic_error(
                      "Engine: departure for unknown placement");
                }
                continue;  // tombstone inside the batch
              }
              vm_index = cand;
              more = true;
              break;
            }
            if (!more) break;
          }
          cluster_->end_release_batch();
          break;
        }
        case LifecycleKind::BoxFail:
        case LifecycleKind::BoxRepair:
        case LifecycleKind::LinkFail:
        case LifecycleKind::LinkRepair: {
          now = e.time;
          note_time(now);
          ++executed;
          execute_action(e.payload.subject,
                         e.payload.kind == LifecycleKind::BoxFail ||
                             e.payload.kind == LifecycleKind::LinkFail);
          break;
        }
        case LifecycleKind::Migrate: {
          // A sweep landing after the run's real work (no pending arrivals,
          // nothing live, no retries in flight) is skipped like a
          // tombstone: it neither advances the horizon nor reschedules, so
          // periodic plans terminate.
          if (cursor >= n && live_count == 0 && pending_retries == 0) break;
          now = e.time;
          note_time(now);
          ++executed;
          run_migration_sweep();
          if (migration_budget > 0 &&
              (cursor < n || live_count > 0 || pending_retries > 0)) {
            events_.push(now + mig.period_tu,
                         LifecycleEvent{LifecycleKind::Migrate,
                                        e.payload.subject + 1, 0});
          }
          break;
        }
        case LifecycleKind::Retry: {
          const std::uint32_t vm_index = e.payload.subject;
          --pending_retries;
          now = e.time;
          note_time(now);
          ++executed;
          const double expected = ever_placed_[vm_index]
                                      ? expected_hold_[vm_index]
                                      : workload[vm_index].lifetime;
          if (admit(vm_index, expected)) {
            ++m.retry_placed;
            fire_admission_triggers();
          } else if (!requeue(vm_index) && !ever_placed_[vm_index]) {
            // Retry budget exhausted for a VM that never ran: a final drop
            // (killed VMs already count in `placed`; their lost remainder
            // is visible through `killed` and the settled energy).
            ++m.dropped;
            count_drop();
          }
          break;
        }
        case LifecycleKind::Arrival:
          throw std::logic_error("Engine: arrival event in injected calendar");
      }
    }
  }

  m.horizon_tu = now;
  if (m.horizon_tu <= 0.0) m.horizon_tu = 1.0;  // degenerate empty workload
  m.events_executed = executed;
  for (std::size_t k = 0; k < drop_kinds; ++k) {
    m.drops_by_reason.increment(
        core::name(drop_first_seen[k]),
        drop_counts[static_cast<std::size_t>(drop_first_seen[k])]);
  }

  for (ResourceType ty : kAllResources) {
    m.avg_utilization[ty] = util[ty].mean(m.horizon_tu);
    m.peak_utilization[ty] = util[ty].peak();
  }
  m.avg_intra_net_utilization = intra_util.mean(m.horizon_tu);
  m.avg_inter_net_utilization = inter_util.mean(m.horizon_tu);
  m.peak_intra_net_utilization = intra_util.peak();
  m.peak_inter_net_utilization = inter_util.peak();
  m.energy = ledger.totals();
  m.avg_optical_power_w = ledger.average_power_w(m.horizon_tu);

  if (m.placed + m.dropped != m.total_vms) {
    throw std::logic_error("Engine: placement accounting mismatch");
  }
  if (live_count != 0) {
    throw std::logic_error("Engine: placements leaked past their departure");
  }
  cluster_->check_invariants();
  fabric_->check_invariants();

  // Calibrate the tick rate over the whole run and settle the wall-clock
  // metrics.  Both clocks bracket the same span, so seconds-per-tick is
  // exact up to scheduling noise; a zero-tick span (degenerate workload on
  // the steady_clock fallback) reports zero scheduler time rather than NaN.
  const std::uint64_t run_ticks = CycleClock::now() - run_ticks0;
  m.sim_wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_t0).count();
  const double seconds_per_tick =
      run_ticks > 0 ? m.sim_wall_seconds / static_cast<double>(run_ticks) : 0.0;
  m.scheduler_exec_seconds =
      static_cast<double>(sched_ticks) * seconds_per_tick;
  if (latency_sink_ != nullptr) {
    const double ns_per_tick = seconds_per_tick * 1e9;
    for (std::size_t i = latency_base; i < latency_sink_->size(); ++i) {
      (*latency_sink_)[i] *= ns_per_tick;
    }
  }
  return m;
}

std::vector<SimMetrics> run_all_algorithms(const Scenario& scenario,
                                           const wl::Workload& workload,
                                           const std::string& workload_label) {
  std::vector<SimMetrics> out;
  std::unique_ptr<Engine> engine;  // one stack, rebound per algorithm
  for (const std::string& algo : core::algorithm_names()) {
    if (engine == nullptr) {
      engine = std::make_unique<Engine>(scenario, algo);
    } else {
      engine->set_algorithm(algo);
    }
    out.push_back(engine->run(workload, workload_label));
  }
  return out;
}

}  // namespace risa::sim
