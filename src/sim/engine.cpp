#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

namespace risa::sim {

Engine::Engine(const Scenario& scenario, const std::string& algorithm)
    : scenario_(scenario), algorithm_(algorithm) {
  scenario_.validate();
  cluster_ = std::make_unique<topo::Cluster>(scenario_.cluster);
  fabric_ = std::make_unique<net::Fabric>(scenario_.cluster, scenario_.fabric);
  router_ = std::make_unique<net::Router>(*fabric_);
  circuits_ = std::make_unique<net::CircuitTable>(*router_);
  allocator_ = core::make_allocator(algorithm_, context(), scenario_.allocator);
}

core::AllocContext Engine::context() noexcept {
  core::AllocContext ctx;
  ctx.cluster = cluster_.get();
  ctx.fabric = fabric_.get();
  ctx.router = router_.get();
  ctx.circuits = circuits_.get();
  ctx.bandwidth = scenario_.bandwidth;
  return ctx;
}

void Engine::set_algorithm(const std::string& algorithm) {
  if (algorithm == algorithm_) return;
  // make_allocator validates the name; algorithm_ only changes on success.
  allocator_ = core::make_allocator(algorithm, context(), scenario_.allocator);
  algorithm_ = algorithm;
}

void Engine::reset() {
  // Order matters only for clarity: circuits are records over fabric state,
  // so both are wiped; nothing here touches the heap-allocated topology.
  cluster_->reset();
  fabric_->reset();
  circuits_->clear();
  allocator_->reset();
}

SimMetrics Engine::run(const wl::Workload& workload,
                       const std::string& workload_label) {
  using Clock = std::chrono::steady_clock;
  const auto run_t0 = Clock::now();

  reset();

  SimMetrics m;
  m.algorithm = std::string(allocator_->name());
  m.workload = workload_label;
  m.total_vms = workload.size();

  phot::PowerLedger ledger(scenario_.photonics, *fabric_);

  // Time-weighted signals.
  PerResource<TimeWeightedMean> util;
  TimeWeightedMean intra_util, inter_util;
  auto sample_signals = [&](SimTime t) {
    for (ResourceType ty : kAllResources) {
      util[ty].update(t, cluster_->utilization(ty));
    }
    intra_util.update(t, fabric_->intra_utilization());
    inter_util.update(t, fabric_->inter_utilization());
  };

  const std::size_t n = workload.size();

  // Fail fast on malformed input, before any event mutates state: a
  // negative lifetime would put a departure before its own arrival.
  for (const wl::VmRequest& vm : workload) {
    if (vm.lifetime < 0) {
      throw std::invalid_argument("Engine: negative lifetime in workload");
    }
  }

  // Arrival cursor: workload indices in (arrival, index) order.  The
  // generators emit cumulative-gap arrivals, so the common case is a
  // cheap is_sorted pass over an identity permutation; unsorted inputs
  // pay one in-place sort.  Index order breaks ties, which equals the
  // historical calendar order (arrival seq == workload index).
  arrival_order_.resize(n);
  std::iota(arrival_order_.begin(), arrival_order_.end(), 0u);
  if (!std::is_sorted(workload.begin(), workload.end(),
                      [](const wl::VmRequest& a, const wl::VmRequest& b) {
                        return a.arrival < b.arrival;
                      })) {
    std::sort(arrival_order_.begin(), arrival_order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (workload[a].arrival != workload[b].arrival) {
                  return workload[a].arrival < workload[b].arrival;
                }
                return a < b;
              });
  }

  // Dense live-VM tables, indexed by workload VM index.  resize() only
  // grows across reuse; the per-run O(N) flag clear replaces 2N hash-map
  // operations with a memset.
  if (placement_slots_.size() < n) placement_slots_.resize(n);
  live_.assign(n, 0);
  std::size_t live_count = 0;

  // Departures restart their sequence numbering at N so every equal-time
  // tie against a pending arrival (seq = workload index < N) resolves in
  // the arrival's favor -- the exact order the closure calendar produced.
  departures_.reset(/*first_seq=*/n);

  // Instantaneous optical holding power, maintained incrementally for the
  // timeline (per-VM deltas computed at placement/departure).
  double holding_power_w = 0.0;
  if (timeline_ != nullptr) holding_power_by_vm_.assign(n, 0.0);
  auto record_timeline = [&](SimTime t) {
    if (timeline_ == nullptr) return;
    TimelinePoint p;
    p.time = t;
    p.active_vms = live_count;
    p.placed_total = m.placed;
    p.dropped_total = m.dropped;
    for (ResourceType ty : kAllResources) {
      p.utilization[ty] = cluster_->utilization(ty);
    }
    p.intra_net_utilization = fabric_->intra_utilization();
    p.inter_net_utilization = fabric_->inter_utilization();
    p.optical_power_w = holding_power_w;
    timeline_->record(p);
  };

  sample_signals(0.0);

  std::chrono::nanoseconds sched_time{0};
  SimTime now = 0.0;
  std::size_t cursor = 0;

  // The merged event loop.  Next event = min over the arrival cursor head
  // (time = arrival, seq = index) and the departure heap top; at equal
  // times the arrival's smaller seq wins, so the comparison reduces to
  // arrival_time <= departure_time.
  while (cursor < n || !departures_.empty()) {
    const bool take_arrival =
        cursor < n &&
        (departures_.empty() ||
         workload[arrival_order_[cursor]].arrival <= departures_.next_time());

    if (take_arrival) {
      const std::uint32_t vm_index = arrival_order_[cursor++];
      const wl::VmRequest& vm = workload[vm_index];
      now = vm.arrival;

      const auto t0 = Clock::now();
      auto placed = allocator_->try_place(vm);
      const auto t1 = Clock::now();
      sched_time += t1 - t0;
      if (latency_sink_ != nullptr) {
        latency_sink_->push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
      }

      if (!placed.ok()) {
        ++m.dropped;
        m.drops_by_reason.increment(core::name(placed.error()));
        continue;
      }
      core::Placement& p = placement_slots_[vm_index];
      p = std::move(placed.value());
      live_[vm_index] = 1;
      ++live_count;
      ++m.placed;
      if (p.inter_rack) ++m.any_pair_inter_rack;
      if (p.used_fallback) ++m.fallback_placements;

      // Figures 5/7/10 count a VM as inter-rack when its CPU and RAM racks
      // differ; the same flag drives the RTT sample (pod-aware in the
      // three-tier extension).
      const bool cpu_ram_inter =
          p.rack(ResourceType::Cpu) != p.rack(ResourceType::Ram);
      if (cpu_ram_inter) ++m.inter_rack_placements;
      const bool cross_pod =
          cpu_ram_inter && !fabric_->same_pod(p.rack(ResourceType::Cpu),
                                              p.rack(ResourceType::Ram));
      m.cpu_ram_latency_ns.add(
          scenario_.latency.rtt_ns(cpu_ram_inter, cross_pod));

      // Eq. (1) charges the full lifetime at establishment (T is known).
      ledger.charge_vm(*circuits_, vm.id, vm.lifetime);

      if (timeline_ != nullptr) {
        double vm_power = 0.0;
        circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
          vm_power +=
              phot::circuit_holding_power_w(scenario_.photonics, *fabric_, c);
        });
        holding_power_w += vm_power;
        holding_power_by_vm_[vm_index] = vm_power;
      }

      sample_signals(now);
      record_timeline(now);
      departures_.push(vm.departure(), vm_index);
    } else {
      const auto e = departures_.pop();
      now = e.time;
      const std::uint32_t vm_index = e.payload;
      if (!live_[vm_index]) {
        throw std::logic_error("Engine: departure for unknown placement");
      }
      allocator_->release(placement_slots_[vm_index]);
      live_[vm_index] = 0;
      --live_count;
      if (timeline_ != nullptr) {
        holding_power_w -= holding_power_by_vm_[vm_index];
        holding_power_by_vm_[vm_index] = 0.0;
      }
      sample_signals(now);
      record_timeline(now);
    }
  }

  m.horizon_tu = now;
  if (m.horizon_tu <= 0.0) m.horizon_tu = 1.0;  // degenerate empty workload
  m.events_executed = static_cast<std::uint64_t>(n) + m.placed;

  m.scheduler_exec_seconds =
      std::chrono::duration<double>(sched_time).count();
  for (ResourceType ty : kAllResources) {
    m.avg_utilization[ty] = util[ty].mean(m.horizon_tu);
    m.peak_utilization[ty] = util[ty].peak();
  }
  m.avg_intra_net_utilization = intra_util.mean(m.horizon_tu);
  m.avg_inter_net_utilization = inter_util.mean(m.horizon_tu);
  m.peak_intra_net_utilization = intra_util.peak();
  m.peak_inter_net_utilization = inter_util.peak();
  m.energy = ledger.totals();
  m.avg_optical_power_w = ledger.average_power_w(m.horizon_tu);

  if (m.placed + m.dropped != m.total_vms) {
    throw std::logic_error("Engine: placement accounting mismatch");
  }
  if (live_count != 0) {
    throw std::logic_error("Engine: placements leaked past their departure");
  }
  cluster_->check_invariants();
  fabric_->check_invariants();

  m.sim_wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_t0).count();
  return m;
}

std::vector<SimMetrics> run_all_algorithms(const Scenario& scenario,
                                           const wl::Workload& workload,
                                           const std::string& workload_label) {
  std::vector<SimMetrics> out;
  std::unique_ptr<Engine> engine;  // one stack, rebound per algorithm
  for (const std::string& algo : core::algorithm_names()) {
    if (engine == nullptr) {
      engine = std::make_unique<Engine>(scenario, algo);
    } else {
      engine->set_algorithm(algo);
    }
    out.push_back(engine->run(workload, workload_label));
  }
  return out;
}

}  // namespace risa::sim
