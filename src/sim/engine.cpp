#include "sim/engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <istream>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>

#include "common/binio.hpp"
#include "common/cycle_clock.hpp"
#include "common/rng.hpp"
#include "sim/migration.hpp"
#include "sim/phase_profiler.hpp"
#include "sim/telemetry.hpp"

namespace risa::sim {

namespace {
/// Arrival refill size: large enough to amortize the virtual next_batch
/// call across the merge loop, small enough that the in-flight chunk is
/// noise next to the live census.  Chunk boundaries double as checkpoint
/// safe points (DESIGN.md §11).
constexpr std::size_t kArrivalChunk = 1024;
/// Checkpoint stream magic + format version ("RSK1").
constexpr std::uint32_t kCheckpointMagic = 0x314B5352u;
/// Upper bound on size_hint-driven pre-sizing (the record table, calendar
/// and scan scratch are census-bounded, so reserving past any plausible
/// live census only wastes RSS on streaming runs).
constexpr std::uint64_t kCensusReserveCap = 1u << 16;
}  // namespace

Engine::Engine(const Scenario& scenario, const std::string& algorithm)
    : scenario_(scenario), algorithm_(algorithm) {
  scenario_.validate();
  cluster_ = std::make_unique<topo::Cluster>(scenario_.cluster);
  fabric_ = std::make_unique<net::Fabric>(scenario_.cluster, scenario_.fabric);
  router_ = std::make_unique<net::Router>(*fabric_);
  circuits_ = std::make_unique<net::CircuitTable>(*router_);
  allocator_ = core::make_allocator(algorithm_, context(), scenario_.allocator);
}

core::AllocContext Engine::context() noexcept {
  core::AllocContext ctx;
  ctx.cluster = cluster_.get();
  ctx.fabric = fabric_.get();
  ctx.router = router_.get();
  ctx.circuits = circuits_.get();
  ctx.bandwidth = scenario_.bandwidth;
  return ctx;
}

void Engine::set_algorithm(const std::string& algorithm) {
  if (algorithm == algorithm_) return;
  // make_allocator validates the name; algorithm_ only changes on success.
  allocator_ = core::make_allocator(algorithm, context(), scenario_.allocator);
  algorithm_ = algorithm;
}

void Engine::reset() {
  // Order matters only for clarity: circuits are records over fabric state,
  // so both are wiped; nothing here touches the heap-allocated topology.
  cluster_->reset();
  fabric_->reset();
  circuits_->clear();
  allocator_->reset();
}

SimMetrics Engine::run(const wl::Workload& workload,
                       const std::string& workload_label) {
  // Fail fast on malformed input, before any event mutates state: a
  // negative lifetime would put a departure before its own arrival.
  // (A streaming run applies the identical check per chunk at intake --
  // the whole stream cannot be pre-scanned.)
  for (const wl::VmRequest& vm : workload) {
    if (vm.lifetime < 0) {
      throw std::invalid_argument("Engine: negative lifetime in workload");
    }
  }
  wl::WorkloadSource source(workload);
  return run_impl(source, workload_label, nullptr, nullptr);
}

SimMetrics Engine::run_stream(wl::ArrivalSource& source,
                              const std::string& workload_label,
                              const CheckpointPolicy* checkpoint) {
  source.rewind();
  return run_impl(source, workload_label, checkpoint, nullptr);
}

SimMetrics Engine::resume_stream(std::istream& checkpoint,
                                 wl::ArrivalSource& source,
                                 const CheckpointPolicy* policy) {
  // The label travels inside the checkpoint; run_impl restores it.
  return run_impl(source, std::string(), policy, &checkpoint);
}

SimMetrics Engine::run_impl(wl::ArrivalSource& source,
                            const std::string& workload_label,
                            const CheckpointPolicy* ckpt,
                            std::istream* resume) {
  using Clock = std::chrono::steady_clock;
  using des::LifecycleEvent;
  using des::LifecycleKind;
  const auto run_t0 = Clock::now();
  // Scheduler timing runs on raw cycle ticks (~5 ns a read vs ~30 ns for
  // steady_clock through the vDSO -- two reads per placement attempt made
  // the instrumentation itself a top-line cost at bench scale).  Ticks are
  // converted to seconds once at the end of the run, calibrated against the
  // steady_clock span the run measures anyway for sim_wall_seconds.
  const std::uint64_t run_ticks0 = CycleClock::now();

  // Phase attribution (sim/phase_profiler.hpp): cycle-clock spans around
  // the loop's phases, exclusive under nesting.  Disabled, every hook is a
  // single predictable branch; ticks convert to seconds at the end of the
  // run alongside sched_ticks.
  PhaseTimer prof;
  prof.reset();
  prof.enable(profiling_);

  reset();

  // Run telemetry (sim/telemetry.hpp, DESIGN.md §14): every hook below
  // rides a branch the loop takes anyway behind `tel != nullptr` -- the
  // disabled path costs this one pointer copy, no TSC reads, no stores.
  // `track_power` widens the timeline-only holding-power maintenance to
  // telemetry's power track; the value feeds observation only (never a
  // metric), so fingerprints stay byte-identical either way.
  Telemetry* const tel = telemetry_;
  const bool track_power =
      timeline_ != nullptr || (tel != nullptr && tel->category(kTracePower));

  SimMetrics m;
  m.algorithm = std::string(allocator_->name());
  m.workload = workload_label;

  phot::PowerLedger ledger(scenario_.photonics, *fabric_);

  // Time-weighted signals.
  PerResource<TimeWeightedMean> util;
  TimeWeightedMean intra_util, inter_util;
  auto sample_signals = [&](SimTime t) {
    for (ResourceType ty : kAllResources) {
      util[ty].update(t, cluster_->utilization(ty));
    }
    intra_util.update(t, fabric_->intra_utilization());
    inter_util.update(t, fabric_->inter_utilization());
  };

  // The run's fault and migration scripts (the scenario's, unless the
  // sweep layer swapped in other plans for this cell).  `lifecycle` gates
  // every injected-event branch so the empty-plans event loop stays
  // byte-for-byte the PR 3 path; `migrating` gates the sweep machinery on
  // top of it (an empty MigrationPlan is bit-identical to the fault-only
  // PR 4 loop).
  const FaultPlan& plan = fault_plan();
  plan.validate();
  const MigrationPlan& mig = migration_plan();
  mig.validate();
  const bool migrating = !mig.empty();
  const bool lifecycle = !plan.empty() || migrating;
  for (const FaultAction& a : plan.actions) {
    if (a.box != FaultAction::kNoBox && a.box >= cluster_->num_boxes()) {
      throw std::invalid_argument("Engine: FaultAction box id out of range");
    }
    if (a.link != FaultAction::kNoLink && a.link >= fabric_->num_links()) {
      throw std::invalid_argument("Engine: FaultAction link id out of range");
    }
  }

  // Per-VM records, keyed by workload index: created at admission (or
  // first requeue), erased at the VM's final event, so the table tracks
  // the live census + pending retries instead of the stream length.
  vms_.clear();
  std::size_t live_count = 0;

  // Every pool slot starts free, lowest index on top of the stack, so a
  // reused engine assigns the same slot sequence as a fresh one.
  free_slots_.resize(slot_pool_.size());
  for (std::size_t s = 0; s < free_slots_.size(); ++s) {
    free_slots_[s] = static_cast<std::uint32_t>(free_slots_.size() - 1 - s);
  }
  auto acquire_slot = [&]() -> std::uint32_t {
    if (free_slots_.empty()) {
      slot_pool_.emplace_back();
      return static_cast<std::uint32_t>(slot_pool_.size() - 1);
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  };

  // Injected events restart their sequence numbering at the source's size
  // hint so every equal-time tie against a pending arrival (seq = workload
  // index < N) resolves in the arrival's favor -- the exact order the
  // closure calendar produced.  A source that cannot know its length
  // reports 0, which is equally sound: the merge comparison below is
  // structural (arrivals win ties), so a uniform shift of every injected
  // seq preserves the heap's relative order and the base is behaviorally
  // unobservable (DESIGN.md §11).
  events_.reset(/*first_seq=*/source.size_hint());

  // Pre-size the census-bounded containers from the source's size hint,
  // capped by the cluster's own hosting bound (every VM holds >= 1 CPU
  // unit) so a 10M-VM stream reserves for its possible live census, not
  // its length -- and no rehash/regrow lands inside the measured loop.
  if (const std::uint64_t hint = source.size_hint(); hint > 0) {
    const auto cpu_units = static_cast<std::uint64_t>(
        std::max<Units>(cluster_->total_capacity(ResourceType::Cpu), 0));
    const std::uint64_t census = std::min(
        hint, std::min(std::max<std::uint64_t>(cpu_units, 1), kCensusReserveCap));
    vms_.reserve(static_cast<std::size_t>(census));
    events_.reserve(static_cast<std::size_t>(census));
    scan_scratch_.reserve(static_cast<std::size_t>(census));
  }

  // Lifecycle state: compiled fault triggers + per-VM interval/retry
  // bookkeeping.  Time-triggered actions enter the calendar up front (in
  // plan order, so their seq assignment is deterministic); admission-
  // triggered ones wait in a threshold-sorted queue and are injected at
  // the admission that crosses their threshold.
  Rng fault_rng(plan.seed);
  std::size_t admissions = 0;
  std::size_t next_admission_action = 0;
  auto action_kind = [](const FaultAction& a) {
    switch (a.kind) {
      case FaultAction::Kind::Fail: return LifecycleKind::BoxFail;
      case FaultAction::Kind::Repair: return LifecycleKind::BoxRepair;
      case FaultAction::Kind::LinkFail: return LifecycleKind::LinkFail;
      case FaultAction::Kind::LinkRepair: return LifecycleKind::LinkRepair;
    }
    throw std::logic_error("Engine: bad FaultAction kind");
  };
  if (lifecycle) {
    admission_actions_.clear();
    for (std::uint32_t i = 0; i < plan.actions.size(); ++i) {
      const FaultAction& a = plan.actions[i];
      if (a.time_triggered()) {
        events_.push(a.at_time, LifecycleEvent{action_kind(a), i, 0});
      } else {
        admission_actions_.push_back(i);
      }
    }
    std::stable_sort(admission_actions_.begin(), admission_actions_.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return plan.actions[a].after_admissions <
                              plan.actions[b].after_admissions;
                     });
  }

  // Migration budget + the seed sweep event.  Pushed after the
  // time-triggered fault actions so the injected seq assignment is
  // deterministic: plan actions in plan order, then the first MIGRATE,
  // then stream-order events (DESIGN.md §9 extends the §8 contract).
  std::uint32_t migration_budget = 0;
  if (migrating) {
    migration_budget = mig.total_budget;
    events_.push(mig.first_sweep_time(),
                 LifecycleEvent{LifecycleKind::Migrate, 0, 0});
  }

  // Instantaneous optical holding power, maintained incrementally for the
  // timeline and telemetry's power track -- `track_power` above (per-VM
  // deltas live in the VM records).
  double holding_power_w = 0.0;
  auto record_timeline = [&](SimTime t) {
    if (timeline_ == nullptr) return;
    TimelinePoint p;
    p.time = t;
    p.active_vms = live_count;
    p.placed_total = m.placed;
    p.dropped_total = m.dropped;
    p.killed_total = m.killed;
    p.migrated_total = m.migrated;
    p.offline_boxes = cluster_->offline_box_count();
    p.failed_links = fabric_->failed_link_count();
    for (ResourceType ty : kAllResources) {
      p.utilization[ty] = cluster_->utilization(ty);
    }
    p.intra_net_utilization = fabric_->intra_utilization();
    p.inter_net_utilization = fabric_->inter_utilization();
    p.optical_power_w = holding_power_w;
    timeline_->record(p);
  };

  std::uint64_t sched_ticks = 0;
  // Latency samples are pushed as raw tick deltas and rescaled to
  // nanoseconds at the end of the run, once the tick rate is known.
  const std::size_t latency_base =
      latency_sink_ != nullptr ? latency_sink_->size() : 0;
  SimTime now = 0.0;
  std::uint64_t executed = 0;

  // Degraded-operation integral: simulated time spent with >= 1 box
  // offline or link failed, accumulated per inter-event gap (state is
  // piecewise constant between events, exactly like the utilization
  // signals).
  SimTime last_event_t = 0.0;
  auto note_time = [&](SimTime t) {
    if (cluster_->offline_box_count() > 0 || fabric_->failed_link_count() > 0) {
      m.degraded_tu += t - last_event_t;
    }
    last_event_t = t;
  };

  // Arrival intake: chunked pulls from the source into a fixed ring,
  // validated against the (arrival, index) ordering contract as they
  // stream in.  Invariant after a top-of-loop refill: an empty ring means
  // the source is exhausted, so "no arrivals pending" is simply
  // `ring_pos >= ring_len` everywhere below (the streaming equivalent of
  // the old materialized `cursor >= n`).
  if (arrival_ring_.size() < kArrivalChunk) arrival_ring_.resize(kArrivalChunk);
  std::size_t ring_pos = 0;
  std::size_t ring_len = 0;
  bool source_done = false;
  SimTime last_arrival = 0.0;
  std::uint32_t last_arrival_index = 0;
  bool seen_arrival = false;
  auto refill_ring = [&] {
    const ScopedCycleSpan<PhaseTimer> span(prof, phase_slot(Phase::SourcePull));
    ring_len = source.next_batch(
        std::span<wl::ArrivalItem>(arrival_ring_.data(), kArrivalChunk));
    ring_pos = 0;
    if (ring_len == 0) {
      source_done = true;
      return;
    }
    for (std::size_t i = 0; i < ring_len; ++i) {
      const wl::ArrivalItem& it = arrival_ring_[i];
      if (it.vm.lifetime < 0) {
        throw std::invalid_argument("Engine: negative lifetime in workload");
      }
      if (seen_arrival &&
          (it.vm.arrival < last_arrival ||
           (it.vm.arrival == last_arrival && it.index <= last_arrival_index))) {
        throw std::invalid_argument(
            "Engine: arrival source violates (arrival, index) ordering");
      }
      last_arrival = it.vm.arrival;
      last_arrival_index = it.index;
      seen_arrival = true;
    }
  };

  // One telemetry counter-track sample at sim time `t` (only called with
  // tel != nullptr; the cadence gate is the caller's sample_due check).
  auto tel_sample = [&](SimTime t) {
    Telemetry::CounterSample s;
    s.live_vms = live_count;
    s.offline_boxes = cluster_->offline_box_count();
    s.failed_links = fabric_->failed_link_count();
    s.arrival_ring_depth = ring_len - ring_pos;
    s.calendar_events = events_.size();
    s.holding_power_w = holding_power_w;
    tel->sample(t, s);
  };

  // One placement attempt (arrival or retry) for `vm_index`, holding for
  // `expected` time units when it sticks.  On success all metrics/state
  // updates happen here -- in the exact order of the historical arrival
  // path, which keeps the empty-plan run bit-identical.  On failure the
  // reason lands in `drop_reason` and the caller applies its retry/drop
  // policy.
  core::DropReason drop_reason{};
  // Per-reason drop tallies, enum-indexed: the hot drop path increments a
  // plain counter instead of string-scanning the CounterSet per drop.
  // First-seen order is recorded so the end-of-run materialization into
  // drops_by_reason preserves the insertion order the fingerprint hashes.
  std::array<std::int64_t, core::kNumDropReasons> drop_counts{};
  std::array<core::DropReason, core::kNumDropReasons> drop_first_seen{};
  std::size_t drop_kinds = 0;
  auto count_drop = [&] {
    if (drop_counts[static_cast<std::size_t>(drop_reason)]++ == 0) {
      drop_first_seen[drop_kinds++] = drop_reason;
    }
  };
  std::size_t pending_retries = 0;
  // `vm` is passed in (not read from the record) because arrivals have no
  // record yet; record references stay valid across the whole call either
  // way -- the SlotArena hands out slab-stable references, so even the
  // success path's insert cannot move a resident record (self-assignment
  // of a trivially copyable VmRequest through an aliasing `vm` is fine).
  //
  // The caller holds the Admission profiler span open: one span per
  // admission window (or per retry attempt), not one per VM -- the span's
  // two TSC reads amortize across the window (DESIGN.md §13).
  //
  // `defer_push` (plan-free windows only): the departure is staged in
  // arrival_push_scratch_ instead of pushed, and the caller bulk-flushes
  // at window close -- seq-identical because no other push interleaves.
  // `defer_sample` (windows without a timeline): the signal sample is the
  // caller's job, so equal-time admission runs sample once.
  auto admit = [&](std::uint32_t vm_index, const wl::VmRequest& vm,
                   double expected, bool defer_push,
                   bool defer_sample) -> bool {
    // Placement attribution is free: the run times every try_place for
    // scheduler_exec_seconds anyway, so the same two reads are carved out
    // of the admission span instead of paying two more.
    const std::uint64_t t0 = CycleClock::now();
    auto placed = allocator_->try_place(vm);
    const std::uint64_t t1 = CycleClock::now();
    prof.carve(phase_slot(Phase::Placement), t1 - t0);
    sched_ticks += t1 - t0;
    if (latency_sink_ != nullptr) {
      latency_sink_->push_back(static_cast<double>(t1 - t0));
    }
    if (latency_hist_ != nullptr) {
      latency_hist_->add(static_cast<double>(t1 - t0));
    }

    if (!placed.ok()) {
      drop_reason = placed.error();
      return false;
    }
    const std::uint32_t slot = acquire_slot();
    core::Placement& p = slot_pool_[slot];
    p = std::move(placed.value());
    // Arena insert: direct paged index, and the reference is slab-stable
    // (a resident key's record never moves -- DESIGN.md §13).
    VmState& st = vms_.find_or_insert(vm_index);
    st.vm = vm;
    st.slot = slot;
    st.live = 1;
    ++live_count;
    ++admissions;
    if (!lifecycle) {
      ++m.placed;
    } else if (!st.ever_placed) {
      ++m.placed;
      st.ever_placed = 1;
    }
    if (p.inter_rack) ++m.any_pair_inter_rack;
    if (p.used_fallback) ++m.fallback_placements;

    // Figures 5/7/10 count a VM as inter-rack when its CPU and RAM racks
    // differ; the same flag drives the RTT sample (pod-aware in the
    // three-tier extension).  Counted per placement event, so a requeued
    // VM's re-placement samples again (diagnostic semantics under faults;
    // identical to the historical per-VM count when the plan is empty).
    const bool cpu_ram_inter =
        p.rack(ResourceType::Cpu) != p.rack(ResourceType::Ram);
    if (cpu_ram_inter) ++m.inter_rack_placements;
    const bool cross_pod =
        cpu_ram_inter && !fabric_->same_pod(p.rack(ResourceType::Cpu),
                                            p.rack(ResourceType::Ram));
    m.cpu_ram_latency_ns.add(
        scenario_.latency.rtt_ns(cpu_ram_inter, cross_pod));

    // Open the photonic charging interval at its expected length (Eq. (1)
    // prepay; a later kill settles the difference -- DESIGN.md §8).  No
    // ledger span here: the charge is a handful of adds per circuit, and a
    // TSC pair around it would cost as much as the work it measures -- the
    // per-arrival charge rides in `admission`; the Ledger phase attributes
    // the lifecycle-path settlements (kill refunds, migration windows).
    ledger.charge_vm(*circuits_, vm.id, expected);

    if (track_power) {
      double vm_power = 0.0;
      circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
        vm_power +=
            phot::circuit_holding_power_w(scenario_.photonics, *fabric_, c);
      });
      holding_power_w += vm_power;
      st.holding_power = vm_power;
    }

    if (!defer_sample) {
      sample_signals(now);
      record_timeline(now);
    }
    std::uint32_t epoch = 0;
    if (lifecycle) {
      st.place_time = now;
      st.expected_hold = expected;
      epoch = ++st.epoch;
    }
    // The push is the ladder's O(1) append path (DESIGN.md §12) -- cheaper
    // than a TSC pair, so it rides in `admission` too; the Calendar phase
    // attributes the dequeue side, where the surfacing work actually lives.
    if (defer_push) {
      arrival_push_scratch_.emplace_back(
          now + expected,
          LifecycleEvent{LifecycleKind::Departure, vm_index, epoch});
    } else {
      events_.push(now + expected,
                   LifecycleEvent{LifecycleKind::Departure, vm_index, epoch});
    }
    return true;
  };
  // Inject admission-triggered fault actions whose threshold the latest
  // successful placement crossed.  They enter the merged stream at `now`
  // (seq > N), so they fire after the admission that tripped them and
  // before any later-time event -- deterministically.
  auto fire_admission_triggers = [&] {
    while (next_admission_action < admission_actions_.size()) {
      const std::uint32_t ai = admission_actions_[next_admission_action];
      const FaultAction& a = plan.actions[ai];
      if (a.after_admissions > static_cast<std::int64_t>(admissions)) break;
      ++next_admission_action;
      events_.push(now, LifecycleEvent{action_kind(a), ai, 0});
    }
  };

  // Requeue `vm_index` when the retry budget allows; returns whether a
  // RETRY event was scheduled.  `pending_retries` keeps the migration
  // schedule alive across windows where every VM is dead but re-placements
  // are still coming (the post-failure stragglers are exactly what the
  // sweeps exist to recover).
  auto requeue = [&](std::uint32_t vm_index, VmState& st) -> bool {
    if (plan.retry.max_attempts == 0 ||
        st.attempts >= plan.retry.max_attempts) {
      return false;
    }
    ++st.attempts;
    ++m.requeued;
    ++pending_retries;
    if (tel != nullptr) tel->requeue(now);
    events_.push(now + plan.retry.delay_tu,
                 LifecycleEvent{LifecycleKind::Retry, vm_index, 0});
    return true;
  };

  // Kill a resident VM at `now`: settle its charging interval, tear down
  // circuits + compute, and requeue the remaining hold when policy allows.
  // When no retry follows, this is the VM's final event and its record is
  // erased (a stale Departure then tombstones on the missing record,
  // exactly like the old epoch mismatch).  The caller's `st` reference is
  // dead after this returns.
  // Runs inside the caller's open release batch (execute_action brackets
  // each teardown scan), so compute frees defer their aggregate refresh to
  // the shared end_release_batch.
  des::LifecycleKind kill_cause = LifecycleKind::BoxFail;  // set per scan
  auto kill_vm = [&](std::uint32_t vm_index, VmState& st) {
    const double held = now - st.place_time;
    const double unused = st.expected_hold - held;
    prof.begin(phase_slot(Phase::Ledger));
    ledger.refund_vm_truncation(*circuits_, st.vm.id, unused);
    prof.end();
    allocator_->release_batched(slot_pool_[st.slot]);
    free_slots_.push_back(st.slot);
    st.live = 0;
    --live_count;
    ++m.killed;
    if (tel != nullptr) tel->kill(now, kill_cause);
    if (track_power) {
      holding_power_w -= st.holding_power;
      st.holding_power = 0.0;
    }
    bool retained = false;
    if (unused > 0.0) {
      st.expected_hold = unused;  // the re-placement's hold
      retained = requeue(vm_index, st);
    }
    if (!retained) vms_.erase(vm_index);
  };

  // Deterministic victim scan: the record arena iterates in slot order
  // (reuse-dependent), so live VM indices are collected and sorted
  // ascending before any kill fires -- kills (and their requeues) then
  // happen in exactly the historical dense-scan order.  kill_vm only
  // mutates (or erases) the victim's own record, so collect-then-kill is
  // equivalent to the old interleaved scan over 0..n.
  auto collect_live_sorted = [&] {
    scan_scratch_.clear();
    vms_.for_each([&](std::uint32_t idx, const VmState& st) {
      if (st.live) scan_scratch_.push_back(idx);
    });
    std::sort(scan_scratch_.begin(), scan_scratch_.end());
  };

  // Execute one scripted fail/repair action.  Random victims are drawn
  // here, in merged-stream order, from the plan's own RNG stream.
  // Transitions are idempotent (re-failing an offline victim is a no-op),
  // so duplicate random draws are harmless.
  auto execute_action = [&](std::uint32_t action_index, bool fail) {
    const FaultAction& a = plan.actions[action_index];
    if (a.targets_links()) {
      kill_cause = LifecycleKind::LinkFail;
      const std::uint32_t draws =
          a.link != FaultAction::kNoLink ? 1 : a.random_links;
      for (std::uint32_t k = 0; k < draws; ++k) {
        const LinkId victim =
            a.link != FaultAction::kNoLink
                ? LinkId{a.link}
                : LinkId{static_cast<std::uint32_t>(fault_rng.uniform_int(
                      0,
                      static_cast<std::int64_t>(fabric_->num_links()) - 1))};
        if (fabric_->link(victim).failed() == fail) continue;
        fabric_->set_link_failed(victim, fail);
        if (!fail) continue;
        // Dead-link teardown: every live VM holding a circuit that
        // traverses the failed link dies (in VM-index order).  The whole
        // scan is one settlement window: compute frees batch their
        // per-(rack, type) aggregate refresh behind end_release_batch
        // (no placement query can interleave with the scan).
        collect_live_sorted();
        cluster_->begin_release_batch();
        for (const std::uint32_t i : scan_scratch_) {
          VmState* st = vms_.find(i);
          if (st == nullptr || !st->live) continue;
          bool hit = false;
          circuits_->for_each_circuit_of(
              st->vm.id, [&](const net::Circuit& c) {
                for (const LinkId lid : c.path.links) {
                  if (lid == victim) {
                    hit = true;
                    break;
                  }
                }
              });
          if (hit) kill_vm(i, *st);
        }
        cluster_->end_release_batch();
      }
    } else {
      kill_cause = LifecycleKind::BoxFail;
      const std::uint32_t draws =
          a.box != FaultAction::kNoBox ? 1 : a.random_boxes;
      for (std::uint32_t k = 0; k < draws; ++k) {
        const BoxId victim =
            a.box != FaultAction::kNoBox
                ? BoxId{a.box}
                : BoxId{static_cast<std::uint32_t>(fault_rng.uniform_int(
                      0,
                      static_cast<std::int64_t>(cluster_->num_boxes()) - 1))};
        if (cluster_->box_unchecked(victim).offline() == fail) continue;
        cluster_->set_box_offline(victim, fail);
        if (!fail) continue;
        // Offline-box teardown: every resident VM dies with its circuits.
        // One settlement window per scan, exactly like the link case.
        collect_live_sorted();
        cluster_->begin_release_batch();
        for (const std::uint32_t i : scan_scratch_) {
          VmState* st = vms_.find(i);
          if (st == nullptr || !st->live) continue;
          const core::Placement& p = slot_pool_[st->slot];
          for (ResourceType t : kAllResources) {
            if (p.box(t) == victim) {
              kill_vm(i, *st);
              break;
            }
          }
        }
        cluster_->end_release_batch();
      }
    }
    sample_signals(now);
    record_timeline(now);
  };

  // One live-migration attempt at `now` (DESIGN.md §9).  Make-before-
  // break: the new placement is established through the normal allocator
  // path while the old one still holds its resources (the old boxes are
  // temporarily taken offline so the search cannot pick them -- restored
  // before any signal is sampled), then the old circuits and compute are
  // retired atomically.  The PowerLedger settles with a prepay-and-settle
  // split: the old circuits are charged through now + cost (the double-
  // charge window while state drains), the new ones prepay the remaining
  // hold.  Returns whether the migration committed.  Nothing here inserts
  // into or erases from the record table, so `st` stays valid throughout.
  auto try_migrate = [&](std::uint32_t vm_index) -> bool {
    VmState& st = *vms_.find(vm_index);
    const wl::VmRequest& vm = st.vm;
    core::Placement& old_p = slot_pool_[st.slot];
    const int old_score = migration_spread_score(old_p, *fabric_);
    const double remaining = st.place_time + st.expected_hold - now;
    // remaining > cost is guaranteed by the sweep's candidate filter
    // (same instant, same inputs); both are still needed for settlement.
    const double cost = migration_cost_tu(
        mig, vm.ram_mb, old_p.demand.cpu_ram,
        scenario_.photonics.switch_energy.seconds_per_time_unit);
    const auto k_old =
        static_cast<std::uint32_t>(circuits_->circuit_count_of(vm.id));

    // Exclude the current boxes from the search (they are distinct: one
    // box per resource type), remembering exactly what we toggled.
    std::array<BoxId, kNumResourceTypes> toggled;
    std::size_t n_toggled = 0;
    for (ResourceType t : kAllResources) {
      const BoxId b = old_p.box(t);
      if (!cluster_->box_unchecked(b).offline()) {
        cluster_->set_box_offline(b, true);
        toggled[n_toggled++] = b;
      }
    }
    // Not counted into scheduler_exec_seconds or the latency sinks:
    // Figures 11/12 measure admission scheduling only.
    auto placed = allocator_->try_place(vm);
    for (std::size_t k = 0; k < n_toggled; ++k) {
      cluster_->set_box_offline(toggled[k], false);
    }
    if (!placed.ok()) return false;  // nowhere better; placement untouched

    core::Placement new_p = std::move(placed.value());
    if (mig.only_if_improves &&
        migration_spread_score(new_p, *fabric_) >= old_score) {
      // No improvement: roll the fresh placement back untouched.  Its
      // circuits are exactly the suffix after the old placement's.  The
      // three compute frees settle as one window (no query interleaves).
      circuits_->teardown_suffix(vm.id, k_old);
      cluster_->begin_release_batch();
      for (ResourceType t : kAllResources) {
        cluster_->release_batched(new_p.compute[index(t)]);
      }
      cluster_->end_release_batch();
      return false;
    }

    // Settle the ledger at the migration instant: the old circuits (the
    // prefix, in establishment order) refund their tail beyond the cost
    // window; the new ones open an interval for the remaining hold.
    std::size_t pos = 0;
    prof.begin(phase_slot(Phase::Ledger));
    circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
      if (pos < k_old) {
        ledger.refund_circuit_truncation(c, remaining - cost);
      } else {
        ledger.charge_circuit(c, remaining);
      }
      ++pos;
    });
    prof.end();

    // Retire the old placement: circuits, then compute -- the compute
    // frees batched as one settlement window.
    circuits_->teardown_prefix(vm.id, k_old);
    const bool was_inter =
        old_p.rack(ResourceType::Cpu) != old_p.rack(ResourceType::Ram);
    cluster_->begin_release_batch();
    for (ResourceType t : kAllResources) {
      cluster_->release_batched(old_p.compute[index(t)]);
    }
    cluster_->end_release_batch();

    const bool now_inter =
        new_p.rack(ResourceType::Cpu) != new_p.rack(ResourceType::Ram);
    old_p = std::move(new_p);  // the VM's pool slot is reused in place
    st.place_time = now;
    st.expected_hold = remaining;
    const std::uint32_t epoch = ++st.epoch;
    events_.push(now + remaining,
                 LifecycleEvent{LifecycleKind::Departure, vm_index, epoch});

    ++m.migrated;
    m.migration_tu += cost;
    if (was_inter && !now_inter) ++m.interrack_vms_recovered;

    if (track_power) {
      double vm_power = 0.0;
      circuits_->for_each_circuit_of(vm.id, [&](const net::Circuit& c) {
        vm_power +=
            phot::circuit_holding_power_w(scenario_.photonics, *fabric_, c);
      });
      holding_power_w += vm_power - st.holding_power;
      st.holding_power = vm_power;
    }
    sample_signals(now);
    record_timeline(now);
    return true;
  };

  // One defragmentation sweep at `now`: gather the spread live VMs whose
  // remaining hold outlasts their migration cost, rank them worst-first,
  // and attempt up to the per-sweep budget.  Slot-order iteration is safe
  // here: the live/spread counters are order-independent sums, candidate
  // keys are unique (the packed key embeds the VM index), and
  // rank_worst_spread totally orders them -- so the ranked sequence is
  // identical no matter what order candidates were collected in.
  auto run_migration_sweep = [&] {
    if (mig.skip_while_degraded && (cluster_->offline_box_count() > 0 ||
                                    fabric_->failed_link_count() > 0)) {
      return;
    }
    mig_keys_.clear();
    std::size_t live = 0, spread = 0;
    vms_.for_each([&](std::uint32_t i, const VmState& st) {
      if (!st.live) return;
      ++live;
      const core::Placement& p = slot_pool_[st.slot];
      const int score = migration_spread_score(p, *fabric_);
      if (score <= 0) return;
      ++spread;  // counts toward the fraction trigger even when doomed
      // Filter doomed candidates here, not in try_migrate: a near-departure
      // VM ranked first would otherwise burn a per-sweep attempt slot that
      // a long-lived straggler could have used.
      const double remaining = st.place_time + st.expected_hold - now;
      const double cost = migration_cost_tu(
          mig, st.vm.ram_mb, p.demand.cpu_ram,
          scenario_.photonics.switch_energy.seconds_per_time_unit);
      if (remaining <= cost) return;
      mig_keys_.push_back(pack_candidate(score, i));
    });
    if (mig_keys_.empty() || live == 0) return;
    if (static_cast<double>(spread) <
        mig.min_interrack_fraction * static_cast<double>(live)) {
      return;
    }
    const std::size_t budget = std::min<std::size_t>(
        mig_keys_.size(),
        std::min<std::size_t>(mig.per_sweep_budget, migration_budget));
    rank_worst_spread(mig_keys_, budget);
    for (std::size_t k = 0; k < budget; ++k) {
      if (try_migrate(candidate_index(mig_keys_[k]))) --migration_budget;
    }
  };
  // ---- Checkpoint format v1 (DESIGN.md §11) ----------------------------
  // Serialized only at the loop's safe point (arrival ring empty, top of
  // the merge loop), so no in-flight chunk state exists: every consumed
  // arrival has been fully admitted/dropped/requeued, and the source's own
  // position marks the first unconsumed request.  Wall-clock state
  // (sched_ticks, latency sinks) is deliberately excluded -- it is
  // measurement, not simulation, and the fingerprint never hashes it.
  auto put_running_stats = [](std::ostream& os, const RunningStats& rs) {
    const RunningStats::State s = rs.save();
    bin::put_u64(os, s.n);
    bin::put_f64(os, s.mean);
    bin::put_f64(os, s.m2);
    bin::put_f64(os, s.sum);
    bin::put_f64(os, s.min);
    bin::put_f64(os, s.max);
  };
  auto get_running_stats = [](std::istream& is, RunningStats& rs) {
    RunningStats::State s;
    s.n = bin::get_u64(is);
    s.mean = bin::get_f64(is);
    s.m2 = bin::get_f64(is);
    s.sum = bin::get_f64(is);
    s.min = bin::get_f64(is);
    s.max = bin::get_f64(is);
    rs.restore(s);
  };
  auto put_twm = [](std::ostream& os, const TimeWeightedMean& t) {
    const TimeWeightedMean::State s = t.save();
    bin::put_u8(os, s.started);
    bin::put_f64(os, s.t_first);
    bin::put_f64(os, s.t_last);
    bin::put_f64(os, s.value);
    bin::put_f64(os, s.area);
    bin::put_f64(os, s.peak);
  };
  auto get_twm = [](std::istream& is, TimeWeightedMean& t) {
    TimeWeightedMean::State s;
    s.started = bin::get_u8(is);
    s.t_first = bin::get_f64(is);
    s.t_last = bin::get_f64(is);
    s.value = bin::get_f64(is);
    s.area = bin::get_f64(is);
    s.peak = bin::get_f64(is);
    t.restore(s);
  };

  auto serialize = [&](std::ostream& os) {
    bin::put_u32(os, kCheckpointMagic);
    bin::put_str(os, m.workload);
    bin::put_str(os, algorithm_);

    // Loop scalars.
    bin::put_f64(os, now);
    bin::put_f64(os, last_event_t);
    bin::put_u64(os, executed);
    bin::put_u64(os, live_count);
    bin::put_u64(os, admissions);
    bin::put_u64(os, next_admission_action);
    bin::put_u64(os, pending_retries);
    bin::put_u32(os, migration_budget);
    bin::put_f64(os, last_arrival);
    bin::put_u32(os, last_arrival_index);
    bin::put_u8(os, seen_arrival ? 1 : 0);

    // Deterministic metric accumulators.
    bin::put_u64(os, m.total_vms);
    bin::put_u64(os, m.placed);
    bin::put_u64(os, m.dropped);
    bin::put_u64(os, m.inter_rack_placements);
    bin::put_u64(os, m.any_pair_inter_rack);
    bin::put_u64(os, m.fallback_placements);
    bin::put_u64(os, m.killed);
    bin::put_u64(os, m.requeued);
    bin::put_u64(os, m.retry_placed);
    bin::put_u64(os, m.migrated);
    bin::put_u64(os, m.interrack_vms_recovered);
    bin::put_f64(os, m.degraded_tu);
    bin::put_f64(os, m.migration_tu);
    put_running_stats(os, m.cpu_ram_latency_ns);
    bin::put_u64(os, drop_kinds);
    for (std::size_t k = 0; k < drop_kinds; ++k) {
      bin::put_u8(os, static_cast<std::uint8_t>(drop_first_seen[k]));
    }
    for (const std::int64_t c : drop_counts) bin::put_i64(os, c);
    for (ResourceType ty : kAllResources) put_twm(os, util[ty]);
    put_twm(os, intra_util);
    put_twm(os, inter_util);

    {  // photonic ledger
      const phot::PowerLedger::State s = ledger.save();
      bin::put_f64(os, s.total.switch_switching_j);
      bin::put_f64(os, s.total.switch_trimming_j);
      bin::put_f64(os, s.total.transceiver_j);
      bin::put_u64(os, s.charged);
      bin::put_u64(os, s.refunded);
      RunningStats pce;
      pce.restore(s.per_circuit_energy);
      put_running_stats(os, pce);
    }

    {  // cluster occupancy + fault flags
      const topo::ClusterSnapshot snap = cluster_->snapshot();
      bin::put_u64(os, snap.brick_available.size());
      for (const auto& box : snap.brick_available) {
        bin::put_u64(os, box.size());
        for (const Units u : box) bin::put_i64(os, u);
      }
      std::uint64_t n_off = 0;
      for (std::size_t b = 0; b < cluster_->num_boxes(); ++b) {
        const BoxId id{static_cast<std::uint32_t>(b)};
        if (cluster_->box_unchecked(id).offline()) ++n_off;
      }
      bin::put_u64(os, n_off);
      for (std::size_t b = 0; b < cluster_->num_boxes(); ++b) {
        const auto id = static_cast<std::uint32_t>(b);
        if (cluster_->box_unchecked(BoxId{id}).offline()) bin::put_u32(os, id);
      }
      std::uint64_t n_fail = 0;
      for (std::size_t l = 0; l < fabric_->num_links(); ++l) {
        if (fabric_->link(LinkId{static_cast<std::uint32_t>(l)}).failed()) {
          ++n_fail;
        }
      }
      bin::put_u64(os, n_fail);
      for (std::size_t l = 0; l < fabric_->num_links(); ++l) {
        const auto id = static_cast<std::uint32_t>(l);
        if (fabric_->link(LinkId{id}).failed()) bin::put_u32(os, id);
      }
    }

    // VM records in ascending index order (the arena iterates in slot
    // order); live records carry their placement and circuits, the latter
    // in establishment order so adopt() replays for_each_circuit_of
    // identically.  Ascending-index order is also what keeps format v1
    // stable across the U32Map -> SlotArena move: the bytes depend only
    // on the record set, never the container (DESIGN.md §13).
    scan_scratch_.clear();
    vms_.for_each([&](std::uint32_t idx, const VmState&) {
      scan_scratch_.push_back(idx);
    });
    std::sort(scan_scratch_.begin(), scan_scratch_.end());
    bin::put_u64(os, scan_scratch_.size());
    for (const std::uint32_t idx : scan_scratch_) {
      const VmState& st = *vms_.find(idx);
      bin::put_u32(os, idx);
      bin::put_u32(os, st.vm.id.value());
      bin::put_i64(os, st.vm.cores);
      bin::put_i64(os, st.vm.ram_mb);
      bin::put_i64(os, st.vm.storage_mb);
      bin::put_f64(os, st.vm.arrival);
      bin::put_f64(os, st.vm.lifetime);
      bin::put_u32(os, st.attempts);
      bin::put_u32(os, st.epoch);
      bin::put_f64(os, st.place_time);
      bin::put_f64(os, st.expected_hold);
      bin::put_f64(os, st.holding_power);
      bin::put_u8(os, st.live);
      bin::put_u8(os, st.ever_placed);
      if (!st.live) continue;
      const core::Placement& p = slot_pool_[st.slot];
      bin::put_u32(os, p.vm.value());
      for (ResourceType t : kAllResources) {
        const topo::BoxAllocation& a = p.compute[index(t)];
        bin::put_u32(os, a.box.value());
        bin::put_u8(os, static_cast<std::uint8_t>(a.type));
        bin::put_i64(os, a.units);
        bin::put_u64(os, a.slices.size());
        for (const topo::BrickSlice& s : a.slices) {
          bin::put_u32(os, s.brick);
          bin::put_i64(os, s.units);
        }
      }
      for (ResourceType t : kAllResources) {
        bin::put_u32(os, p.racks[index(t)].value());
      }
      for (ResourceType t : kAllResources) bin::put_i64(os, p.units[t]);
      bin::put_i64(os, p.demand.cpu_ram);
      bin::put_i64(os, p.demand.ram_sto);
      bin::put_u8(os, p.inter_rack ? 1 : 0);
      bin::put_u8(os, p.used_fallback ? 1 : 0);
      bin::put_u64(os, circuits_->circuit_count_of(st.vm.id));
      circuits_->for_each_circuit_of(st.vm.id, [&](const net::Circuit& c) {
        bin::put_u32(os, c.id.value());
        bin::put_u32(os, c.vm.value());
        bin::put_u8(os, static_cast<std::uint8_t>(c.flow));
        bin::put_i64(os, c.bandwidth);
        bin::put_u64(os, c.path.links.size());
        for (const LinkId l : c.path.links) bin::put_u32(os, l.value());
        bin::put_u64(os, c.path.switches.size());
        for (const SwitchId s : c.path.switches) bin::put_u32(os, s.value());
        bin::put_u8(os, c.path.inter_rack ? 1 : 0);
      });
    }
    bin::put_u32(os, circuits_->next_id());

    // Injected-event calendar as the canonical sorted (time, seq) entry
    // sequence -- the ladder's tier structure is an implementation detail
    // (DESIGN.md §12).  Restore accepts any entry order, so v1 checkpoints
    // (verbatim heap arrays) stay readable; note a sorted sequence is
    // itself a valid heap array, so the format is compatible both ways.
    bin::put_u64(os, events_.scheduled_total());
    const auto entries = events_.sorted_entries();
    bin::put_u64(os, entries.size());
    for (const auto& e : entries) {
      bin::put_f64(os, e.time);
      bin::put_u64(os, e.seq);
      bin::put_u8(os, static_cast<std::uint8_t>(e.payload.kind));
      bin::put_u32(os, e.payload.subject);
      bin::put_u32(os, e.payload.epoch);
    }

    for (const std::uint64_t w : fault_rng.generator().state()) {
      bin::put_u64(os, w);
    }
    allocator_->save_state(os);
    source.save_position(os);
  };

  auto restore = [&](std::istream& is) {
    if (bin::get_u32(is) != kCheckpointMagic) {
      throw std::runtime_error("checkpoint: bad magic");
    }
    m.workload = bin::get_str(is);
    const std::string algo = bin::get_str(is);
    if (algo != algorithm_) {
      throw std::runtime_error("checkpoint: algorithm mismatch (checkpoint '" +
                               algo + "', engine '" + algorithm_ + "')");
    }
    now = bin::get_f64(is);
    last_event_t = bin::get_f64(is);
    executed = bin::get_u64(is);
    live_count = static_cast<std::size_t>(bin::get_u64(is));
    admissions = static_cast<std::size_t>(bin::get_u64(is));
    next_admission_action = static_cast<std::size_t>(bin::get_u64(is));
    pending_retries = static_cast<std::size_t>(bin::get_u64(is));
    migration_budget = bin::get_u32(is);
    last_arrival = bin::get_f64(is);
    last_arrival_index = bin::get_u32(is);
    seen_arrival = bin::get_u8(is) != 0;

    m.total_vms = static_cast<std::size_t>(bin::get_u64(is));
    m.placed = static_cast<std::size_t>(bin::get_u64(is));
    m.dropped = static_cast<std::size_t>(bin::get_u64(is));
    m.inter_rack_placements = static_cast<std::size_t>(bin::get_u64(is));
    m.any_pair_inter_rack = static_cast<std::size_t>(bin::get_u64(is));
    m.fallback_placements = static_cast<std::size_t>(bin::get_u64(is));
    m.killed = static_cast<std::size_t>(bin::get_u64(is));
    m.requeued = static_cast<std::size_t>(bin::get_u64(is));
    m.retry_placed = static_cast<std::size_t>(bin::get_u64(is));
    m.migrated = static_cast<std::size_t>(bin::get_u64(is));
    m.interrack_vms_recovered = static_cast<std::size_t>(bin::get_u64(is));
    m.degraded_tu = bin::get_f64(is);
    m.migration_tu = bin::get_f64(is);
    get_running_stats(is, m.cpu_ram_latency_ns);
    drop_kinds = static_cast<std::size_t>(bin::get_u64(is));
    if (drop_kinds > core::kNumDropReasons) {
      throw std::runtime_error("checkpoint: bad drop table");
    }
    for (std::size_t k = 0; k < drop_kinds; ++k) {
      const std::uint8_t r = bin::get_u8(is);
      if (r >= core::kNumDropReasons) {
        throw std::runtime_error("checkpoint: bad drop reason");
      }
      drop_first_seen[k] = static_cast<core::DropReason>(r);
    }
    for (std::int64_t& c : drop_counts) c = bin::get_i64(is);
    for (ResourceType ty : kAllResources) get_twm(is, util[ty]);
    get_twm(is, intra_util);
    get_twm(is, inter_util);

    {  // photonic ledger
      phot::PowerLedger::State s;
      s.total.switch_switching_j = bin::get_f64(is);
      s.total.switch_trimming_j = bin::get_f64(is);
      s.total.transceiver_j = bin::get_f64(is);
      s.charged = bin::get_u64(is);
      s.refunded = bin::get_u64(is);
      RunningStats pce;
      get_running_stats(is, pce);
      s.per_circuit_energy = pce.save();
      ledger.restore(s);
    }

    std::vector<std::uint32_t> failed_links;
    {  // cluster occupancy + fault flags
      topo::ClusterSnapshot snap;
      const std::uint64_t n_boxes = bin::get_u64(is);
      if (n_boxes != cluster_->num_boxes()) {
        throw std::runtime_error("checkpoint: cluster shape mismatch");
      }
      snap.brick_available.resize(n_boxes);
      for (std::size_t b = 0; b < n_boxes; ++b) {
        const std::uint64_t n_bricks = bin::get_u64(is);
        const topo::Box& box =
            cluster_->box_unchecked(BoxId{static_cast<std::uint32_t>(b)});
        if (n_bricks != box.brick_count()) {
          throw std::runtime_error("checkpoint: cluster shape mismatch");
        }
        snap.brick_available[b].resize(n_bricks);
        for (Units& u : snap.brick_available[b]) u = bin::get_i64(is);
      }
      cluster_->restore(snap);  // also clears every offline flag
      const std::uint64_t n_off = bin::get_u64(is);
      for (std::uint64_t k = 0; k < n_off; ++k) {
        const std::uint32_t id = bin::get_u32(is);
        if (id >= cluster_->num_boxes()) {
          throw std::runtime_error("checkpoint: box id out of range");
        }
        cluster_->set_box_offline(BoxId{id}, true);
      }
      const std::uint64_t n_fail = bin::get_u64(is);
      for (std::uint64_t k = 0; k < n_fail; ++k) {
        const std::uint32_t id = bin::get_u32(is);
        if (id >= fabric_->num_links()) {
          throw std::runtime_error("checkpoint: link id out of range");
        }
        // Deferred: circuits must be adopted (bandwidth reserved) first --
        // a consistent checkpoint has no live circuit over a failed link,
        // but the fabric cannot know that until the reservations exist.
        failed_links.push_back(id);
      }
    }

    const std::uint64_t n_rec = bin::get_u64(is);
    std::size_t restored_live = 0;
    for (std::uint64_t r = 0; r < n_rec; ++r) {
      const std::uint32_t idx = bin::get_u32(is);
      VmState st;
      st.vm.id = VmId{bin::get_u32(is)};
      st.vm.cores = bin::get_i64(is);
      st.vm.ram_mb = bin::get_i64(is);
      st.vm.storage_mb = bin::get_i64(is);
      st.vm.arrival = bin::get_f64(is);
      st.vm.lifetime = bin::get_f64(is);
      st.attempts = bin::get_u32(is);
      st.epoch = bin::get_u32(is);
      st.place_time = bin::get_f64(is);
      st.expected_hold = bin::get_f64(is);
      st.holding_power = bin::get_f64(is);
      st.live = bin::get_u8(is);
      st.ever_placed = bin::get_u8(is);
      if (st.live) {
        ++restored_live;
        core::Placement p;
        p.vm = VmId{bin::get_u32(is)};
        for (ResourceType t : kAllResources) {
          topo::BoxAllocation& a = p.compute[index(t)];
          a.box = BoxId{bin::get_u32(is)};
          a.type = static_cast<ResourceType>(bin::get_u8(is));
          a.units = bin::get_i64(is);
          const std::uint64_t n_slices = bin::get_u64(is);
          a.slices.clear();
          for (std::uint64_t si = 0; si < n_slices; ++si) {
            const std::uint32_t brick = bin::get_u32(is);
            const Units u = bin::get_i64(is);
            a.slices.push_back(topo::BrickSlice{brick, u});
          }
        }
        for (ResourceType t : kAllResources) {
          p.racks[index(t)] = RackId{bin::get_u32(is)};
        }
        for (ResourceType t : kAllResources) p.units[t] = bin::get_i64(is);
        p.demand.cpu_ram = bin::get_i64(is);
        p.demand.ram_sto = bin::get_i64(is);
        p.inter_rack = bin::get_u8(is) != 0;
        p.used_fallback = bin::get_u8(is) != 0;
        // Slot numbering is internal (never observable through metrics or
        // events), so ascending-record-order assignment here need not
        // match the checkpointing run's interleaved acquire/free history.
        st.slot = acquire_slot();
        slot_pool_[st.slot] = std::move(p);
        holding_power_w += st.holding_power;
        const std::uint64_t n_circ = bin::get_u64(is);
        for (std::uint64_t ci = 0; ci < n_circ; ++ci) {
          net::Circuit c;
          c.id = CircuitId{bin::get_u32(is)};
          c.vm = VmId{bin::get_u32(is)};
          c.flow = static_cast<net::FlowKind>(bin::get_u8(is));
          c.bandwidth = bin::get_i64(is);
          const std::uint64_t nl = bin::get_u64(is);
          for (std::uint64_t li = 0; li < nl; ++li) {
            c.path.links.push_back(LinkId{bin::get_u32(is)});
          }
          const std::uint64_t ns = bin::get_u64(is);
          for (std::uint64_t si = 0; si < ns; ++si) {
            c.path.switches.push_back(SwitchId{bin::get_u32(is)});
          }
          c.path.inter_rack = bin::get_u8(is) != 0;
          circuits_->adopt(std::move(c));
        }
      }
      vms_.find_or_insert(idx) = std::move(st);
    }
    if (restored_live != live_count) {
      throw std::runtime_error("checkpoint: live record count mismatch");
    }
    circuits_->set_next_id(bin::get_u32(is));
    for (const std::uint32_t id : failed_links) {
      fabric_->set_link_failed(LinkId{id}, true);
    }

    {  // injected-event calendar
      const std::uint64_t next_seq = bin::get_u64(is);
      const std::uint64_t n_entries = bin::get_u64(is);
      std::vector<decltype(events_)::Entry> entries;
      entries.reserve(n_entries);
      for (std::uint64_t k = 0; k < n_entries; ++k) {
        decltype(events_)::Entry e;
        e.time = bin::get_f64(is);
        e.seq = bin::get_u64(is);
        const std::uint8_t kind = bin::get_u8(is);
        if (kind > static_cast<std::uint8_t>(LifecycleKind::Migrate)) {
          throw std::runtime_error("checkpoint: bad event kind");
        }
        e.payload.kind = static_cast<LifecycleKind>(kind);
        e.payload.subject = bin::get_u32(is);
        e.payload.epoch = bin::get_u32(is);
        entries.push_back(e);
      }
      events_.restore(std::move(entries), next_seq);
    }

    Xoshiro256::State rng_state;
    for (std::uint64_t& w : rng_state) w = bin::get_u64(is);
    fault_rng.generator().set_state(rng_state);
    allocator_->restore_state(is);
    source.restore_position(is);
  };
  if (resume != nullptr) {
    restore(*resume);
  } else {
    sample_signals(0.0);
  }
  if (tel != nullptr) {
    // After restore: the sampler re-arms at the restored `now` (fresh
    // runs at 0), so a resumed run's telemetry continues cleanly without
    // any state having crossed the checkpoint.
    tel->begin_run(algorithm_, m.workload, now);
    tel_sample(now);
  }
  std::uint64_t last_ckpt_executed = executed;
  auto maybe_checkpoint = [&] {
    if (ckpt == nullptr || ckpt->every_events == 0 || !ckpt->emit) return;
    if (executed - last_ckpt_executed < ckpt->every_events) return;
    last_ckpt_executed = executed;
    const ScopedCycleSpan<PhaseTimer> span(prof, phase_slot(Phase::Checkpoint));
    std::ostringstream os(std::ios::out | std::ios::binary);
    serialize(os);
    ckpt->emit(os.str());
  };

  // The merged event loop.  Next event = min over the arrival ring head
  // (time = arrival, seq = index) and the injected-event heap top; at
  // equal times the arrival's smaller seq wins, so the comparison reduces
  // to arrival_time <= injected_time.
  //
  // The whole loop runs under the Merge span: every other phase span nests
  // inside it, and with exclusive attribution (CycleSpanStack) the Merge
  // slot collects exactly the loop's residual scaffolding -- ring
  // bookkeeping, the window condition, event dispatch -- which PR 8 left
  // as the unattributed sum-vs-wall gap (DESIGN.md §13).
  constexpr SimTime kNeverTime = std::numeric_limits<SimTime>::infinity();
  prof.begin(phase_slot(Phase::Merge));
  while (true) {
    if (ring_pos >= ring_len && !source_done) {
      // Chunk boundary: every pulled arrival is fully settled, so this is
      // the checkpoint safe point -- snapshot (if due), then refill.
      maybe_checkpoint();
      refill_ring();
    }
    const bool have_arrival = ring_pos < ring_len;
    if (!have_arrival && events_.empty()) break;
    // The Calendar span brackets the merge query *and* the pop: the
    // ladder's real dequeue work (lazy tier surfacing) runs inside
    // next_time(), not inside the subsequent cursor-bump pop.
    prof.begin(phase_slot(Phase::Calendar));
    SimTime limit = events_.empty() ? kNeverTime : events_.next_time();
    const bool take_arrival =
        have_arrival && arrival_ring_[ring_pos].vm.arrival <= limit;

    if (take_arrival) {
      prof.end();
      // ---- Admission window (DESIGN.md §13) --------------------------
      // The maximal run of ring arrivals that sorts before the calendar
      // head is admitted under one bracket: one Admission span, batched
      // executed/total_vms counters, and the per-event branches hoisted
      // to per-window checks.  `limit` makes the inner loop exact: it
      // starts at the calendar head and is lowered by every push the
      // window performs (a deferred departure at now+expected directly;
      // any lifecycle push -- retry, trigger, departure -- by re-reading
      // next_time()), so "arrival <= limit" is precisely the merge
      // comparison the per-event loop would have made, ties included
      // (arrivals win every equal-time tie structurally).  No injected
      // event can execute inside a window, which is what licenses the
      // hoists below:
      //   - degraded: fault state only changes via events, so the
      //     note_time() branch is per-window; when healthy, degraded_tu
      //     accumulates nothing and last_event_t advances once at close.
      //     When degraded, per-event note_time keeps the FP-exact
      //     per-gap sum.
      //   - defer_sample (no timeline attached): only admissions move
      //     utilization inside a window and equal-time TWM samples add
      //     zero area, so an equal-time admission run samples once, at
      //     its last success -- value and area exact, and peak too
      //     because utilization only rises across the run.  Samples at
      //     distinct times still happen per event (the flush below runs
      //     before the next placement can move utilization).
      //   - defer_push (plan-free runs): departure pushes stage in
      //     arrival_push_scratch_ and bulk-flush at window close with
      //     identical seq assignment, since no retry/trigger push can
      //     interleave without a plan.
      const bool defer_push = admission_batching_ && !lifecycle;
      const bool defer_sample = admission_batching_ && timeline_ == nullptr;
      const bool degraded =
          lifecycle && (cluster_->offline_box_count() > 0 ||
                        fabric_->failed_link_count() > 0);
      bool sample_pending = false;
      SimTime sample_t = 0.0;
      std::uint64_t window_events = 0;
      const SimTime window_t0 =
          tel != nullptr ? arrival_ring_[ring_pos].vm.arrival : SimTime{0};
      const std::uint64_t placed_before = tel != nullptr ? m.placed : 0;
      if (defer_push) arrival_push_scratch_.clear();
      prof.begin(phase_slot(Phase::Admission));
      do {
        const wl::ArrivalItem& item = arrival_ring_[ring_pos++];
        const std::uint32_t vm_index = item.index;
        now = item.vm.arrival;
        if (degraded) note_time(now);
        ++window_events;
        if (sample_pending && now != sample_t) {
          // Time advanced past a deferred equal-time sample: utilization
          // has not moved since (only drops in between), so sampling the
          // current state at sample_t is exact.
          sample_signals(sample_t);
          sample_pending = false;
        }
        if (admit(vm_index, item.vm, item.vm.lifetime, defer_push,
                  defer_sample)) {
          if (defer_sample) {
            sample_pending = true;
            sample_t = now;
          }
          if (defer_push) {
            limit = std::min(limit, arrival_push_scratch_.back().first);
          }
          if (lifecycle) fire_admission_triggers();
        } else {
          bool queued = false;
          if (lifecycle && plan.retry.max_attempts > 0) {
            // First requeue of a never-admitted VM creates its record (the
            // retry path needs the request after the ring moves on).
            VmState& st = vms_.find_or_insert(vm_index);
            st.vm = item.vm;
            queued = requeue(vm_index, st);
            if (!queued) vms_.erase(vm_index);
          }
          if (!queued) {
            ++m.dropped;
            count_drop();
            if (tel != nullptr) tel->drop(now, drop_reason);
          }
        }
        if (lifecycle) {
          // Lifecycle pushes (retries, triggers, epoch-stamped
          // departures) interleave with the window, so the head is
          // re-read rather than tracked incrementally.
          limit = events_.empty() ? kNeverTime : events_.next_time();
        }
        if (!admission_batching_) break;  // per-event reference mode
      } while (ring_pos < ring_len &&
               arrival_ring_[ring_pos].vm.arrival <= limit);
      if (sample_pending) sample_signals(sample_t);
      if (defer_push && !arrival_push_scratch_.empty()) {
        events_.push_bulk(arrival_push_scratch_);
      }
      executed += window_events;
      m.total_vms += window_events;
      if (lifecycle && !degraded) last_event_t = now;
      prof.end();
      if (tel != nullptr) {
        tel->admission_window(window_t0, now, window_events,
                              m.placed - placed_before);
        if (tel->sample_due(now)) tel_sample(now);
      }
    } else {
      const auto e = events_.pop();
      prof.end();
      switch (e.payload.kind) {
        case LifecycleKind::Departure: {
          VmState* st = vms_.find(e.payload.subject);
          if (st == nullptr || !st->live ||
              (lifecycle && e.payload.epoch != st->epoch)) {
            if (!lifecycle) {
              throw std::logic_error("Engine: departure for unknown placement");
            }
            break;  // tombstone: this placement was killed by a box failure
          }
          now = e.time;
          if (lifecycle) note_time(now);
          // Settlement window (DESIGN.md §12): the whole same-timestamp
          // departure run is drained out of the calendar into a scratch
          // batch first (ties are contiguous at the ladder's sorted bottom
          // tier), then settled under one begin/end_release_batch bracket:
          // the per-rack aggregate/index refresh is deferred and
          // deduplicated across the run, box ledgers / cluster totals /
          // circuits settle per event, and the time-weighted signals are
          // sampled once per window -- bit-identical to per-event
          // sampling, because equal-time samples add zero area and
          // releases only lower utilization, so they can never set a peak
          // (timeline runs keep per-event samples: the exported series is
          // observable output).  No placement can interleave: equal-time
          // arrivals were all consumed before this event (arrivals win
          // every (time, seq) tie), and any other injected kind ends the
          // run since events leave the calendar in (time, seq) order.
          // One span for the whole window (drain + settle): batches are
          // usually singletons, so a second TSC pair per batch would cost
          // more than the drain it measures.  The drained pops are cursor
          // bumps off the already-surfaced bottom tier; the Calendar phase
          // attributes the main-loop pop, where surfacing actually runs.
          prof.begin(phase_slot(Phase::Settlement));
          batch_scratch_.clear();
          batch_scratch_.push_back(e);
          while (!events_.empty() && events_.next_time() == now &&
                 events_.top().payload.kind == LifecycleKind::Departure) {
            batch_scratch_.push_back(events_.pop());
          }
          cluster_->begin_release_batch();
          for (const auto& d : batch_scratch_) {
            const std::uint32_t vm_index = d.payload.subject;
            VmState* dst = vms_.find(vm_index);
            if (dst == nullptr || !dst->live ||
                (lifecycle && d.payload.epoch != dst->epoch)) {
              if (!lifecycle) {
                throw std::logic_error(
                    "Engine: departure for unknown placement");
              }
              continue;  // tombstone inside the window
            }
            ++executed;
            allocator_->release_batched(slot_pool_[dst->slot]);
            free_slots_.push_back(dst->slot);
            --live_count;
            if (track_power) holding_power_w -= dst->holding_power;
            if (timeline_ != nullptr) {
              sample_signals(now);
              record_timeline(now);
            }
            // The departure is the VM's final event: erase its record
            // (the slot is recycled, so `dst` dies here).
            vms_.erase(vm_index);
          }
          cluster_->end_release_batch();
          if (timeline_ == nullptr) sample_signals(now);
          prof.end();
          if (tel != nullptr) {
            tel->settlement_window(now, batch_scratch_.size());
            if (tel->sample_due(now)) tel_sample(now);
          }
          break;
        }
        case LifecycleKind::BoxFail:
        case LifecycleKind::BoxRepair:
        case LifecycleKind::LinkFail:
        case LifecycleKind::LinkRepair: {
          now = e.time;
          note_time(now);
          ++executed;
          {
            const ScopedCycleSpan<PhaseTimer> span(
                prof, phase_slot(Phase::Settlement));
            execute_action(e.payload.subject,
                           e.payload.kind == LifecycleKind::BoxFail ||
                               e.payload.kind == LifecycleKind::LinkFail);
          }
          if (tel != nullptr) {
            tel->fault(now, e.payload.kind);
            if (tel->sample_due(now)) tel_sample(now);
          }
          break;
        }
        case LifecycleKind::Migrate: {
          // A sweep landing after the run's real work (no pending arrivals,
          // nothing live, no retries in flight) is skipped like a
          // tombstone: it neither advances the horizon nor reschedules, so
          // periodic plans terminate.  `ring_pos >= ring_len` here implies
          // the source is exhausted (see the refill invariant above).
          if (ring_pos >= ring_len && live_count == 0 &&
              pending_retries == 0) {
            break;
          }
          now = e.time;
          note_time(now);
          ++executed;
          const std::uint64_t migrated_before =
              tel != nullptr ? m.migrated : 0;
          {
            const ScopedCycleSpan<PhaseTimer> span(
                prof, phase_slot(Phase::Settlement));
            run_migration_sweep();
          }
          if (tel != nullptr) {
            tel->migration_sweep(now, m.migrated - migrated_before);
            if (tel->sample_due(now)) tel_sample(now);
          }
          if (migration_budget > 0 &&
              (ring_pos < ring_len || live_count > 0 || pending_retries > 0)) {
            events_.push(now + mig.period_tu,
                         LifecycleEvent{LifecycleKind::Migrate,
                                        e.payload.subject + 1, 0});
          }
          break;
        }
        case LifecycleKind::Retry: {
          const std::uint32_t vm_index = e.payload.subject;
          --pending_retries;
          now = e.time;
          note_time(now);
          ++executed;
          VmState* st = vms_.find(vm_index);
          if (st == nullptr) {
            throw std::logic_error("Engine: retry for unknown VM");
          }
          // `st` stays valid through the attempt either way: arena
          // records are slab-stable, so a successful admit's re-insert of
          // the same key cannot move it (DESIGN.md §13).
          const bool was_placed = st->ever_placed != 0;
          const double expected =
              was_placed ? st->expected_hold : st->vm.lifetime;
          prof.begin(phase_slot(Phase::Admission));
          const bool readmitted = admit(vm_index, st->vm, expected,
                                        /*defer_push=*/false,
                                        /*defer_sample=*/false);
          prof.end();
          if (readmitted) {
            ++m.retry_placed;
            fire_admission_triggers();
          } else if (!requeue(vm_index, *st)) {
            // Retry budget exhausted: the VM's final event, so the record
            // goes.  A VM that never ran is a final drop (killed VMs
            // already count in `placed`; their lost remainder is visible
            // through `killed` and the settled energy).
            if (!was_placed) {
              ++m.dropped;
              count_drop();
              if (tel != nullptr) tel->drop(now, drop_reason);
            }
            vms_.erase(vm_index);
          }
          if (tel != nullptr) tel->retry(now, readmitted);
          break;
        }
        case LifecycleKind::Arrival:
          throw std::logic_error("Engine: arrival event in injected calendar");
      }
    }
  }
  prof.end();  // Merge: the loop's residual scaffolding

  m.horizon_tu = now;
  if (m.horizon_tu <= 0.0) m.horizon_tu = 1.0;  // degenerate empty workload
  m.events_executed = executed;
  for (std::size_t k = 0; k < drop_kinds; ++k) {
    m.drops_by_reason.increment(
        core::name(drop_first_seen[k]),
        drop_counts[static_cast<std::size_t>(drop_first_seen[k])]);
  }

  for (ResourceType ty : kAllResources) {
    m.avg_utilization[ty] = util[ty].mean(m.horizon_tu);
    m.peak_utilization[ty] = util[ty].peak();
  }
  m.avg_intra_net_utilization = intra_util.mean(m.horizon_tu);
  m.avg_inter_net_utilization = inter_util.mean(m.horizon_tu);
  m.peak_intra_net_utilization = intra_util.peak();
  m.peak_inter_net_utilization = inter_util.peak();
  m.energy = ledger.totals();
  m.avg_optical_power_w = ledger.average_power_w(m.horizon_tu);

  if (m.placed + m.dropped != m.total_vms) {
    throw std::logic_error("Engine: placement accounting mismatch");
  }
  if (live_count != 0) {
    throw std::logic_error("Engine: placements leaked past their departure");
  }
  if (!vms_.empty()) {
    throw std::logic_error("Engine: VM records leaked past the run end");
  }
  cluster_->check_invariants();
  fabric_->check_invariants();

  // Calibrate the tick rate over the whole run and settle the wall-clock
  // metrics.  Both clocks bracket the same span, so seconds-per-tick is
  // exact up to scheduling noise; a zero-tick span (degenerate workload on
  // the steady_clock fallback) reports zero scheduler time rather than NaN.
  // A resumed run's wall metrics cover only the resumed segment.
  const std::uint64_t run_ticks = CycleClock::now() - run_ticks0;
  m.sim_wall_seconds =
      std::chrono::duration<double>(Clock::now() - run_t0).count();
  const double seconds_per_tick =
      run_ticks > 0 ? m.sim_wall_seconds / static_cast<double>(run_ticks) : 0.0;
  m.scheduler_exec_seconds =
      static_cast<double>(sched_ticks) * seconds_per_tick;
  if (prof.enabled()) profile_from_ticks(m.profile, prof, seconds_per_tick);
  if (tel != nullptr) {
    tel_sample(now);  // closing sample: the run's final (empty) census
    tel->finish_run(m.profile.recorded ? &m.profile : nullptr);
  }
  const double ns_per_tick = seconds_per_tick * 1e9;
  if (latency_sink_ != nullptr) {
    for (std::size_t i = latency_base; i < latency_sink_->size(); ++i) {
      (*latency_sink_)[i] *= ns_per_tick;
    }
  }
  if (latency_hist_ != nullptr) latency_hist_->set_value_scale(ns_per_tick);
  return m;
}

std::vector<SimMetrics> run_all_algorithms(const Scenario& scenario,
                                           const wl::Workload& workload,
                                           const std::string& workload_label) {
  std::vector<SimMetrics> out;
  std::unique_ptr<Engine> engine;  // one stack, rebound per algorithm
  for (const std::string& algo : core::algorithm_names()) {
    if (engine == nullptr) {
      engine = std::make_unique<Engine>(scenario, algo);
    } else {
      engine->set_algorithm(algo);
    }
    out.push_back(engine->run(workload, workload_label));
  }
  return out;
}

}  // namespace risa::sim
