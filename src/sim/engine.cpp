#include "sim/engine.hpp"

#include <chrono>
#include <stdexcept>

namespace risa::sim {

Engine::Engine(const Scenario& scenario, const std::string& algorithm)
    : scenario_(scenario), algorithm_(algorithm) {
  scenario_.validate();
  cluster_ = std::make_unique<topo::Cluster>(scenario_.cluster);
  fabric_ = std::make_unique<net::Fabric>(scenario_.cluster, scenario_.fabric);
  router_ = std::make_unique<net::Router>(*fabric_);
  circuits_ = std::make_unique<net::CircuitTable>(*router_);
  allocator_ = core::make_allocator(algorithm_, context(), scenario_.allocator);
}

core::AllocContext Engine::context() noexcept {
  core::AllocContext ctx;
  ctx.cluster = cluster_.get();
  ctx.fabric = fabric_.get();
  ctx.router = router_.get();
  ctx.circuits = circuits_.get();
  ctx.bandwidth = scenario_.bandwidth;
  return ctx;
}

void Engine::set_algorithm(const std::string& algorithm) {
  if (algorithm == algorithm_) return;
  // make_allocator validates the name; algorithm_ only changes on success.
  allocator_ = core::make_allocator(algorithm, context(), scenario_.allocator);
  algorithm_ = algorithm;
}

void Engine::reset() {
  // Order matters only for clarity: circuits are records over fabric state,
  // so both are wiped; nothing here touches the heap-allocated topology.
  cluster_->reset();
  fabric_->reset();
  circuits_->clear();
  allocator_->reset();
}

SimMetrics Engine::run(const wl::Workload& workload,
                       const std::string& workload_label) {
  reset();

  SimMetrics m;
  m.algorithm = std::string(allocator_->name());
  m.workload = workload_label;
  m.total_vms = workload.size();

  phot::PowerLedger ledger(scenario_.photonics, *fabric_);

  // Time-weighted signals.
  PerResource<TimeWeightedMean> util;
  TimeWeightedMean intra_util, inter_util;
  auto sample_signals = [&](SimTime t) {
    for (ResourceType ty : kAllResources) {
      util[ty].update(t, cluster_->utilization(ty));
    }
    intra_util.update(t, fabric_->intra_utilization());
    inter_util.update(t, fabric_->inter_utilization());
  };

  std::unordered_map<std::uint32_t, core::Placement> live;
  live.reserve(workload.size());

  // Instantaneous optical holding power, maintained incrementally for the
  // timeline (per-VM deltas computed at placement/departure).
  double holding_power_w = 0.0;
  std::unordered_map<std::uint32_t, double> holding_power_by_vm;
  auto record_timeline = [&](SimTime t) {
    if (timeline_ == nullptr) return;
    TimelinePoint p;
    p.time = t;
    p.active_vms = live.size();
    p.placed_total = m.placed;
    p.dropped_total = m.dropped;
    for (ResourceType ty : kAllResources) {
      p.utilization[ty] = cluster_->utilization(ty);
    }
    p.intra_net_utilization = fabric_->intra_utilization();
    p.inter_net_utilization = fabric_->inter_utilization();
    p.optical_power_w = holding_power_w;
    timeline_->record(p);
  };

  des::Simulator sim;
  sample_signals(0.0);

  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds sched_time{0};

  // Closures capture an index into `workload` (which outlives the event
  // loop) instead of copying the VmRequest into every scheduled event.
  for (std::size_t vm_index = 0; vm_index < workload.size(); ++vm_index) {
    sim.schedule_at(workload[vm_index].arrival, [&, vm_index](des::Simulator& s) {
      const wl::VmRequest& vm = workload[vm_index];
      const auto t0 = Clock::now();
      auto placed = allocator_->try_place(vm);
      const auto t1 = Clock::now();
      sched_time += t1 - t0;
      if (latency_sink_ != nullptr) {
        latency_sink_->push_back(
            std::chrono::duration<double, std::nano>(t1 - t0).count());
      }

      if (!placed.ok()) {
        ++m.dropped;
        m.drops_by_reason.increment(std::string(core::name(placed.error())));
        return;
      }
      core::Placement& p =
          live.emplace(vm.id.value(), std::move(placed.value())).first->second;
      ++m.placed;
      if (p.inter_rack) ++m.any_pair_inter_rack;
      if (p.used_fallback) ++m.fallback_placements;

      // Figures 5/7/10 count a VM as inter-rack when its CPU and RAM racks
      // differ; the same flag drives the RTT sample (pod-aware in the
      // three-tier extension).
      const bool cpu_ram_inter =
          p.rack(ResourceType::Cpu) != p.rack(ResourceType::Ram);
      if (cpu_ram_inter) ++m.inter_rack_placements;
      const bool cross_pod =
          cpu_ram_inter && !fabric_->same_pod(p.rack(ResourceType::Cpu),
                                              p.rack(ResourceType::Ram));
      m.cpu_ram_latency_ns.add(
          scenario_.latency.rtt_ns(cpu_ram_inter, cross_pod));

      // Eq. (1) charges the full lifetime at establishment (T is known).
      ledger.charge_vm(circuits_->circuits_of(vm.id), vm.lifetime);

      if (timeline_ != nullptr) {
        double vm_power = 0.0;
        for (const net::Circuit* c : circuits_->circuits_of(vm.id)) {
          vm_power +=
              phot::circuit_holding_power_w(scenario_.photonics, *fabric_, *c);
        }
        holding_power_w += vm_power;
        holding_power_by_vm.emplace(vm.id.value(), vm_power);
      }

      sample_signals(s.now());
      record_timeline(s.now());
      s.schedule_at(vm.departure(), [&, id = vm.id](des::Simulator& s2) {
        const auto it = live.find(id.value());
        if (it == live.end()) {
          throw std::logic_error("Engine: departure for unknown placement");
        }
        allocator_->release(it->second);
        live.erase(it);
        if (timeline_ != nullptr) {
          const auto pit = holding_power_by_vm.find(id.value());
          if (pit != holding_power_by_vm.end()) {
            holding_power_w -= pit->second;
            holding_power_by_vm.erase(pit);
          }
        }
        sample_signals(s2.now());
        record_timeline(s2.now());
      });
    });
  }

  m.horizon_tu = sim.run();
  if (m.horizon_tu <= 0.0) m.horizon_tu = 1.0;  // degenerate empty workload

  m.scheduler_exec_seconds =
      std::chrono::duration<double>(sched_time).count();
  for (ResourceType ty : kAllResources) {
    m.avg_utilization[ty] = util[ty].mean(m.horizon_tu);
    m.peak_utilization[ty] = util[ty].peak();
  }
  m.avg_intra_net_utilization = intra_util.mean(m.horizon_tu);
  m.avg_inter_net_utilization = inter_util.mean(m.horizon_tu);
  m.peak_intra_net_utilization = intra_util.peak();
  m.peak_inter_net_utilization = inter_util.peak();
  m.energy = ledger.totals();
  m.avg_optical_power_w = ledger.average_power_w(m.horizon_tu);

  if (m.placed + m.dropped != m.total_vms) {
    throw std::logic_error("Engine: placement accounting mismatch");
  }
  if (!live.empty()) {
    throw std::logic_error("Engine: placements leaked past their departure");
  }
  cluster_->check_invariants();
  fabric_->check_invariants();

  return m;
}

std::vector<SimMetrics> run_all_algorithms(const Scenario& scenario,
                                           const wl::Workload& workload,
                                           const std::string& workload_label) {
  std::vector<SimMetrics> out;
  std::unique_ptr<Engine> engine;  // one stack, rebound per algorithm
  for (const std::string& algo : core::algorithm_names()) {
    if (engine == nullptr) {
      engine = std::make_unique<Engine>(scenario, algo);
    } else {
      engine->set_algorithm(algo);
    }
    out.push_back(engine->run(workload, workload_label));
  }
  return out;
}

}  // namespace risa::sim
