#include "sim/experiments.hpp"

#include <cmath>

#include "common/table.hpp"
#include "workload/azure.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {

wl::Workload synthetic_workload(std::uint64_t seed) {
  return wl::generate_synthetic(wl::SyntheticConfig{}, seed);
}

std::vector<std::pair<std::string, wl::Workload>> azure_workloads(
    std::uint64_t seed) {
  std::vector<std::pair<std::string, wl::Workload>> out;
  for (const wl::AzureSpec& spec : wl::azure_all_subsets()) {
    out.emplace_back(spec.label, wl::generate_azure(spec, seed));
  }
  return out;
}

namespace {

struct PaperRef {
  const char* figure;
  const char* workload;   // "*" matches any
  const char* algorithm;  // "*" matches any
  double value;
};

// Every numeric claim in §5 of the paper, keyed by figure.
constexpr PaperRef kRefs[] = {
    // Figure 5: inter-rack VM assignments, synthetic workload (counts).
    {"fig5", "Synthetic", "NULB", 255},
    {"fig5", "Synthetic", "NALB", 255},
    {"fig5", "Synthetic", "RISA", 7},
    {"fig5", "Synthetic", "RISA-BF", 2},
    // §5.1 text: average utilization, synthetic workload (%).
    {"text-util-cpu", "Synthetic", "*", 64.66},
    {"text-util-ram", "Synthetic", "*", 65.11},
    {"text-util-sto", "Synthetic", "*", 31.72},
    // Figure 7: % inter-rack assignments (exact values stated only for the
    // maxima; RISA family is zero for every subset).
    {"fig7", "Azure-3000", "NULB", 52.0},
    {"fig7", "Azure-3000", "NALB", 48.0},
    {"fig7", "*", "RISA", 0.0},
    {"fig7", "*", "RISA-BF", 0.0},
    // Figure 8: network utilization (%); intra identical across algorithms.
    {"fig8-intra", "Azure-3000", "*", 30.4},
    {"fig8-intra", "Azure-5000", "*", 35.4},
    {"fig8-intra", "Azure-7500", "*", 42.6},
    {"fig8-inter", "*", "RISA", 0.0},
    {"fig8-inter", "*", "RISA-BF", 0.0},
    // Figure 9: optical component power (kW).
    {"fig9", "Azure-3000", "NULB", 5.22},
    {"fig9", "Azure-3000", "NALB", 5.27},
    {"fig9", "Azure-3000", "RISA", 3.36},
    {"fig9", "Azure-3000", "RISA-BF", 3.36},
    {"fig9", "Azure-7500", "NULB", 6.70},
    {"fig9", "Azure-7500", "NALB", 6.72},
    // Figure 10: average CPU-RAM round-trip latency (ns).
    {"fig10", "Azure-3000", "NULB", 226},
    {"fig10", "Azure-3000", "NALB", 216},
    {"fig10", "*", "RISA", 110},
    {"fig10", "*", "RISA-BF", 110},
    // Figure 11: execution time, synthetic workload (seconds, authors' Ryzen
    // 7 2700X testbed -- shape, not absolute scale, is the target).
    {"fig11", "Synthetic", "NULB", 233},
    {"fig11", "Synthetic", "NALB", 865},
    {"fig11", "Synthetic", "RISA", 111},
    {"fig11", "Synthetic", "RISA-BF", 112},
    // Figure 12: execution time, Azure subsets (seconds; only the 7500
    // values are stated numerically).
    {"fig12", "Azure-7500", "NULB", 10361},
    {"fig12", "Azure-7500", "NALB", 15929},
    {"fig12", "Azure-7500", "RISA", 3679},
    {"fig12", "Azure-7500", "RISA-BF", 4013},
};

[[nodiscard]] bool matches(const char* pattern, const std::string& value) {
  return pattern[0] == '*' || value == pattern;
}

}  // namespace

std::optional<double> paper_reference(const std::string& figure,
                                      const std::string& workload,
                                      const std::string& algorithm) {
  for (const PaperRef& ref : kRefs) {
    if (figure == ref.figure && matches(ref.workload, workload) &&
        matches(ref.algorithm, algorithm)) {
      return ref.value;
    }
  }
  return std::nullopt;
}

std::string paper_cell(const std::string& figure, const std::string& workload,
                       const std::string& algorithm, int precision) {
  const auto ref = paper_reference(figure, workload, algorithm);
  if (!ref.has_value()) return "-";
  return TextTable::num(*ref, precision);
}

// --- §4.3 toy examples -------------------------------------------------------

ToyStack::ToyStack(topo::ClusterConfig config)
    : cluster_(std::move(config)),
      fabric_(cluster_.config(), net::FabricConfig{}),
      router_(fabric_),
      circuits_(router_) {}

core::AllocContext ToyStack::context() {
  core::AllocContext ctx;
  ctx.cluster = &cluster_;
  ctx.fabric = &fabric_;
  ctx.router = &router_;
  ctx.circuits = &circuits_;
  return ctx;
}

void ToyStack::set_availability(ResourceType type, std::uint32_t index_in_type,
                                Units avail) {
  const BoxId box = cluster_.boxes_of_type(type).at(index_in_type);
  const Units burn = cluster_.box(box).available_units() - avail;
  if (burn < 0) {
    throw std::invalid_argument("ToyStack: cannot raise availability");
  }
  if (burn > 0) {
    (void)cluster_.allocate(box, burn).value();
  }
}

std::unique_ptr<ToyStack> make_table3_stack() {
  auto stack = std::make_unique<ToyStack>(topo::ClusterConfig::toy_example());
  // Table 3 "avail" columns, in toy units (1 core / 1 GB / 64 GB).
  stack->set_availability(ResourceType::Cpu, 0, 0);
  stack->set_availability(ResourceType::Cpu, 1, 0);
  stack->set_availability(ResourceType::Cpu, 2, 64);
  stack->set_availability(ResourceType::Cpu, 3, 32);
  stack->set_availability(ResourceType::Ram, 0, 0);
  stack->set_availability(ResourceType::Ram, 1, 16);
  stack->set_availability(ResourceType::Ram, 2, 32);
  stack->set_availability(ResourceType::Ram, 3, 16);
  stack->set_availability(ResourceType::Storage, 0, 0);
  stack->set_availability(ResourceType::Storage, 1, 0);
  stack->set_availability(ResourceType::Storage, 2, 4);  // 256 GB
  stack->set_availability(ResourceType::Storage, 3, 8);  // 512 GB
  return stack;
}

std::unique_ptr<ToyStack> make_table4_stack() {
  auto stack = std::make_unique<ToyStack>(topo::ClusterConfig::toy_example());
  stack->set_availability(ResourceType::Cpu, 0, 0);
  stack->set_availability(ResourceType::Cpu, 1, 0);
  stack->set_availability(ResourceType::Cpu, 2, 64);
  stack->set_availability(ResourceType::Cpu, 3, 32);
  return stack;
}

wl::VmRequest toy_vm(std::uint32_t id, std::int64_t cores, double ram_gb,
                     double sto_gb, double lifetime) {
  wl::VmRequest vm;
  vm.id = VmId{id};
  vm.cores = cores;
  vm.ram_mb = gb(ram_gb);
  vm.storage_mb = gb(sto_gb);
  vm.arrival = 0.0;
  vm.lifetime = lifetime;
  return vm;
}

}  // namespace risa::sim
