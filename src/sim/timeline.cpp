#include "sim/timeline.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace risa::sim {

void Timeline::record(const TimelinePoint& point) {
  peak_active_ = std::max(peak_active_, point.active_vms);
  if (seen_++ % sample_every_ != 0) return;
  points_.push_back(point);
}

void Timeline::write_csv(std::ostream& os) const {
  CsvWriter writer(os);
  writer.write_row({"time", "active_vms", "placed_total", "dropped_total",
                    "killed_total", "migrated_total", "offline_boxes",
                    "failed_links", "cpu_util", "ram_util", "sto_util",
                    "intra_net_util", "inter_net_util", "optical_power_w"});
  for (const TimelinePoint& p : points_) {
    writer.write_row({TextTable::num(p.time, 3),
                      std::to_string(p.active_vms),
                      std::to_string(p.placed_total),
                      std::to_string(p.dropped_total),
                      std::to_string(p.killed_total),
                      std::to_string(p.migrated_total),
                      std::to_string(p.offline_boxes),
                      std::to_string(p.failed_links),
                      TextTable::num(p.utilization.cpu(), 6),
                      TextTable::num(p.utilization.ram(), 6),
                      TextTable::num(p.utilization.storage(), 6),
                      TextTable::num(p.intra_net_utilization, 6),
                      TextTable::num(p.inter_net_utilization, 6),
                      TextTable::num(p.optical_power_w, 3)});
  }
}

void Timeline::save_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Timeline: cannot open " + path);
  write_csv(os);
  if (!os) throw std::runtime_error("Timeline: write failed: " + path);
}

}  // namespace risa::sim
