// Declarative fault scripting for one simulation run (DESIGN.md §8).
//
// A FaultPlan lists box fail/repair actions -- triggered at an absolute
// simulated time or after the K-th successful admission -- plus a bounded
// retry/requeue policy for VMs that are dropped at admission or killed by
// a failure.  The plan is data, not behavior: the engine compiles it into
// lifecycle events on the merged DES stream (des/lifecycle.hpp), so fault
// scenarios inherit the sweep layer's bit-exact thread-count determinism.
// An empty plan reproduces the paper's semantics exactly (no failures,
// drops are final).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace risa::sim {

/// One scripted box transition.  Exactly one trigger (`at_time` >= 0 XOR
/// `after_admissions` >= 0) and exactly one victim form (`box` set XOR
/// `random_boxes` > 0) must be given.  Random victims are drawn uniformly
/// over all boxes from the plan's seeded RNG stream *when the event
/// fires*, so draws consume the stream in merged-event order and the whole
/// run stays deterministic.  Failing an already-offline box (or repairing
/// an online one) is a no-op, matching Cluster::set_box_offline.
struct FaultAction {
  enum class Kind : std::uint8_t { Fail = 0, Repair = 1 };
  static constexpr std::uint32_t kNoBox = 0xffffffffu;

  Kind kind = Kind::Fail;
  double at_time = -1.0;               ///< >= 0: fire at this simulated time
  /// >= 1: fire right after the K-th successful admission (a threshold
  /// never reached never fires).  "Before anything places" is a time
  /// trigger (`at_time = 0`), not an admission count of zero.
  std::int64_t after_admissions = -1;
  std::uint32_t box = kNoBox;          ///< explicit victim box id, or
  std::uint32_t random_boxes = 0;      ///< number of seeded random victims

  [[nodiscard]] bool time_triggered() const noexcept { return at_time >= 0.0; }

  void validate() const {
    if (time_triggered() == (after_admissions >= 0)) {
      throw std::invalid_argument(
          "FaultAction: exactly one of at_time / after_admissions required");
    }
    if (!time_triggered() && after_admissions == 0) {
      throw std::invalid_argument(
          "FaultAction: after_admissions must be >= 1 (use at_time = 0 to "
          "fire before any placement)");
    }
    if ((box == kNoBox) == (random_boxes == 0)) {
      throw std::invalid_argument(
          "FaultAction: exactly one of box / random_boxes required");
    }
  }

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// Bounded requeue policy for drops and kills.  `max_attempts` is the
/// number of *retry* attempts each VM may consume beyond its initial
/// admission try; 0 keeps the paper's drops-are-final semantics.  Each
/// retry fires `delay_tu` after the drop/kill (or the previous failed
/// retry) as a RETRY event on the merged stream.
struct RetryPolicy {
  std::uint32_t max_attempts = 0;
  double delay_tu = 0.0;

  void validate() const {
    if (delay_tu < 0.0) {
      throw std::invalid_argument("RetryPolicy: negative delay");
    }
    if (max_attempts > 0 && delay_tu <= 0.0) {
      throw std::invalid_argument(
          "RetryPolicy: retries require a positive delay (a zero delay would "
          "re-attempt at the same instant the failure was observed)");
    }
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

struct FaultPlan {
  std::vector<FaultAction> actions;
  RetryPolicy retry{};
  /// RNG root for random victim draws; independent of the workload seed so
  /// fault randomness never perturbs workload generation.
  std::uint64_t seed = 0;

  /// True when the plan changes nothing: the engine's empty-plan fast path
  /// is bit-identical to the pre-lifecycle event loop.
  [[nodiscard]] bool empty() const noexcept {
    return actions.empty() && retry.max_attempts == 0;
  }

  void validate() const {
    for (const FaultAction& a : actions) a.validate();
    retry.validate();
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace risa::sim
