// Declarative fault scripting for one simulation run (DESIGN.md §8).
//
// A FaultPlan lists box fail/repair actions -- triggered at an absolute
// simulated time or after the K-th successful admission -- plus a bounded
// retry/requeue policy for VMs that are dropped at admission or killed by
// a failure.  The plan is data, not behavior: the engine compiles it into
// lifecycle events on the merged DES stream (des/lifecycle.hpp), so fault
// scenarios inherit the sweep layer's bit-exact thread-count determinism.
// An empty plan reproduces the paper's semantics exactly (no failures,
// drops are final).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace risa::sim {

/// One scripted box or link transition.  Exactly one trigger (`at_time`
/// >= 0 XOR `after_admissions` >= 0) and exactly one victim form must be
/// given: box kinds take `box` XOR `random_boxes`, link kinds take `link`
/// XOR `random_links`.  Random victims are drawn uniformly from the plan's
/// seeded RNG stream *when the event fires*, so draws consume the stream
/// in merged-event order and the whole run stays deterministic.  Failing
/// an already-offline victim (or repairing a healthy one) is a no-op,
/// matching Cluster::set_box_offline / Fabric::set_link_failed.
struct FaultAction {
  enum class Kind : std::uint8_t {
    Fail = 0,        ///< box goes offline, residents die
    Repair = 1,      ///< box rejoins the pool
    LinkFail = 2,    ///< fabric link dies; circuits traversing it die too
    LinkRepair = 3,  ///< link admits circuits again
  };
  static constexpr std::uint32_t kNoBox = 0xffffffffu;
  static constexpr std::uint32_t kNoLink = 0xffffffffu;

  Kind kind = Kind::Fail;
  double at_time = -1.0;               ///< >= 0: fire at this simulated time
  /// >= 1: fire right after the K-th successful admission (a threshold
  /// never reached never fires).  "Before anything places" is a time
  /// trigger (`at_time = 0`), not an admission count of zero.
  std::int64_t after_admissions = -1;
  std::uint32_t box = kNoBox;          ///< explicit victim box id, or
  std::uint32_t random_boxes = 0;      ///< number of seeded random victims
  std::uint32_t link = kNoLink;        ///< explicit victim link id, or
  std::uint32_t random_links = 0;      ///< number of seeded random victims

  [[nodiscard]] bool time_triggered() const noexcept { return at_time >= 0.0; }
  [[nodiscard]] bool targets_links() const noexcept {
    return kind == Kind::LinkFail || kind == Kind::LinkRepair;
  }

  void validate() const {
    if (time_triggered() == (after_admissions >= 0)) {
      throw std::invalid_argument(
          "FaultAction: exactly one of at_time / after_admissions required");
    }
    if (!time_triggered() && after_admissions == 0) {
      throw std::invalid_argument(
          "FaultAction: after_admissions must be >= 1 (use at_time = 0 to "
          "fire before any placement)");
    }
    if (targets_links()) {
      if ((link == kNoLink) == (random_links == 0)) {
        throw std::invalid_argument(
            "FaultAction: exactly one of link / random_links required");
      }
      if (box != kNoBox || random_boxes != 0) {
        throw std::invalid_argument(
            "FaultAction: box victims on a link-fail/link-repair action");
      }
    } else {
      if ((box == kNoBox) == (random_boxes == 0)) {
        throw std::invalid_argument(
            "FaultAction: exactly one of box / random_boxes required");
      }
      if (link != kNoLink || random_links != 0) {
        throw std::invalid_argument(
            "FaultAction: link victims on a box fail/repair action");
      }
    }
  }

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// Bounded requeue policy for drops and kills.  `max_attempts` is the
/// number of *retry* attempts each VM may consume beyond its initial
/// admission try; 0 keeps the paper's drops-are-final semantics.  Each
/// retry fires `delay_tu` after the drop/kill (or the previous failed
/// retry) as a RETRY event on the merged stream.
struct RetryPolicy {
  std::uint32_t max_attempts = 0;
  double delay_tu = 0.0;

  void validate() const {
    if (delay_tu < 0.0) {
      throw std::invalid_argument("RetryPolicy: negative delay");
    }
    if (max_attempts > 0 && delay_tu <= 0.0) {
      throw std::invalid_argument(
          "RetryPolicy: retries require a positive delay (a zero delay would "
          "re-attempt at the same instant the failure was observed)");
    }
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

struct FaultPlan {
  std::vector<FaultAction> actions;
  RetryPolicy retry{};
  /// RNG root for random victim draws; independent of the workload seed so
  /// fault randomness never perturbs workload generation.
  std::uint64_t seed = 0;

  /// True when the plan changes nothing: the engine's empty-plan fast path
  /// is bit-identical to the pre-lifecycle event loop.
  [[nodiscard]] bool empty() const noexcept {
    return actions.empty() && retry.max_attempts == 0;
  }

  void validate() const {
    for (const FaultAction& a : actions) a.validate();
    retry.validate();
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Parameters of the MTBF-style stochastic fault-plan compiler: a seeded
/// Poisson failure process (exponential inter-failure gaps of mean
/// `mtbf_tu`) over `horizon_tu`, each failure hitting one uniform box and
/// repaired an exponential(`mttr_tu`) later.  The compiler resolves every
/// draw at COMPILE time into explicit box ids, so each failure has a
/// matching repair of the same box -- something the fire-time random_boxes
/// form cannot express -- and the resulting plan is plain scriptable data.
struct MtbfSpec {
  double mtbf_tu = 0.0;        ///< mean time between failures, > 0
  double mttr_tu = 0.0;        ///< mean time to repair, > 0
  std::uint64_t seed = 0;      ///< draw stream root (gaps, victims, repairs)
  double horizon_tu = 0.0;     ///< generate failures in [0, horizon), > 0
  std::uint32_t num_boxes = 0; ///< victim id range, > 0

  void validate() const {
    if (mtbf_tu <= 0.0 || mttr_tu <= 0.0 || horizon_tu <= 0.0 ||
        num_boxes == 0) {
      throw std::invalid_argument("MtbfSpec: all parameters must be positive");
    }
  }
};

/// Compile `spec` into a validated FaultPlan (actions sorted by time, each
/// fail paired with a later repair of the same box; a box already awaiting
/// repair is skipped, keeping fail/repair windows disjoint per box).  Same
/// spec => identical plan, so sweeps can script random failure processes
/// declaratively.  Repairs may land past the horizon; they are kept so no
/// plan leaves the cluster permanently degraded.
[[nodiscard]] FaultPlan compile_mtbf_plan(const MtbfSpec& spec);

}  // namespace risa::sim
