// Canned experiment definitions: the workloads, scenario defaults and
// paper-reported reference values behind every figure reproduction.
// Bench binaries funnel through this module so the "paper" column printed
// next to measured values has a single source of truth.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/allocator.hpp"
#include "sim/scenario.hpp"
#include "workload/vm.hpp"

namespace risa::sim {

/// Deterministic default seed used across benches/examples; chosen once and
/// fixed so all reported numbers are reproducible.
inline constexpr std::uint64_t kDefaultSeed = 20231112;  // SC-W'23 start date

/// The paper's synthetic random workload (§5.1), seeded.
[[nodiscard]] wl::Workload synthetic_workload(std::uint64_t seed = kDefaultSeed);

/// The three Azure-like subsets (§5.2) with labels, seeded.
[[nodiscard]] std::vector<std::pair<std::string, wl::Workload>> azure_workloads(
    std::uint64_t seed = kDefaultSeed);

/// Paper-reported value for (figure, workload, algorithm), when the paper
/// states one.  Figures: "fig5" (inter-rack count), "fig7" (inter-rack %),
/// "fig8-intra"/"fig8-inter" (network util %), "fig9" (power kW),
/// "fig10" (latency ns), "fig11"/"fig12" (exec seconds), "text-util-cpu"/
/// "-ram"/"-sto" (synthetic average utilization %).
[[nodiscard]] std::optional<double> paper_reference(const std::string& figure,
                                                    const std::string& workload,
                                                    const std::string& algorithm);

/// Render a reference as a table cell ("255" or "-" when unreported).
[[nodiscard]] std::string paper_cell(const std::string& figure,
                                     const std::string& workload,
                                     const std::string& algorithm,
                                     int precision = 2);

// --- §4.3 toy examples -------------------------------------------------------

/// A standalone allocator stack (cluster + fabric + router + circuits) on
/// the toy-example topology, used by the Table 3/4 reproductions in tests,
/// the toy_examples example and bench_toy_examples.
class ToyStack {
 public:
  explicit ToyStack(topo::ClusterConfig config);

  [[nodiscard]] core::AllocContext context();
  [[nodiscard]] topo::Cluster& cluster() noexcept { return cluster_; }

  /// Burn a box of `type` (per-type index) down to `avail` units.
  void set_availability(ResourceType type, std::uint32_t index_in_type,
                        Units avail);

 private:
  topo::Cluster cluster_;
  net::Fabric fabric_;
  net::Router router_;
  net::CircuitTable circuits_;
};

/// The exact Table 3 state: per-type availabilities
///   CPU {0, 0, 64, 32} cores, RAM {0, 16, 32, 16} GB,
///   STO {0, 0, 256, 512} GB.
[[nodiscard]] std::unique_ptr<ToyStack> make_table3_stack();

/// Toy example 2's starting state: rack 0 CPU exhausted; rack 1 CPU boxes
/// at 64 and 32 available cores; RAM/storage untouched.
[[nodiscard]] std::unique_ptr<ToyStack> make_table4_stack();

/// A toy VM request (cores / GB RAM / GB storage).
[[nodiscard]] wl::VmRequest toy_vm(std::uint32_t id, std::int64_t cores,
                                   double ram_gb, double sto_gb,
                                   double lifetime = 1000.0);

}  // namespace risa::sim
