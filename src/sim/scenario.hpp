// A scenario bundles every model parameter of one simulation run: cluster
// shape (Table 1), fabric provisioning, bandwidth demand model (Table 2),
// photonic energy parameters (§3.2) and the CPU-RAM round-trip latency
// constants (§5.2: 110 ns within a rack, 330 ns across racks).
#pragma once

#include <stdexcept>
#include <string>

#include "core/registry.hpp"
#include "network/bandwidth.hpp"
#include "network/fabric.hpp"
#include "photonics/power_ledger.hpp"
#include "sim/fault_plan.hpp"
#include "sim/migration_plan.hpp"
#include "topology/config.hpp"

namespace risa::sim {

/// CPU-RAM round-trip latency constants from [20] as used in Figure 10.
/// `inter_pod_ns` applies only in the three-tier extension, reflecting the
/// paper's caveat that "for inter-rack center switches with a larger number
/// of ports, the inter-rack delay may be higher".
struct LatencyModel {
  double intra_rack_ns = 110.0;
  double inter_rack_ns = 330.0;
  double inter_pod_ns = 550.0;

  void validate() const {
    if (intra_rack_ns < 0 || inter_rack_ns < intra_rack_ns ||
        inter_pod_ns < inter_rack_ns) {
      throw std::invalid_argument("LatencyModel: bad latency values");
    }
  }

  [[nodiscard]] double rtt_ns(bool inter_rack) const noexcept {
    return inter_rack ? inter_rack_ns : intra_rack_ns;
  }

  /// Three-tier-aware RTT: intra-rack, inter-rack-same-pod, or cross-pod.
  [[nodiscard]] double rtt_ns(bool inter_rack, bool cross_pod) const noexcept {
    if (!inter_rack) return intra_rack_ns;
    return cross_pod ? inter_pod_ns : inter_rack_ns;
  }
};

struct Scenario {
  topo::ClusterConfig cluster{};
  net::FabricConfig fabric{};
  net::BandwidthModel bandwidth{};
  phot::PhotonicConfig photonics{};
  LatencyModel latency{};
  core::AllocatorOptions allocator{};
  /// Scripted box/link failures/repairs + retry policy (DESIGN.md §8).
  /// Empty by default: the paper's scenarios have no faults and drops are
  /// final.
  FaultPlan faults{};
  /// Periodic defragmentation sweeps (DESIGN.md §9).  Empty by default:
  /// the paper's placements are immutable once admitted.
  MigrationPlan migrations{};

  void validate() const {
    cluster.validate();
    fabric.validate();
    photonics.validate();
    latency.validate();
    faults.validate();
    migrations.validate();
  }

  /// The paper's evaluation platform with all defaults.
  [[nodiscard]] static Scenario paper_defaults() { return Scenario{}; }
};

}  // namespace risa::sim
