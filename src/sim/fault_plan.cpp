#include "sim/fault_plan.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace risa::sim {

FaultPlan compile_mtbf_plan(const MtbfSpec& spec) {
  spec.validate();
  FaultPlan plan;
  plan.seed = spec.seed;  // unused by explicit actions; kept for provenance

  Rng rng(spec.seed);
  std::vector<double> repaired_at(spec.num_boxes, 0.0);
  double t = 0.0;
  for (;;) {
    t += rng.exponential(spec.mtbf_tu);
    if (t >= spec.horizon_tu) break;
    const auto box = static_cast<std::uint32_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.num_boxes) - 1));
    const double repair_t = t + rng.exponential(spec.mttr_tu);
    // A box still awaiting repair is skipped (the draw is consumed either
    // way, so the stream stays deterministic): overlapping fail/repair
    // windows on one box would let an early repair cancel a later one.
    if (t < repaired_at[box]) continue;
    repaired_at[box] = repair_t;

    FaultAction fail;
    fail.kind = FaultAction::Kind::Fail;
    fail.at_time = t;
    fail.box = box;
    plan.actions.push_back(fail);

    FaultAction repair = fail;
    repair.kind = FaultAction::Kind::Repair;
    repair.at_time = repair_t;
    plan.actions.push_back(repair);
  }

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at_time < b.at_time;
                   });
  plan.validate();
  return plan;
}

}  // namespace risa::sim
