// The DDC simulation engine: owns one cluster + fabric + allocator stack
// and replays a workload through the discrete-event kernel.
//
// Arrival event   -> Allocator::try_place (wall-clock timed: Figures 11-12)
//                    success: record placement, open the photonic charging
//                             interval (Eq.(1)+transceiver energy for the
//                             expected hold), schedule departure
//                    failure: drop, or requeue when the FaultPlan's retry
//                             policy allows (the paper's algorithms never
//                             queue; an empty plan keeps that semantics)
// Departure event -> release circuits + compute units
// BoxFail event   -> box offline, resident VMs killed (power interval
//                    settled at kill time, circuits torn down), optional
//                    requeue of the victims
// BoxRepair event -> box rejoins the pool
// LinkFail event  -> link fails; VMs whose circuits traverse it are killed
//                    (same settlement as a box kill), optional requeue
// LinkRepair event-> link admits circuits again
// Retry event     -> re-placement attempt for a dropped/killed VM
// Migrate event   -> defragmentation sweep (DESIGN.md §9): worst-spread
//                    live VMs re-placed with their current boxes excluded,
//                    old circuits retired, power settled with a
//                    double-charge window of the migration cost
// After every event the time-weighted utilization integrals advance.
//
// The event loop is typed and allocation-free in steady state (DESIGN.md
// §7-§8): arrivals are PULLED in chunks from a wl::ArrivalSource (DESIGN.md
// §11) while every *injected* event -- departures, scripted faults/repairs,
// retries -- lives in one O(1)-amortized ladder-queue calendar of POD
// des::LifecycleEvent entries (des::LadderCalendar, DESIGN.md §12; pop
// order provably identical to the reference 4-ary heap's (time, seq)
// order), and the two streams are merged on (time, seq).  Arrivals carry seq 0..N-1
// (their workload index) and injected events number from N, which preserves
// the historical closure-calendar FIFO order exactly: with an empty
// FaultPlan the metrics are bit-identical to the generic des::Simulator
// replaying the same workload, and a streaming run is bit-identical to the
// materialized run over the same requests.
//
// Memory is bounded by the live census, not the stream length: per-VM state
// lives in a generation-stamped slot arena of VmState records created at
// admission (or first requeue) and erased at the VM's final event, so a
// 10M+-VM streaming run holds only the resident VMs plus one refill chunk
// (the arena's paged directory recycles itself behind the sliding index
// window -- DESIGN.md §13).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/slot_arena.hpp"
#include "core/allocator.hpp"
#include "core/registry.hpp"
#include "des/ladder_calendar.hpp"
#include "des/lifecycle.hpp"
#include "network/circuit.hpp"
#include "photonics/power_ledger.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/timeline.hpp"
#include "workload/arrival_source.hpp"
#include "workload/vm.hpp"

namespace risa::sim {

class Telemetry;  // sim/telemetry.hpp (DESIGN.md §14)

/// Periodic checkpointing for streaming runs.  When attached to run_stream
/// / resume_stream, the engine serializes its complete mid-run state every
/// `every_events` executed events -- at the next arrival-chunk boundary,
/// the loop's safe point (DESIGN.md §11) -- and hands the bytes to `emit`.
/// A run resumed from any emitted checkpoint (Engine::resume_stream)
/// continues bit-identically.  Wall-clock metrics (sim_wall_seconds,
/// scheduler_exec_seconds) and the optional latency sinks restart at the
/// resume point; every deterministic metric continues exactly.
struct CheckpointPolicy {
  /// Checkpoint cadence in executed events; 0 disables checkpointing.
  std::uint64_t every_events = 0;
  /// Receives each serialized checkpoint (opaque bytes; write to a file).
  std::function<void(const std::string&)> emit;
};

class Engine {
 public:
  /// Build the stack for `scenario` with the named algorithm.  The heavy
  /// components (cluster, fabric, router, circuit table) are built once
  /// here and then *reused* across runs: run() wipes occupancy in place
  /// instead of reallocating, so back-to-back runs are allocation-cheap
  /// and a pool of engines can be pinned per worker thread (sim/sweep).
  Engine(const Scenario& scenario, const std::string& algorithm);

  /// Replay `workload`; returns the collected metrics.  Every call starts
  /// from a pristine cluster state (reset() runs first), and a reused
  /// engine produces bit-identical results to a freshly constructed one.
  /// The workload need not be sorted by arrival time: the engine orders
  /// arrivals by (arrival, index) itself, matching calendar FIFO order.
  /// Implemented as a wl::WorkloadSource adapter over run_stream's loop,
  /// so both front ends execute the identical event sequence.
  [[nodiscard]] SimMetrics run(const wl::Workload& workload,
                               const std::string& workload_label);

  /// Replay a pull-based arrival stream (rewound first, so a reused source
  /// behaves like a fresh one).  The source must satisfy the ArrivalSource
  /// ordering contract -- nondecreasing arrival, strictly increasing index
  /// within equal arrivals -- which the engine validates per chunk,
  /// throwing std::invalid_argument on violation.  Peak memory is bounded
  /// by the live census, independent of the stream length.  `checkpoint`
  /// optionally snapshots the run periodically (see CheckpointPolicy).
  [[nodiscard]] SimMetrics run_stream(
      wl::ArrivalSource& source, const std::string& workload_label,
      const CheckpointPolicy* checkpoint = nullptr);

  /// Continue a run from a serialized checkpoint: restores every
  /// deterministic component (cluster occupancy, circuits, calendar,
  /// metrics accumulators, allocator cursors, fault RNG, source position)
  /// and resumes the merged event loop bit-identically.  `source` must be
  /// constructed over the same stream the checkpointing run used; the
  /// engine must run the same algorithm (validated, std::runtime_error on
  /// mismatch).  `policy` re-arms periodic checkpointing for the resumed
  /// segment.
  [[nodiscard]] SimMetrics resume_stream(
      std::istream& checkpoint, wl::ArrivalSource& source,
      const CheckpointPolicy* policy = nullptr);

  /// Swap the scheduling algorithm without rebuilding the topology stack.
  /// Only the allocator is reconstructed (a few hundred bytes), and only
  /// when the name actually changes.
  void set_algorithm(const std::string& algorithm);
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }

  /// Override the scenario's FaultPlan for subsequent runs without
  /// rebuilding the stack -- the sweep layer's fault axis (one engine,
  /// many plans).  The plan must outlive the runs; nullptr restores the
  /// scenario's own plan.
  void set_fault_plan(const FaultPlan* plan) noexcept { fault_plan_ = plan; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept {
    return fault_plan_ != nullptr ? *fault_plan_ : scenario_.faults;
  }

  /// Override the scenario's MigrationPlan for subsequent runs -- the
  /// sweep layer's migration axis.  Same lifetime contract as
  /// set_fault_plan; nullptr restores the scenario's own plan.
  void set_migration_plan(const MigrationPlan* plan) noexcept {
    migration_plan_ = plan;
  }
  [[nodiscard]] const MigrationPlan& migration_plan() const noexcept {
    return migration_plan_ != nullptr ? *migration_plan_
                                      : scenario_.migrations;
  }

  /// Restore the pristine state in place: box occupancy, link reservations,
  /// circuit records and allocator cursors all return to their
  /// just-constructed values with zero topology reallocation.
  void reset();

  /// Optional time-series recording: when set, every placement/departure
  /// (and every fault/repair/kill under a nonempty FaultPlan) appends a
  /// TimelinePoint.  The pointer must outlive run(); pass nullptr to
  /// disable.  Recording is skipped inside the timed scheduler section,
  /// so Figures 11/12 are unaffected.
  void set_timeline(Timeline* timeline) noexcept { timeline_ = timeline; }

  /// Optional per-placement latency recording: when set, every
  /// Allocator::try_place appends its wall-clock duration in nanoseconds
  /// (success or drop, arrivals and retries alike).  The vector must
  /// outlive run(); pass nullptr to disable.  Samples are taken outside
  /// the timed section, so scheduler_exec_seconds is unaffected.
  void set_placement_latency_sink(std::vector<double>* sink) noexcept {
    latency_sink_ = sink;
  }

  /// Bounded-memory alternative to the vector sink for streaming-scale
  /// runs: per-placement latencies land in a log-scale histogram instead
  /// of one double per placement.  Samples are added as raw ticks; at the
  /// end of the run the engine installs the ticks-to-nanoseconds scale via
  /// Log2Histogram::set_value_scale, so percentiles read out in ns.  The
  /// histogram must outlive the run and is NOT cleared between runs (nor
  /// serialized into checkpoints -- latency is wall-clock state); pass
  /// nullptr to disable.  Both sinks may be active at once.
  void set_latency_histogram(Log2Histogram* sink) noexcept {
    latency_hist_ = sink;
  }

  /// Per-run phase attribution (sim/phase_profiler.hpp): when enabled, the
  /// engine brackets its event-loop phases with cycle-clock spans and
  /// fills SimMetrics::profile (seconds per phase, exclusive nesting, sum
  /// <= sim_wall_seconds).  Off by default: disabled hooks cost one
  /// predictable branch each.  Sticky across runs until changed.
  void set_profiling(bool on) noexcept { profiling_ = on; }
  [[nodiscard]] bool profiling() const noexcept { return profiling_; }

  /// Run telemetry (sim/telemetry.hpp, DESIGN.md §14): when set, the
  /// event loop emits lifecycle spans/instants/counter tracks into the
  /// telemetry's trace writer and accrues its MetricsRegistry series.
  /// Every hook rides a branch the loop takes anyway, so nullptr (the
  /// default) costs one pointer test per hook site -- no TSC reads, no
  /// stores.  Telemetry is observation only: metrics fingerprints are
  /// byte-identical with it on or off, and none of its state is
  /// checkpointed (resume re-arms the sampler at the restored sim
  /// time).  The object must outlive the runs; sticky until changed.
  void set_telemetry(Telemetry* telemetry) noexcept { telemetry_ = telemetry; }
  [[nodiscard]] Telemetry* telemetry() const noexcept { return telemetry_; }

  /// Admission windows (DESIGN.md §13): when enabled (the default), the
  /// merge loop admits each maximal run of arrivals that sorts before the
  /// calendar head under one bracket -- one profiler span, batched event
  /// counters, same-timestamp signal samples coalesced, and (plan-free
  /// runs) one bulk departure push per window.  Provably invisible: every
  /// metric, fingerprint and checkpoint is bit-identical with windows on
  /// or off.  The off switch exists for the differential tests that pin
  /// that equivalence; sticky across runs until changed.
  void set_admission_batching(bool on) noexcept { admission_batching_ = on; }
  [[nodiscard]] bool admission_batching() const noexcept {
    return admission_batching_;
  }

  // Component access for tests and examples.
  [[nodiscard]] topo::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] core::Allocator& allocator() noexcept { return *allocator_; }

 private:
  [[nodiscard]] core::AllocContext context() noexcept;

  /// The shared merged event loop behind run/run_stream/resume_stream.
  /// When `resume` is non-null, the serialized state it holds replaces the
  /// fresh-run initialization (including `workload_label`, which the
  /// checkpoint carries).
  [[nodiscard]] SimMetrics run_impl(wl::ArrivalSource& source,
                                    const std::string& workload_label,
                                    const CheckpointPolicy* ckpt,
                                    std::istream* resume);

  Scenario scenario_;
  std::string algorithm_;
  std::unique_ptr<topo::Cluster> cluster_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Router> router_;
  std::unique_ptr<net::CircuitTable> circuits_;
  std::unique_ptr<core::Allocator> allocator_;
  Timeline* timeline_ = nullptr;
  Telemetry* telemetry_ = nullptr;  ///< run telemetry hub (DESIGN.md §14)
  std::vector<double>* latency_sink_ = nullptr;
  Log2Histogram* latency_hist_ = nullptr;
  bool profiling_ = false;  ///< fill SimMetrics::profile on each run
  bool admission_batching_ = true;  ///< admission windows (DESIGN.md §13)
  const FaultPlan* fault_plan_ = nullptr;  ///< non-owning per-run override
  const MigrationPlan* migration_plan_ = nullptr;  ///< same, migration axis

  // --- Typed event-loop state, reused across runs (capacity retained) ----
  /// Injected-event calendar: POD {time, seq, LifecycleEvent} entries
  /// (departures + scripted faults/repairs + retries).  Its size is
  /// bounded by live VMs + pending injections, not the event count; seq
  /// numbering starts at the source's size hint each run (arrivals own
  /// seq 0..N-1; an unknown hint of 0 is behaviorally identical because
  /// arrivals win every merge tie structurally -- DESIGN.md §11).
  /// A ladder queue since PR 8: O(1) amortized push/pop with the exact
  /// (time, seq) pop order of the reference BasicCalendar heap, pinned by
  /// the differential tests in tests/test_ladder_calendar.cpp (DESIGN.md
  /// §12).
  des::LadderCalendar<des::LifecycleEvent> events_;

  /// Per-VM state, keyed by workload index.  A record is created when a VM
  /// is admitted (or first requeued) and erased at its final event
  /// (departure, kill without requeue, or last failed retry), so the table
  /// holds the live census plus pending retries -- bounded by the cluster,
  /// never by the stream length.  Replaces the PR 3 workload-length dense
  /// vectors (live/slot/epoch/hold/attempt arrays), whose O(N) footprint
  /// and per-run O(N) clears were the last scaling wall to 10M+ VMs.
  ///
  /// A SlotArena since §13 (previously U32Map): every per-event lookup is
  /// a direct paged index instead of a hash probe, and -- unlike the hash
  /// table, whose find_or_insert could rehash *resident* records -- the
  /// references it hands out are stable until the key is erased, which
  /// retires the defensive copy-out/re-lookup dance the admission and
  /// retry paths used to need.
  struct VmState {
    wl::VmRequest vm{};          ///< the request (streams are not replayable)
    std::uint32_t slot = 0;      ///< slot_pool_ index, meaningful iff live
    std::uint32_t attempts = 0;  ///< retry attempts consumed
    std::uint32_t epoch = 0;     ///< placement epoch (departure tombstones)
    SimTime place_time = 0.0;    ///< when the current placement opened
    double expected_hold = 0.0;  ///< prepaid hold (remaining hold after kill)
    double holding_power = 0.0;  ///< instantaneous optical W (timeline only)
    std::uint8_t live = 0;
    std::uint8_t ever_placed = 0;
  };
  SlotArena<VmState> vms_;

  /// Live-placement slot pool.  A Placement is ~600 bytes, so sizing the
  /// table by workload length made run() O(N) in *memory* (3 GB at the
  /// 5M-VM bench row) for a cluster that can only host a few thousand VMs
  /// at once.  Instead VmState::slot indexes into slot_pool_, which grows
  /// to the peak number of concurrently live VMs and is recycled through
  /// free_slots_ -- bounded by the cluster, not the workload.
  std::vector<core::Placement> slot_pool_;
  std::vector<std::uint32_t> free_slots_;

  /// Arrival refill chunk: the engine pulls the source in batches of this
  /// ring's size.  Chunk boundaries (ring empty, top of the merge loop)
  /// are the checkpoint safe points.
  std::vector<wl::ArrivalItem> arrival_ring_;

  /// Deterministic-scan scratch: the record arena iterates in slot order
  /// (reuse-dependent), so victim scans and checkpoint serialization
  /// collect VM indices here and sort ascending before acting (the
  /// historical scan order).
  std::vector<std::uint32_t> scan_scratch_;

  /// Settlement-window scratch: the full equal-time departure run is
  /// drained out of the calendar here first, then settled as one batch
  /// inside a single begin/end_release_batch bracket (DESIGN.md §12).
  std::vector<des::LadderCalendar<des::LifecycleEvent>::Entry> batch_scratch_;

  /// Admission-window scratch (DESIGN.md §13): on plan-free runs the
  /// window's departure pushes are staged here and flushed as one
  /// LadderCalendar::push_bulk when the window closes -- seq assignment is
  /// identical because no other push can interleave (retries and triggers
  /// need a nonempty plan).
  std::vector<std::pair<SimTime, des::LifecycleEvent>> arrival_push_scratch_;

  // --- Lifecycle state, sized only when the run's FaultPlan is nonempty --
  /// Admission-count-triggered action indices, sorted by threshold.
  std::vector<std::uint32_t> admission_actions_;
  /// Migration-sweep candidate arena: packed (spread score, VM index) keys
  /// (sim/migration.hpp), reused across events so candidate selection is
  /// allocation-free in steady state.
  std::vector<std::uint64_t> mig_keys_;
};

/// Convenience: run all four paper algorithms over the same workload with
/// identical scenario parameters; returns metrics in paper order
/// (NULB, NALB, RISA, RISA-BF).  One engine stack is built and reused
/// across the four runs (set_algorithm + in-place reset) -- no per-
/// algorithm topology rebuild.  For parallel matrices use sim/sweep.
[[nodiscard]] std::vector<SimMetrics> run_all_algorithms(
    const Scenario& scenario, const wl::Workload& workload,
    const std::string& workload_label);

}  // namespace risa::sim
