// The DDC simulation engine: owns one cluster + fabric + allocator stack
// and replays a workload through the discrete-event kernel.
//
// Arrival event   -> Allocator::try_place (wall-clock timed: Figures 11-12)
//                    success: record placement, open the photonic charging
//                             interval (Eq.(1)+transceiver energy for the
//                             expected hold), schedule departure
//                    failure: drop, or requeue when the FaultPlan's retry
//                             policy allows (the paper's algorithms never
//                             queue; an empty plan keeps that semantics)
// Departure event -> release circuits + compute units
// BoxFail event   -> box offline, resident VMs killed (power interval
//                    settled at kill time, circuits torn down), optional
//                    requeue of the victims
// BoxRepair event -> box rejoins the pool
// LinkFail event  -> link fails; VMs whose circuits traverse it are killed
//                    (same settlement as a box kill), optional requeue
// LinkRepair event-> link admits circuits again
// Retry event     -> re-placement attempt for a dropped/killed VM
// Migrate event   -> defragmentation sweep (DESIGN.md §9): worst-spread
//                    live VMs re-placed with their current boxes excluded,
//                    old circuits retired, power settled with a
//                    double-charge window of the migration cost
// After every event the time-weighted utilization integrals advance.
//
// The event loop is typed and allocation-free in steady state (DESIGN.md
// §7-§8): the workload's arrivals stream from a cursor sorted by
// (arrival, index) while every *injected* event -- departures, scripted
// faults/repairs, retries -- lives in one 4-ary POD min-heap of
// des::LifecycleEvent, and the two streams are merged on (time, seq).
// Arrivals carry seq 0..N-1 (their workload index) and injected events
// number from N, which preserves the historical closure-calendar FIFO
// order exactly: with an empty FaultPlan the metrics are bit-identical to
// the generic des::Simulator replaying the same workload.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/registry.hpp"
#include "des/calendar.hpp"
#include "des/lifecycle.hpp"
#include "network/circuit.hpp"
#include "photonics/power_ledger.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/timeline.hpp"
#include "workload/vm.hpp"

namespace risa::sim {

class Engine {
 public:
  /// Build the stack for `scenario` with the named algorithm.  The heavy
  /// components (cluster, fabric, router, circuit table) are built once
  /// here and then *reused* across runs: run() wipes occupancy in place
  /// instead of reallocating, so back-to-back runs are allocation-cheap
  /// and a pool of engines can be pinned per worker thread (sim/sweep).
  Engine(const Scenario& scenario, const std::string& algorithm);

  /// Replay `workload`; returns the collected metrics.  Every call starts
  /// from a pristine cluster state (reset() runs first), and a reused
  /// engine produces bit-identical results to a freshly constructed one.
  /// The workload need not be sorted by arrival time: the engine orders
  /// arrivals by (arrival, index) itself, matching calendar FIFO order.
  [[nodiscard]] SimMetrics run(const wl::Workload& workload,
                               const std::string& workload_label);

  /// Swap the scheduling algorithm without rebuilding the topology stack.
  /// Only the allocator is reconstructed (a few hundred bytes), and only
  /// when the name actually changes.
  void set_algorithm(const std::string& algorithm);
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return algorithm_;
  }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }

  /// Override the scenario's FaultPlan for subsequent runs without
  /// rebuilding the stack -- the sweep layer's fault axis (one engine,
  /// many plans).  The plan must outlive the runs; nullptr restores the
  /// scenario's own plan.
  void set_fault_plan(const FaultPlan* plan) noexcept { fault_plan_ = plan; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept {
    return fault_plan_ != nullptr ? *fault_plan_ : scenario_.faults;
  }

  /// Override the scenario's MigrationPlan for subsequent runs -- the
  /// sweep layer's migration axis.  Same lifetime contract as
  /// set_fault_plan; nullptr restores the scenario's own plan.
  void set_migration_plan(const MigrationPlan* plan) noexcept {
    migration_plan_ = plan;
  }
  [[nodiscard]] const MigrationPlan& migration_plan() const noexcept {
    return migration_plan_ != nullptr ? *migration_plan_
                                      : scenario_.migrations;
  }

  /// Restore the pristine state in place: box occupancy, link reservations,
  /// circuit records and allocator cursors all return to their
  /// just-constructed values with zero topology reallocation.
  void reset();

  /// Optional time-series recording: when set, every placement/departure
  /// (and every fault/repair/kill under a nonempty FaultPlan) appends a
  /// TimelinePoint.  The pointer must outlive run(); pass nullptr to
  /// disable.  Recording is skipped inside the timed scheduler section,
  /// so Figures 11/12 are unaffected.
  void set_timeline(Timeline* timeline) noexcept { timeline_ = timeline; }

  /// Optional per-placement latency recording: when set, every
  /// Allocator::try_place appends its wall-clock duration in nanoseconds
  /// (success or drop, arrivals and retries alike).  The vector must
  /// outlive run(); pass nullptr to disable.  Samples are taken outside
  /// the timed section, so scheduler_exec_seconds is unaffected.
  void set_placement_latency_sink(std::vector<double>* sink) noexcept {
    latency_sink_ = sink;
  }

  // Component access for tests and examples.
  [[nodiscard]] topo::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] core::Allocator& allocator() noexcept { return *allocator_; }

 private:
  [[nodiscard]] core::AllocContext context() noexcept;

  Scenario scenario_;
  std::string algorithm_;
  std::unique_ptr<topo::Cluster> cluster_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Router> router_;
  std::unique_ptr<net::CircuitTable> circuits_;
  std::unique_ptr<core::Allocator> allocator_;
  Timeline* timeline_ = nullptr;
  std::vector<double>* latency_sink_ = nullptr;
  const FaultPlan* fault_plan_ = nullptr;  ///< non-owning per-run override
  const MigrationPlan* migration_plan_ = nullptr;  ///< same, migration axis

  // --- Typed event-loop state, reused across runs (capacity retained) ----
  /// Injected-event calendar: POD {time, seq, LifecycleEvent} entries
  /// (departures + scripted faults/repairs + retries).  Its size is
  /// bounded by live VMs + pending injections, not the event count; seq
  /// numbering starts at the workload size each run (arrivals own seq
  /// 0..N-1).
  des::BasicCalendar<des::LifecycleEvent, 4> events_;
  /// Workload indices in (arrival, index) order -- the arrival cursor.
  std::vector<std::uint32_t> arrival_order_;
  /// Live-placement slot pool.  A Placement is ~600 bytes, so sizing the
  /// table by workload length made run() O(N) in *memory* (3 GB at the
  /// 5M-VM bench row) for a cluster that can only host a few thousand VMs
  /// at once.  Instead slot_of_[vm] (meaningful iff live_[vm]) indexes
  /// into slot_pool_, which grows to the peak number of concurrently live
  /// VMs and is recycled through free_slots_ -- bounded by the cluster,
  /// not the workload.
  std::vector<core::Placement> slot_pool_;
  std::vector<std::uint32_t> slot_of_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint8_t> live_;
  /// Per-VM instantaneous optical holding power; sized only when a
  /// timeline is recording.
  std::vector<double> holding_power_by_vm_;

  // --- Lifecycle state, sized only when the run's FaultPlan is nonempty --
  /// Placement epoch per VM: bumped on every successful placement, carried
  /// by departure events to tombstone departures of killed placements.
  std::vector<std::uint32_t> place_epoch_;
  /// Time the current placement opened, and its expected hold (the prepaid
  /// charging interval; rewritten to the remaining hold when a kill
  /// requeues the VM).
  std::vector<SimTime> place_time_;
  std::vector<double> expected_hold_;
  /// Retry attempts consumed per VM (bounded by RetryPolicy::max_attempts).
  std::vector<std::uint32_t> attempts_;
  /// Whether the VM was ever successfully placed (final-outcome
  /// accounting: placed/dropped stay per-VM even under requeue).
  std::vector<std::uint8_t> ever_placed_;
  /// Admission-count-triggered action indices, sorted by threshold.
  std::vector<std::uint32_t> admission_actions_;
  /// Migration-sweep candidate arena: packed (spread score, VM index) keys
  /// (sim/migration.hpp), reused across events so candidate selection is
  /// allocation-free in steady state.
  std::vector<std::uint64_t> mig_keys_;
};

/// Convenience: run all four paper algorithms over the same workload with
/// identical scenario parameters; returns metrics in paper order
/// (NULB, NALB, RISA, RISA-BF).  One engine stack is built and reused
/// across the four runs (set_algorithm + in-place reset) -- no per-
/// algorithm topology rebuild.  For parallel matrices use sim/sweep.
[[nodiscard]] std::vector<SimMetrics> run_all_algorithms(
    const Scenario& scenario, const wl::Workload& workload,
    const std::string& workload_label);

}  // namespace risa::sim
