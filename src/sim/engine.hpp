// The DDC simulation engine: owns one cluster + fabric + allocator stack
// and replays a workload through the discrete-event kernel.
//
// Arrival event  -> Allocator::try_place (wall-clock timed: Figures 11-12)
//                   success: record placement, charge Eq.(1)+transceiver
//                            energy for the VM's lifetime, schedule departure
//                   failure: count a drop (the paper's algorithms never queue)
// Departure event-> release circuits + compute units
// After every event the time-weighted utilization integrals advance.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/allocator.hpp"
#include "core/registry.hpp"
#include "des/simulator.hpp"
#include "network/circuit.hpp"
#include "photonics/power_ledger.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/timeline.hpp"
#include "workload/vm.hpp"

namespace risa::sim {

class Engine {
 public:
  /// Build a fresh stack for `scenario` with the named algorithm.
  Engine(const Scenario& scenario, const std::string& algorithm);

  /// Replay `workload`; returns the collected metrics.  The engine is
  /// single-shot per run: each call starts from a fresh cluster state.
  [[nodiscard]] SimMetrics run(const wl::Workload& workload,
                               const std::string& workload_label);

  /// Optional time-series recording: when set, every placement/departure
  /// appends a TimelinePoint.  The pointer must outlive run(); pass nullptr
  /// to disable.  Recording is skipped inside the timed scheduler section,
  /// so Figures 11/12 are unaffected.
  void set_timeline(Timeline* timeline) noexcept { timeline_ = timeline; }

  /// Optional per-placement latency recording: when set, every
  /// Allocator::try_place appends its wall-clock duration in nanoseconds
  /// (success or drop).  The vector must outlive run(); pass nullptr to
  /// disable.  Samples are taken outside the timed section, so
  /// scheduler_exec_seconds is unaffected.
  void set_placement_latency_sink(std::vector<double>* sink) noexcept {
    latency_sink_ = sink;
  }

  // Component access for tests and examples.
  [[nodiscard]] topo::Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return *fabric_; }
  [[nodiscard]] core::Allocator& allocator() noexcept { return *allocator_; }

 private:
  void reset();

  Scenario scenario_;
  std::string algorithm_;
  std::unique_ptr<topo::Cluster> cluster_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::Router> router_;
  std::unique_ptr<net::CircuitTable> circuits_;
  std::unique_ptr<core::Allocator> allocator_;
  Timeline* timeline_ = nullptr;
  std::vector<double>* latency_sink_ = nullptr;
};

/// Convenience: run all four paper algorithms over the same workload with
/// identical scenario parameters; returns metrics in paper order
/// (NULB, NALB, RISA, RISA-BF).
[[nodiscard]] std::vector<SimMetrics> run_all_algorithms(
    const Scenario& scenario, const wl::Workload& workload,
    const std::string& workload_label);

}  // namespace risa::sim
