// The scenario-sweep layer: turns "one engine, one run" into "a
// deterministic matrix of (scenario x workload x seed x algorithm) cells
// executed on a thread pool".
//
// Determinism contract: every cell is a self-contained computation -- its
// workload is generated from the cell's own seed (no shared RNG stream is
// consumed across cells), the engine it runs on is reset to a pristine
// state first, and its result is written to a slot owned by that cell
// alone.  SweepRunner therefore yields byte-identical SimMetrics at every
// thread count, including 1 (the single timing field,
// scheduler_exec_seconds, is wall-clock and excluded from that contract;
// see metrics_fingerprint).  Per-cell scheduler timing itself stays valid
// under the pool because each cell's discrete-event loop -- including the
// timed Allocator::try_place section -- executes on exactly one thread;
// drivers reproducing Figures 11/12 run the sweep serially so concurrent
// cells cannot inflate each other's wall-clock either (DESIGN.md §6).
//
// Engine pooling: each worker lane owns one reusable Engine, rebound to a
// cell's algorithm via set_algorithm (allocator swap, no topology rebuild)
// and rebuilt only when the lane crosses into a different scenario.  Cells
// are expanded scenario-major so lanes cross scenarios O(scenarios) times,
// not O(cells).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/scenario.hpp"
#include "sim/telemetry.hpp"
#include "sim/timeline.hpp"
#include "workload/arrival_source.hpp"
#include "workload/vm.hpp"

namespace risa::sim {

/// A named workload generator.  `generate` must be a pure function of the
/// seed (thread-safe by construction: each call owns its RNG), which is
/// what makes the per-cell seeding scheme deterministic under threading.
struct WorkloadSpec {
  std::string label;
  std::function<wl::Workload(std::uint64_t seed)> generate;
  /// Optional streaming twin of `generate`: builds a pull-based
  /// ArrivalSource that yields the identical request sequence without
  /// materializing the workload.  Honored when SweepSpec::streaming is
  /// set; cells fall back to `generate` when absent (e.g. fixed()).  Must
  /// be a pure function of the seed, like `generate`.
  std::function<std::unique_ptr<wl::ArrivalSource>(std::uint64_t seed)>
      make_source;

  /// The paper's 2500-VM synthetic random workload (§5.1); `count`
  /// overrides the VM count when positive.
  [[nodiscard]] static WorkloadSpec synthetic(std::size_t count = 0);
  /// One Azure-like subset (§5.2): "azure-3000" | "azure-5000" |
  /// "azure-7500" (matching by label substring, case-insensitive).
  [[nodiscard]] static WorkloadSpec azure(const std::string& subset);
  /// All three Azure-like subsets in paper order.
  [[nodiscard]] static std::vector<WorkloadSpec> azure_all();
  /// A pre-materialized workload; the seed is ignored.  The workload is
  /// shared (read-only) across all cells that use it.
  [[nodiscard]] static WorkloadSpec fixed(std::string label, wl::Workload w);
};

/// The declarative matrix.  Cells expand in scenario-major order:
///   for scenario / for workload / for seed / for fault plan /
///   for migration plan / for algorithm
/// which keeps per-lane engine rebuilds rare and matches the row order the
/// paper's figure tables print (workload outer, algorithm inner).
struct SweepSpec {
  std::vector<std::pair<std::string, Scenario>> scenarios;
  std::vector<WorkloadSpec> workloads;
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> algorithms;
  /// Optional labeled fault-plan axis (DESIGN.md §8).  Empty (the usual
  /// case) leaves every scenario's own plan in force and contributes no
  /// axis factor, so existing specs and cell indices are unchanged.  When
  /// nonempty, each cell's plan *overrides* the scenario's -- one engine
  /// stack per lane serves every plan (no topology rebuild), and fault
  /// matrices inherit the bit-exact thread-count determinism because the
  /// plan's RNG stream is private to the cell's run.
  std::vector<std::pair<std::string, FaultPlan>> fault_plans;
  /// Optional labeled migration-plan axis (DESIGN.md §9), with exactly the
  /// same override/axis-factor semantics as fault_plans.  The natural
  /// defragmentation study is {"none", MigrationPlan{}} next to budgeted
  /// variants: the empty plan reproduces the fault-only run bit-for-bit.
  std::vector<std::pair<std::string, MigrationPlan>> migration_plans;
  bool record_timeline = false;  ///< fill SweepResult::timeline per cell
  bool record_latency = false;   ///< fill SweepResult::latency_ns per cell
  /// Enable the phase-attributed profiler (sim/phase_profiler.hpp) for
  /// every cell: SimMetrics::profile reports where each run's wall time
  /// went.  Wall-clock measurement only -- cell results stay bit-identical
  /// with it on or off (the profile is excluded from metrics_fingerprint
  /// like scheduler_exec_seconds).
  bool record_profile = false;
  /// Run cells through Engine::run_stream using each workload's
  /// make_source factory (bounded RSS: no (workload, seed) pair is
  /// materialized).  Streaming runs are bit-identical to materialized ones
  /// (DESIGN.md §11), so this only changes memory behavior.  Workloads
  /// without a make_source factory still materialize.
  bool streaming = false;
  /// Per-cell run traces (DESIGN.md §14).  When nonempty, every cell runs
  /// with a private Telemetry writing
  ///   <trace_dir>/cell<i>.<workload>.<algorithm>.trace.json
  /// (labels sanitized to [A-Za-z0-9_-]).  The directory must exist.
  /// Observation only: cell metrics and fingerprints are byte-identical
  /// with tracing on or off, at any thread count.
  std::string trace_dir;
  /// Template config for per-cell telemetry (trace_path is overridden per
  /// cell as above); used only when trace_dir is set.
  TelemetryConfig telemetry;

  void validate() const;

  /// Fault-axis factor: 1 when the axis is unused.
  [[nodiscard]] std::size_t fault_count() const noexcept {
    return fault_plans.empty() ? 1 : fault_plans.size();
  }

  /// Migration-axis factor: 1 when the axis is unused.
  [[nodiscard]] std::size_t migration_count() const noexcept {
    return migration_plans.empty() ? 1 : migration_plans.size();
  }

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return scenarios.size() * workloads.size() * seeds.size() *
           fault_count() * migration_count() * algorithms.size();
  }

  /// Flat index of one cell in expansion (= result) order.
  [[nodiscard]] std::size_t cell_index(std::size_t scenario,
                                       std::size_t workload, std::size_t seed,
                                       std::size_t fault,
                                       std::size_t migration,
                                       std::size_t algorithm) const noexcept {
    return ((((scenario * workloads.size() + workload) * seeds.size() + seed) *
                 fault_count() +
             fault) *
                migration_count() +
            migration) *
               algorithms.size() +
           algorithm;
  }

  /// Five-axis form (migration axis unused or index 0).
  [[nodiscard]] std::size_t cell_index(std::size_t scenario,
                                       std::size_t workload, std::size_t seed,
                                       std::size_t fault,
                                       std::size_t algorithm) const noexcept {
    return cell_index(scenario, workload, seed, fault, 0, algorithm);
  }

  /// Legacy four-axis form (fault + migration axes unused or index 0).
  [[nodiscard]] std::size_t cell_index(std::size_t scenario,
                                       std::size_t workload, std::size_t seed,
                                       std::size_t algorithm) const noexcept {
    return cell_index(scenario, workload, seed, 0, 0, algorithm);
  }

  /// The full figure-suite matrix (Figures 5, 7-12 + §5.1 text): the paper
  /// scenario, all four algorithms, Synthetic + the three Azure subsets.
  [[nodiscard]] static SweepSpec figure_matrix(
      std::uint64_t seed /* = kDefaultSeed (sim/experiments.hpp) */);
};

/// One executed cell, in expansion order.
struct SweepResult {
  std::size_t cell = 0;  ///< flat index (== position in the result vector)
  std::size_t scenario_index = 0;
  std::size_t workload_index = 0;
  std::size_t seed_index = 0;
  std::size_t fault_index = 0;
  std::size_t migration_index = 0;
  std::size_t algorithm_index = 0;
  std::string scenario;   ///< scenario label
  std::string fault_plan; ///< fault-plan label ("none" when axis unused)
  std::string migration_plan;  ///< migration-plan label ("none" when unused)
  std::uint64_t seed = 0; ///< the cell's seed (workload RNG stream root)
  SimMetrics metrics;     ///< carries the workload label and algorithm name
  Timeline timeline;                ///< populated when record_timeline
  std::vector<double> latency_ns;  ///< populated when record_latency
};

class SweepRunner {
 public:
  /// `threads` <= 0 resolves via default_thread_count() (RISA_THREADS env
  /// override, else hardware concurrency).  Pass 1 for timing-faithful
  /// serial execution (Figures 11/12).
  explicit SweepRunner(int threads = 0);

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// Execute every cell; results are indexed by SweepSpec::cell_index and
  /// independent of the thread count.  Throws the first worker exception.
  [[nodiscard]] std::vector<SweepResult> run(const SweepSpec& spec) const;

 private:
  int threads_;
};

/// Extract just the metrics, in cell order -- the shape the report tables
/// consume.
[[nodiscard]] std::vector<SimMetrics> metrics_of(
    const std::vector<SweepResult>& results);

/// Canonical bit-exact digest of one SimMetrics, excluding the wall-clock
/// field scheduler_exec_seconds (doubles are rendered from their IEEE-754
/// bit patterns, so two digests match iff the metrics match bit-for-bit).
/// Used by the determinism tests and available to drivers for run-to-run
/// verification.
[[nodiscard]] std::string metrics_fingerprint(const SimMetrics& m);

}  // namespace risa::sim
