// Metrics collected by one simulation run -- the union of everything the
// paper's Figures 5 and 7-12 report, plus diagnostics (drops by reason,
// fallback counts, peak utilizations).
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "photonics/power_ledger.hpp"
#include "sim/phase_profiler.hpp"

namespace risa::sim {

struct SimMetrics {
  std::string algorithm;
  std::string workload;

  // Placement outcomes (Figures 5 and 7).
  std::uint64_t total_vms = 0;
  std::uint64_t placed = 0;
  std::uint64_t dropped = 0;
  /// "Inter-rack VM assignments" as the paper's Figures 5/7/10 count them:
  /// the VM's CPU and RAM land in different racks.  (Figure 10's averages
  /// -- e.g. 226 ns = 110 + 220 * 0.527 -- tie the latency directly to this
  /// fraction, which pins the definition; see EXPERIMENTS.md.)
  std::uint64_t inter_rack_placements = 0;
  /// Broader diagnostic: any resource pair (CPU-RAM or RAM-storage) spans
  /// racks.  NULB/NALB routinely split RAM from storage even when CPU-RAM
  /// stay together, which is what drives their Figure 9 power gap.
  std::uint64_t any_pair_inter_rack = 0;
  std::uint64_t fallback_placements = 0;  ///< RISA SUPER_RACK path uses
  CounterSet drops_by_reason;

  // Lifecycle outcomes (DESIGN.md §8).  All zero when the scenario's
  // FaultPlan is empty; deliberately EXCLUDED from metrics_fingerprint so
  // the frozen digest field set stays comparable across engine generations.
  /// Placements terminated early because their box went offline.  A killed
  /// VM still counts in `placed` (it was admitted); kills are orthogonal.
  std::uint64_t killed = 0;
  /// RETRY events scheduled (one per requeue of a dropped or killed VM).
  std::uint64_t requeued = 0;
  /// Successful placements that happened via a RETRY event (re-admission
  /// of a dropped VM or re-placement of a killed one).
  std::uint64_t retry_placed = 0;
  /// Simulated time with at least one box offline or link failed
  /// (degraded operation).
  double degraded_tu = 0.0;

  // Migration outcomes (DESIGN.md §9).  All zero when the scenario's
  // MigrationPlan is empty; EXCLUDED from metrics_fingerprint like the
  // lifecycle counters above.
  /// Committed live migrations (a MIGRATE sweep re-placed the VM and the
  /// new placement stuck; rejected or failed attempts do not count).
  std::uint64_t migrated = 0;
  /// Total double-charge window time: per-migration cost (fixed + RAM
  /// transfer over the CPU-RAM circuit) summed over committed migrations.
  /// During these windows the VM was charged on both placements.
  double migration_tu = 0.0;
  /// Migrations whose new placement removed the CPU-RAM rack split -- the
  /// paper's "inter-rack VM" definition recovered after the fact.  Under
  /// `only_if_improves` (the default) a commit can never introduce a
  /// CPU-RAM split (any placement with one scores above any without), so
  /// inter_rack_placements minus this is the effective live inter-rack
  /// count; with the stress mode (`only_if_improves = false`) moves may
  /// re-spread VMs and that derivation overstates recovery.
  std::uint64_t interrack_vms_recovered = 0;

  [[nodiscard]] double inter_rack_fraction() const noexcept {
    return total_vms > 0 ? static_cast<double>(inter_rack_placements) /
                               static_cast<double>(total_vms)
                         : 0.0;
  }
  [[nodiscard]] double drop_fraction() const noexcept {
    return total_vms > 0
               ? static_cast<double>(dropped) / static_cast<double>(total_vms)
               : 0.0;
  }

  // Time-weighted compute utilization over the horizon (§5.1 text).
  PerResource<double> avg_utilization{0.0, 0.0, 0.0};
  PerResource<double> peak_utilization{0.0, 0.0, 0.0};

  // Network utilization (Figure 8).
  double avg_intra_net_utilization = 0.0;
  double avg_inter_net_utilization = 0.0;
  double peak_intra_net_utilization = 0.0;
  double peak_inter_net_utilization = 0.0;

  // Optical power (Figure 9).
  double avg_optical_power_w = 0.0;
  phot::VmEnergy energy{};

  // CPU-RAM round-trip latency (Figure 10).
  RunningStats cpu_ram_latency_ns;

  // Scheduler execution time (Figures 11-12): wall-clock seconds spent
  // inside Allocator::try_place across the run.
  double scheduler_exec_seconds = 0.0;

  // End-to-end engine wall time: the whole Engine::run body (reset, event
  // loop, metric finalization), wall-clock seconds.  sched_s isolates the
  // policy; this captures the dispatch loop around it (DESIGN.md §7).
  double sim_wall_seconds = 0.0;

  // Discrete events executed: one per arrival plus one per departure
  // (= total_vms + placed under an empty FaultPlan/MigrationPlan; fault,
  // retry and migration events add to it.  Deterministic, unlike the
  // wall-clock fields).
  std::uint64_t events_executed = 0;

  /// Event throughput of the DES loop, events per wall-clock second.
  [[nodiscard]] double events_per_sec() const noexcept {
    return sim_wall_seconds > 0.0
               ? static_cast<double>(events_executed) / sim_wall_seconds
               : 0.0;
  }

  // Simulated horizon (last event time), time units.
  double horizon_tu = 0.0;

  // Phase-attributed wall-time breakdown (sim/phase_profiler.hpp), filled
  // only when the run enabled profiling (Engine::set_profiling).
  // Wall-clock measurement like sim_wall_seconds: never fingerprinted,
  // never checkpointed.
  PhaseProfile profile{};
};

}  // namespace risa::sim
