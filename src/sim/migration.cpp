#include "sim/migration.hpp"

#include <algorithm>

namespace risa::sim {

int migration_spread_score(const core::Placement& p,
                           const net::Fabric& fabric) noexcept {
  const RackId cpu = p.rack(ResourceType::Cpu);
  const RackId ram = p.rack(ResourceType::Ram);
  const RackId sto = p.rack(ResourceType::Storage);
  int score = 0;
  if (cpu != ram) {
    score += 2;
    if (!fabric.same_pod(cpu, ram)) score += 1;
  }
  if (ram != sto) score += 1;
  return score;
}

double migration_cost_tu(const MigrationPlan& plan, Megabytes ram_mb,
                         MbitsPerSec cpu_ram_bw,
                         double seconds_per_time_unit) noexcept {
  double cost = plan.fixed_cost_tu;
  if (plan.charge_transfer && cpu_ram_bw > 0 && ram_mb > 0 &&
      seconds_per_time_unit > 0.0) {
    // MB * 8 = megabits; over Mbit/s = seconds on the circuit.
    const double transfer_s = static_cast<double>(ram_mb) * 8.0 /
                              static_cast<double>(cpu_ram_bw);
    cost += transfer_s / seconds_per_time_unit;
  }
  return cost;
}

void rank_worst_spread(std::vector<std::uint64_t>& keys, std::size_t budget) {
  if (budget >= keys.size()) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::partial_sort(keys.begin(),
                    keys.begin() + static_cast<std::ptrdiff_t>(budget),
                    keys.end());
}

}  // namespace risa::sim
