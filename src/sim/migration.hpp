// The defragmentation subsystem's policy kernel (DESIGN.md §9): how spread
// a live placement is, what one migration costs, and how a sweep ranks its
// candidates.  The Engine executes MIGRATE events; everything judgment-
// shaped lives here so tests can pin the policy without running a full
// simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "core/placement.hpp"
#include "network/fabric.hpp"
#include "sim/migration_plan.hpp"

namespace risa::sim {

/// How badly a placement is spread across the fabric, higher = worse:
///   +2 when CPU and RAM sit in different racks (the paper's "inter-rack
///      VM" definition -- the biggest circuit and the Figure 10 latency),
///   +1 when RAM and storage split racks,
///   +1 when the CPU-RAM split additionally crosses pods (three-tier).
/// 0 means fully intra-rack: never a migration candidate.
[[nodiscard]] int migration_spread_score(const core::Placement& p,
                                         const net::Fabric& fabric) noexcept;

/// The double-charge window of one migration, simulated time units: the
/// plan's fixed cost plus (when charge_transfer) the VM's RAM image moved
/// over its CPU-RAM circuit bandwidth.  `ram_mb` megabytes over
/// `cpu_ram_bw` Mbit/s gives seconds; `seconds_per_time_unit` converts to
/// the simulation clock.  A zero-rate flow contributes no transfer time.
[[nodiscard]] double migration_cost_tu(const MigrationPlan& plan,
                                       Megabytes ram_mb,
                                       MbitsPerSec cpu_ram_bw,
                                       double seconds_per_time_unit) noexcept;

/// Rank packed (score, vm_index) keys so the first `budget` entries are
/// the worst-spread candidates in deterministic order (score descending,
/// VM index ascending), in place and allocation-free.  Keys come from
/// pack_candidate(); unpack with candidate_index().
void rank_worst_spread(std::vector<std::uint64_t>& keys, std::size_t budget);

/// Pack one candidate: sorting the packed keys ascending yields score
/// descending, index ascending (the deterministic pick order).
[[nodiscard]] constexpr std::uint64_t pack_candidate(
    int score, std::uint32_t vm_index) noexcept {
  // Scores are small non-negative ints; invert into the high word.
  return (static_cast<std::uint64_t>(0x7fffffff - score) << 32) | vm_index;
}

[[nodiscard]] constexpr std::uint32_t candidate_index(
    std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

}  // namespace risa::sim
