#include "sim/sweep.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/flags.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "core/registry.hpp"
#include "sim/experiments.hpp"
#include "workload/azure.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {

namespace {
/// Trace-file name component: labels can carry spaces/slashes ("Azure
/// 3000"); anything outside [A-Za-z0-9_-] becomes '-'.
std::string sanitize_label(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += keep ? c : '-';
  }
  return out;
}
}  // namespace

WorkloadSpec WorkloadSpec::synthetic(std::size_t count) {
  WorkloadSpec spec;
  spec.label = "Synthetic";
  spec.generate = [count](std::uint64_t seed) {
    wl::SyntheticConfig config;
    if (count > 0) config.count = count;
    return wl::generate_synthetic(config, seed);
  };
  spec.make_source = [count](std::uint64_t seed) {
    wl::SyntheticConfig config;
    if (count > 0) config.count = count;
    return std::make_unique<wl::SyntheticStreamSource>(config, seed);
  };
  return spec;
}

WorkloadSpec WorkloadSpec::azure(const std::string& subset) {
  const std::string key = to_lower(subset);
  for (const wl::AzureSpec& azure : wl::azure_all_subsets()) {
    if (to_lower(azure.label).find(key) == std::string::npos) continue;
    WorkloadSpec spec;
    spec.label = azure.label;
    spec.generate = [azure](std::uint64_t seed) {
      return wl::generate_azure(azure, seed);
    };
    spec.make_source = [azure](std::uint64_t seed) {
      return std::make_unique<wl::AzureStreamSource>(azure, seed);
    };
    return spec;
  }
  throw std::invalid_argument("WorkloadSpec::azure: unknown subset '" +
                              subset + "'");
}

std::vector<WorkloadSpec> WorkloadSpec::azure_all() {
  std::vector<WorkloadSpec> out;
  for (const wl::AzureSpec& azure : wl::azure_all_subsets()) {
    WorkloadSpec spec;
    spec.label = azure.label;
    spec.generate = [azure](std::uint64_t seed) {
      return wl::generate_azure(azure, seed);
    };
    spec.make_source = [azure](std::uint64_t seed) {
      return std::make_unique<wl::AzureStreamSource>(azure, seed);
    };
    out.push_back(std::move(spec));
  }
  return out;
}

WorkloadSpec WorkloadSpec::fixed(std::string label, wl::Workload w) {
  WorkloadSpec spec;
  spec.label = std::move(label);
  auto shared = std::make_shared<wl::Workload>(std::move(w));
  spec.generate = [shared](std::uint64_t) { return *shared; };
  return spec;
}

void SweepSpec::validate() const {
  if (scenarios.empty() || workloads.empty() || seeds.empty() ||
      algorithms.empty()) {
    throw std::invalid_argument("SweepSpec: empty matrix axis");
  }
  for (const auto& [label, scenario] : scenarios) {
    if (label.empty()) {
      throw std::invalid_argument("SweepSpec: unlabeled scenario");
    }
    scenario.validate();
  }
  for (const WorkloadSpec& w : workloads) {
    if (w.label.empty() || !w.generate) {
      throw std::invalid_argument("SweepSpec: malformed workload spec");
    }
  }
  for (const auto& [label, plan] : fault_plans) {
    if (label.empty()) {
      throw std::invalid_argument("SweepSpec: unlabeled fault plan");
    }
    plan.validate();
  }
  for (const auto& [label, plan] : migration_plans) {
    if (label.empty()) {
      throw std::invalid_argument("SweepSpec: unlabeled migration plan");
    }
    plan.validate();
  }
}

SweepSpec SweepSpec::figure_matrix(std::uint64_t seed) {
  SweepSpec spec;
  spec.scenarios = {{"paper", Scenario::paper_defaults()}};
  spec.workloads.push_back(WorkloadSpec::synthetic());
  for (WorkloadSpec& azure : WorkloadSpec::azure_all()) {
    spec.workloads.push_back(std::move(azure));
  }
  spec.seeds = {seed};
  spec.algorithms = core::algorithm_names();
  return spec;
}

SweepRunner::SweepRunner(int threads)
    : threads_(resolve_thread_count(threads)) {}

std::vector<SweepResult> SweepRunner::run(const SweepSpec& spec) const {
  spec.validate();

  // Materialize each (workload, seed) pair exactly once, up front, so the
  // matrix shares one immutable copy per pair instead of regenerating it
  // per algorithm cell.  Generation itself is parallelized the same way as
  // the cells (the Azure decoders are pure functions of their seed).
  const std::size_t pairs = spec.workloads.size() * spec.seeds.size();
  std::vector<wl::Workload> workloads(pairs);
  const std::size_t cells = spec.cell_count();
  const int pool_threads =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads_), std::max<std::size_t>(cells, 1)));
  ThreadPool pool(pool_threads);
  pool.run_indexed(pairs, [&](std::size_t, std::size_t i) {
    const std::size_t w = i / spec.seeds.size();
    const std::size_t s = i % spec.seeds.size();
    // Streaming cells pull arrivals on demand; skipping materialization
    // here is what actually bounds the sweep's RSS.
    if (spec.streaming && spec.workloads[w].make_source) return;
    workloads[i] = spec.workloads[w].generate(spec.seeds[s]);
  });

  std::vector<SweepResult> results(cells);

  // Per-lane engine pool: one reusable stack per worker, rebuilt only when
  // the lane crosses a scenario boundary.
  std::vector<std::unique_ptr<Engine>> engines(pool.size());
  std::vector<std::size_t> engine_scenario(pool.size(), SIZE_MAX);

  pool.run_indexed(cells, [&](std::size_t lane, std::size_t i) {
    // Invert the scenario-major expansion (see SweepSpec::cell_index).
    std::size_t rest = i;
    const std::size_t a = rest % spec.algorithms.size();
    rest /= spec.algorithms.size();
    const std::size_t g = rest % spec.migration_count();
    rest /= spec.migration_count();
    const std::size_t f = rest % spec.fault_count();
    rest /= spec.fault_count();
    const std::size_t s = rest % spec.seeds.size();
    rest /= spec.seeds.size();
    const std::size_t w = rest % spec.workloads.size();
    const std::size_t sc = rest / spec.workloads.size();

    std::unique_ptr<Engine>& engine = engines[lane];
    if (engine == nullptr || engine_scenario[lane] != sc) {
      engine = std::make_unique<Engine>(spec.scenarios[sc].second,
                                        spec.algorithms[a]);
      engine_scenario[lane] = sc;
    } else {
      engine->set_algorithm(spec.algorithms[a]);
    }

    SweepResult& r = results[i];
    r.cell = i;
    r.scenario_index = sc;
    r.workload_index = w;
    r.seed_index = s;
    r.fault_index = f;
    r.migration_index = g;
    r.algorithm_index = a;
    r.scenario = spec.scenarios[sc].first;
    r.fault_plan =
        spec.fault_plans.empty() ? "none" : spec.fault_plans[f].first;
    r.migration_plan = spec.migration_plans.empty()
                           ? "none"
                           : spec.migration_plans[g].first;
    r.seed = spec.seeds[s];

    // The cell's fault/migration plans (the scenario's own when an axis is
    // unused).
    engine->set_fault_plan(
        spec.fault_plans.empty() ? nullptr : &spec.fault_plans[f].second);
    engine->set_migration_plan(spec.migration_plans.empty()
                                   ? nullptr
                                   : &spec.migration_plans[g].second);
    engine->set_timeline(spec.record_timeline ? &r.timeline : nullptr);
    engine->set_profiling(spec.record_profile);
    const bool stream_cell = spec.streaming && spec.workloads[w].make_source;
    if (spec.record_latency) {
      if (!stream_cell) {
        r.latency_ns.reserve(workloads[w * spec.seeds.size() + s].size());
      }
      engine->set_placement_latency_sink(&r.latency_ns);
    } else {
      engine->set_placement_latency_sink(nullptr);
    }
    // Per-cell trace (DESIGN.md §14): a private Telemetry per cell keeps
    // the lanes share-nothing, so traced sweeps stay deterministic at any
    // thread count (the trace file is named by cell index, not lane).
    std::unique_ptr<Telemetry> cell_tel;
    if (!spec.trace_dir.empty()) {
      TelemetryConfig cfg = spec.telemetry;
      cfg.trace_path = spec.trace_dir + "/cell" + std::to_string(i) + "." +
                       sanitize_label(spec.workloads[w].label) + "." +
                       sanitize_label(spec.algorithms[a]) + ".trace.json";
      cell_tel = std::make_unique<Telemetry>(std::move(cfg));
      engine->set_telemetry(cell_tel.get());
    }
    if (stream_cell) {
      const std::unique_ptr<wl::ArrivalSource> source =
          spec.workloads[w].make_source(spec.seeds[s]);
      r.metrics = engine->run_stream(*source, spec.workloads[w].label);
    } else {
      r.metrics = engine->run(workloads[w * spec.seeds.size() + s],
                              spec.workloads[w].label);
    }
    engine->set_telemetry(nullptr);
    engine->set_timeline(nullptr);
    engine->set_placement_latency_sink(nullptr);
    engine->set_fault_plan(nullptr);
    engine->set_migration_plan(nullptr);
  });

  return results;
}

std::vector<SimMetrics> metrics_of(const std::vector<SweepResult>& results) {
  std::vector<SimMetrics> out;
  out.reserve(results.size());
  for (const SweepResult& r : results) out.push_back(r.metrics);
  return out;
}

namespace {

void put_u64(std::ostringstream& os, std::uint64_t v) {
  os << std::hex << v << std::dec << '|';
}

void put_f64(std::ostringstream& os, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(os, bits);
}

}  // namespace

std::string metrics_fingerprint(const SimMetrics& m) {
  std::ostringstream os;
  os << m.algorithm << '|' << m.workload << '|';
  put_u64(os, m.total_vms);
  put_u64(os, m.placed);
  put_u64(os, m.dropped);
  put_u64(os, m.inter_rack_placements);
  put_u64(os, m.any_pair_inter_rack);
  put_u64(os, m.fallback_placements);
  for (const auto& [reason, count] : m.drops_by_reason.items()) {
    os << reason << '=' << count << '|';
  }
  for (ResourceType t : kAllResources) {
    put_f64(os, m.avg_utilization[t]);
    put_f64(os, m.peak_utilization[t]);
  }
  put_f64(os, m.avg_intra_net_utilization);
  put_f64(os, m.avg_inter_net_utilization);
  put_f64(os, m.peak_intra_net_utilization);
  put_f64(os, m.peak_inter_net_utilization);
  put_f64(os, m.avg_optical_power_w);
  put_f64(os, m.energy.switch_switching_j);
  put_f64(os, m.energy.switch_trimming_j);
  put_f64(os, m.energy.transceiver_j);
  put_u64(os, m.cpu_ram_latency_ns.count());
  put_f64(os, m.cpu_ram_latency_ns.sum());
  put_f64(os, m.cpu_ram_latency_ns.mean());
  put_f64(os, m.cpu_ram_latency_ns.count() > 0 ? m.cpu_ram_latency_ns.min()
                                               : 0.0);
  put_f64(os, m.cpu_ram_latency_ns.count() > 0 ? m.cpu_ram_latency_ns.max()
                                               : 0.0);
  // scheduler_exec_seconds and sim_wall_seconds deliberately omitted:
  // wall-clock, not simulation outputs (see the determinism contract in
  // sweep.hpp).  events_executed is omitted too -- it is derivable
  // (total_vms + placed), and keeping the field set frozen keeps digests
  // comparable across engine generations.
  put_f64(os, m.horizon_tu);
  return os.str();
}

}  // namespace risa::sim
