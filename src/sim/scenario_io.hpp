// Scenario (de)serialization: a flat `key = value` config format so
// experiments can be driven from files / the risa_sim CLI without
// recompiling.  `#` starts a comment; unknown keys are an error (typos must
// surface); omitted keys keep their paper defaults.
//
// Example:
//   # half-size cluster with generous fabric
//   cluster.racks            = 9
//   fabric.links_per_box     = 8
//   photonics.alpha          = 0.75
//   allocator.companion      = anchor-rack-first
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "sim/scenario.hpp"

namespace risa::sim {

/// Parse a config stream into a Scenario (starting from paper defaults).
/// Throws std::runtime_error with line context on malformed input.
[[nodiscard]] Scenario load_scenario(std::istream& is);
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// Serialize every tunable of `scenario` (inverse of load_scenario).
void save_scenario(std::ostream& os, const Scenario& scenario);
void save_scenario_file(const std::string& path, const Scenario& scenario);

// --- FaultPlan JSON ---------------------------------------------------------
//
// Fault scripts are list-structured (N actions, each with its own trigger
// and victim form), which the flat `key = value` scenario format cannot
// express; they round-trip through a small JSON document instead:
//
//   {
//     "seed": 99,
//     "retry": {"max_attempts": 2, "delay_tu": 25},
//     "actions": [
//       {"action": "fail",      "at_time": 120,           "box": 3},
//       {"action": "repair",    "at_time": 500,           "box": 3},
//       {"action": "fail",      "after_admissions": 1500, "random_boxes": 2},
//       {"action": "link-fail", "at_time": 200,           "random_links": 3},
//       {"action": "link-repair", "at_time": 400,         "link": 17}
//     ]
//   }
//
// Unknown keys are an error (typos must surface); omitted keys keep their
// defaults; the parsed plan is validated.  parse(fault_plan_json(p)) == p.

/// Serialize a plan as the JSON document above.
[[nodiscard]] std::string fault_plan_json(const FaultPlan& plan);

/// Parse the JSON document; throws std::runtime_error with context on
/// malformed input, unknown keys, or a plan that fails validation.
[[nodiscard]] FaultPlan parse_fault_plan_json(std::string_view json);

[[nodiscard]] FaultPlan load_fault_plan_file(const std::string& path);
void save_fault_plan_file(const std::string& path, const FaultPlan& plan);

// --- MigrationPlan JSON -----------------------------------------------------
//
// Defragmentation plans (DESIGN.md §9) round-trip through a flat JSON
// object; every knob is serialized, omitted keys keep their defaults:
//
//   {
//     "period_tu": 200, "first_sweep_at": 0, "min_interrack_fraction": 0,
//     "per_sweep_budget": 2, "total_budget": 64, "fixed_cost_tu": 0,
//     "charge_transfer": true, "only_if_improves": true,
//     "skip_while_degraded": false
//   }
//
// Unknown keys are an error; the parsed plan is validated.
// parse(migration_plan_json(p)) == p.

/// Serialize a plan as the JSON document above.
[[nodiscard]] std::string migration_plan_json(const MigrationPlan& plan);

/// Parse the JSON document; throws std::runtime_error with context on
/// malformed input, unknown keys, or a plan that fails validation.
[[nodiscard]] MigrationPlan parse_migration_plan_json(std::string_view json);

[[nodiscard]] MigrationPlan load_migration_plan_file(const std::string& path);
void save_migration_plan_file(const std::string& path,
                              const MigrationPlan& plan);

}  // namespace risa::sim
