// Scenario (de)serialization: a flat `key = value` config format so
// experiments can be driven from files / the risa_sim CLI without
// recompiling.  `#` starts a comment; unknown keys are an error (typos must
// surface); omitted keys keep their paper defaults.
//
// Example:
//   # half-size cluster with generous fabric
//   cluster.racks            = 9
//   fabric.links_per_box     = 8
//   photonics.alpha          = 0.75
//   allocator.companion      = anchor-rack-first
#pragma once

#include <iosfwd>
#include <string>

#include "sim/scenario.hpp"

namespace risa::sim {

/// Parse a config stream into a Scenario (starting from paper defaults).
/// Throws std::runtime_error with line context on malformed input.
[[nodiscard]] Scenario load_scenario(std::istream& is);
[[nodiscard]] Scenario load_scenario_file(const std::string& path);

/// Serialize every tunable of `scenario` (inverse of load_scenario).
void save_scenario(std::ostream& os, const Scenario& scenario);
void save_scenario_file(const std::string& path, const Scenario& scenario);

}  // namespace risa::sim
