// Path construction + link selection policies.
//
// NULB "selects the first available link to establish the connection
// between each pair of resources"; NALB "chooses links with the most
// available bandwidth" (§4.1).  Both are expressed as a LinkSelectPolicy
// over each parallel-link group along the deterministic two-tier route.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "network/fabric.hpp"
#include "network/path.hpp"

namespace risa::net {

enum class LinkSelectPolicy : std::uint8_t {
  FirstFit = 0,       ///< first link with enough free capacity (NULB, RISA)
  MostAvailable = 1,  ///< link with the largest free capacity (NALB)
};

[[nodiscard]] constexpr std::string_view name(LinkSelectPolicy p) noexcept {
  switch (p) {
    case LinkSelectPolicy::FirstFit: return "first-fit";
    case LinkSelectPolicy::MostAvailable: return "most-available";
  }
  return "?";
}

class Router {
 public:
  explicit Router(Fabric& fabric) : fabric_(&fabric) {}

  /// Choose one link from a parallel group with at least `bw` free.
  [[nodiscard]] Result<LinkId, std::string> select_link(
      std::span<const LinkId> group, MbitsPerSec bw,
      LinkSelectPolicy policy) const;

  /// Build (but do not reserve) a path from `src` box to `dst` box able to
  /// carry `bw`.  Boxes must differ: in this architecture every box holds a
  /// single resource type, so any resource pair crosses the rack switch.
  [[nodiscard]] Result<CircuitPath, std::string> find_path(
      BoxId src, RackId src_rack, BoxId dst, RackId dst_rack, MbitsPerSec bw,
      LinkSelectPolicy policy) const;

  /// Reserve bandwidth on every hop of `path`; rolls back on partial
  /// failure so the fabric is unchanged when the result is an error.
  [[nodiscard]] Result<bool, std::string> reserve(const CircuitPath& path,
                                                  MbitsPerSec bw);

  /// Return bandwidth on every hop.
  void release(const CircuitPath& path, MbitsPerSec bw);

  /// Total free bandwidth across a parallel-link group.
  [[nodiscard]] MbitsPerSec group_available(std::span<const LinkId> group) const;

  /// Largest single-link free bandwidth in a group.
  [[nodiscard]] MbitsPerSec group_max_available(std::span<const LinkId> group) const;

 private:
  Fabric* fabric_;
};

}  // namespace risa::net
