// The two-tier optical circuit-switched fabric of the dReDBox-style DDC
// (§3.1, Figures 2-3).
//
// Topology built per cluster shape:
//   * one box switch per box, one rack switch per rack, one inter-rack
//     (core) switch for the cluster;
//   * `links_per_box` parallel 200 Gb/s links between each box switch and
//     its rack switch (the intra-rack tier);
//   * `links_per_rack` parallel links between each rack switch and the
//     inter-rack switch (the inter-rack tier).
//
// The paper specifies the per-link rate (200 Gb/s) and switch radices
// (64/256/512) but not the uplink multiplicity; defaults here are calibrated
// so Azure-workload intra-rack utilization lands in the paper's 30-43% band
// (see DESIGN.md §2.3).  All aggregates (cluster-wide and per-rack intra
// free bandwidth) are maintained incrementally; RISA's AVAIL_INTRA_RACK_NET
// test reads them in O(1).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "network/link.hpp"
#include "network/switch_node.hpp"
#include "topology/config.hpp"

namespace risa::net {

struct FabricConfig {
  /// Parallel links from each box switch to its rack switch.
  std::uint32_t links_per_box = 6;
  /// Parallel links from each rack switch to the inter-rack switch.
  std::uint32_t links_per_rack = 18;
  /// Per-link capacity: 8 spatially-multiplexed channels x 25 Gb/s (§3.1).
  MbitsPerSec link_capacity = gbps(200.0);
  /// Rate of one spatial channel.  Optical circuit switching reserves whole
  /// channels, so bandwidth *comparisons* (NALB's "most available
  /// bandwidth" ordering) are made at this granularity.
  MbitsPerSec channel_rate = gbps(25.0);
  /// Beneš radices for the energy model (§5.2).
  std::uint32_t box_switch_ports = 64;
  std::uint32_t rack_switch_ports = 256;
  std::uint32_t inter_rack_switch_ports = 512;

  /// Three-tier extension (the topology family of the RL scheduler [17]
  /// that §2 contrasts against): group racks into pods of this size and
  /// insert a pod-switch tier between rack switches and the core.  0 keeps
  /// the paper's two-tier structure.
  std::uint32_t racks_per_pod = 0;
  /// Parallel links from each pod switch to the inter-rack switch.
  std::uint32_t links_per_pod = 18;
  std::uint32_t pod_switch_ports = 512;

  void validate() const {
    if (links_per_box == 0 || links_per_rack == 0) {
      throw std::invalid_argument("FabricConfig: zero uplink multiplicity");
    }
    if (link_capacity <= 0) {
      throw std::invalid_argument("FabricConfig: non-positive link capacity");
    }
    if (channel_rate <= 0 || channel_rate > link_capacity) {
      throw std::invalid_argument("FabricConfig: bad channel rate");
    }
    for (std::uint32_t p : {box_switch_ports, rack_switch_ports,
                            inter_rack_switch_ports, pod_switch_ports}) {
      if (p < 2) throw std::invalid_argument("FabricConfig: switch ports < 2");
    }
    if (racks_per_pod > 0 && links_per_pod == 0) {
      throw std::invalid_argument("FabricConfig: pods need uplinks");
    }
  }
};

class Fabric {
 public:
  Fabric(const topo::ClusterConfig& cluster, FabricConfig config);

  [[nodiscard]] const FabricConfig& config() const noexcept { return config_; }

  // --- Switches -----------------------------------------------------------
  [[nodiscard]] const SwitchNode& switch_node(SwitchId id) const;
  [[nodiscard]] SwitchId box_switch(BoxId box) const;
  [[nodiscard]] SwitchId rack_switch(RackId rack) const;
  [[nodiscard]] SwitchId core_switch() const noexcept { return core_switch_; }
  [[nodiscard]] std::size_t num_switches() const noexcept { return switches_.size(); }

  // --- Links --------------------------------------------------------------
  [[nodiscard]] Link& link(LinkId id);
  [[nodiscard]] const Link& link(LinkId id) const;

  /// Bounds-unchecked link access for the routing/search hot loops (link
  /// ids come from the fabric's own uplink tables).  API boundaries keep
  /// the throwing accessor.
  [[nodiscard]] Link& link_unchecked(LinkId id) noexcept {
    assert(id.value() < links_.size());
    return links_[id.value()];
  }
  [[nodiscard]] const Link& link_unchecked(LinkId id) const noexcept {
    assert(id.value() < links_.size());
    return links_[id.value()];
  }
  [[nodiscard]] std::size_t num_links() const noexcept { return links_.size(); }

  /// Parallel uplinks of one box (box switch -> rack switch).
  [[nodiscard]] std::span<const LinkId> box_uplinks(BoxId box) const;

  /// Parallel uplinks of one rack (rack switch -> pod switch in three-tier
  /// mode, rack switch -> core otherwise).
  [[nodiscard]] std::span<const LinkId> rack_uplinks(RackId rack) const;

  // --- Three-tier (pod) extension ------------------------------------------
  /// Number of pods (0 = two-tier, the paper's topology).
  [[nodiscard]] std::uint32_t num_pods() const noexcept {
    return static_cast<std::uint32_t>(pod_switches_.size());
  }
  /// Pod index of a rack; only valid when num_pods() > 0.
  [[nodiscard]] std::uint32_t pod_of_rack(RackId rack) const;
  /// True when both racks sit under the same pod switch (always true in
  /// two-tier mode, where the core is the only aggregation point).
  [[nodiscard]] bool same_pod(RackId a, RackId b) const;
  [[nodiscard]] SwitchId pod_switch(std::uint32_t pod) const;
  /// Parallel uplinks of one pod (pod switch -> core).
  [[nodiscard]] std::span<const LinkId> pod_uplinks(std::uint32_t pod) const;

  /// Reserve / return bandwidth, maintaining aggregates.
  [[nodiscard]] Result<bool, std::string> allocate(LinkId id, MbitsPerSec bw);
  void release(LinkId id, MbitsPerSec bw);

  /// Failure injection: a failed link admits no new circuits and its free
  /// bandwidth leaves the per-rack availability aggregate until repaired.
  void set_link_failed(LinkId id, bool failed);

  /// Links currently failed, maintained incrementally by set_link_failed /
  /// reset -- the engine's degraded-operation signal for link faults (read
  /// per event, so it must be O(1); mirrors Cluster::offline_box_count).
  [[nodiscard]] std::uint32_t failed_link_count() const noexcept {
    return failed_links_;
  }

  // --- Aggregates ---------------------------------------------------------
  [[nodiscard]] MbitsPerSec intra_capacity() const noexcept { return intra_capacity_; }
  [[nodiscard]] MbitsPerSec intra_allocated() const noexcept { return intra_allocated_; }
  [[nodiscard]] MbitsPerSec inter_capacity() const noexcept { return inter_capacity_; }
  [[nodiscard]] MbitsPerSec inter_allocated() const noexcept { return inter_allocated_; }
  [[nodiscard]] double intra_utilization() const noexcept {
    return intra_capacity_ > 0 ? static_cast<double>(intra_allocated_) /
                                     static_cast<double>(intra_capacity_)
                               : 0.0;
  }
  [[nodiscard]] double inter_utilization() const noexcept {
    return inter_capacity_ > 0 ? static_cast<double>(inter_allocated_) /
                                     static_cast<double>(inter_capacity_)
                               : 0.0;
  }

  /// Free intra-rack bandwidth within one rack (sum over box uplinks of
  /// boxes in that rack).  RISA's AVAIL_INTRA_RACK_NET filter.
  [[nodiscard]] MbitsPerSec rack_intra_available(RackId rack) const;

  /// Restore every link to pristine (no reservations, no failures) and
  /// rebuild the aggregates, reusing all existing storage -- the
  /// engine-reuse path.  O(links) with zero heap allocation.
  void reset();

  /// Verifies aggregates against recomputation; throws on divergence.
  void check_invariants() const;

 private:
  FabricConfig config_;
  std::vector<SwitchNode> switches_;
  std::vector<Link> links_;
  std::vector<SwitchId> box_switches_;             // by box id
  std::vector<SwitchId> rack_switches_;            // by rack id
  std::vector<SwitchId> pod_switches_;             // by pod index (3-tier)
  SwitchId core_switch_;
  std::vector<std::vector<LinkId>> box_uplinks_;   // by box id
  std::vector<std::vector<LinkId>> rack_uplinks_;  // by rack id
  std::vector<std::vector<LinkId>> pod_uplinks_;   // by pod index (3-tier)
  std::vector<MbitsPerSec> rack_intra_available_;  // by rack id
  std::uint32_t failed_links_ = 0;
  MbitsPerSec intra_capacity_ = 0;
  MbitsPerSec intra_allocated_ = 0;
  MbitsPerSec inter_capacity_ = 0;
  MbitsPerSec inter_allocated_ = 0;
};

}  // namespace risa::net
