// A point-to-point optical link (one SiP mid-board module per endpoint,
// 8 x 25 Gb/s = 200 Gb/s, §3.1).  Links carry circuit bandwidth reservations;
// allocation never oversubscribes.
#pragma once

#include <cstdint>
#include <string>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace risa::net {

enum class LinkKind : std::uint8_t {
  BoxUplink = 0,   ///< box switch <-> rack switch (intra-rack tier)
  RackUplink = 1,  ///< rack switch <-> pod or inter-rack switch (inter tier)
  PodUplink = 2,   ///< pod switch <-> inter-rack switch (three-tier only)
};

[[nodiscard]] constexpr std::string_view name(LinkKind k) noexcept {
  switch (k) {
    case LinkKind::BoxUplink: return "box-uplink";
    case LinkKind::RackUplink: return "rack-uplink";
    case LinkKind::PodUplink: return "pod-uplink";
  }
  return "?";
}

class Link {
 public:
  Link(LinkId id, LinkKind kind, SwitchId a, SwitchId b, RackId rack,
       BoxId box, MbitsPerSec capacity)
      : id_(id), kind_(kind), a_(a), b_(b), rack_(rack), box_(box),
        capacity_(capacity) {}

  [[nodiscard]] LinkId id() const noexcept { return id_; }
  [[nodiscard]] LinkKind kind() const noexcept { return kind_; }
  [[nodiscard]] SwitchId endpoint_a() const noexcept { return a_; }
  [[nodiscard]] SwitchId endpoint_b() const noexcept { return b_; }
  /// Rack this link belongs to (for box uplinks: the box's rack; for rack
  /// uplinks: the rack whose switch it connects to the core).
  [[nodiscard]] RackId rack() const noexcept { return rack_; }
  /// Box for box uplinks; invalid for rack uplinks.
  [[nodiscard]] BoxId box() const noexcept { return box_; }

  [[nodiscard]] MbitsPerSec capacity() const noexcept { return capacity_; }
  [[nodiscard]] MbitsPerSec allocated() const noexcept { return allocated_; }

  /// Free bandwidth for new circuits: zero while failed.
  [[nodiscard]] MbitsPerSec available() const noexcept {
    return failed_ ? 0 : capacity_ - allocated_;
  }

  /// Free bandwidth ignoring the failure flag (bookkeeping/invariants).
  [[nodiscard]] MbitsPerSec raw_available() const noexcept {
    return capacity_ - allocated_;
  }

  /// Failure injection: a failed link admits no new circuits; existing
  /// reservations stay recorded and can still be released (the caller
  /// decides the fate of circuits that were using the link).
  void set_failed(bool failed) noexcept { failed_ = failed; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] double utilization() const noexcept {
    return capacity_ > 0
               ? static_cast<double>(allocated_) / static_cast<double>(capacity_)
               : 0.0;
  }

  /// Reserve bandwidth; fails without side effects when insufficient.
  [[nodiscard]] Result<bool, std::string> allocate(MbitsPerSec bw);

  /// Return bandwidth; throws std::logic_error on over-release (caller bug).
  void release(MbitsPerSec bw);

  /// Restore the pristine state (no reservations, not failed) in place.
  void reset() noexcept {
    allocated_ = 0;
    failed_ = false;
  }

 private:
  LinkId id_;
  LinkKind kind_;
  SwitchId a_;
  SwitchId b_;
  RackId rack_;
  BoxId box_;
  MbitsPerSec capacity_;
  MbitsPerSec allocated_ = 0;
  bool failed_ = false;
};

}  // namespace risa::net
