// Optical switch nodes of the two-tier DDC fabric (§3.1, Figure 3):
// per-box switches, per-rack (intra-rack) switches, and a cluster-level
// inter-rack switch.  Port counts (radices) feed the Beneš energy model of
// §3.2/§5.2: box 64, rack 256, inter-rack 512 ports.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace risa::net {

enum class SwitchKind : std::uint8_t {
  BoxSwitch = 0,
  RackSwitch = 1,
  InterRackSwitch = 2,
  /// Middle tier of the optional three-tier topology (the structure of the
  /// RL scheduler's setting [17] that §2 contrasts against; disabled in the
  /// paper's two-tier default).
  PodSwitch = 3,
};

[[nodiscard]] constexpr std::string_view name(SwitchKind k) noexcept {
  switch (k) {
    case SwitchKind::BoxSwitch: return "box";
    case SwitchKind::RackSwitch: return "rack";
    case SwitchKind::InterRackSwitch: return "inter-rack";
    case SwitchKind::PodSwitch: return "pod";
  }
  return "?";
}

struct SwitchNode {
  SwitchId id;
  SwitchKind kind = SwitchKind::BoxSwitch;
  std::uint32_t ports = 0;       ///< Beneš radix for the energy model.
  RackId rack = RackId::invalid();  ///< owning rack (invalid for inter-rack)
  BoxId box = BoxId::invalid();     ///< owning box (box switches only)
};

}  // namespace risa::net
