// A circuit path through the two-tier fabric.
//
// Intra-rack:  src box switch -> rack switch -> dst box switch
//              (2 link hops: src box uplink + dst box uplink)
// Inter-rack:  src box switch -> rack A switch -> inter-rack switch ->
//              rack B switch -> dst box switch
//              (4 link hops: 2 box uplinks + 2 rack uplinks)
// These match the "communication journey" narrated for Figure 2.
#pragma once

#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace risa::net {

struct CircuitPath {
  // Inline capacities cover the deepest route (three-tier cross-pod:
  // 6 link hops through 7 switches), so established circuits hold their
  // hops without heap storage.
  SmallVec<LinkId, 6> links;       ///< link hops, source to destination order
  SmallVec<SwitchId, 7> switches;  ///< switches traversed, in order
  bool inter_rack = false;

  [[nodiscard]] std::size_t hop_count() const noexcept { return links.size(); }
};

}  // namespace risa::net
