// A circuit path through the two-tier fabric.
//
// Intra-rack:  src box switch -> rack switch -> dst box switch
//              (2 link hops: src box uplink + dst box uplink)
// Inter-rack:  src box switch -> rack A switch -> inter-rack switch ->
//              rack B switch -> dst box switch
//              (4 link hops: 2 box uplinks + 2 rack uplinks)
// These match the "communication journey" narrated for Figure 2.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace risa::net {

struct CircuitPath {
  std::vector<LinkId> links;       ///< link hops, source to destination order
  std::vector<SwitchId> switches;  ///< switches traversed, in order
  bool inter_rack = false;

  [[nodiscard]] std::size_t hop_count() const noexcept { return links.size(); }
};

}  // namespace risa::net
