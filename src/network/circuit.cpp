#include "network/circuit.hpp"

namespace risa::net {

Result<CircuitId, std::string> CircuitTable::establish(VmId vm, FlowKind flow,
                                                       MbitsPerSec bw,
                                                       CircuitPath path) {
  auto reserved = router_->reserve(path, bw);
  if (!reserved.ok()) {
    return Err<std::string>{reserved.error()};
  }
  const CircuitId id{next_id_++};
  Circuit circuit{id, vm, flow, bw, std::move(path)};
  circuits_.emplace(id.value(), std::move(circuit));
  by_vm_[vm.value()].push_back(id);
  return id;
}

std::size_t CircuitTable::teardown_vm(VmId vm) {
  const auto it = by_vm_.find(vm.value());
  if (it == by_vm_.end()) return 0;
  std::size_t removed = 0;
  for (CircuitId cid : it->second) {
    const auto cit = circuits_.find(cid.value());
    if (cit == circuits_.end()) continue;
    router_->release(cit->second.path, cit->second.bandwidth);
    circuits_.erase(cit);
    ++removed;
  }
  by_vm_.erase(it);
  return removed;
}

std::vector<const Circuit*> CircuitTable::circuits_of(VmId vm) const {
  std::vector<const Circuit*> out;
  const auto it = by_vm_.find(vm.value());
  if (it == by_vm_.end()) return out;
  out.reserve(it->second.size());
  for (CircuitId cid : it->second) {
    const auto cit = circuits_.find(cid.value());
    if (cit != circuits_.end()) out.push_back(&cit->second);
  }
  return out;
}

}  // namespace risa::net
