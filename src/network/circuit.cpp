#include "network/circuit.hpp"

#include <stdexcept>

namespace risa::net {

Result<CircuitId, std::string> CircuitTable::establish(VmId vm, FlowKind flow,
                                                       MbitsPerSec bw,
                                                       CircuitPath path) {
  auto reserved = router_->reserve(path, bw);
  if (!reserved.ok()) {
    return Err<std::string>{reserved.error()};
  }
  const CircuitId id{next_id_++};
  VmCircuits& vc = by_vm_.find_or_insert(vm.value());
  Circuit circuit{id, vm, flow, bw, std::move(path)};
  if (vc.count < kInlineCircuits) {
    vc.inline_circuits[vc.count] = std::move(circuit);
  } else {
    vc.overflow.push_back(std::move(circuit));
  }
  ++vc.count;
  ++active_;
  return id;
}

void CircuitTable::adopt(Circuit circuit) {
  auto reserved = router_->reserve(circuit.path, circuit.bandwidth);
  if (!reserved.ok()) {
    throw std::runtime_error("CircuitTable::adopt: " + reserved.error());
  }
  VmCircuits& vc = by_vm_.find_or_insert(circuit.vm.value());
  if (vc.count < kInlineCircuits) {
    vc.inline_circuits[vc.count] = std::move(circuit);
  } else {
    vc.overflow.push_back(std::move(circuit));
  }
  ++vc.count;
  ++active_;
}

std::size_t CircuitTable::teardown_vm(VmId vm) {
  VmCircuits* vc = by_vm_.find(vm.value());
  if (vc == nullptr) return 0;
  for (std::uint32_t i = 0; i < vc->count && i < kInlineCircuits; ++i) {
    router_->release(vc->inline_circuits[i].path,
                     vc->inline_circuits[i].bandwidth);
  }
  for (const Circuit& c : vc->overflow) {
    router_->release(c.path, c.bandwidth);
  }
  const std::size_t removed = vc->count;
  active_ -= removed;
  by_vm_.erase(vm.value());
  return removed;
}

std::size_t CircuitTable::teardown_prefix(VmId vm, std::uint32_t k) {
  VmCircuits* vc = by_vm_.find(vm.value());
  if (vc == nullptr || k == 0) return 0;
  if (k > vc->count) k = vc->count;
  for (std::uint32_t i = 0; i < k; ++i) {
    const Circuit& c = slot(*vc, i);
    router_->release(c.path, c.bandwidth);
  }
  for (std::uint32_t i = k; i < vc->count; ++i) {
    slot(*vc, i - k) = std::move(slot(*vc, i));
  }
  vc->count -= k;
  const std::uint32_t keep_overflow =
      vc->count > kInlineCircuits ? vc->count - kInlineCircuits : 0;
  while (vc->overflow.size() > keep_overflow) vc->overflow.pop_back();
  active_ -= k;
  if (vc->count == 0) by_vm_.erase(vm.value());
  return k;
}

std::size_t CircuitTable::teardown_suffix(VmId vm, std::uint32_t keep) {
  VmCircuits* vc = by_vm_.find(vm.value());
  if (vc == nullptr || keep >= vc->count) return 0;
  const std::uint32_t removed = vc->count - keep;
  for (std::uint32_t i = keep; i < vc->count; ++i) {
    const Circuit& c = slot(*vc, i);
    router_->release(c.path, c.bandwidth);
  }
  vc->count = keep;
  const std::uint32_t keep_overflow =
      keep > kInlineCircuits ? keep - kInlineCircuits : 0;
  while (vc->overflow.size() > keep_overflow) vc->overflow.pop_back();
  active_ -= removed;
  if (vc->count == 0) by_vm_.erase(vm.value());
  return removed;
}

std::vector<const Circuit*> CircuitTable::circuits_of(VmId vm) const {
  std::vector<const Circuit*> out;
  const VmCircuits* vc = by_vm_.find(vm.value());
  if (vc == nullptr) return out;
  out.reserve(vc->count);
  for (std::uint32_t i = 0; i < vc->count && i < kInlineCircuits; ++i) {
    out.push_back(&vc->inline_circuits[i]);
  }
  for (const Circuit& c : vc->overflow) out.push_back(&c);
  return out;
}

}  // namespace risa::net
