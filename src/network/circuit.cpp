#include "network/circuit.hpp"

namespace risa::net {

Result<CircuitId, std::string> CircuitTable::establish(VmId vm, FlowKind flow,
                                                       MbitsPerSec bw,
                                                       CircuitPath path) {
  auto reserved = router_->reserve(path, bw);
  if (!reserved.ok()) {
    return Err<std::string>{reserved.error()};
  }
  const CircuitId id{next_id_++};
  VmCircuits& vc = by_vm_.find_or_insert(vm.value());
  Circuit circuit{id, vm, flow, bw, std::move(path)};
  if (vc.count < kInlineCircuits) {
    vc.inline_circuits[vc.count] = std::move(circuit);
  } else {
    vc.overflow.push_back(std::move(circuit));
  }
  ++vc.count;
  ++active_;
  return id;
}

std::size_t CircuitTable::teardown_vm(VmId vm) {
  VmCircuits* vc = by_vm_.find(vm.value());
  if (vc == nullptr) return 0;
  for (std::uint32_t i = 0; i < vc->count && i < kInlineCircuits; ++i) {
    router_->release(vc->inline_circuits[i].path,
                     vc->inline_circuits[i].bandwidth);
  }
  for (const Circuit& c : vc->overflow) {
    router_->release(c.path, c.bandwidth);
  }
  const std::size_t removed = vc->count;
  active_ -= removed;
  by_vm_.erase(vm.value());
  return removed;
}

std::vector<const Circuit*> CircuitTable::circuits_of(VmId vm) const {
  std::vector<const Circuit*> out;
  const VmCircuits* vc = by_vm_.find(vm.value());
  if (vc == nullptr) return out;
  out.reserve(vc->count);
  for (std::uint32_t i = 0; i < vc->count && i < kInlineCircuits; ++i) {
    out.push_back(&vc->inline_circuits[i]);
  }
  for (const Circuit& c : vc->overflow) out.push_back(&c);
  return out;
}

}  // namespace risa::net
