// VM bandwidth demand model (Table 2).
//
// The paper states "CPU-RAM bandwidth: 5 Gb/s/unit" and "RAM-STO bandwidth:
// 1 Gb/s/unit" without pinning which resource's units drive each flow.  We
// default to the natural reading -- CPU units drive the CPU-RAM flow and RAM
// units drive the RAM-storage flow -- and keep the basis configurable so the
// ablation bench can show the paper's conclusions are insensitive to it.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/types.hpp"
#include "common/units.hpp"

namespace risa::net {

/// Which resource's unit count scales a flow's bandwidth.
enum class BandwidthBasis : std::uint8_t { CpuUnits, RamUnits, StorageUnits };

[[nodiscard]] constexpr std::string_view name(BandwidthBasis b) noexcept {
  switch (b) {
    case BandwidthBasis::CpuUnits: return "cpu-units";
    case BandwidthBasis::RamUnits: return "ram-units";
    case BandwidthBasis::StorageUnits: return "sto-units";
  }
  return "?";
}

/// Bandwidth demand of one VM placement: the CPU-RAM circuit and the
/// RAM-storage circuit (Figure 2's two communication journeys).
struct BandwidthDemand {
  MbitsPerSec cpu_ram = 0;
  MbitsPerSec ram_sto = 0;

  [[nodiscard]] MbitsPerSec total() const noexcept { return cpu_ram + ram_sto; }
  friend bool operator==(const BandwidthDemand&, const BandwidthDemand&) = default;
};

struct BandwidthModel {
  MbitsPerSec cpu_ram_per_unit = gbps(5.0);  ///< Table 2 row 1
  MbitsPerSec ram_sto_per_unit = gbps(1.0);  ///< Table 2 row 2
  BandwidthBasis cpu_ram_basis = BandwidthBasis::CpuUnits;
  BandwidthBasis ram_sto_basis = BandwidthBasis::RamUnits;

  [[nodiscard]] static Units units_for(const UnitVector& u, BandwidthBasis b) {
    switch (b) {
      case BandwidthBasis::CpuUnits: return u.cpu();
      case BandwidthBasis::RamUnits: return u.ram();
      case BandwidthBasis::StorageUnits: return u.storage();
    }
    throw std::logic_error("BandwidthModel: bad basis");
  }

  [[nodiscard]] BandwidthDemand demand(const UnitVector& vm_units) const {
    BandwidthDemand d;
    d.cpu_ram = cpu_ram_per_unit * units_for(vm_units, cpu_ram_basis);
    d.ram_sto = ram_sto_per_unit * units_for(vm_units, ram_sto_basis);
    return d;
  }
};

}  // namespace risa::net
