#include "network/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/string_util.hpp"

namespace risa::net {

Fabric::Fabric(const topo::ClusterConfig& cluster, FabricConfig config)
    : config_(config) {
  config_.validate();
  cluster.validate();

  const std::uint32_t racks = cluster.racks;
  const std::uint32_t boxes_per_rack = cluster.total_boxes_per_rack();
  const std::uint32_t total_boxes = cluster.total_boxes();

  box_switches_.resize(total_boxes);
  rack_switches_.resize(racks);
  box_uplinks_.resize(total_boxes);
  rack_uplinks_.resize(racks);
  rack_intra_available_.assign(racks, 0);

  auto add_switch = [&](SwitchKind kind, std::uint32_t ports, RackId rack,
                        BoxId box) {
    const SwitchId id{static_cast<std::uint32_t>(switches_.size())};
    switches_.push_back(SwitchNode{id, kind, ports, rack, box});
    return id;
  };

  // Box ids are assigned by the Cluster in rack-major order; mirror that.
  for (std::uint32_t r = 0; r < racks; ++r) {
    const RackId rack_id{r};
    rack_switches_[r] =
        add_switch(SwitchKind::RackSwitch, config_.rack_switch_ports, rack_id,
                   BoxId::invalid());
    for (std::uint32_t b = 0; b < boxes_per_rack; ++b) {
      const BoxId box_id{r * boxes_per_rack + b};
      box_switches_[box_id.value()] =
          add_switch(SwitchKind::BoxSwitch, config_.box_switch_ports, rack_id,
                     box_id);
    }
  }
  // Optional pod tier (three-tier extension): ceil(racks / racks_per_pod)
  // pod switches between the rack switches and the core.
  if (config_.racks_per_pod > 0) {
    const std::uint32_t pods =
        (racks + config_.racks_per_pod - 1) / config_.racks_per_pod;
    for (std::uint32_t p = 0; p < pods; ++p) {
      pod_switches_.push_back(add_switch(SwitchKind::PodSwitch,
                                         config_.pod_switch_ports,
                                         RackId::invalid(), BoxId::invalid()));
    }
    pod_uplinks_.resize(pods);
  }
  core_switch_ = add_switch(SwitchKind::InterRackSwitch,
                            config_.inter_rack_switch_ports, RackId::invalid(),
                            BoxId::invalid());

  // Links: box uplinks (intra tier), rack uplinks (to the pod switch in
  // three-tier mode, to the core otherwise), then pod uplinks.
  for (std::uint32_t r = 0; r < racks; ++r) {
    const RackId rack_id{r};
    for (std::uint32_t b = 0; b < boxes_per_rack; ++b) {
      const BoxId box_id{r * boxes_per_rack + b};
      for (std::uint32_t l = 0; l < config_.links_per_box; ++l) {
        const LinkId id{static_cast<std::uint32_t>(links_.size())};
        links_.emplace_back(id, LinkKind::BoxUplink,
                            box_switches_[box_id.value()], rack_switches_[r],
                            rack_id, box_id, config_.link_capacity);
        box_uplinks_[box_id.value()].push_back(id);
        intra_capacity_ += config_.link_capacity;
        rack_intra_available_[r] += config_.link_capacity;
      }
    }
    const SwitchId rack_parent = pod_switches_.empty()
                                     ? core_switch_
                                     : pod_switches_[r / config_.racks_per_pod];
    for (std::uint32_t l = 0; l < config_.links_per_rack; ++l) {
      const LinkId id{static_cast<std::uint32_t>(links_.size())};
      links_.emplace_back(id, LinkKind::RackUplink, rack_switches_[r],
                          rack_parent, rack_id, BoxId::invalid(),
                          config_.link_capacity);
      rack_uplinks_[r].push_back(id);
      inter_capacity_ += config_.link_capacity;
    }
  }
  for (std::uint32_t p = 0; p < pod_switches_.size(); ++p) {
    for (std::uint32_t l = 0; l < config_.links_per_pod; ++l) {
      const LinkId id{static_cast<std::uint32_t>(links_.size())};
      links_.emplace_back(id, LinkKind::PodUplink, pod_switches_[p],
                          core_switch_, RackId::invalid(), BoxId::invalid(),
                          config_.link_capacity);
      pod_uplinks_[p].push_back(id);
      inter_capacity_ += config_.link_capacity;
    }
  }
}

std::uint32_t Fabric::pod_of_rack(RackId rack) const {
  if (pod_switches_.empty()) {
    throw std::logic_error("Fabric: pod_of_rack on a two-tier fabric");
  }
  if (!rack.valid() || rack.value() >= rack_switches_.size()) {
    throw std::out_of_range("Fabric: bad rack id");
  }
  return rack.value() / config_.racks_per_pod;
}

bool Fabric::same_pod(RackId a, RackId b) const {
  if (pod_switches_.empty()) return true;
  return pod_of_rack(a) == pod_of_rack(b);
}

SwitchId Fabric::pod_switch(std::uint32_t pod) const {
  if (pod >= pod_switches_.size()) {
    throw std::out_of_range("Fabric: bad pod index");
  }
  return pod_switches_[pod];
}

std::span<const LinkId> Fabric::pod_uplinks(std::uint32_t pod) const {
  if (pod >= pod_uplinks_.size()) {
    throw std::out_of_range("Fabric: bad pod index");
  }
  return pod_uplinks_[pod];
}

const SwitchNode& Fabric::switch_node(SwitchId id) const {
  if (!id.valid() || id.value() >= switches_.size()) {
    throw std::out_of_range("Fabric: bad switch id");
  }
  return switches_[id.value()];
}

SwitchId Fabric::box_switch(BoxId box) const {
  if (!box.valid() || box.value() >= box_switches_.size()) {
    throw std::out_of_range("Fabric: bad box id");
  }
  return box_switches_[box.value()];
}

SwitchId Fabric::rack_switch(RackId rack) const {
  if (!rack.valid() || rack.value() >= rack_switches_.size()) {
    throw std::out_of_range("Fabric: bad rack id");
  }
  return rack_switches_[rack.value()];
}

Link& Fabric::link(LinkId id) {
  if (!id.valid() || id.value() >= links_.size()) {
    throw std::out_of_range("Fabric: bad link id");
  }
  return links_[id.value()];
}

const Link& Fabric::link(LinkId id) const {
  if (!id.valid() || id.value() >= links_.size()) {
    throw std::out_of_range("Fabric: bad link id");
  }
  return links_[id.value()];
}

std::span<const LinkId> Fabric::box_uplinks(BoxId box) const {
  if (!box.valid() || box.value() >= box_uplinks_.size()) {
    throw std::out_of_range("Fabric: bad box id");
  }
  return box_uplinks_[box.value()];
}

std::span<const LinkId> Fabric::rack_uplinks(RackId rack) const {
  if (!rack.valid() || rack.value() >= rack_uplinks_.size()) {
    throw std::out_of_range("Fabric: bad rack id");
  }
  return rack_uplinks_[rack.value()];
}

Result<bool, std::string> Fabric::allocate(LinkId id, MbitsPerSec bw) {
  Link& l = link(id);
  auto result = l.allocate(bw);
  if (result.ok()) {
    if (l.kind() == LinkKind::BoxUplink) {
      intra_allocated_ += bw;
      rack_intra_available_[l.rack().value()] -= bw;
    } else {
      inter_allocated_ += bw;
    }
  }
  return result;
}

void Fabric::release(LinkId id, MbitsPerSec bw) {
  Link& l = link(id);
  l.release(bw);
  if (l.kind() == LinkKind::BoxUplink) {
    intra_allocated_ -= bw;
    // Bandwidth released on a failed link is not available until repair.
    if (!l.failed()) {
      rack_intra_available_[l.rack().value()] += bw;
    }
  } else {
    inter_allocated_ -= bw;
  }
}

void Fabric::set_link_failed(LinkId id, bool failed) {
  Link& l = link(id);
  if (l.failed() == failed) return;
  if (failed) {
    ++failed_links_;
  } else {
    --failed_links_;
  }
  if (l.kind() == LinkKind::BoxUplink) {
    if (failed) {
      rack_intra_available_[l.rack().value()] -= l.available();
      l.set_failed(true);
    } else {
      l.set_failed(false);
      rack_intra_available_[l.rack().value()] += l.available();
    }
  } else {
    l.set_failed(failed);
  }
}

MbitsPerSec Fabric::rack_intra_available(RackId rack) const {
  if (!rack.valid() || rack.value() >= rack_intra_available_.size()) {
    throw std::out_of_range("Fabric: bad rack id");
  }
  return rack_intra_available_[rack.value()];
}

void Fabric::reset() {
  intra_allocated_ = 0;
  inter_allocated_ = 0;
  failed_links_ = 0;
  std::fill(rack_intra_available_.begin(), rack_intra_available_.end(), 0);
  for (Link& l : links_) {
    l.reset();
    if (l.kind() == LinkKind::BoxUplink) {
      rack_intra_available_[l.rack().value()] += l.capacity();
    }
  }
}

void Fabric::check_invariants() const {
  MbitsPerSec intra_cap = 0, intra_alloc = 0, inter_cap = 0, inter_alloc = 0;
  std::uint32_t failed = 0;
  std::vector<MbitsPerSec> rack_avail(rack_intra_available_.size(), 0);
  for (const Link& l : links_) {
    if (l.allocated() < 0 || l.allocated() > l.capacity()) {
      throw std::logic_error("Fabric invariant: link allocation out of range");
    }
    if (l.failed()) ++failed;
    if (l.kind() == LinkKind::BoxUplink) {
      intra_cap += l.capacity();
      intra_alloc += l.allocated();
      rack_avail[l.rack().value()] += l.available();  // 0 while failed
    } else {
      inter_cap += l.capacity();
      inter_alloc += l.allocated();
    }
  }
  if (intra_cap != intra_capacity_ || intra_alloc != intra_allocated_ ||
      inter_cap != inter_capacity_ || inter_alloc != inter_allocated_) {
    throw std::logic_error("Fabric invariant: tier aggregate mismatch");
  }
  if (failed != failed_links_) {
    throw std::logic_error("Fabric invariant: failed-link count mismatch");
  }
  for (std::size_t r = 0; r < rack_avail.size(); ++r) {
    if (rack_avail[r] != rack_intra_available_[r]) {
      throw std::logic_error("Fabric invariant: rack intra aggregate mismatch");
    }
  }
}

}  // namespace risa::net
