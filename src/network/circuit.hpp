// Circuits: live bandwidth reservations belonging to a placed VM.
//
// Each placed VM holds two circuits (Figure 2): CPU<->RAM and RAM<->storage.
// CircuitTable owns their life cycle: establish reserves bandwidth along the
// path; teardown releases every hop.  The table is the source of truth for
// "which optical resources does VM x hold", which the photonic power model
// and the departure path of the simulator both consume.
//
// Storage is a flat open-addressing map (common/u32_map.hpp) keyed by VM
// id: establish/teardown churn performs zero heap allocations once the
// table has grown to the run's peak live-VM count, which keeps the timed
// scheduler section (try_place -> commit -> establish) allocation-free in
// steady state (DESIGN.md §7).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "common/u32_map.hpp"
#include "common/units.hpp"
#include "network/path.hpp"
#include "network/routing.hpp"

namespace risa::net {

/// Which resource pair a circuit connects.
enum class FlowKind : std::uint8_t { CpuRam = 0, RamStorage = 1 };

[[nodiscard]] constexpr std::string_view name(FlowKind f) noexcept {
  switch (f) {
    case FlowKind::CpuRam: return "cpu-ram";
    case FlowKind::RamStorage: return "ram-sto";
  }
  return "?";
}

struct Circuit {
  CircuitId id;
  VmId vm;
  FlowKind flow = FlowKind::CpuRam;
  MbitsPerSec bandwidth = 0;
  CircuitPath path;
};

class CircuitTable {
 public:
  explicit CircuitTable(Router& router) : router_(&router) {}

  /// Reserve bandwidth along `path` and record the circuit.  On failure the
  /// fabric is unchanged.
  [[nodiscard]] Result<CircuitId, std::string> establish(VmId vm, FlowKind flow,
                                                         MbitsPerSec bw,
                                                         CircuitPath path);

  /// Re-establish a checkpointed circuit verbatim: reserve bandwidth along
  /// its recorded path and append it under its recorded id WITHOUT drawing
  /// a fresh id from next_id_.  Circuits must be adopted in their original
  /// establishment order (per VM) so for_each_circuit_of replays
  /// identically; the caller restores next_id_ afterwards via set_next_id.
  /// Throws std::runtime_error if the reservation fails (a checkpoint
  /// restored against a mismatched fabric).
  void adopt(Circuit circuit);

  /// Restore the id counter saved alongside adopted circuits.
  void set_next_id(std::uint32_t next_id) noexcept { next_id_ = next_id; }
  [[nodiscard]] std::uint32_t next_id() const noexcept { return next_id_; }

  /// Tear down every circuit of `vm`, releasing bandwidth.  Returns the
  /// number of circuits removed (0 when the VM holds none).
  std::size_t teardown_vm(VmId vm);

  /// Tear down the first `k` circuits of `vm` in establishment order,
  /// releasing their bandwidth; later circuits keep their order.  The
  /// migration commit path: a re-placed VM briefly holds old + new
  /// circuits, and the old ones are exactly the prefix.  Returns the
  /// number removed (clamped to what the VM holds).
  std::size_t teardown_prefix(VmId vm, std::uint32_t k);

  /// Tear down every circuit of `vm` AFTER the first `keep`, releasing
  /// their bandwidth -- the migration rollback path (drop the freshly
  /// established circuits, keep the original placement's).  Returns the
  /// number removed.
  std::size_t teardown_suffix(VmId vm, std::uint32_t keep);

  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }

  /// Drop every record and restart circuit-id numbering WITHOUT releasing
  /// bandwidth -- only valid after the fabric itself has been reset (the
  /// engine-reuse path).  The flat table's slot array is retained.
  void clear() noexcept {
    by_vm_.clear();
    active_ = 0;
    next_id_ = 0;
  }

  /// Invoke `fn(const Circuit&)` for each circuit `vm` holds, in
  /// establishment order, without allocating.  The engine's placement path
  /// and the power ledger consume circuits through this.
  template <typename Fn>
  void for_each_circuit_of(VmId vm, Fn&& fn) const {
    const VmCircuits* vc = by_vm_.find(vm.value());
    if (vc == nullptr) return;
    for (std::uint32_t i = 0; i < vc->count && i < kInlineCircuits; ++i) {
      fn(vc->inline_circuits[i]);
    }
    for (const Circuit& c : vc->overflow) fn(c);
  }

  /// Number of circuits `vm` currently holds (0 when none) -- O(1) probe,
  /// used by the lifecycle kill path's diagnostics and tests.
  [[nodiscard]] std::size_t circuit_count_of(VmId vm) const {
    const VmCircuits* vc = by_vm_.find(vm.value());
    return vc == nullptr ? 0 : vc->count;
  }

  /// Circuits held by one VM (empty when none).  Allocates the returned
  /// vector, and the pointers are invalidated by any later establish or
  /// teardown (the flat table relocates slots) -- test/diagnostic
  /// convenience; hot paths use for_each_circuit_of.
  [[nodiscard]] std::vector<const Circuit*> circuits_of(VmId vm) const;

  /// Iterate all active circuits (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    by_vm_.for_each([&](std::uint32_t, const VmCircuits& vc) {
      for (std::uint32_t i = 0; i < vc.count && i < kInlineCircuits; ++i) {
        fn(vc.inline_circuits[i]);
      }
      for (const Circuit& c : vc.overflow) fn(c);
    });
  }

 private:
  /// A VM holds two circuits (CPU-RAM, RAM-storage) in every current
  /// scenario, stored inline in the single VM-keyed table slot so the
  /// placement path costs one probe, not three.  More circuits per VM
  /// (future multi-flow models) spill to the overflow vector.
  static constexpr std::uint32_t kInlineCircuits = 2;
  struct VmCircuits {
    std::uint32_t count = 0;
    std::array<Circuit, kInlineCircuits> inline_circuits;
    std::vector<Circuit> overflow;
  };

  /// Circuit at position `i` in establishment order (inline slots first).
  [[nodiscard]] static Circuit& slot(VmCircuits& vc, std::uint32_t i) {
    return i < kInlineCircuits ? vc.inline_circuits[i]
                               : vc.overflow[i - kInlineCircuits];
  }

  Router* router_;
  U32Map<VmCircuits> by_vm_;  // by vm id
  std::size_t active_ = 0;
  std::uint32_t next_id_ = 0;
};

}  // namespace risa::net
