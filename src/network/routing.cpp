#include "network/routing.hpp"

#include <stdexcept>

namespace risa::net {

Result<LinkId, std::string> Router::select_link(std::span<const LinkId> group,
                                                MbitsPerSec bw,
                                                LinkSelectPolicy policy) const {
  if (group.empty()) {
    return Err<std::string>{"Router: empty link group"};
  }
  switch (policy) {
    case LinkSelectPolicy::FirstFit:
      for (LinkId id : group) {
        if (fabric_->link_unchecked(id).available() >= bw) return id;
      }
      break;
    case LinkSelectPolicy::MostAvailable: {
      LinkId best = LinkId::invalid();
      MbitsPerSec best_avail = -1;
      for (LinkId id : group) {
        const MbitsPerSec avail = fabric_->link_unchecked(id).available();
        if (avail > best_avail) {
          best_avail = avail;
          best = id;
        }
      }
      if (best.valid() && best_avail >= bw) return best;
      break;
    }
  }
  return Err<std::string>{"Router: no link with sufficient bandwidth"};
}

Result<CircuitPath, std::string> Router::find_path(BoxId src, RackId src_rack,
                                                   BoxId dst, RackId dst_rack,
                                                   MbitsPerSec bw,
                                                   LinkSelectPolicy policy) const {
  if (src == dst) {
    return Err<std::string>{"Router: src and dst boxes are identical"};
  }
  CircuitPath path;
  path.inter_rack = src_rack != dst_rack;

  auto src_up = select_link(fabric_->box_uplinks(src), bw, policy);
  if (!src_up.ok()) return Err<std::string>{"src uplink: " + src_up.error()};
  auto dst_up = select_link(fabric_->box_uplinks(dst), bw, policy);
  if (!dst_up.ok()) return Err<std::string>{"dst uplink: " + dst_up.error()};

  path.switches.push_back(fabric_->box_switch(src));
  path.switches.push_back(fabric_->rack_switch(src_rack));
  path.links.push_back(src_up.value());

  if (path.inter_rack) {
    auto up_a = select_link(fabric_->rack_uplinks(src_rack), bw, policy);
    if (!up_a.ok()) return Err<std::string>{"rack A uplink: " + up_a.error()};
    auto up_b = select_link(fabric_->rack_uplinks(dst_rack), bw, policy);
    if (!up_b.ok()) return Err<std::string>{"rack B uplink: " + up_b.error()};
    path.links.push_back(up_a.value());

    if (fabric_->num_pods() == 0) {
      // Two-tier (the paper's topology): rack -> core -> rack.
      path.switches.push_back(fabric_->core_switch());
    } else if (fabric_->same_pod(src_rack, dst_rack)) {
      // Three-tier, same pod: rack -> pod -> rack.
      path.switches.push_back(
          fabric_->pod_switch(fabric_->pod_of_rack(src_rack)));
    } else {
      // Three-tier, cross-pod: rack -> pod -> core -> pod -> rack.
      const std::uint32_t pod_a = fabric_->pod_of_rack(src_rack);
      const std::uint32_t pod_b = fabric_->pod_of_rack(dst_rack);
      auto pod_up_a = select_link(fabric_->pod_uplinks(pod_a), bw, policy);
      if (!pod_up_a.ok()) {
        return Err<std::string>{"pod A uplink: " + pod_up_a.error()};
      }
      auto pod_up_b = select_link(fabric_->pod_uplinks(pod_b), bw, policy);
      if (!pod_up_b.ok()) {
        return Err<std::string>{"pod B uplink: " + pod_up_b.error()};
      }
      path.switches.push_back(fabric_->pod_switch(pod_a));
      path.links.push_back(pod_up_a.value());
      path.switches.push_back(fabric_->core_switch());
      path.links.push_back(pod_up_b.value());
      path.switches.push_back(fabric_->pod_switch(pod_b));
    }

    path.links.push_back(up_b.value());
    path.switches.push_back(fabric_->rack_switch(dst_rack));
  }

  path.links.push_back(dst_up.value());
  path.switches.push_back(fabric_->box_switch(dst));
  return path;
}

Result<bool, std::string> Router::reserve(const CircuitPath& path,
                                          MbitsPerSec bw) {
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    auto result = fabric_->allocate(path.links[i], bw);
    if (!result.ok()) {
      // Roll back the hops reserved so far; the fabric must be unchanged
      // after a failed reservation.
      for (std::size_t j = 0; j < i; ++j) {
        fabric_->release(path.links[j], bw);
      }
      return Err<std::string>{result.error()};
    }
  }
  return true;
}

void Router::release(const CircuitPath& path, MbitsPerSec bw) {
  for (LinkId id : path.links) {
    fabric_->release(id, bw);
  }
}

MbitsPerSec Router::group_available(std::span<const LinkId> group) const {
  MbitsPerSec total = 0;
  for (LinkId id : group) total += fabric_->link_unchecked(id).available();
  return total;
}

MbitsPerSec Router::group_max_available(std::span<const LinkId> group) const {
  MbitsPerSec best = 0;
  for (LinkId id : group) {
    const MbitsPerSec avail = fabric_->link_unchecked(id).available();
    if (avail > best) best = avail;
  }
  return best;
}

}  // namespace risa::net
