#include "network/link.hpp"

#include <stdexcept>

#include "common/string_util.hpp"

namespace risa::net {

Result<bool, std::string> Link::allocate(MbitsPerSec bw) {
  if (bw <= 0) {
    return Err<std::string>{"Link::allocate: non-positive bandwidth"};
  }
  if (bw > available()) {
    return Err<std::string>{strformat(
        "link %u: requested %lld Mb/s, %lld available", id_.value(),
        static_cast<long long>(bw), static_cast<long long>(available()))};
  }
  allocated_ += bw;
  return true;
}

void Link::release(MbitsPerSec bw) {
  if (bw <= 0 || bw > allocated_) {
    throw std::logic_error("Link::release: bandwidth exceeds allocation");
  }
  allocated_ -= bw;
}

}  // namespace risa::net
