// Cluster-shape configuration mirroring Table 1 of the paper.
//
// Defaults encode the paper's evaluation platform exactly:
//   cluster = 18 racks, rack = 6 boxes (2 per resource type),
//   box = 8 bricks, brick = 16 units,
//   CPU unit = 4 cores, RAM unit = 4 GB, storage unit = 64 GB.
// The toy examples of §4.3 use smaller boxes; `box_units_override` supports
// that without changing the allocation code paths.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace risa::topo {

struct ClusterConfig {
  /// Number of racks in the cluster ("Cluster size: 18 racks").
  std::uint32_t racks = 18;

  /// Boxes of each resource type per rack.  The paper's rack holds 6 boxes;
  /// with three resource types the natural split is 2/2/2 (each box holds a
  /// single type, §3.1).
  PerResource<std::uint32_t> boxes_per_rack{2, 2, 2};

  /// Bricks per box ("Box size: 8 bricks").
  std::uint32_t bricks_per_box = 8;

  /// Units per brick ("Brick size: 16 units").
  Units units_per_brick = 16;

  /// Physical size of one unit per type (Table 1, right column).
  UnitScale unit_scale{};

  /// Optional per-type override of a box's total unit count (0 = use
  /// bricks_per_box * units_per_brick).  Used by the §4.3 toy examples where
  /// CPU/RAM boxes hold 16 units and storage boxes hold 8.
  UnitVector box_units_override{0, 0, 0};

  /// Units in one box of the given type.
  [[nodiscard]] Units box_units(ResourceType t) const {
    const Units o = box_units_override[t];
    return o > 0 ? o : static_cast<Units>(bricks_per_box) * units_per_brick;
  }

  /// Total boxes per rack (all types).
  [[nodiscard]] std::uint32_t total_boxes_per_rack() const {
    std::uint32_t n = 0;
    for (ResourceType t : kAllResources) n += boxes_per_rack[t];
    return n;
  }

  /// Cluster-wide box count.
  [[nodiscard]] std::uint32_t total_boxes() const {
    return racks * total_boxes_per_rack();
  }

  /// Cluster-wide capacity of a type, in units.
  [[nodiscard]] Units total_units(ResourceType t) const {
    return static_cast<Units>(racks) * boxes_per_rack[t] * box_units(t);
  }

  /// Throws std::invalid_argument when the shape is degenerate.
  void validate() const {
    if (racks == 0) throw std::invalid_argument("ClusterConfig: zero racks");
    if (bricks_per_box == 0)
      throw std::invalid_argument("ClusterConfig: zero bricks per box");
    if (units_per_brick <= 0)
      throw std::invalid_argument("ClusterConfig: non-positive units per brick");
    for (ResourceType t : kAllResources) {
      if (boxes_per_rack[t] == 0) {
        throw std::invalid_argument(
            std::string("ClusterConfig: no boxes of type ") +
            std::string(name(t)) + " per rack");
      }
      if (box_units_override[t] < 0) {
        throw std::invalid_argument("ClusterConfig: negative box override");
      }
    }
  }

  /// The paper's Table 1 configuration (also the default constructor).
  [[nodiscard]] static ClusterConfig paper_table1() { return ClusterConfig{}; }

  /// The §4.3 toy-example configuration: 2 racks, 2 boxes of each type per
  /// rack, CPU boxes of 64 cores, RAM boxes of 64 GB, storage boxes of
  /// 512 GB.  Tables 3-4 do their arithmetic at single-core / single-GB
  /// granularity (e.g. 15+10+30 = 55 of 64 cores), so the toy unit scale is
  /// 1 core / 1 GB / 64 GB per unit rather than Table 1's 4/4/64.
  [[nodiscard]] static ClusterConfig toy_example() {
    ClusterConfig cfg;
    cfg.racks = 2;
    cfg.boxes_per_rack = PerResource<std::uint32_t>{2, 2, 2};
    cfg.bricks_per_box = 2;
    cfg.units_per_brick = 8;
    cfg.unit_scale.cores_per_cpu_unit = 1;
    cfg.unit_scale.mb_per_ram_unit = gb(1.0);
    cfg.unit_scale.mb_per_storage_unit = gb(64.0);
    cfg.box_units_override = UnitVector{64, 64, 8};
    return cfg;
  }
};

}  // namespace risa::topo
