#include "topology/box.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

#include "common/string_util.hpp"

namespace risa::topo {

Box::Box(BoxId id, RackId rack, ResourceType type, std::uint32_t index_in_type,
         std::vector<Units> brick_units)
    : id_(id), rack_(rack), type_(type), index_in_type_(index_in_type) {
  if (brick_units.empty()) {
    throw std::invalid_argument("Box: no bricks");
  }
  for (Units u : brick_units) {
    if (u < 0) throw std::invalid_argument("Box: negative brick capacity");
    brick_capacity_.push_back(u);
    brick_allocated_.push_back(0);
    capacity_ += u;
  }
}

Units Box::brick_capacity(std::uint32_t brick) const {
  if (brick >= brick_capacity_.size()) throw std::out_of_range("Box: bad brick");
  return brick_capacity_[brick];
}

Units Box::brick_available(std::uint32_t brick) const {
  if (brick >= brick_capacity_.size()) throw std::out_of_range("Box: bad brick");
  return brick_capacity_[brick] - brick_allocated_[brick];
}

Result<BoxAllocation, std::string> Box::allocate(Units units) {
  if (units <= 0) {
    return Err<std::string>{"Box::allocate: non-positive unit count"};
  }
  if (units > available_units()) {
    return Err<std::string>{strformat(
        "box %u: requested %lld units, %lld available",
        id_.value(), static_cast<long long>(units),
        static_cast<long long>(available_units()))};
  }
  BoxAllocation alloc;
  if (!allocate_into(units, alloc)) {
    throw std::logic_error("Box::allocate: availability check out of sync");
  }
  return alloc;
}

bool Box::allocate_into(Units units, BoxAllocation& out) {
  if (units <= 0 || units > available_units()) return false;
  out.box = id_;
  out.type = type_;
  out.units = units;
  out.slices.clear();
  Units remaining = units;
  for (std::uint32_t b = 0; b < brick_capacity_.size() && remaining > 0; ++b) {
    const Units free = brick_capacity_[b] - brick_allocated_[b];
    if (free <= 0) continue;
    const Units take = free < remaining ? free : remaining;
    brick_allocated_[b] += take;
    out.slices.push_back(BrickSlice{b, take});
    remaining -= take;
  }
  // available_units() was checked above, so the loop must have satisfied
  // the request; anything else is a bookkeeping bug.
  if (remaining != 0) {
    throw std::logic_error("Box::allocate: brick accounting out of sync");
  }
  allocated_ += units;
  return true;
}

void Box::release(const BoxAllocation& allocation) {
  if (allocation.box != id_) {
    throw std::logic_error("Box::release: allocation belongs to another box");
  }
  Units total = 0;
  for (const BrickSlice& s : allocation.slices) {
    if (s.brick >= brick_capacity_.size()) {
      throw std::logic_error("Box::release: bad brick index");
    }
    if (s.units <= 0 || s.units > brick_allocated_[s.brick]) {
      throw std::logic_error("Box::release: slice exceeds allocated units");
    }
    total += s.units;
  }
  if (total != allocation.units) {
    throw std::logic_error("Box::release: slice sum != allocation units");
  }
  for (const BrickSlice& s : allocation.slices) {
    brick_allocated_[s.brick] -= s.units;
  }
  allocated_ -= total;
}

void Box::restore_bricks(const std::vector<Units>& available) {
  if (available.size() != brick_capacity_.size()) {
    throw std::invalid_argument("Box::restore_bricks: brick count mismatch");
  }
  for (std::size_t b = 0; b < available.size(); ++b) {
    if (available[b] < 0 || available[b] > brick_capacity_[b]) {
      throw std::invalid_argument("Box::restore_bricks: bad availability");
    }
  }
  allocated_ = 0;
  for (std::size_t b = 0; b < available.size(); ++b) {
    brick_allocated_[b] = brick_capacity_[b] - available[b];
    allocated_ += brick_allocated_[b];
  }
}

std::vector<Units> Box::available_by_brick() const {
  std::vector<Units> out(brick_capacity_.size());
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = brick_capacity_[b] - brick_allocated_[b];
  }
  return out;
}

}  // namespace risa::topo
