// The disaggregated cluster: owns all boxes, maintains per-rack and
// cluster-wide availability aggregates.
//
// Aggregate maintenance matters for fidelity to the paper's Figure 11/12
// (scheduler execution time): RISA's INTRA_RACK_POOL is built from per-rack
// per-type *maximum available box* values which this class keeps up to date
// incrementally in O(boxes-of-type-in-rack) per mutation, while NULB/NALB
// deliberately rescan boxes per placement, exactly as described in §4.1.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/rack_set.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "topology/box.hpp"
#include "topology/config.hpp"

namespace risa::topo {

/// Per-rack aggregates.
class Rack {
 public:
  Rack(RackId id) : id_(id) {}

  [[nodiscard]] RackId id() const noexcept { return id_; }

  /// Boxes of one type in this rack, in local order.
  [[nodiscard]] const std::vector<BoxId>& boxes(ResourceType t) const noexcept {
    return boxes_[t];
  }

  /// Largest per-box availability of the given type in this rack.  This is
  /// the quantity RISA tracks to decide whether a rack can host an entire
  /// VM ("RISA keeps track of the boxes with the maximum amount of each
  /// resource for each rack", §4.2).
  [[nodiscard]] Units max_available(ResourceType t) const noexcept {
    return max_available_[t];
  }

  /// Sum of availabilities of the given type in this rack.
  [[nodiscard]] Units total_available(ResourceType t) const noexcept {
    return total_available_[t];
  }

 private:
  friend class Cluster;

  RackId id_;
  PerResource<std::vector<BoxId>> boxes_;
  PerResource<Units> max_available_{0, 0, 0};
  PerResource<Units> total_available_{0, 0, 0};
};

/// Deep-copyable snapshot of cluster occupancy (tests, what-if analyses).
struct ClusterSnapshot {
  std::vector<std::vector<Units>> brick_available;  ///< indexed by box, brick
};

/// Incremental rack-availability index: contiguous per-type u16 lanes over
/// rack ids, sharded into 64-rack groups (one RackSet word per shard).
///
/// This is the structure that preserves RISA's asymptotic advantage end to
/// end.  The Cluster maintains per-rack per-type maxima incrementally; the
/// index stores them twice:
///
///   * `lanes_[t]` -- one saturated u16 per rack, padded to shards x 64, in
///     a single contiguous row per type.  "Which racks of this shard fit
///     demand d" is then one SIMD lane compare (simd::ge_mask64) producing
///     a 64-bit mask that *is* the corresponding RackSet word, with lanes
///     emitted in ascending rack-id order (the round-robin order).
///   * `exact_[r]` -- the exact i64 value, the source of truth: queries
///     whose demand exceeds kLaneMax fall back to it, and invariants and
///     verification hooks read it.
///
/// Saturation at kLaneMax is sound for >=-queries: a saturated lane only
/// ever *under-reports* availability as exactly kLaneMax, so for any demand
/// d <= kLaneMax, lane >= d iff exact >= d.  Demands above kLaneMax take the
/// exact path.
///
/// Per-shard and cluster-wide maxima ride on top: `shard_max` prunes whole
/// 64-rack words before the lane compare runs, and `cluster_max` gives the
/// scheduler an O(1) "no box anywhere fits" reject on the drop path.
class RackAvailabilityIndex {
 public:
  /// Racks per shard; equals the RackSet word width so a shard's query
  /// answer is exactly one membership word.
  static constexpr std::uint32_t kShardRacks = 64;
  /// Largest availability a u16 lane can represent; larger exact values
  /// saturate (see class comment for why that stays correct).
  static constexpr Units kLaneMax = 65535;

  explicit RackAvailabilityIndex(std::uint32_t racks);

  /// Install a rack's new maximum for one type.  O(1) when the value is
  /// unchanged (the common case: allocating from a non-maximal box leaves
  /// the rack maximum alone); O(kShardRacks) only when the shard's previous
  /// maximum shrinks.
  void update(RackId rack, ResourceType type, Units maximum);

  /// Racks whose maxima fit every component of `demand` simultaneously --
  /// the INTRA_RACK_POOL membership mask.  `out` is overwritten.
  void pool_mask(const UnitVector& demand, RackSet& out) const;

  /// Racks whose maxima fit `demand` of one type -- a SUPER_RACK list.
  void type_mask(ResourceType type, Units demand, RackSet& out) const;

  /// Number of 64-rack shards (= number of live RackSet words).
  [[nodiscard]] std::uint32_t num_shards() const noexcept { return shards_; }

  /// One shard's INTRA_RACK_POOL membership word: bit i set iff rack
  /// shard*64+i fits every component of `demand`.  Identical to the
  /// corresponding word of pool_mask's answer.
  [[nodiscard]] std::uint64_t pool_word(std::uint32_t shard,
                                        const UnitVector& demand) const;

  /// One shard's SUPER_RACK membership word for a single type.
  [[nodiscard]] std::uint64_t type_word(std::uint32_t shard, ResourceType type,
                                        Units demand) const;

  /// Largest per-box availability of `type` anywhere in the cluster -- the
  /// O(1) reject: no box can host a component larger than this.
  [[nodiscard]] Units cluster_max(ResourceType type) const noexcept {
    return cluster_max_[type];
  }

  /// Largest per-box availability of `type` within one shard.
  [[nodiscard]] Units shard_max(std::uint32_t shard,
                                ResourceType type) const noexcept {
    return shard_max_[shard][type];
  }

  /// Monotonic mutation counter: bumped on every update().  Callers that
  /// cache derived pools can compare epochs instead of re-querying.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Exact (unsaturated) leaf values for one rack (verification hook).
  [[nodiscard]] const PerResource<Units>& leaf(RackId rack) const {
    return exact_[rack.value()];
  }

  /// Verifies lanes against exact leaves and the shard/cluster maxima
  /// against a rescan; throws std::logic_error on divergence.  Leaf
  /// correctness itself is checked by Cluster.
  void check_invariants() const;

 private:
  /// Membership word of shard `shard` for a single type: the SIMD lane
  /// compare when the demand fits a u16, the exact row otherwise.
  [[nodiscard]] std::uint64_t lane_word(std::uint32_t shard, ResourceType type,
                                        Units demand) const;

  /// Bits of a shard's word that correspond to real (non-phantom) racks.
  [[nodiscard]] std::uint64_t shard_live_mask(std::uint32_t shard) const noexcept {
    return shard + 1 < shards_ || (racks_ & 63) == 0
               ? ~std::uint64_t{0}
               : (std::uint64_t{1} << (racks_ & 63)) - 1;
  }

  std::uint32_t racks_ = 0;
  std::uint32_t shards_ = 0;
  /// Saturated u16 lanes, one contiguous row per type, padded with zero
  /// lanes to shards_ x kShardRacks.
  PerResource<std::vector<std::uint16_t>> lanes_;
  std::vector<PerResource<Units>> exact_;      ///< exact leaf values, size racks_
  std::vector<PerResource<Units>> shard_max_;  ///< per-shard maxima, size shards_
  PerResource<Units> cluster_max_{0, 0, 0};
  std::uint64_t epoch_ = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t num_racks() const noexcept { return config_.racks; }
  [[nodiscard]] std::size_t num_boxes() const noexcept { return boxes_.size(); }

  [[nodiscard]] Box& box(BoxId id);
  [[nodiscard]] const Box& box(BoxId id) const;

  /// Bounds-unchecked box access for release-build hot loops (the placement
  /// scans touch every candidate box once per VM).  Ids handed out by this
  /// cluster are always valid; API boundaries keep the throwing accessor.
  [[nodiscard]] Box& box_unchecked(BoxId id) noexcept {
    assert(id.value() < boxes_.size());
    return boxes_[id.value()];
  }
  [[nodiscard]] const Box& box_unchecked(BoxId id) const noexcept {
    assert(id.value() < boxes_.size());
    return boxes_[id.value()];
  }

  [[nodiscard]] const Rack& rack(RackId id) const;

  /// Bounds-unchecked rack access for hot loops (same contract as
  /// box_unchecked).
  [[nodiscard]] const Rack& rack_unchecked(RackId id) const noexcept {
    assert(id.value() < racks_.size());
    return racks_[id.value()];
  }

  /// All boxes of a type cluster-wide, ordered by (rack, local position) --
  /// the canonical NULB/NALB search order.
  [[nodiscard]] const std::vector<BoxId>& boxes_of_type(ResourceType t) const noexcept {
    return by_type_[t];
  }

  /// Boxes of a type within one rack, in local order.
  [[nodiscard]] const std::vector<BoxId>& boxes_of_type_in_rack(
      RackId rack, ResourceType t) const;

  /// Cluster-wide capacity / availability per type, maintained incrementally.
  [[nodiscard]] Units total_capacity(ResourceType t) const noexcept {
    return total_capacity_[t];
  }
  [[nodiscard]] Units total_available(ResourceType t) const noexcept {
    return total_available_[t];
  }
  [[nodiscard]] double utilization(ResourceType t) const noexcept {
    const Units cap = total_capacity_[t];
    return cap > 0 ? 1.0 - static_cast<double>(total_available_[t]) /
                               static_cast<double>(cap)
                   : 0.0;
  }

  /// Allocate `units` of the box's type from `box`.  Updates all aggregates.
  [[nodiscard]] Result<BoxAllocation, std::string> allocate(BoxId box, Units units);

  /// Allocation-free variant for the placement hot path: writes the record
  /// into `out` and returns false (leaving all state untouched) when the
  /// box cannot host `units`.
  [[nodiscard]] bool allocate_into(BoxId box, Units units, BoxAllocation& out);

  /// Return a previous allocation.  Updates all aggregates.
  void release(const BoxAllocation& allocation);

  /// Batched-release protocol for same-timestamp departure runs: box
  /// ledgers and cluster totals update immediately (so utilization sampled
  /// mid-batch is exact), but the O(boxes-in-rack) per-rack aggregate /
  /// index refresh is deferred and deduplicated per touched (rack, type)
  /// until end_release_batch().  No placement query may run between begin
  /// and end; the engine guarantees this because arrivals always order
  /// before same-time injected events in the (time, seq) contract.
  void begin_release_batch() noexcept { assert(!release_batching_); release_batching_ = true; }
  void release_batched(const BoxAllocation& allocation);
  void end_release_batch();

  /// Failure injection: take a box offline (it stops accepting allocations
  /// and its free units leave every availability aggregate) or bring it
  /// back.  Resident allocations stay recorded; the caller decides whether
  /// resident VMs are killed.
  void set_box_offline(BoxId box, bool offline);

  /// Boxes currently offline, maintained incrementally by
  /// set_box_offline/reset -- the engine's degraded-operation signal (the
  /// lifecycle subsystem reads this per event, so it must be O(1)).
  [[nodiscard]] std::uint32_t offline_box_count() const noexcept {
    return offline_boxes_;
  }

  /// The incremental rack-availability index (kept in lock-step with the
  /// per-rack aggregates by every mutation).
  [[nodiscard]] const RackAvailabilityIndex& rack_index() const noexcept {
    return index_;
  }

  /// INTRA_RACK_POOL membership: racks able to host the entire demand.
  void eligible_racks(const UnitVector& demand, RackSet& out) const {
    index_.pool_mask(demand, out);
  }
  /// SUPER_RACK membership for one type.
  void eligible_racks(ResourceType type, Units demand, RackSet& out) const {
    index_.type_mask(type, demand, out);
  }

  [[nodiscard]] ClusterSnapshot snapshot() const;
  void restore(const ClusterSnapshot& snap);

  /// Restore every box to pristine (all units free, online) and rebuild the
  /// aggregates, reusing all existing storage -- the engine-reuse path.
  /// O(boxes) with zero heap allocation, vs. a full reconstruction.
  void reset();

  /// Verifies every aggregate against a from-scratch recomputation; throws
  /// std::logic_error on divergence.  Used by tests and debug builds.
  void check_invariants() const;

 private:
  void refresh_rack_aggregates(RackId rack, ResourceType t);
  /// Rescans only the rack's per-type maximum (the total is maintained
  /// incrementally by allocate/release) and pushes it into the index.
  void recompute_rack_max(Rack& rk, RackId rack, ResourceType t);

  ClusterConfig config_;
  std::vector<Box> boxes_;
  std::vector<Rack> racks_;
  PerResource<std::vector<BoxId>> by_type_;
  PerResource<Units> total_capacity_{0, 0, 0};
  PerResource<Units> total_available_{0, 0, 0};
  std::uint32_t offline_boxes_ = 0;
  RackAvailabilityIndex index_;
  /// Batched-release scratch: per (rack, type) dirty flags plus the dense
  /// list of dirty keys (key = rack * kNumResourceTypes + type).
  bool release_batching_ = false;
  std::vector<std::uint8_t> release_dirty_;
  std::vector<std::uint32_t> release_dirty_keys_;
};

}  // namespace risa::topo
