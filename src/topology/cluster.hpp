// The disaggregated cluster: owns all boxes, maintains per-rack and
// cluster-wide availability aggregates.
//
// Aggregate maintenance matters for fidelity to the paper's Figure 11/12
// (scheduler execution time): RISA's INTRA_RACK_POOL is built from per-rack
// per-type *maximum available box* values which this class keeps up to date
// incrementally in O(boxes-of-type-in-rack) per mutation, while NULB/NALB
// deliberately rescan boxes per placement, exactly as described in §4.1.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/rack_set.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "topology/box.hpp"
#include "topology/config.hpp"

namespace risa::topo {

/// Per-rack aggregates.
class Rack {
 public:
  Rack(RackId id) : id_(id) {}

  [[nodiscard]] RackId id() const noexcept { return id_; }

  /// Boxes of one type in this rack, in local order.
  [[nodiscard]] const std::vector<BoxId>& boxes(ResourceType t) const noexcept {
    return boxes_[t];
  }

  /// Largest per-box availability of the given type in this rack.  This is
  /// the quantity RISA tracks to decide whether a rack can host an entire
  /// VM ("RISA keeps track of the boxes with the maximum amount of each
  /// resource for each rack", §4.2).
  [[nodiscard]] Units max_available(ResourceType t) const noexcept {
    return max_available_[t];
  }

  /// Sum of availabilities of the given type in this rack.
  [[nodiscard]] Units total_available(ResourceType t) const noexcept {
    return total_available_[t];
  }

 private:
  friend class Cluster;

  RackId id_;
  PerResource<std::vector<BoxId>> boxes_;
  PerResource<Units> max_available_{0, 0, 0};
  PerResource<Units> total_available_{0, 0, 0};
};

/// Deep-copyable snapshot of cluster occupancy (tests, what-if analyses).
struct ClusterSnapshot {
  std::vector<std::vector<Units>> brick_available;  ///< indexed by box, brick
};

/// Incremental rack-availability index: a segment tree over rack ids whose
/// leaves hold each rack's per-type `max_available` and whose inner nodes
/// hold the per-type maximum of their children.
///
/// This is the structure that preserves RISA's asymptotic advantage end to
/// end: the Cluster already maintains per-rack maxima incrementally, and the
/// tree turns "which racks fit this demand" from an O(racks x types) rescan
/// per VM into a pruned descent that only visits subtrees containing
/// eligible racks -- O(answer x log R), emitted in ascending rack-id order
/// (the round-robin order) directly as a RackSet bitmask.  Updates from
/// `refresh_rack_aggregates` cost O(log R).  See DESIGN.md for the
/// complexity contract.
class RackAvailabilityIndex {
 public:
  /// Clusters at or below this size answer queries with a branchless linear
  /// pass over the contiguous leaf row instead of the tree descent; the
  /// descent's pruning only pays off once the rack count dwarfs the answer.
  static constexpr std::uint32_t kLinearScanRacks = 128;

  explicit RackAvailabilityIndex(std::uint32_t racks);

  /// Install a rack's new maximum for one type; O(log R), O(1) when the
  /// value is unchanged (the common case: allocating from a non-maximal box
  /// leaves the rack maximum alone).
  void update(RackId rack, ResourceType type, Units maximum);

  /// Racks whose maxima fit every component of `demand` simultaneously --
  /// the INTRA_RACK_POOL membership mask.  `out` is overwritten.
  void pool_mask(const UnitVector& demand, RackSet& out) const;

  /// Racks whose maxima fit `demand` of one type -- a SUPER_RACK list.
  void type_mask(ResourceType type, Units demand, RackSet& out) const;

  /// Monotonic mutation counter: bumped on every update().  Callers that
  /// cache derived pools can compare epochs instead of re-querying.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Leaf values for one rack (verification hook).
  [[nodiscard]] const PerResource<Units>& leaf(RackId rack) const {
    return tree_[base_ + rack.value()];
  }

  /// Verifies inner nodes against their children; throws std::logic_error
  /// on divergence.  Leaf correctness is checked by Cluster.
  void check_invariants() const;

 private:
  /// True when every demanded type fits under node `n`'s maxima.
  [[nodiscard]] bool node_fits(std::size_t n, const UnitVector& demand) const {
    for (ResourceType t : kAllResources) {
      if (tree_[n][t] < demand[t]) return false;
    }
    return true;
  }

  std::uint32_t racks_ = 0;
  std::uint32_t base_ = 1;  ///< leaf offset: smallest power of two >= racks
  std::vector<PerResource<Units>> tree_;  ///< 1-based heap layout, size 2*base_
  std::uint64_t epoch_ = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t num_racks() const noexcept { return config_.racks; }
  [[nodiscard]] std::size_t num_boxes() const noexcept { return boxes_.size(); }

  [[nodiscard]] Box& box(BoxId id);
  [[nodiscard]] const Box& box(BoxId id) const;

  /// Bounds-unchecked box access for release-build hot loops (the placement
  /// scans touch every candidate box once per VM).  Ids handed out by this
  /// cluster are always valid; API boundaries keep the throwing accessor.
  [[nodiscard]] Box& box_unchecked(BoxId id) noexcept {
    assert(id.value() < boxes_.size());
    return boxes_[id.value()];
  }
  [[nodiscard]] const Box& box_unchecked(BoxId id) const noexcept {
    assert(id.value() < boxes_.size());
    return boxes_[id.value()];
  }

  [[nodiscard]] const Rack& rack(RackId id) const;

  /// Bounds-unchecked rack access for hot loops (same contract as
  /// box_unchecked).
  [[nodiscard]] const Rack& rack_unchecked(RackId id) const noexcept {
    assert(id.value() < racks_.size());
    return racks_[id.value()];
  }

  /// All boxes of a type cluster-wide, ordered by (rack, local position) --
  /// the canonical NULB/NALB search order.
  [[nodiscard]] const std::vector<BoxId>& boxes_of_type(ResourceType t) const noexcept {
    return by_type_[t];
  }

  /// Boxes of a type within one rack, in local order.
  [[nodiscard]] const std::vector<BoxId>& boxes_of_type_in_rack(
      RackId rack, ResourceType t) const;

  /// Cluster-wide capacity / availability per type, maintained incrementally.
  [[nodiscard]] Units total_capacity(ResourceType t) const noexcept {
    return total_capacity_[t];
  }
  [[nodiscard]] Units total_available(ResourceType t) const noexcept {
    return total_available_[t];
  }
  [[nodiscard]] double utilization(ResourceType t) const noexcept {
    const Units cap = total_capacity_[t];
    return cap > 0 ? 1.0 - static_cast<double>(total_available_[t]) /
                               static_cast<double>(cap)
                   : 0.0;
  }

  /// Allocate `units` of the box's type from `box`.  Updates all aggregates.
  [[nodiscard]] Result<BoxAllocation, std::string> allocate(BoxId box, Units units);

  /// Allocation-free variant for the placement hot path: writes the record
  /// into `out` and returns false (leaving all state untouched) when the
  /// box cannot host `units`.
  [[nodiscard]] bool allocate_into(BoxId box, Units units, BoxAllocation& out);

  /// Return a previous allocation.  Updates all aggregates.
  void release(const BoxAllocation& allocation);

  /// Failure injection: take a box offline (it stops accepting allocations
  /// and its free units leave every availability aggregate) or bring it
  /// back.  Resident allocations stay recorded; the caller decides whether
  /// resident VMs are killed.
  void set_box_offline(BoxId box, bool offline);

  /// Boxes currently offline, maintained incrementally by
  /// set_box_offline/reset -- the engine's degraded-operation signal (the
  /// lifecycle subsystem reads this per event, so it must be O(1)).
  [[nodiscard]] std::uint32_t offline_box_count() const noexcept {
    return offline_boxes_;
  }

  /// The incremental rack-availability index (kept in lock-step with the
  /// per-rack aggregates by every mutation).
  [[nodiscard]] const RackAvailabilityIndex& rack_index() const noexcept {
    return index_;
  }

  /// INTRA_RACK_POOL membership: racks able to host the entire demand.
  void eligible_racks(const UnitVector& demand, RackSet& out) const {
    index_.pool_mask(demand, out);
  }
  /// SUPER_RACK membership for one type.
  void eligible_racks(ResourceType type, Units demand, RackSet& out) const {
    index_.type_mask(type, demand, out);
  }

  [[nodiscard]] ClusterSnapshot snapshot() const;
  void restore(const ClusterSnapshot& snap);

  /// Restore every box to pristine (all units free, online) and rebuild the
  /// aggregates, reusing all existing storage -- the engine-reuse path.
  /// O(boxes) with zero heap allocation, vs. a full reconstruction.
  void reset();

  /// Verifies every aggregate against a from-scratch recomputation; throws
  /// std::logic_error on divergence.  Used by tests and debug builds.
  void check_invariants() const;

 private:
  void refresh_rack_aggregates(RackId rack, ResourceType t);

  ClusterConfig config_;
  std::vector<Box> boxes_;
  std::vector<Rack> racks_;
  PerResource<std::vector<BoxId>> by_type_;
  PerResource<Units> total_capacity_{0, 0, 0};
  PerResource<Units> total_available_{0, 0, 0};
  std::uint32_t offline_boxes_ = 0;
  RackAvailabilityIndex index_;
};

}  // namespace risa::topo
