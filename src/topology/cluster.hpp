// The disaggregated cluster: owns all boxes, maintains per-rack and
// cluster-wide availability aggregates.
//
// Aggregate maintenance matters for fidelity to the paper's Figure 11/12
// (scheduler execution time): RISA's INTRA_RACK_POOL is built from per-rack
// per-type *maximum available box* values which this class keeps up to date
// incrementally in O(boxes-of-type-in-rack) per mutation, while NULB/NALB
// deliberately rescan boxes per placement, exactly as described in §4.1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "topology/box.hpp"
#include "topology/config.hpp"

namespace risa::topo {

/// Per-rack aggregates.
class Rack {
 public:
  Rack(RackId id) : id_(id) {}

  [[nodiscard]] RackId id() const noexcept { return id_; }

  /// Boxes of one type in this rack, in local order.
  [[nodiscard]] const std::vector<BoxId>& boxes(ResourceType t) const noexcept {
    return boxes_[t];
  }

  /// Largest per-box availability of the given type in this rack.  This is
  /// the quantity RISA tracks to decide whether a rack can host an entire
  /// VM ("RISA keeps track of the boxes with the maximum amount of each
  /// resource for each rack", §4.2).
  [[nodiscard]] Units max_available(ResourceType t) const noexcept {
    return max_available_[t];
  }

  /// Sum of availabilities of the given type in this rack.
  [[nodiscard]] Units total_available(ResourceType t) const noexcept {
    return total_available_[t];
  }

 private:
  friend class Cluster;

  RackId id_;
  PerResource<std::vector<BoxId>> boxes_;
  PerResource<Units> max_available_{0, 0, 0};
  PerResource<Units> total_available_{0, 0, 0};
};

/// Deep-copyable snapshot of cluster occupancy (tests, what-if analyses).
struct ClusterSnapshot {
  std::vector<std::vector<Units>> brick_available;  ///< indexed by box, brick
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t num_racks() const noexcept { return config_.racks; }
  [[nodiscard]] std::size_t num_boxes() const noexcept { return boxes_.size(); }

  [[nodiscard]] Box& box(BoxId id);
  [[nodiscard]] const Box& box(BoxId id) const;

  [[nodiscard]] const Rack& rack(RackId id) const;

  /// All boxes of a type cluster-wide, ordered by (rack, local position) --
  /// the canonical NULB/NALB search order.
  [[nodiscard]] const std::vector<BoxId>& boxes_of_type(ResourceType t) const noexcept {
    return by_type_[t];
  }

  /// Boxes of a type within one rack, in local order.
  [[nodiscard]] const std::vector<BoxId>& boxes_of_type_in_rack(
      RackId rack, ResourceType t) const;

  /// Cluster-wide capacity / availability per type, maintained incrementally.
  [[nodiscard]] Units total_capacity(ResourceType t) const noexcept {
    return total_capacity_[t];
  }
  [[nodiscard]] Units total_available(ResourceType t) const noexcept {
    return total_available_[t];
  }
  [[nodiscard]] double utilization(ResourceType t) const noexcept {
    const Units cap = total_capacity_[t];
    return cap > 0 ? 1.0 - static_cast<double>(total_available_[t]) /
                               static_cast<double>(cap)
                   : 0.0;
  }

  /// Allocate `units` of the box's type from `box`.  Updates all aggregates.
  [[nodiscard]] Result<BoxAllocation, std::string> allocate(BoxId box, Units units);

  /// Return a previous allocation.  Updates all aggregates.
  void release(const BoxAllocation& allocation);

  /// Failure injection: take a box offline (it stops accepting allocations
  /// and its free units leave every availability aggregate) or bring it
  /// back.  Resident allocations stay recorded; the caller decides whether
  /// resident VMs are killed.
  void set_box_offline(BoxId box, bool offline);

  [[nodiscard]] ClusterSnapshot snapshot() const;
  void restore(const ClusterSnapshot& snap);

  /// Verifies every aggregate against a from-scratch recomputation; throws
  /// std::logic_error on divergence.  Used by tests and debug builds.
  void check_invariants() const;

 private:
  void refresh_rack_aggregates(RackId rack, ResourceType t);

  ClusterConfig config_;
  std::vector<Box> boxes_;
  std::vector<Rack> racks_;
  PerResource<std::vector<BoxId>> by_type_;
  PerResource<Units> total_capacity_{0, 0, 0};
  PerResource<Units> total_available_{0, 0, 0};
};

}  // namespace risa::topo
