// A box: the unit of resource pooling in the dReDBox-style architecture.
// Each box holds a single resource type, subdivided into bricks (§3.1).
// Allocation is unit-granular, first-fit across bricks; the brick breakdown
// is recorded so releases restore exactly the bricks that were taken.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expected.hpp"
#include "common/small_vec.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace risa::topo {

/// Units taken from one brick of a box (local brick index within the box).
struct BrickSlice {
  std::uint32_t brick = 0;
  Units units = 0;

  friend bool operator==(const BrickSlice&, const BrickSlice&) = default;
};

/// Record of one allocation inside one box; the handle needed to release.
struct BoxAllocation {
  BoxId box;
  ResourceType type = ResourceType::Cpu;
  Units units = 0;
  /// Inline capacity matches the paper's 8-brick boxes; larger custom
  /// configurations spill to the heap transparently.
  SmallVec<BrickSlice, 8> slices;

  [[nodiscard]] bool empty() const noexcept { return units == 0; }
};

class Box {
 public:
  /// `brick_units` lists the capacity of each brick (the builder distributes
  /// the box's units across bricks as evenly as possible).
  Box(BoxId id, RackId rack, ResourceType type, std::uint32_t index_in_type,
      std::vector<Units> brick_units);

  [[nodiscard]] BoxId id() const noexcept { return id_; }
  [[nodiscard]] RackId rack() const noexcept { return rack_; }
  [[nodiscard]] ResourceType type() const noexcept { return type_; }

  /// Dense index of this box among boxes of the same type, cluster-wide,
  /// ordered by (rack, local position) -- the paper's per-type "id" column
  /// in Table 3 and the NULB/NALB first-fit search order.
  [[nodiscard]] std::uint32_t index_in_type() const noexcept { return index_in_type_; }

  [[nodiscard]] Units capacity_units() const noexcept { return capacity_; }
  [[nodiscard]] Units allocated_units() const noexcept { return allocated_; }

  /// Units available for new allocations: zero while the box is offline
  /// (failure injection), capacity - allocated otherwise.
  [[nodiscard]] Units available_units() const noexcept {
    return offline_ ? 0 : capacity_ - allocated_;
  }

  /// Free units ignoring the offline flag (bookkeeping/invariants).
  [[nodiscard]] Units raw_available_units() const noexcept {
    return capacity_ - allocated_;
  }

  /// Failure injection: an offline box accepts no new allocations; existing
  /// allocations remain recorded and can still be released (the simulator
  /// decides the fate of resident VMs).
  void set_offline(bool offline) noexcept { offline_ = offline; }
  [[nodiscard]] bool offline() const noexcept { return offline_; }
  [[nodiscard]] double utilization() const noexcept {
    return capacity_ > 0
               ? static_cast<double>(allocated_) / static_cast<double>(capacity_)
               : 0.0;
  }

  [[nodiscard]] std::size_t brick_count() const noexcept { return brick_capacity_.size(); }
  [[nodiscard]] Units brick_capacity(std::uint32_t brick) const;
  [[nodiscard]] Units brick_available(std::uint32_t brick) const;

  /// First-fit allocation of `units` across bricks.  Fails (without side
  /// effects) when the box lacks availability.
  [[nodiscard]] Result<BoxAllocation, std::string> allocate(Units units);

  /// Allocation-free variant for the placement hot path: writes the record
  /// into `out` (clearing it first) and returns false -- without touching
  /// `out` or the box -- when the box cannot host `units`.
  [[nodiscard]] bool allocate_into(Units units, BoxAllocation& out);

  /// Returns the previously allocated slices.  Throws std::logic_error on a
  /// foreign or double release (these are always caller bugs).
  void release(const BoxAllocation& allocation);

  /// Test/bench hook: snapshot of per-brick availability.
  [[nodiscard]] std::vector<Units> available_by_brick() const;

  /// Overwrite the per-brick occupancy in place from a snapshot of
  /// AVAILABLE units per brick (Cluster::restore, engine checkpoints).
  /// Unlike replaying first-fit allocate() calls, this reproduces hole
  /// patterns exactly: a brick sequence like [4 free, 0 free] restores as
  /// recorded instead of first-fit compacting the occupancy into brick 0.
  /// The offline flag is untouched.  Throws std::invalid_argument on a
  /// shape or range mismatch.
  void restore_bricks(const std::vector<Units>& available);

  /// Restore the pristine state (all bricks free, online) in place -- the
  /// engine-reuse path; no storage is reallocated.
  void reset() noexcept {
    for (Units& a : brick_allocated_) a = 0;
    allocated_ = 0;
    offline_ = false;
  }

 private:
  BoxId id_;
  RackId rack_;
  ResourceType type_;
  std::uint32_t index_in_type_;
  /// Brick ledgers live inline (the paper's box has 8 bricks), so the
  /// per-placement brick walk stays within the Box object instead of
  /// chasing two heap arrays.
  SmallVec<Units, 8> brick_capacity_;
  SmallVec<Units, 8> brick_allocated_;
  Units capacity_ = 0;
  Units allocated_ = 0;
  bool offline_ = false;
};

}  // namespace risa::topo
