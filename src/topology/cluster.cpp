#include "topology/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/simd.hpp"

namespace risa::topo {

namespace {

/// Distribute `total` units across `bricks` bricks as evenly as possible
/// (earlier bricks get the remainder), so a 16-unit box with 2 bricks has
/// 8+8 and a 10-unit box with 3 bricks has 4+3+3.
std::vector<Units> distribute_units(Units total, std::uint32_t bricks) {
  std::vector<Units> out(bricks, total / bricks);
  Units rem = total % bricks;
  for (std::uint32_t b = 0; b < bricks && rem > 0; ++b, --rem) {
    ++out[b];
  }
  return out;
}

}  // namespace

namespace {

/// Lane image of an exact availability value (see kLaneMax saturation note
/// in the class comment).
[[nodiscard]] constexpr std::uint16_t saturate_lane(Units value) noexcept {
  return static_cast<std::uint16_t>(
      std::min(value, RackAvailabilityIndex::kLaneMax));
}

}  // namespace

RackAvailabilityIndex::RackAvailabilityIndex(std::uint32_t racks)
    : racks_(racks), shards_((racks + kShardRacks - 1) / kShardRacks) {
  for (ResourceType t : kAllResources) {
    lanes_[t].assign(static_cast<std::size_t>(shards_) * kShardRacks, 0);
  }
  exact_.assign(racks_, PerResource<Units>{0, 0, 0});
  shard_max_.assign(shards_, PerResource<Units>{0, 0, 0});
}

void RackAvailabilityIndex::update(RackId rack, ResourceType type,
                                   Units maximum) {
  const std::uint32_t r = rack.value();
  const Units previous = exact_[r][type];
  if (previous == maximum) return;  // index already current
  exact_[r][type] = maximum;
  lanes_[type][r] = saturate_lane(maximum);
  ++epoch_;

  const std::uint32_t shard = r / kShardRacks;
  Units& smax = shard_max_[shard][type];
  if (maximum > smax) {
    smax = maximum;
  } else if (previous == smax) {
    // The shard's maximal rack shrank: rescan its 64 exact leaves.
    const std::uint32_t begin = shard * kShardRacks;
    const std::uint32_t end = std::min(racks_, begin + kShardRacks);
    Units rescanned = 0;
    for (std::uint32_t i = begin; i < end; ++i) {
      rescanned = std::max(rescanned, exact_[i][type]);
    }
    smax = rescanned;
  } else {
    return;  // shard maximum unchanged => cluster maximum unchanged
  }

  Units& cmax = cluster_max_[type];
  if (smax > cmax) {
    cmax = smax;
  } else {
    Units rescanned = 0;
    for (const PerResource<Units>& sm : shard_max_) {
      rescanned = std::max(rescanned, sm[type]);
    }
    cmax = rescanned;
  }
}

std::uint64_t RackAvailabilityIndex::lane_word(std::uint32_t shard,
                                               ResourceType type,
                                               Units demand) const {
  if (demand <= kLaneMax) {
    return simd::ge_mask64(&lanes_[type][shard * kShardRacks],
                           static_cast<std::uint16_t>(demand));
  }
  // Demands beyond the lane range are exact-path only (never hit by the
  // paper's configurations, whose boxes top out well under kLaneMax).
  const std::uint32_t begin = shard * kShardRacks;
  const std::uint32_t end = std::min(racks_, begin + kShardRacks);
  std::uint64_t word = 0;
  for (std::uint32_t r = begin; r < end; ++r) {
    word |= std::uint64_t{exact_[r][type] >= demand} << (r - begin);
  }
  return word;
}

std::uint64_t RackAvailabilityIndex::pool_word(std::uint32_t shard,
                                               const UnitVector& demand) const {
  const PerResource<Units>& smax = shard_max_[shard];
  if (smax.cpu() < demand.cpu() || smax.ram() < demand.ram() ||
      smax.storage() < demand.storage()) {
    return 0;  // whole shard pruned by its maxima
  }
  std::uint64_t word = lane_word(shard, ResourceType::Cpu, demand.cpu());
  if (word != 0) word &= lane_word(shard, ResourceType::Ram, demand.ram());
  if (word != 0) word &= lane_word(shard, ResourceType::Storage, demand.storage());
  // Phantom padding lanes are zero; they only survive the >= test when a
  // component demand is zero, so mask them off explicitly.
  return word & shard_live_mask(shard);
}

std::uint64_t RackAvailabilityIndex::type_word(std::uint32_t shard,
                                               ResourceType type,
                                               Units demand) const {
  if (shard_max_[shard][type] < demand) return 0;
  return lane_word(shard, type, demand) & shard_live_mask(shard);
}

void RackAvailabilityIndex::pool_mask(const UnitVector& demand,
                                      RackSet& out) const {
  out.clear();
  for (std::uint32_t s = 0; s < shards_; ++s) {
    out.set_word(s, pool_word(s, demand));
  }
}

void RackAvailabilityIndex::type_mask(ResourceType type, Units demand,
                                      RackSet& out) const {
  out.clear();
  for (std::uint32_t s = 0; s < shards_; ++s) {
    out.set_word(s, type_word(s, type, demand));
  }
}

void RackAvailabilityIndex::check_invariants() const {
  PerResource<Units> cluster{0, 0, 0};
  for (std::uint32_t s = 0; s < shards_; ++s) {
    PerResource<Units> shard{0, 0, 0};
    const std::uint32_t begin = s * kShardRacks;
    const std::uint32_t end = std::min(racks_, begin + kShardRacks);
    for (std::uint32_t r = begin; r < end; ++r) {
      for (ResourceType t : kAllResources) {
        if (lanes_[t][r] != saturate_lane(exact_[r][t])) {
          throw std::logic_error(
              "RackAvailabilityIndex invariant: lane != saturated leaf");
        }
        shard[t] = std::max(shard[t], exact_[r][t]);
      }
    }
    for (ResourceType t : kAllResources) {
      for (std::uint32_t r = end; r < begin + kShardRacks; ++r) {
        if (lanes_[t][r] != 0) {
          throw std::logic_error(
              "RackAvailabilityIndex invariant: phantom lane non-zero");
        }
      }
      if (shard[t] != shard_max_[s][t]) {
        throw std::logic_error(
            "RackAvailabilityIndex invariant: shard maximum mismatch");
      }
      cluster[t] = std::max(cluster[t], shard[t]);
    }
  }
  if (cluster != cluster_max_) {
    throw std::logic_error(
        "RackAvailabilityIndex invariant: cluster maximum mismatch");
  }
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), index_(config_.racks) {
  config_.validate();
  if (config_.racks > RackSet::kMaxRacks) {
    throw std::invalid_argument("Cluster: rack count exceeds RackSet::kMaxRacks");
  }

  racks_.reserve(config_.racks);
  boxes_.reserve(config_.total_boxes());

  PerResource<std::uint32_t> type_counter{0, 0, 0};
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    const RackId rack_id{r};
    Rack rack(rack_id);
    // Rack layout: all CPU boxes, then RAM, then storage.  The per-type
    // "id" of Table 3 is (rack, local index) in this order.
    for (ResourceType t : kAllResources) {
      for (std::uint32_t b = 0; b < config_.boxes_per_rack[t]; ++b) {
        const BoxId box_id{static_cast<std::uint32_t>(boxes_.size())};
        boxes_.emplace_back(box_id, rack_id, t, type_counter[t]++,
                            distribute_units(config_.box_units(t),
                                             config_.bricks_per_box));
        rack.boxes_[t].push_back(box_id);
        by_type_[t].push_back(box_id);
        total_capacity_[t] += config_.box_units(t);
        total_available_[t] += config_.box_units(t);
      }
    }
    racks_.push_back(std::move(rack));
  }

  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }

  release_dirty_.assign(static_cast<std::size_t>(config_.racks) * kNumResourceTypes, 0);
  release_dirty_keys_.reserve(release_dirty_.size());
}

Box& Cluster::box(BoxId id) {
  if (!id.valid() || id.value() >= boxes_.size()) {
    throw std::out_of_range("Cluster: bad box id");
  }
  return boxes_[id.value()];
}

const Box& Cluster::box(BoxId id) const {
  if (!id.valid() || id.value() >= boxes_.size()) {
    throw std::out_of_range("Cluster: bad box id");
  }
  return boxes_[id.value()];
}

const Rack& Cluster::rack(RackId id) const {
  if (!id.valid() || id.value() >= racks_.size()) {
    throw std::out_of_range("Cluster: bad rack id");
  }
  return racks_[id.value()];
}

const std::vector<BoxId>& Cluster::boxes_of_type_in_rack(RackId rack_id,
                                                         ResourceType t) const {
  return rack(rack_id).boxes(t);
}

// Incremental aggregate maintenance.  A successful allocation only ever
// *lowers* one box's availability, so the rack maximum can change only if
// that box held it (old availability == rack max) -- one O(boxes-in-rack)
// rescan in that case, O(1) otherwise.  A release only *raises* it, so the
// new maximum is max(old, new availability) with no rescan ever: if the
// raised value stays below the old maximum, some other box still holds the
// maximum (the raised box was below it before, a fortiori).  Totals are
// exact integer sums either way.  Offline boxes report zero availability
// throughout, so releasing onto one leaves every aggregate untouched.

Result<BoxAllocation, std::string> Cluster::allocate(BoxId box_id, Units units) {
  Box& b = box(box_id);
  auto result = b.allocate(units);
  if (result.ok()) {
    const ResourceType t = b.type();
    total_available_[t] -= units;
    Rack& rk = racks_[b.rack().value()];
    rk.total_available_[t] -= units;
    if (b.available_units() + units == rk.max_available_[t]) {
      recompute_rack_max(rk, b.rack(), t);
    }
  }
  return result;
}

bool Cluster::allocate_into(BoxId box_id, Units units, BoxAllocation& out) {
  Box& b = box(box_id);
  if (!b.allocate_into(units, out)) return false;
  const ResourceType t = b.type();
  total_available_[t] -= units;
  Rack& rk = racks_[b.rack().value()];
  rk.total_available_[t] -= units;
  if (b.available_units() + units == rk.max_available_[t]) {
    recompute_rack_max(rk, b.rack(), t);
  }
  return true;
}

void Cluster::release(const BoxAllocation& allocation) {
  Box& b = box(allocation.box);
  b.release(allocation);
  // Units released on an offline box are not available until repair: its
  // available_units() stays zero, so no aggregate moves.
  if (b.offline()) return;
  const ResourceType t = b.type();
  total_available_[t] += allocation.units;
  Rack& rk = racks_[b.rack().value()];
  rk.total_available_[t] += allocation.units;
  const Units avail = b.available_units();
  if (avail > rk.max_available_[t]) {
    rk.max_available_[t] = avail;
    index_.update(b.rack(), t, avail);
  }
}

void Cluster::release_batched(const BoxAllocation& allocation) {
  assert(release_batching_);
  Box& b = box(allocation.box);
  b.release(allocation);
  // Box ledger and cluster totals settle immediately -- utilization sampled
  // between batched releases stays exact.  Only the per-rack aggregate /
  // index refresh (an idempotent recomputation) is deferred.
  if (!b.offline()) {
    total_available_[b.type()] += allocation.units;
  }
  const auto key = static_cast<std::uint32_t>(
      b.rack().value() * kNumResourceTypes + index(b.type()));
  if (!release_dirty_[key]) {
    release_dirty_[key] = 1;
    release_dirty_keys_.push_back(key);
  }
}

void Cluster::end_release_batch() {
  assert(release_batching_);
  for (const std::uint32_t key : release_dirty_keys_) {
    release_dirty_[key] = 0;
    refresh_rack_aggregates(
        RackId{static_cast<std::uint32_t>(key / kNumResourceTypes)},
        kAllResources[key % kNumResourceTypes]);
  }
  release_dirty_keys_.clear();
  release_batching_ = false;
}

void Cluster::set_box_offline(BoxId box_id, bool offline) {
  Box& b = box(box_id);
  if (b.offline() == offline) return;
  if (offline) {
    total_available_[b.type()] -= b.available_units();
    b.set_offline(true);
    ++offline_boxes_;
  } else {
    b.set_offline(false);
    total_available_[b.type()] += b.available_units();
    --offline_boxes_;
  }
  refresh_rack_aggregates(b.rack(), b.type());
}

void Cluster::recompute_rack_max(Rack& rk, RackId rack_id, ResourceType t) {
  Units max_avail = 0;
  for (BoxId id : rk.boxes_[t]) {
    max_avail = std::max(max_avail, boxes_[id.value()].available_units());
  }
  rk.max_available_[t] = max_avail;
  index_.update(rack_id, t, max_avail);
}

void Cluster::refresh_rack_aggregates(RackId rack_id, ResourceType t) {
  Rack& rk = racks_[rack_id.value()];
  Units max_avail = 0;
  Units total_avail = 0;
  for (BoxId id : rk.boxes_[t]) {
    const Units avail = boxes_[id.value()].available_units();
    max_avail = std::max(max_avail, avail);
    total_avail += avail;
  }
  rk.max_available_[t] = max_avail;
  rk.total_available_[t] = total_avail;
  index_.update(rack_id, t, max_avail);
}

void Cluster::reset() {
  for (Box& b : boxes_) b.reset();
  total_available_ = total_capacity_;
  offline_boxes_ = 0;
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

ClusterSnapshot Cluster::snapshot() const {
  ClusterSnapshot snap;
  snap.brick_available.reserve(boxes_.size());
  for (const Box& b : boxes_) {
    snap.brick_available.push_back(b.available_by_brick());
  }
  return snap;
}

void Cluster::restore(const ClusterSnapshot& snap) {
  if (snap.brick_available.size() != boxes_.size()) {
    throw std::invalid_argument("Cluster::restore: snapshot shape mismatch");
  }
  total_available_ = PerResource<Units>{0, 0, 0};
  offline_boxes_ = 0;  // snapshots carry occupancy only; rebuilt boxes are online
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    Box& b = boxes_[i];
    // Direct per-brick restore: replaying first-fit allocate() calls here
    // would compact hole patterns (a later brick's occupancy can land in an
    // earlier brick's free space), silently corrupting snapshots taken
    // after releases.  restore_bricks writes the recorded occupancy.
    b.restore_bricks(snap.brick_available[i]);
    b.set_offline(false);
    total_available_[b.type()] += b.available_units();
  }
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

void Cluster::check_invariants() const {
  PerResource<Units> cap{0, 0, 0};
  PerResource<Units> avail{0, 0, 0};
  std::uint32_t offline = 0;
  for (const Box& b : boxes_) {
    if (b.offline()) ++offline;
    if (b.raw_available_units() < 0 ||
        b.raw_available_units() > b.capacity_units()) {
      throw std::logic_error("Cluster invariant: box availability out of range");
    }
    Units brick_sum = 0;
    for (std::uint32_t br = 0; br < b.brick_count(); ++br) {
      const Units a = b.brick_available(br);
      if (a < 0 || a > b.brick_capacity(br)) {
        throw std::logic_error("Cluster invariant: brick availability out of range");
      }
      brick_sum += a;
    }
    // Brick accounting tracks raw occupancy; the offline flag only masks
    // the box from placement.
    if (brick_sum != b.raw_available_units()) {
      throw std::logic_error("Cluster invariant: brick sum != box availability");
    }
    cap[b.type()] += b.capacity_units();
    avail[b.type()] += b.available_units();
  }
  for (ResourceType t : kAllResources) {
    if (cap[t] != total_capacity_[t]) {
      throw std::logic_error("Cluster invariant: capacity aggregate mismatch");
    }
    if (avail[t] != total_available_[t]) {
      throw std::logic_error("Cluster invariant: availability aggregate mismatch");
    }
  }
  if (offline != offline_boxes_) {
    throw std::logic_error("Cluster invariant: offline-box count mismatch");
  }
  for (const Rack& rk : racks_) {
    for (ResourceType t : kAllResources) {
      Units max_avail = 0;
      Units total_avail = 0;
      for (BoxId id : rk.boxes(t)) {
        max_avail = std::max(max_avail, boxes_[id.value()].available_units());
        total_avail += boxes_[id.value()].available_units();
      }
      if (max_avail != rk.max_available(t) ||
          total_avail != rk.total_available(t)) {
        throw std::logic_error("Cluster invariant: rack aggregate mismatch");
      }
    }
  }
  // The index's leaves must mirror the rack maxima exactly, and its inner
  // nodes must be consistent with their children; together those two
  // properties determine the correctness of every pool/type query.
  index_.check_invariants();
  for (const Rack& rk : racks_) {
    for (ResourceType t : kAllResources) {
      if (index_.leaf(rk.id())[t] != rk.max_available(t)) {
        throw std::logic_error("Cluster invariant: index leaf != rack maximum");
      }
    }
  }
}

}  // namespace risa::topo
