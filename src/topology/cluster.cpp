#include "topology/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace risa::topo {

namespace {

/// Distribute `total` units across `bricks` bricks as evenly as possible
/// (earlier bricks get the remainder), so a 16-unit box with 2 bricks has
/// 8+8 and a 10-unit box with 3 bricks has 4+3+3.
std::vector<Units> distribute_units(Units total, std::uint32_t bricks) {
  std::vector<Units> out(bricks, total / bricks);
  Units rem = total % bricks;
  for (std::uint32_t b = 0; b < bricks && rem > 0; ++b, --rem) {
    ++out[b];
  }
  return out;
}

}  // namespace

RackAvailabilityIndex::RackAvailabilityIndex(std::uint32_t racks)
    : racks_(racks) {
  while (base_ < racks_) base_ *= 2;
  tree_.assign(2 * static_cast<std::size_t>(base_), PerResource<Units>{0, 0, 0});
}

void RackAvailabilityIndex::update(RackId rack, ResourceType type,
                                   Units maximum) {
  std::size_t n = base_ + rack.value();
  if (tree_[n][type] == maximum) return;  // index already current
  tree_[n][type] = maximum;
  for (n /= 2; n >= 1; n /= 2) {
    const Units merged = std::max(tree_[2 * n][type], tree_[2 * n + 1][type]);
    if (tree_[n][type] == merged) break;  // ancestors unchanged
    tree_[n][type] = merged;
  }
  ++epoch_;
}

void RackAvailabilityIndex::pool_mask(const UnitVector& demand,
                                      RackSet& out) const {
  out.clear();
  if (racks_ <= kLinearScanRacks) {
    // Small clusters: a branchless pass over the contiguous leaf row beats
    // the descent's pointer chasing (the paper's cluster is 18 racks).
    const PerResource<Units>* leaves = &tree_[base_];
    std::uint64_t word = 0;
    for (std::uint32_t r = 0; r < racks_; ++r) {
      const PerResource<Units>& m = leaves[r];
      const bool fits = m.cpu() >= demand.cpu() && m.ram() >= demand.ram() &&
                        m.storage() >= demand.storage();
      word |= std::uint64_t{fits} << (r & 63);
      if ((r & 63) == 63) {
        out.set_word(r >> 6, word);
        word = 0;
      }
    }
    if ((racks_ & 63) != 0) out.set_word((racks_ - 1) >> 6, word);
    return;
  }
  // Iterative descent: visit a subtree only when its per-type maxima could
  // fit every demanded type.  Nodes pushed right-child-first so racks are
  // emitted in ascending id order.  Depth <= log2(kMaxRacks), so the stack
  // is a small fixed array.
  std::size_t stack[2 * 12];
  std::size_t top = 0;
  if (node_fits(1, demand)) stack[top++] = 1;
  while (top > 0) {
    const std::size_t n = stack[--top];
    if (n >= base_) {
      const std::uint32_t rack = static_cast<std::uint32_t>(n - base_);
      // Phantom leaves padding to the power of two have zero maxima; they
      // only survive the fit test when the demand is all-zero.
      if (rack < racks_) out.set(RackId{rack});
      continue;
    }
    if (node_fits(2 * n + 1, demand)) stack[top++] = 2 * n + 1;
    if (node_fits(2 * n, demand)) stack[top++] = 2 * n;
  }
}

void RackAvailabilityIndex::type_mask(ResourceType type, Units demand,
                                      RackSet& out) const {
  out.clear();
  if (racks_ <= kLinearScanRacks) {
    const PerResource<Units>* leaves = &tree_[base_];
    std::uint64_t word = 0;
    for (std::uint32_t r = 0; r < racks_; ++r) {
      word |= std::uint64_t{leaves[r][type] >= demand} << (r & 63);
      if ((r & 63) == 63) {
        out.set_word(r >> 6, word);
        word = 0;
      }
    }
    if ((racks_ & 63) != 0) out.set_word((racks_ - 1) >> 6, word);
    return;
  }
  std::size_t stack[2 * 12];
  std::size_t top = 0;
  if (tree_[1][type] >= demand) stack[top++] = 1;
  while (top > 0) {
    const std::size_t n = stack[--top];
    if (n >= base_) {
      const std::uint32_t rack = static_cast<std::uint32_t>(n - base_);
      if (rack < racks_) out.set(RackId{rack});
      continue;
    }
    if (tree_[2 * n + 1][type] >= demand) stack[top++] = 2 * n + 1;
    if (tree_[2 * n][type] >= demand) stack[top++] = 2 * n;
  }
}

void RackAvailabilityIndex::check_invariants() const {
  for (std::size_t n = 1; n < base_; ++n) {
    for (ResourceType t : kAllResources) {
      if (tree_[n][t] != std::max(tree_[2 * n][t], tree_[2 * n + 1][t])) {
        throw std::logic_error(
            "RackAvailabilityIndex invariant: inner node != max of children");
      }
    }
  }
  for (std::size_t r = racks_; r < base_; ++r) {
    if (tree_[base_ + r] != PerResource<Units>{0, 0, 0}) {
      throw std::logic_error(
          "RackAvailabilityIndex invariant: phantom leaf non-zero");
    }
  }
}

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), index_(config_.racks) {
  config_.validate();
  if (config_.racks > RackSet::kMaxRacks) {
    throw std::invalid_argument("Cluster: rack count exceeds RackSet::kMaxRacks");
  }

  racks_.reserve(config_.racks);
  boxes_.reserve(config_.total_boxes());

  PerResource<std::uint32_t> type_counter{0, 0, 0};
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    const RackId rack_id{r};
    Rack rack(rack_id);
    // Rack layout: all CPU boxes, then RAM, then storage.  The per-type
    // "id" of Table 3 is (rack, local index) in this order.
    for (ResourceType t : kAllResources) {
      for (std::uint32_t b = 0; b < config_.boxes_per_rack[t]; ++b) {
        const BoxId box_id{static_cast<std::uint32_t>(boxes_.size())};
        boxes_.emplace_back(box_id, rack_id, t, type_counter[t]++,
                            distribute_units(config_.box_units(t),
                                             config_.bricks_per_box));
        rack.boxes_[t].push_back(box_id);
        by_type_[t].push_back(box_id);
        total_capacity_[t] += config_.box_units(t);
        total_available_[t] += config_.box_units(t);
      }
    }
    racks_.push_back(std::move(rack));
  }

  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

Box& Cluster::box(BoxId id) {
  if (!id.valid() || id.value() >= boxes_.size()) {
    throw std::out_of_range("Cluster: bad box id");
  }
  return boxes_[id.value()];
}

const Box& Cluster::box(BoxId id) const {
  if (!id.valid() || id.value() >= boxes_.size()) {
    throw std::out_of_range("Cluster: bad box id");
  }
  return boxes_[id.value()];
}

const Rack& Cluster::rack(RackId id) const {
  if (!id.valid() || id.value() >= racks_.size()) {
    throw std::out_of_range("Cluster: bad rack id");
  }
  return racks_[id.value()];
}

const std::vector<BoxId>& Cluster::boxes_of_type_in_rack(RackId rack_id,
                                                         ResourceType t) const {
  return rack(rack_id).boxes(t);
}

Result<BoxAllocation, std::string> Cluster::allocate(BoxId box_id, Units units) {
  Box& b = box(box_id);
  auto result = b.allocate(units);
  if (result.ok()) {
    total_available_[b.type()] -= units;
    refresh_rack_aggregates(b.rack(), b.type());
  }
  return result;
}

bool Cluster::allocate_into(BoxId box_id, Units units, BoxAllocation& out) {
  Box& b = box(box_id);
  if (!b.allocate_into(units, out)) return false;
  total_available_[b.type()] -= units;
  refresh_rack_aggregates(b.rack(), b.type());
  return true;
}

void Cluster::release(const BoxAllocation& allocation) {
  Box& b = box(allocation.box);
  b.release(allocation);
  // Units released on an offline box are not available until repair.
  if (!b.offline()) {
    total_available_[b.type()] += allocation.units;
  }
  refresh_rack_aggregates(b.rack(), b.type());
}

void Cluster::set_box_offline(BoxId box_id, bool offline) {
  Box& b = box(box_id);
  if (b.offline() == offline) return;
  if (offline) {
    total_available_[b.type()] -= b.available_units();
    b.set_offline(true);
    ++offline_boxes_;
  } else {
    b.set_offline(false);
    total_available_[b.type()] += b.available_units();
    --offline_boxes_;
  }
  refresh_rack_aggregates(b.rack(), b.type());
}

void Cluster::refresh_rack_aggregates(RackId rack_id, ResourceType t) {
  Rack& rk = racks_[rack_id.value()];
  Units max_avail = 0;
  Units total_avail = 0;
  for (BoxId id : rk.boxes_[t]) {
    const Units avail = boxes_[id.value()].available_units();
    max_avail = std::max(max_avail, avail);
    total_avail += avail;
  }
  rk.max_available_[t] = max_avail;
  rk.total_available_[t] = total_avail;
  index_.update(rack_id, t, max_avail);
}

void Cluster::reset() {
  for (Box& b : boxes_) b.reset();
  total_available_ = total_capacity_;
  offline_boxes_ = 0;
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

ClusterSnapshot Cluster::snapshot() const {
  ClusterSnapshot snap;
  snap.brick_available.reserve(boxes_.size());
  for (const Box& b : boxes_) {
    snap.brick_available.push_back(b.available_by_brick());
  }
  return snap;
}

void Cluster::restore(const ClusterSnapshot& snap) {
  if (snap.brick_available.size() != boxes_.size()) {
    throw std::invalid_argument("Cluster::restore: snapshot shape mismatch");
  }
  total_available_ = PerResource<Units>{0, 0, 0};
  offline_boxes_ = 0;  // snapshots carry occupancy only; rebuilt boxes are online
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    Box& b = boxes_[i];
    const auto& avail = snap.brick_available[i];
    if (avail.size() != b.brick_count()) {
      throw std::invalid_argument("Cluster::restore: brick count mismatch");
    }
    // Rebuild the box in place with the snapshot occupancy.
    std::vector<Units> caps(b.brick_count());
    for (std::uint32_t br = 0; br < b.brick_count(); ++br) {
      caps[br] = b.brick_capacity(br);
      if (avail[br] < 0 || avail[br] > caps[br]) {
        throw std::invalid_argument("Cluster::restore: bad availability");
      }
    }
    Box rebuilt(b.id(), b.rack(), b.type(), b.index_in_type(), caps);
    for (std::uint32_t br = 0; br < rebuilt.brick_count(); ++br) {
      const Units used = caps[br] - avail[br];
      if (used > 0) {
        // Bricks fill front-to-back; allocating per brick reconstructs the
        // exact occupancy.
        BoxAllocation tmp;
        tmp.box = rebuilt.id();
        tmp.type = rebuilt.type();
        tmp.units = used;
        // Direct brick targeting: allocate() is first-fit, and we walk
        // bricks in order with exact amounts, so placement is exact.
        auto r = rebuilt.allocate(used);
        (void)r.value();
      }
    }
    boxes_[i] = std::move(rebuilt);
    total_available_[boxes_[i].type()] += boxes_[i].available_units();
  }
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

void Cluster::check_invariants() const {
  PerResource<Units> cap{0, 0, 0};
  PerResource<Units> avail{0, 0, 0};
  std::uint32_t offline = 0;
  for (const Box& b : boxes_) {
    if (b.offline()) ++offline;
    if (b.raw_available_units() < 0 ||
        b.raw_available_units() > b.capacity_units()) {
      throw std::logic_error("Cluster invariant: box availability out of range");
    }
    Units brick_sum = 0;
    for (std::uint32_t br = 0; br < b.brick_count(); ++br) {
      const Units a = b.brick_available(br);
      if (a < 0 || a > b.brick_capacity(br)) {
        throw std::logic_error("Cluster invariant: brick availability out of range");
      }
      brick_sum += a;
    }
    // Brick accounting tracks raw occupancy; the offline flag only masks
    // the box from placement.
    if (brick_sum != b.raw_available_units()) {
      throw std::logic_error("Cluster invariant: brick sum != box availability");
    }
    cap[b.type()] += b.capacity_units();
    avail[b.type()] += b.available_units();
  }
  for (ResourceType t : kAllResources) {
    if (cap[t] != total_capacity_[t]) {
      throw std::logic_error("Cluster invariant: capacity aggregate mismatch");
    }
    if (avail[t] != total_available_[t]) {
      throw std::logic_error("Cluster invariant: availability aggregate mismatch");
    }
  }
  if (offline != offline_boxes_) {
    throw std::logic_error("Cluster invariant: offline-box count mismatch");
  }
  for (const Rack& rk : racks_) {
    for (ResourceType t : kAllResources) {
      Units max_avail = 0;
      Units total_avail = 0;
      for (BoxId id : rk.boxes(t)) {
        max_avail = std::max(max_avail, boxes_[id.value()].available_units());
        total_avail += boxes_[id.value()].available_units();
      }
      if (max_avail != rk.max_available(t) ||
          total_avail != rk.total_available(t)) {
        throw std::logic_error("Cluster invariant: rack aggregate mismatch");
      }
    }
  }
  // The index's leaves must mirror the rack maxima exactly, and its inner
  // nodes must be consistent with their children; together those two
  // properties determine the correctness of every pool/type query.
  index_.check_invariants();
  for (const Rack& rk : racks_) {
    for (ResourceType t : kAllResources) {
      if (index_.leaf(rk.id())[t] != rk.max_available(t)) {
        throw std::logic_error("Cluster invariant: index leaf != rack maximum");
      }
    }
  }
}

}  // namespace risa::topo
