#include "topology/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace risa::topo {

namespace {

/// Distribute `total` units across `bricks` bricks as evenly as possible
/// (earlier bricks get the remainder), so a 16-unit box with 2 bricks has
/// 8+8 and a 10-unit box with 3 bricks has 4+3+3.
std::vector<Units> distribute_units(Units total, std::uint32_t bricks) {
  std::vector<Units> out(bricks, total / bricks);
  Units rem = total % bricks;
  for (std::uint32_t b = 0; b < bricks && rem > 0; ++b, --rem) {
    ++out[b];
  }
  return out;
}

}  // namespace

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  config_.validate();

  racks_.reserve(config_.racks);
  boxes_.reserve(config_.total_boxes());

  PerResource<std::uint32_t> type_counter{0, 0, 0};
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    const RackId rack_id{r};
    Rack rack(rack_id);
    // Rack layout: all CPU boxes, then RAM, then storage.  The per-type
    // "id" of Table 3 is (rack, local index) in this order.
    for (ResourceType t : kAllResources) {
      for (std::uint32_t b = 0; b < config_.boxes_per_rack[t]; ++b) {
        const BoxId box_id{static_cast<std::uint32_t>(boxes_.size())};
        boxes_.emplace_back(box_id, rack_id, t, type_counter[t]++,
                            distribute_units(config_.box_units(t),
                                             config_.bricks_per_box));
        rack.boxes_[t].push_back(box_id);
        by_type_[t].push_back(box_id);
        total_capacity_[t] += config_.box_units(t);
        total_available_[t] += config_.box_units(t);
      }
    }
    racks_.push_back(std::move(rack));
  }

  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

Box& Cluster::box(BoxId id) {
  if (!id.valid() || id.value() >= boxes_.size()) {
    throw std::out_of_range("Cluster: bad box id");
  }
  return boxes_[id.value()];
}

const Box& Cluster::box(BoxId id) const {
  if (!id.valid() || id.value() >= boxes_.size()) {
    throw std::out_of_range("Cluster: bad box id");
  }
  return boxes_[id.value()];
}

const Rack& Cluster::rack(RackId id) const {
  if (!id.valid() || id.value() >= racks_.size()) {
    throw std::out_of_range("Cluster: bad rack id");
  }
  return racks_[id.value()];
}

const std::vector<BoxId>& Cluster::boxes_of_type_in_rack(RackId rack_id,
                                                         ResourceType t) const {
  return rack(rack_id).boxes(t);
}

Result<BoxAllocation, std::string> Cluster::allocate(BoxId box_id, Units units) {
  Box& b = box(box_id);
  auto result = b.allocate(units);
  if (result.ok()) {
    total_available_[b.type()] -= units;
    refresh_rack_aggregates(b.rack(), b.type());
  }
  return result;
}

void Cluster::release(const BoxAllocation& allocation) {
  Box& b = box(allocation.box);
  b.release(allocation);
  // Units released on an offline box are not available until repair.
  if (!b.offline()) {
    total_available_[b.type()] += allocation.units;
  }
  refresh_rack_aggregates(b.rack(), b.type());
}

void Cluster::set_box_offline(BoxId box_id, bool offline) {
  Box& b = box(box_id);
  if (b.offline() == offline) return;
  if (offline) {
    total_available_[b.type()] -= b.available_units();
    b.set_offline(true);
  } else {
    b.set_offline(false);
    total_available_[b.type()] += b.available_units();
  }
  refresh_rack_aggregates(b.rack(), b.type());
}

void Cluster::refresh_rack_aggregates(RackId rack_id, ResourceType t) {
  Rack& rk = racks_[rack_id.value()];
  Units max_avail = 0;
  Units total_avail = 0;
  for (BoxId id : rk.boxes_[t]) {
    const Units avail = boxes_[id.value()].available_units();
    max_avail = std::max(max_avail, avail);
    total_avail += avail;
  }
  rk.max_available_[t] = max_avail;
  rk.total_available_[t] = total_avail;
}

ClusterSnapshot Cluster::snapshot() const {
  ClusterSnapshot snap;
  snap.brick_available.reserve(boxes_.size());
  for (const Box& b : boxes_) {
    snap.brick_available.push_back(b.available_by_brick());
  }
  return snap;
}

void Cluster::restore(const ClusterSnapshot& snap) {
  if (snap.brick_available.size() != boxes_.size()) {
    throw std::invalid_argument("Cluster::restore: snapshot shape mismatch");
  }
  total_available_ = PerResource<Units>{0, 0, 0};
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    Box& b = boxes_[i];
    const auto& avail = snap.brick_available[i];
    if (avail.size() != b.brick_count()) {
      throw std::invalid_argument("Cluster::restore: brick count mismatch");
    }
    // Rebuild the box in place with the snapshot occupancy.
    std::vector<Units> caps(b.brick_count());
    for (std::uint32_t br = 0; br < b.brick_count(); ++br) {
      caps[br] = b.brick_capacity(br);
      if (avail[br] < 0 || avail[br] > caps[br]) {
        throw std::invalid_argument("Cluster::restore: bad availability");
      }
    }
    Box rebuilt(b.id(), b.rack(), b.type(), b.index_in_type(), caps);
    for (std::uint32_t br = 0; br < rebuilt.brick_count(); ++br) {
      const Units used = caps[br] - avail[br];
      if (used > 0) {
        // Bricks fill front-to-back; allocating per brick reconstructs the
        // exact occupancy.
        BoxAllocation tmp;
        tmp.box = rebuilt.id();
        tmp.type = rebuilt.type();
        tmp.units = used;
        // Direct brick targeting: allocate() is first-fit, and we walk
        // bricks in order with exact amounts, so placement is exact.
        auto r = rebuilt.allocate(used);
        (void)r.value();
      }
    }
    boxes_[i] = std::move(rebuilt);
    total_available_[boxes_[i].type()] += boxes_[i].available_units();
  }
  for (std::uint32_t r = 0; r < config_.racks; ++r) {
    for (ResourceType t : kAllResources) {
      refresh_rack_aggregates(RackId{r}, t);
    }
  }
}

void Cluster::check_invariants() const {
  PerResource<Units> cap{0, 0, 0};
  PerResource<Units> avail{0, 0, 0};
  for (const Box& b : boxes_) {
    if (b.raw_available_units() < 0 ||
        b.raw_available_units() > b.capacity_units()) {
      throw std::logic_error("Cluster invariant: box availability out of range");
    }
    Units brick_sum = 0;
    for (std::uint32_t br = 0; br < b.brick_count(); ++br) {
      const Units a = b.brick_available(br);
      if (a < 0 || a > b.brick_capacity(br)) {
        throw std::logic_error("Cluster invariant: brick availability out of range");
      }
      brick_sum += a;
    }
    // Brick accounting tracks raw occupancy; the offline flag only masks
    // the box from placement.
    if (brick_sum != b.raw_available_units()) {
      throw std::logic_error("Cluster invariant: brick sum != box availability");
    }
    cap[b.type()] += b.capacity_units();
    avail[b.type()] += b.available_units();
  }
  for (ResourceType t : kAllResources) {
    if (cap[t] != total_capacity_[t]) {
      throw std::logic_error("Cluster invariant: capacity aggregate mismatch");
    }
    if (avail[t] != total_available_[t]) {
      throw std::logic_error("Cluster invariant: availability aggregate mismatch");
    }
  }
  for (const Rack& rk : racks_) {
    for (ResourceType t : kAllResources) {
      Units max_avail = 0;
      Units total_avail = 0;
      for (BoxId id : rk.boxes(t)) {
        max_avail = std::max(max_avail, boxes_[id.value()].available_units());
        total_avail += boxes_[id.value()].available_units();
      }
      if (max_avail != rk.max_available(t) ||
          total_avail != rk.total_available(t)) {
        throw std::logic_error("Cluster invariant: rack aggregate mismatch");
      }
    }
  }
}

}  // namespace risa::topo
