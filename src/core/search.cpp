#include "core/search.hpp"

#include <algorithm>

namespace risa::core {

BoxId first_fit_box(const topo::Cluster& cluster, ResourceType type,
                    Units units, const RackFilter& filter) {
  for (BoxId id : cluster.boxes_of_type(type)) {
    const topo::Box& box = cluster.box_unchecked(id);
    if (!filter.allows(type, box.rack())) continue;
    if (box.available_units() >= units) return id;
  }
  return BoxId::invalid();
}

namespace {

/// Best free uplink capacity of a box.
[[nodiscard]] MbitsPerSec best_uplink(const net::Fabric& fabric, BoxId box) {
  MbitsPerSec best = 0;
  for (LinkId id : fabric.box_uplinks(box)) {
    best = std::max(best, fabric.link_unchecked(id).available());
  }
  return best;
}

/// Best free rack-uplink capacity of a rack.
[[nodiscard]] MbitsPerSec best_rack_uplink(const net::Fabric& fabric,
                                           RackId rack) {
  MbitsPerSec best = 0;
  for (LinkId id : fabric.rack_uplinks(rack)) {
    best = std::max(best, fabric.link_unchecked(id).available());
  }
  return best;
}

/// NALB's bandwidth keys: the bottleneck free bandwidth of the path that
/// would connect the anchor's rack to each candidate (candidate's best box
/// uplink; for inter-rack candidates additionally the two rack uplinks
/// involved), quantized to whole spatial channels because the OCS reserves
/// channel-granular circuits.  On a lightly loaded fabric every candidate
/// ties, so the stable sort preserves NULB's order -- which is why the
/// paper's NALB makes the same placements as NULB (Figure 5: 255 = 255)
/// until links genuinely congest.  Rack-uplink bests are computed once per
/// search (into the scratch buffer) rather than per candidate.
class PathHeadroom {
 public:
  PathHeadroom(const net::Fabric& fabric, RackId anchor_rack,
               std::uint32_t num_racks, std::vector<MbitsPerSec>& rack_best)
      : fabric_(&fabric), anchor_rack_(anchor_rack),
        channel_rate_(fabric.config().channel_rate), rack_best_(&rack_best) {
    rack_best.clear();
    rack_best.reserve(num_racks);
    for (std::uint32_t r = 0; r < num_racks; ++r) {
      rack_best.push_back(best_rack_uplink(fabric, RackId{r}));
    }
  }

  /// Free channels on the candidate's bottleneck hop.
  [[nodiscard]] MbitsPerSec of(BoxId box) const {
    const RackId box_rack = fabric_->switch_node(fabric_->box_switch(box)).rack;
    MbitsPerSec headroom = best_uplink(*fabric_, box);
    if (box_rack != anchor_rack_) {
      headroom = std::min(headroom, (*rack_best_)[anchor_rack_.value()]);
      headroom = std::min(headroom, (*rack_best_)[box_rack.value()]);
    }
    return headroom / channel_rate_;
  }

 private:
  const net::Fabric* fabric_;
  RackId anchor_rack_;
  MbitsPerSec channel_rate_;
  const std::vector<MbitsPerSec>* rack_best_;
};

/// First fit over boxes of `type` in per-type id order, restricted to the
/// filter; `skip_rack` carves the AnchorRackFirst second tier without
/// materializing a candidate list.
[[nodiscard]] BoxId scan_in_id_order(const topo::Cluster& cluster,
                                     ResourceType type, Units units,
                                     const RackFilter& filter,
                                     RackId skip_rack = RackId::invalid()) {
  for (BoxId id : cluster.boxes_of_type(type)) {
    const topo::Box& box = cluster.box_unchecked(id);
    if (box.rack() == skip_rack) continue;
    if (!filter.allows(type, box.rack())) continue;
    if (box.available_units() >= units) return id;
  }
  return BoxId::invalid();
}

/// Rank `candidates` by descending path headroom (keys computed once per
/// candidate, stable on ties) into scratch.ranked and return the first fit.
[[nodiscard]] BoxId ranked_scan(const topo::Cluster& cluster,
                                SearchScratch& scratch, Units units) {
  // Stable sort on the key alone keeps tied candidates in insertion
  // (per-type id) order -- byte-identical to sorting the boxes with a
  // key-recomputing comparator, but with one key computation per candidate
  // instead of one per comparison.
  std::stable_sort(scratch.ranked.begin(), scratch.ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [key, id] : scratch.ranked) {
    (void)key;
    if (cluster.box_unchecked(id).available_units() >= units) return id;
  }
  return BoxId::invalid();
}

}  // namespace

BoxId bfs_search(const topo::Cluster& cluster, const net::Fabric& fabric,
                 RackId anchor_rack, ResourceType type, Units units,
                 NeighborOrder order, CompanionSearch companion,
                 const RackFilter& filter, SearchScratch& scratch) {
  if (order == NeighborOrder::BoxIdOrder) {
    if (companion == CompanionSearch::GlobalOrder) {
      // Single tier: every eligible box in per-type id order (the ordering
      // that reproduces the paper's measured inter-rack behavior).  A plain
      // scan -- no candidate list needed.
      return scan_in_id_order(cluster, type, units, filter);
    }
    // AnchorRackFirst -- the literal Algorithm 2 tiering.
    if (filter.allows(type, anchor_rack)) {
      for (BoxId id : cluster.boxes_of_type_in_rack(anchor_rack, type)) {
        if (cluster.box_unchecked(id).available_units() >= units) return id;
      }
    }
    return scan_in_id_order(cluster, type, units, filter, anchor_rack);
  }

  // BandwidthDescending: materialize (key, box) pairs into the scratch
  // buffer, rank, then first-fit.
  const PathHeadroom headroom(fabric, anchor_rack, cluster.num_racks(),
                              scratch.rack_best);
  if (companion == CompanionSearch::GlobalOrder) {
    scratch.ranked.clear();
    for (BoxId id : cluster.boxes_of_type(type)) {
      if (!filter.allows(type, cluster.box_unchecked(id).rack())) continue;
      scratch.ranked.emplace_back(headroom.of(id), id);
    }
    return ranked_scan(cluster, scratch, units);
  }

  // AnchorRackFirst tiers, each ranked independently.
  if (filter.allows(type, anchor_rack)) {
    scratch.ranked.clear();
    for (BoxId id : cluster.boxes_of_type_in_rack(anchor_rack, type)) {
      scratch.ranked.emplace_back(headroom.of(id), id);
    }
    const BoxId local_hit = ranked_scan(cluster, scratch, units);
    if (local_hit.valid()) return local_hit;
  }
  scratch.ranked.clear();
  for (BoxId id : cluster.boxes_of_type(type)) {
    const topo::Box& box = cluster.box_unchecked(id);
    if (box.rack() == anchor_rack) continue;
    if (!filter.allows(type, box.rack())) continue;
    scratch.ranked.emplace_back(headroom.of(id), id);
  }
  return ranked_scan(cluster, scratch, units);
}

BoxId bfs_search(const topo::Cluster& cluster, const net::Fabric& fabric,
                 RackId anchor_rack, ResourceType type, Units units,
                 NeighborOrder order, CompanionSearch companion,
                 const RackFilter& filter) {
  SearchScratch scratch;
  return bfs_search(cluster, fabric, anchor_rack, type, units, order, companion,
                    filter, scratch);
}

}  // namespace risa::core
