#include "core/search.hpp"

#include <algorithm>
#include <bit>

namespace risa::core {

namespace {

/// Visit candidate racks for a (type, units) first-fit scan in ascending
/// rack-id order: the availability index's per-shard eligibility word --
/// racks whose per-type *maximum* box fits `units` -- ANDed with the
/// filter's membership word.  Racks pruned by the index contain no fitting
/// box at all, so dropping them from any first-fit or rank-then-fit scan
/// cannot change which box is found (DESIGN.md §10).  `fn` returns true to
/// stop the walk.
template <typename F>
void for_each_candidate_rack(const topo::Cluster& cluster, ResourceType type,
                             Units units, const RackFilter& filter, F&& fn) {
  const topo::RackAvailabilityIndex& index = cluster.rack_index();
  for (std::uint32_t s = 0; s < index.num_shards(); ++s) {
    std::uint64_t word = index.type_word(s, type, units);
    if (filter.restricted()) word &= filter.mask(type).word(s);
    while (word != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(word));
      word &= word - 1;
      if (fn(RackId{s * topo::RackAvailabilityIndex::kShardRacks + bit})) {
        return;
      }
    }
  }
}

}  // namespace

BoxId first_fit_box(const topo::Cluster& cluster, ResourceType type,
                    Units units, const RackFilter& filter) {
  // Equivalent to the flat scan over boxes_of_type(type) -- that order is
  // rack-major, and the index prunes only racks without a fitting box.
  BoxId hit = BoxId::invalid();
  for_each_candidate_rack(
      cluster, type, units, filter, [&](RackId rack) {
        for (BoxId id : cluster.boxes_of_type_in_rack(rack, type)) {
          if (cluster.box_unchecked(id).available_units() >= units) {
            hit = id;
            return true;
          }
        }
        return false;
      });
  return hit;
}

namespace {

/// Best free uplink capacity of a box.
[[nodiscard]] MbitsPerSec best_uplink(const net::Fabric& fabric, BoxId box) {
  MbitsPerSec best = 0;
  for (LinkId id : fabric.box_uplinks(box)) {
    best = std::max(best, fabric.link_unchecked(id).available());
  }
  return best;
}

/// Best free rack-uplink capacity of a rack.
[[nodiscard]] MbitsPerSec best_rack_uplink(const net::Fabric& fabric,
                                           RackId rack) {
  MbitsPerSec best = 0;
  for (LinkId id : fabric.rack_uplinks(rack)) {
    best = std::max(best, fabric.link_unchecked(id).available());
  }
  return best;
}

/// NALB's bandwidth keys: the bottleneck free bandwidth of the path that
/// would connect the anchor's rack to each candidate (candidate's best box
/// uplink; for inter-rack candidates additionally the two rack uplinks
/// involved), quantized to whole spatial channels because the OCS reserves
/// channel-granular circuits.  On a lightly loaded fabric every candidate
/// ties, so the stable sort preserves NULB's order -- which is why the
/// paper's NALB makes the same placements as NULB (Figure 5: 255 = 255)
/// until links genuinely congest.  Rack-uplink bests are memoized lazily
/// per search (into the scratch buffer): since the index prunes whole
/// racks, most searches touch a handful of racks, not all of them.
class PathHeadroom {
 public:
  /// Free capacities are non-negative, so -1 marks "not yet computed".
  static constexpr MbitsPerSec kUnknown = -1;

  PathHeadroom(const net::Fabric& fabric, RackId anchor_rack,
               std::uint32_t num_racks, std::vector<MbitsPerSec>& rack_best)
      : fabric_(&fabric), anchor_rack_(anchor_rack),
        channel_rate_(fabric.config().channel_rate), rack_best_(&rack_best) {
    rack_best.assign(num_racks, kUnknown);
  }

  /// Free channels on the candidate's bottleneck hop.
  [[nodiscard]] MbitsPerSec of(BoxId box) const {
    const RackId box_rack = fabric_->switch_node(fabric_->box_switch(box)).rack;
    MbitsPerSec headroom = best_uplink(*fabric_, box);
    if (box_rack != anchor_rack_) {
      headroom = std::min(headroom, rack(anchor_rack_));
      headroom = std::min(headroom, rack(box_rack));
    }
    return headroom / channel_rate_;
  }

 private:
  [[nodiscard]] MbitsPerSec rack(RackId r) const {
    MbitsPerSec& best = (*rack_best_)[r.value()];
    if (best == kUnknown) best = best_rack_uplink(*fabric_, r);
    return best;
  }

  const net::Fabric* fabric_;
  RackId anchor_rack_;
  MbitsPerSec channel_rate_;
  std::vector<MbitsPerSec>* rack_best_;
};

/// First fit over boxes of `type` in per-type id order, restricted to the
/// filter; `skip_rack` carves the AnchorRackFirst second tier without
/// materializing a candidate list.
[[nodiscard]] BoxId scan_in_id_order(const topo::Cluster& cluster,
                                     ResourceType type, Units units,
                                     const RackFilter& filter,
                                     RackId skip_rack = RackId::invalid()) {
  BoxId hit = BoxId::invalid();
  for_each_candidate_rack(
      cluster, type, units, filter, [&](RackId rack) {
        if (rack == skip_rack) return false;
        for (BoxId id : cluster.boxes_of_type_in_rack(rack, type)) {
          if (cluster.box_unchecked(id).available_units() >= units) {
            hit = id;
            return true;
          }
        }
        return false;
      });
  return hit;
}

/// Running argmax for the bandwidth-descending scans.  The historical
/// implementation materialized every candidate, stable-sorted by descending
/// headroom, then took the first fit.  Availability cannot change between
/// the build and the scan (placement is single-threaded), so the first fit
/// of that order is exactly "the *fitting* candidate with maximum headroom,
/// earliest insertion order winning ties" -- which a strict-greater running
/// maximum over fit-filtered candidates computes directly: no sort, no
/// candidate buffer, and no headroom key evaluated for any box that could
/// never be chosen.
struct RankedBest {
  MbitsPerSec key = -1;  ///< headroom keys are non-negative
  BoxId box = BoxId::invalid();

  void offer(MbitsPerSec candidate_key, BoxId id) noexcept {
    if (candidate_key > key) {
      key = candidate_key;
      box = id;
    }
  }
};

}  // namespace

BoxId bfs_search(const topo::Cluster& cluster, const net::Fabric& fabric,
                 RackId anchor_rack, ResourceType type, Units units,
                 NeighborOrder order, CompanionSearch companion,
                 const RackFilter& filter, SearchScratch& scratch) {
  if (order == NeighborOrder::BoxIdOrder) {
    if (companion == CompanionSearch::GlobalOrder) {
      // Single tier: every eligible box in per-type id order (the ordering
      // that reproduces the paper's measured inter-rack behavior).  A plain
      // scan -- no candidate list needed.
      return scan_in_id_order(cluster, type, units, filter);
    }
    // AnchorRackFirst -- the literal Algorithm 2 tiering.
    if (filter.allows(type, anchor_rack)) {
      for (BoxId id : cluster.boxes_of_type_in_rack(anchor_rack, type)) {
        if (cluster.box_unchecked(id).available_units() >= units) return id;
      }
    }
    return scan_in_id_order(cluster, type, units, filter, anchor_rack);
  }

  // BandwidthDescending: fit-filtered running argmax (RankedBest above).
  // Candidates come only from index-eligible racks -- racks the index
  // excludes contain no fitting box, so pruning them cannot change the
  // winner.
  const PathHeadroom headroom(fabric, anchor_rack, cluster.num_racks(),
                              scratch.rack_best);
  if (companion == CompanionSearch::GlobalOrder) {
    RankedBest best;
    for_each_candidate_rack(
        cluster, type, units, filter, [&](RackId rack) {
          for (BoxId id : cluster.boxes_of_type_in_rack(rack, type)) {
            if (cluster.box_unchecked(id).available_units() >= units) {
              best.offer(headroom.of(id), id);
            }
          }
          return false;
        });
    return best.box;
  }

  // AnchorRackFirst tiers, each ranked independently.
  if (filter.allows(type, anchor_rack)) {
    RankedBest local;
    for (BoxId id : cluster.boxes_of_type_in_rack(anchor_rack, type)) {
      if (cluster.box_unchecked(id).available_units() >= units) {
        local.offer(headroom.of(id), id);
      }
    }
    if (local.box.valid()) return local.box;
  }
  RankedBest best;
  for_each_candidate_rack(
      cluster, type, units, filter, [&](RackId rack) {
        if (rack == anchor_rack) return false;
        for (BoxId id : cluster.boxes_of_type_in_rack(rack, type)) {
          if (cluster.box_unchecked(id).available_units() >= units) {
            best.offer(headroom.of(id), id);
          }
        }
        return false;
      });
  return best.box;
}

BoxId bfs_search(const topo::Cluster& cluster, const net::Fabric& fabric,
                 RackId anchor_rack, ResourceType type, Units units,
                 NeighborOrder order, CompanionSearch companion,
                 const RackFilter& filter) {
  SearchScratch scratch;
  return bfs_search(cluster, fabric, anchor_rack, type, units, order, companion,
                    filter, scratch);
}

}  // namespace risa::core
