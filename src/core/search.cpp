#include "core/search.hpp"

#include <algorithm>

namespace risa::core {

bool rack_allowed(const RackFilter& filter, ResourceType type, RackId rack) {
  if (!filter.has_value()) return true;
  const auto& racks = (*filter)[type];
  return std::find(racks.begin(), racks.end(), rack) != racks.end();
}

BoxId first_fit_box(const topo::Cluster& cluster, ResourceType type,
                    Units units, const RackFilter& filter) {
  for (BoxId id : cluster.boxes_of_type(type)) {
    const topo::Box& box = cluster.box(id);
    if (!rack_allowed(filter, type, box.rack())) continue;
    if (box.available_units() >= units) return id;
  }
  return BoxId::invalid();
}

namespace {

/// Best free uplink capacity of a box.
[[nodiscard]] MbitsPerSec best_uplink(const net::Fabric& fabric, BoxId box) {
  MbitsPerSec best = 0;
  for (LinkId id : fabric.box_uplinks(box)) {
    best = std::max(best, fabric.link(id).available());
  }
  return best;
}

/// Best free rack-uplink capacity of a rack.
[[nodiscard]] MbitsPerSec best_rack_uplink(const net::Fabric& fabric,
                                           RackId rack) {
  MbitsPerSec best = 0;
  for (LinkId id : fabric.rack_uplinks(rack)) {
    best = std::max(best, fabric.link(id).available());
  }
  return best;
}

/// NALB's bandwidth keys: the bottleneck free bandwidth of the path that
/// would connect the anchor's rack to each candidate (candidate's best box
/// uplink; for inter-rack candidates additionally the two rack uplinks
/// involved), quantized to whole spatial channels because the OCS reserves
/// channel-granular circuits.  On a lightly loaded fabric every candidate
/// ties, so the stable sort preserves NULB's order -- which is why the
/// paper's NALB makes the same placements as NULB (Figure 5: 255 = 255)
/// until links genuinely congest.  Rack-uplink bests are computed once per
/// search rather than per candidate.
class PathHeadroom {
 public:
  PathHeadroom(const net::Fabric& fabric, RackId anchor_rack,
               std::uint32_t num_racks)
      : fabric_(&fabric), anchor_rack_(anchor_rack),
        channel_rate_(fabric.config().channel_rate) {
    rack_best_.reserve(num_racks);
    for (std::uint32_t r = 0; r < num_racks; ++r) {
      rack_best_.push_back(best_rack_uplink(fabric, RackId{r}));
    }
  }

  /// Free channels on the candidate's bottleneck hop.
  [[nodiscard]] MbitsPerSec of(BoxId box) const {
    const RackId box_rack = fabric_->switch_node(fabric_->box_switch(box)).rack;
    MbitsPerSec headroom = best_uplink(*fabric_, box);
    if (box_rack != anchor_rack_) {
      headroom = std::min(headroom, rack_best_[anchor_rack_.value()]);
      headroom = std::min(headroom, rack_best_[box_rack.value()]);
    }
    return headroom / channel_rate_;
  }

 private:
  const net::Fabric* fabric_;
  RackId anchor_rack_;
  MbitsPerSec channel_rate_;
  std::vector<MbitsPerSec> rack_best_;
};

/// Scan `candidates` (already ordered) for the first fit.
[[nodiscard]] BoxId scan(const topo::Cluster& cluster,
                         const std::vector<BoxId>& candidates, Units units) {
  for (BoxId id : candidates) {
    if (cluster.box(id).available_units() >= units) return id;
  }
  return BoxId::invalid();
}

}  // namespace

BoxId bfs_search(const topo::Cluster& cluster, const net::Fabric& fabric,
                 RackId anchor_rack, ResourceType type, Units units,
                 NeighborOrder order, CompanionSearch companion,
                 const RackFilter& filter) {
  std::optional<PathHeadroom> headroom;
  if (order == NeighborOrder::BandwidthDescending) {
    headroom.emplace(fabric, anchor_rack, cluster.num_racks());
  }
  const auto by_bandwidth = [&](BoxId a, BoxId b) {
    return headroom->of(a) > headroom->of(b);
  };

  if (companion == CompanionSearch::GlobalOrder) {
    // Single tier: every eligible box in per-type id order (the ordering
    // that reproduces the paper's measured inter-rack behavior).
    std::vector<BoxId> candidates;
    for (BoxId id : cluster.boxes_of_type(type)) {
      if (!rack_allowed(filter, type, cluster.box(id).rack())) continue;
      candidates.push_back(id);
    }
    if (order == NeighborOrder::BandwidthDescending) {
      std::stable_sort(candidates.begin(), candidates.end(), by_bandwidth);
    }
    return scan(cluster, candidates, units);
  }

  // AnchorRackFirst -- the literal Algorithm 2 tiering.
  // Tier 1: boxes of the anchor rack, local order.
  std::vector<BoxId> same_rack;
  if (rack_allowed(filter, type, anchor_rack)) {
    const auto& local = cluster.boxes_of_type_in_rack(anchor_rack, type);
    same_rack.assign(local.begin(), local.end());
  }
  // Tier 2: every other eligible box, per-type id order.
  std::vector<BoxId> other_racks;
  for (BoxId id : cluster.boxes_of_type(type)) {
    const topo::Box& box = cluster.box(id);
    if (box.rack() == anchor_rack) continue;
    if (!rack_allowed(filter, type, box.rack())) continue;
    other_racks.push_back(id);
  }

  if (order == NeighborOrder::BandwidthDescending) {
    std::stable_sort(same_rack.begin(), same_rack.end(), by_bandwidth);
    std::stable_sort(other_racks.begin(), other_racks.end(), by_bandwidth);
  }

  const BoxId local_hit = scan(cluster, same_rack, units);
  if (local_hit.valid()) return local_hit;
  return scan(cluster, other_racks, units);
}

}  // namespace risa::core
