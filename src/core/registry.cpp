#include "core/registry.hpp"

#include <stdexcept>

#include "common/string_util.hpp"
#include "core/baselines.hpp"
#include "core/nalb.hpp"
#include "core/nulb.hpp"
#include "core/risa.hpp"

namespace risa::core {

std::vector<std::string> algorithm_names() {
  return {"NULB", "NALB", "RISA", "RISA-BF"};
}

std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                          AllocContext ctx,
                                          AllocatorOptions options) {
  const std::string key = to_lower(name);
  if (key == "nulb") {
    return std::make_unique<NulbAllocator>(ctx, options.companion);
  }
  if (key == "nalb") {
    return std::make_unique<NalbAllocator>(ctx, options.companion);
  }
  if (key == "risa") return make_risa(ctx);
  if (key == "risa-bf" || key == "risa_bf" || key == "risabf") {
    return make_risa_bf(ctx);
  }
  // Extension baselines (not part of the paper's comparison set; see
  // core/baselines.hpp).
  if (key == "random") return std::make_unique<RandomAllocator>(ctx);
  if (key == "ff") return std::make_unique<FirstFitAllocator>(ctx);
  if (key == "wf") return std::make_unique<WorstFitAllocator>(ctx);
  throw std::invalid_argument("make_allocator: unknown algorithm '" + name +
                              "'");
}

}  // namespace risa::core
