// RISA and RISA-BF: the paper's contribution (Algorithms 1 and 3).
//
// RISA keeps, per rack, the box with the maximum availability of each
// resource type (maintained incrementally by the Cluster).  For each VM it
// builds INTRA_RACK_POOL -- the racks whose maxima fit the *entire* VM --
// and selects among them round-robin, so rack utilization stays uniform and
// future VMs keep finding intra-rack homes.  Inside the chosen rack, boxes
// are packed next-fit (RISA) or best-fit ascending (RISA-BF; Algorithm 3's
// "sort boxes within each rack in ascending # of resource").  When the pool
// is empty or intra-rack bandwidth is insufficient, RISA "resorts to NULB"
// restricted to the SUPER_RACK: the per-type lists of racks that can host
// each resource individually.
//
// The next-fit policy (first-fit with a roving per-rack cursor that stays
// on the last chosen box) is the only packing rule consistent with the
// paper's Table 4 trace; see DESIGN.md §2.8.
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocator.hpp"
#include "core/search.hpp"

namespace risa::core {

/// Intra-rack packing rule.
enum class RackPacking : std::uint8_t {
  NextFit = 0,  ///< RISA: roving cursor per (rack, type)
  BestFit = 1,  ///< RISA-BF: smallest availability that fits
  FirstFit = 2, ///< ablation only: always scan from box 0
};

[[nodiscard]] constexpr std::string_view name(RackPacking p) noexcept {
  switch (p) {
    case RackPacking::NextFit: return "next-fit";
    case RackPacking::BestFit: return "best-fit";
    case RackPacking::FirstFit: return "first-fit";
  }
  return "?";
}

/// Rack selection rule for the intra-rack pool (round-robin is the paper's;
/// first-eligible is the ablation baseline that shows why round-robin
/// matters).
enum class RackSelection : std::uint8_t {
  RoundRobin = 0,
  FirstEligible = 1,
};

struct RisaOptions {
  RackPacking packing = RackPacking::NextFit;
  RackSelection selection = RackSelection::RoundRobin;
  /// Display name; empty derives "RISA"/"RISA-BF" from packing.
  std::string display_name;
};

class RisaAllocator : public Allocator {
 public:
  RisaAllocator(AllocContext ctx, RisaOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) override;

  void reset() override;

  /// Round-robin cursor, per-(rack, type) next-fit cursors and the
  /// fallback counter -- exactly the state reset() clears.
  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

  /// Number of placements that took the SUPER_RACK/NULB fallback path.
  [[nodiscard]] std::uint64_t fallback_count() const noexcept {
    return fallbacks_;
  }

  /// Racks currently able to host the whole demand (exposed for tests and
  /// the round-robin ablation).  Materializes a vector from the cluster's
  /// rack-availability index; the placement hot path uses the RackSet form
  /// directly and never allocates.
  [[nodiscard]] std::vector<RackId> intra_rack_pool(const UnitVector& units) const;

  /// The per-type SUPER_RACK lists for a demand (vector form, see above).
  [[nodiscard]] PerResource<std::vector<RackId>> super_rack(
      const UnitVector& units) const;

 private:
  [[nodiscard]] BoxId pick_box_in_rack(RackId rack, ResourceType type,
                                       Units units);

  RisaOptions options_;
  std::string name_;
  std::uint32_t rr_next_rack_ = 0;  ///< round-robin cursor over rack ids
  /// Next-fit cursors: per (rack, type) local box index of the last
  /// allocation, the roving pointer Table 4 exhibits.
  std::vector<PerResource<std::uint32_t>> cursors_;
  std::uint64_t fallbacks_ = 0;
};

/// Factory helpers matching the paper's two variants.
[[nodiscard]] std::unique_ptr<RisaAllocator> make_risa(AllocContext ctx);
[[nodiscard]] std::unique_ptr<RisaAllocator> make_risa_bf(AllocContext ctx);

}  // namespace risa::core
