// Box search primitives shared by NULB and NALB (§4.1).
//
// NULB's compute phase is a first-fit scan in per-type box-id order for the
// most contended resource, then a BFS from the chosen box's rack for the
// remaining types: same-rack boxes first, then boxes of other racks in rack
// id order.  NALB runs the same BFS but "reorders neighbors ... in
// descending order of their available bandwidth" -- here, each tier's
// candidates are stably re-sorted by the box's best free uplink capacity.
//
// Searches optionally restrict to a per-type rack set (SUPER_RACK): RISA's
// fallback path funnels through the same code with a filter installed.
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/rack_set.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "topology/cluster.hpp"

namespace risa::core {

/// Per-type rack filter over fixed-width bitmasks.  A disengaged filter
/// means "no restriction"; an engaged one restricts candidate boxes of type
/// t to the racks set in mask(t), making every eligibility check a single
/// bit test (the NULB fallback scans each candidate box once, so a linear
/// rack-list lookup here made the whole path O(boxes x racks)).
class RackFilter {
 public:
  /// No restriction.
  constexpr RackFilter() = default;
  /// Compat spelling for "no restriction" (the filter used to be a
  /// std::optional; call sites and tests pass std::nullopt).
  constexpr RackFilter(std::nullopt_t) {}  // NOLINT(google-explicit-constructor)

  /// Engaged filter from per-type rack lists (tests / cold paths).
  explicit RackFilter(const PerResource<std::vector<RackId>>& racks)
      : engaged_(true) {
    for (ResourceType t : kAllResources) {
      for (RackId r : racks[t]) masks_[t].set(r);
    }
  }

  /// Engaged filter from per-type masks (the SUPER_RACK hot path).
  explicit RackFilter(PerResource<RackSet> masks)
      : engaged_(true), masks_(std::move(masks)) {}

  [[nodiscard]] constexpr bool restricted() const noexcept { return engaged_; }
  [[nodiscard]] constexpr bool allows(ResourceType type, RackId rack) const noexcept {
    return !engaged_ || masks_[type].test(rack);
  }
  [[nodiscard]] const RackSet& mask(ResourceType type) const noexcept {
    return masks_[type];
  }
  [[nodiscard]] const PerResource<RackSet>& masks() const noexcept {
    return masks_;
  }

 private:
  bool engaged_ = false;
  PerResource<RackSet> masks_;
};

/// True when `rack` is eligible for `type` under `filter`.
[[nodiscard]] inline bool rack_allowed(const RackFilter& filter,
                                       ResourceType type, RackId rack) noexcept {
  return filter.allows(type, rack);
}

/// Reusable scratch buffers for the search routines.  One lives in each
/// Allocator so the steady-state placement path performs no heap
/// allocation; the vectors grow to the high-water mark once and are
/// reused for every subsequent VM.
struct SearchScratch {
  /// Per-rack best free uplink, computed once per bandwidth-ordered search.
  std::vector<MbitsPerSec> rack_best;
};

/// First box of `type` with at least `units` available, scanning cluster-
/// wide in per-type (rack-major) id order -- NULB's anchor search.
[[nodiscard]] BoxId first_fit_box(const topo::Cluster& cluster,
                                  ResourceType type, Units units,
                                  const RackFilter& filter);

/// Candidate ordering of the BFS second phase.
enum class NeighborOrder : std::uint8_t {
  BoxIdOrder = 0,        ///< NULB: rack-major box-id order
  BandwidthDescending = 1,  ///< NALB: best free uplink first (stable)
};

/// How the companion (non-anchor) resources are searched.
///
/// Algorithm 2's prose says "first looks for other requested resources ...
/// in the same rack", but the paper's own measured results (Figures 7/10:
/// up to 52% inter-rack assignments on the Azure subsets) are only
/// reproducible when the companion search scans boxes in global id order
/// without anchoring to the scarce resource's rack -- which is also what
/// §4.1's critique of NULB/NALB describes.  Both readings are implemented;
/// GlobalOrder is the default because it reproduces the published numbers.
/// See DESIGN.md §2 and the search-interpretation ablation bench.
enum class CompanionSearch : std::uint8_t {
  GlobalOrder = 0,      ///< first fit over all boxes in id order (default)
  AnchorRackFirst = 1,  ///< literal Algorithm 2: anchor rack, then the rest
};

/// BFS search for `type`: candidates ordered per `companion` tiering and
/// `order` within each tier.  Returns the first candidate with `units`
/// available, or an invalid id.  `scratch` holds the reusable candidate
/// buffers (only touched for the bandwidth-descending order).
[[nodiscard]] BoxId bfs_search(const topo::Cluster& cluster,
                               const net::Fabric& fabric, RackId anchor_rack,
                               ResourceType type, Units units,
                               NeighborOrder order, CompanionSearch companion,
                               const RackFilter& filter, SearchScratch& scratch);

/// Convenience overload with a transient scratch (tests / one-off calls).
[[nodiscard]] BoxId bfs_search(const topo::Cluster& cluster,
                               const net::Fabric& fabric, RackId anchor_rack,
                               ResourceType type, Units units,
                               NeighborOrder order, CompanionSearch companion,
                               const RackFilter& filter);

}  // namespace risa::core
