// Box search primitives shared by NULB and NALB (§4.1).
//
// NULB's compute phase is a first-fit scan in per-type box-id order for the
// most contended resource, then a BFS from the chosen box's rack for the
// remaining types: same-rack boxes first, then boxes of other racks in rack
// id order.  NALB runs the same BFS but "reorders neighbors ... in
// descending order of their available bandwidth" -- here, each tier's
// candidates are stably re-sorted by the box's best free uplink capacity.
//
// Searches optionally restrict to a per-type rack set (SUPER_RACK): RISA's
// fallback path funnels through the same code with a filter installed.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "topology/cluster.hpp"

namespace risa::core {

/// Per-type rack filter.  An empty optional means "no restriction"; an
/// engaged optional restricts candidate boxes of type t to racks[t].
using RackFilter = std::optional<PerResource<std::vector<RackId>>>;

/// True when `rack` is eligible for `type` under `filter`.
[[nodiscard]] bool rack_allowed(const RackFilter& filter, ResourceType type,
                                RackId rack);

/// First box of `type` with at least `units` available, scanning cluster-
/// wide in per-type (rack-major) id order -- NULB's anchor search.
[[nodiscard]] BoxId first_fit_box(const topo::Cluster& cluster,
                                  ResourceType type, Units units,
                                  const RackFilter& filter);

/// Candidate ordering of the BFS second phase.
enum class NeighborOrder : std::uint8_t {
  BoxIdOrder = 0,        ///< NULB: rack-major box-id order
  BandwidthDescending = 1,  ///< NALB: best free uplink first (stable)
};

/// How the companion (non-anchor) resources are searched.
///
/// Algorithm 2's prose says "first looks for other requested resources ...
/// in the same rack", but the paper's own measured results (Figures 7/10:
/// up to 52% inter-rack assignments on the Azure subsets) are only
/// reproducible when the companion search scans boxes in global id order
/// without anchoring to the scarce resource's rack -- which is also what
/// §4.1's critique of NULB/NALB describes.  Both readings are implemented;
/// GlobalOrder is the default because it reproduces the published numbers.
/// See DESIGN.md §2 and the search-interpretation ablation bench.
enum class CompanionSearch : std::uint8_t {
  GlobalOrder = 0,      ///< first fit over all boxes in id order (default)
  AnchorRackFirst = 1,  ///< literal Algorithm 2: anchor rack, then the rest
};

/// BFS search for `type`: candidates ordered per `companion` tiering and
/// `order` within each tier.  Returns the first candidate with `units`
/// available, or an invalid id.
[[nodiscard]] BoxId bfs_search(const topo::Cluster& cluster,
                               const net::Fabric& fabric, RackId anchor_rack,
                               ResourceType type, Units units,
                               NeighborOrder order, CompanionSearch companion,
                               const RackFilter& filter);

}  // namespace risa::core
