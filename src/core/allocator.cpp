#include "core/allocator.hpp"

#include <stdexcept>

namespace risa::core {

Result<Placement, DropReason> Allocator::commit(const wl::VmRequest& vm,
                                                const UnitVector& units,
                                                const PerResource<BoxId>& boxes,
                                                net::LinkSelectPolicy policy,
                                                bool used_fallback) {
  topo::Cluster& cluster = *ctx_.cluster;

  Placement placement;
  placement.vm = vm.id;
  placement.units = units;
  placement.demand = ctx_.bandwidth.demand(units);
  placement.used_fallback = used_fallback;

  // Circuits the VM already holds before this commit.  Zero at admission;
  // nonzero on the migration path, where the old placement's circuits stay
  // live while the new ones are established (make-before-break) -- a
  // failed commit must roll back only the circuits IT opened.
  const auto held_before =
      static_cast<std::uint32_t>(ctx_.circuits->circuit_count_of(vm.id));

  // --- Compute phase commit ---------------------------------------------
  std::size_t committed = 0;
  for (ResourceType t : kAllResources) {
    if (!cluster.allocate_into(boxes[t], units[t], placement.compute[index(t)])) {
      // The caller checked availability before committing, so this is only
      // reachable if the caller's search is buggy; unwind and report.
      for (std::size_t j = 0; j < committed; ++j) {
        cluster.release(placement.compute[j]);
      }
      return Err{DropReason::NoComputeResources};
    }
    placement.racks[index(t)] = cluster.box_unchecked(boxes[t]).rack();
    ++committed;
  }

  placement.inter_rack =
      placement.rack(ResourceType::Cpu) != placement.rack(ResourceType::Ram) ||
      placement.rack(ResourceType::Ram) != placement.rack(ResourceType::Storage);

  // --- Network phase ------------------------------------------------------
  auto rollback_compute = [&] {
    for (ResourceType t : kAllResources) {
      cluster.release(placement.compute[index(t)]);
    }
  };

  auto establish = [&](net::FlowKind flow, BoxId src, RackId src_rack,
                       BoxId dst, RackId dst_rack,
                       MbitsPerSec bw) -> Result<bool, std::string> {
    if (bw <= 0) return true;  // zero-rate flow holds no circuit
    auto path = ctx_.router->find_path(src, src_rack, dst, dst_rack, bw, policy);
    if (!path.ok()) return Err<std::string>{path.error()};
    auto cid = ctx_.circuits->establish(vm.id, flow, bw, std::move(path.value()));
    if (!cid.ok()) return Err<std::string>{cid.error()};
    return true;
  };

  auto cpu_ram = establish(net::FlowKind::CpuRam, placement.box(ResourceType::Cpu),
                           placement.rack(ResourceType::Cpu),
                           placement.box(ResourceType::Ram),
                           placement.rack(ResourceType::Ram),
                           placement.demand.cpu_ram);
  if (!cpu_ram.ok()) {
    rollback_compute();
    return Err{DropReason::NoNetworkResources};
  }
  auto ram_sto = establish(net::FlowKind::RamStorage,
                           placement.box(ResourceType::Ram),
                           placement.rack(ResourceType::Ram),
                           placement.box(ResourceType::Storage),
                           placement.rack(ResourceType::Storage),
                           placement.demand.ram_sto);
  if (!ram_sto.ok()) {
    // Undo the CPU-RAM circuit this commit opened, and nothing else.
    ctx_.circuits->teardown_suffix(vm.id, held_before);
    rollback_compute();
    return Err{DropReason::NoNetworkResources};
  }

  return placement;
}

void Allocator::release(const Placement& placement) {
  ctx_.circuits->teardown_vm(placement.vm);
  for (ResourceType t : kAllResources) {
    ctx_.cluster->release(placement.compute[index(t)]);
  }
}

void Allocator::release_batched(const Placement& placement) {
  ctx_.circuits->teardown_vm(placement.vm);
  for (ResourceType t : kAllResources) {
    ctx_.cluster->release_batched(placement.compute[index(t)]);
  }
}

}  // namespace risa::core
