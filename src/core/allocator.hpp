// The allocator interface shared by NULB, NALB, RISA and RISA-BF, plus the
// base class implementing the common two-phase commit:
//   compute phase  -- pick one box per resource type (algorithm-specific),
//   network phase  -- reserve the CPU-RAM and RAM-storage circuits.
// Either phase failing drops the VM with no residual state (§4.1: "If
// either the compute allocation or network allocation fails, the VM to be
// assigned is dropped").
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "core/placement.hpp"
#include "core/search.hpp"
#include "network/bandwidth.hpp"
#include "network/circuit.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "topology/cluster.hpp"
#include "workload/vm.hpp"

namespace risa::core {

/// Shared mutable state every allocator operates on.  The context outlives
/// the allocator; references are non-owning.
struct AllocContext {
  topo::Cluster* cluster = nullptr;
  net::Fabric* fabric = nullptr;
  net::Router* router = nullptr;
  net::CircuitTable* circuits = nullptr;
  net::BandwidthModel bandwidth{};

  void validate() const {
    if (cluster == nullptr || fabric == nullptr || router == nullptr ||
        circuits == nullptr) {
      throw std::invalid_argument("AllocContext: null component");
    }
  }
};

class Allocator {
 public:
  explicit Allocator(AllocContext ctx) : ctx_(ctx) {
    ctx_.validate();
    units_ = UnitConverter(ctx_.cluster->config().unit_scale);
  }
  virtual ~Allocator() = default;

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Attempt to place `vm`.  On success all compute units and circuit
  /// bandwidth are reserved; on failure the cluster and fabric are
  /// untouched and the reason is returned.
  [[nodiscard]] virtual Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) = 0;

  /// Release a placement made by this allocator family: tears down the
  /// VM's circuits and returns compute units.  Subclasses extend this to
  /// refresh their internal bookkeeping.
  virtual void release(const Placement& placement);

  /// Same teardown, routed through the cluster's deferred-aggregate batch
  /// (Cluster::release_batched): circuits and box ledgers settle
  /// immediately, the per-rack aggregate/index refresh waits for
  /// Cluster::end_release_batch().  The engine brackets same-timestamp
  /// departure runs with begin/end; no placement may run in between.
  void release_batched(const Placement& placement);

  /// Restore all per-run state (round-robin cursors, packing cursors,
  /// seeded RNG streams, counters) to the just-constructed values so a
  /// reused allocator behaves bit-for-bit like a fresh one.  The shared
  /// context (cluster/fabric/circuits) is reset separately by its owner.
  virtual void reset() {}

  /// Serialize/restore the same per-run state reset() clears, for engine
  /// checkpointing.  Stateless allocators (NULB, NALB, the first/worst-fit
  /// baselines) inherit these no-ops; stateful ones (RISA's round-robin +
  /// packing cursors, RANDOM's RNG stream) must override both so a restored
  /// run continues bit-for-bit.  The format is private to each allocator.
  virtual void save_state(std::ostream&) const {}
  virtual void restore_state(std::istream&) {}

 protected:
  /// Commits boxes + circuits.  `policy` is the link-selection policy of
  /// the network phase.  Rolls everything back on failure.
  [[nodiscard]] Result<Placement, DropReason> commit(
      const wl::VmRequest& vm, const UnitVector& units,
      const PerResource<BoxId>& boxes, net::LinkSelectPolicy policy,
      bool used_fallback);

  [[nodiscard]] AllocContext& ctx() noexcept { return ctx_; }
  [[nodiscard]] const AllocContext& ctx() const noexcept { return ctx_; }

  /// Units-of-demand conversion via the cluster's unit scale (precomputed:
  /// power-of-two granularities divide by shifting -- bit-identical to
  /// vm.units(scale), minus three 64-bit divides per attempt).
  [[nodiscard]] UnitVector demand_units(const wl::VmRequest& vm) const {
    return UnitVector{units_.to_units(ResourceType::Cpu, vm.cores),
                      units_.to_units(ResourceType::Ram, vm.ram_mb),
                      units_.to_units(ResourceType::Storage, vm.storage_mb)};
  }

  /// Per-allocator search arena: reusable buffers threaded through the
  /// box-search routines so the steady-state placement path never touches
  /// the heap.
  [[nodiscard]] SearchScratch& scratch() noexcept { return scratch_; }

 private:
  AllocContext ctx_;
  UnitConverter units_;
  SearchScratch scratch_;
};

}  // namespace risa::core
