// NALB: the Network-Aware Locality-Based baseline of Zervas et al. [20].
//
// NALB extends NULB in two ways (§4.1): the BFS over candidate boxes is
// re-ordered by descending available uplink bandwidth ("modified BFS"), and
// the network phase "chooses links with the most available bandwidth".
// The extra ordering work is what makes NALB the slowest algorithm in the
// paper's Figures 11-12, a shape this implementation preserves.
#pragma once

#include "core/allocator.hpp"
#include "core/search.hpp"

namespace risa::core {

class NalbAllocator : public Allocator {
 public:
  explicit NalbAllocator(AllocContext ctx,
                         CompanionSearch companion = CompanionSearch::GlobalOrder)
      : Allocator(ctx), companion_(companion) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "NALB"; }

  [[nodiscard]] Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) override;

 private:
  CompanionSearch companion_;
};

}  // namespace risa::core
