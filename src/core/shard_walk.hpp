// Sharded round-robin walk over the INTRA_RACK_POOL (DESIGN.md §10).
//
// RISA's rack selection is a cyclic ascending walk over the eligible racks
// starting at the round-robin cursor.  The pre-sharding implementation
// materialized the full pool bitmask up front (every shard's eligibility
// word) and then walked it with RackSet::next.  This walk produces the
// *identical visit sequence* while computing at most one 64-rack shard
// word at a time, lazily: placements that succeed at or near the cursor --
// the steady-state case round-robin itself creates -- never pay for the
// shards they don't reach.
//
// Determinism argument (pinned by tests/test_core_index_simd.cpp): the
// visit sequence is exactly
//
//     [racks >= start of shard(start)] ++ [shard(start)+1 .. last] ++
//     [shard 0 .. shard(start)-1] ++ [racks < start of shard(start)]
//
// with every shard word's bits consumed in ascending order.  Concatenated,
// that is the ascending cyclic order starting at `start` -- the same order
// RackSet::next(start)/next(r+1) emits over the eagerly-built mask, with
// each eligible rack visited exactly once.  Laziness cannot change any
// word's value mid-walk: the only cluster mutations between next() calls
// are failed commits, which roll back to byte-identical aggregates before
// the walk resumes.
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"
#include "topology/cluster.hpp"

namespace risa::core {

class ShardedPoolWalk {
 public:
  /// `start` must be a valid rack id (the round-robin cursor is kept in
  /// [0, racks) by the scheduler).  `demand` is borrowed for the walk's
  /// lifetime.
  ShardedPoolWalk(const topo::RackAvailabilityIndex& index,
                  const UnitVector& demand, std::uint32_t start) noexcept
      : index_(&index),
        demand_(&demand),
        shard_(start / topo::RackAvailabilityIndex::kShardRacks),
        words_left_(index.num_shards()),
        wrap_mask_((std::uint64_t{1} << (start & 63)) - 1) {
    word_ = index.pool_word(shard_, demand) & ~wrap_mask_;
  }

  /// Next eligible rack in cyclic ascending order from `start`, or
  /// RackId::invalid() once every eligible rack has been visited.
  [[nodiscard]] RackId next() noexcept {
    while (word_ == 0) {
      if (words_left_ == 0) return RackId::invalid();
      --words_left_;
      shard_ = shard_ + 1 == index_->num_shards() ? 0 : shard_ + 1;
      word_ = index_->pool_word(shard_, *demand_);
      if (words_left_ == 0) {
        // Back at the start shard: only the racks below `start` remain.
        word_ &= wrap_mask_;
      }
    }
    const auto bit = static_cast<std::uint32_t>(std::countr_zero(word_));
    word_ &= word_ - 1;
    return RackId{shard_ * topo::RackAvailabilityIndex::kShardRacks + bit};
  }

 private:
  const topo::RackAvailabilityIndex* index_;
  const UnitVector* demand_;
  std::uint32_t shard_;
  std::uint32_t words_left_;  ///< shard words still to fetch after word_
  std::uint64_t wrap_mask_;   ///< bits below `start` within its shard
  std::uint64_t word_ = 0;    ///< unconsumed bits of the current shard
};

}  // namespace risa::core
