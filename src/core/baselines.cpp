#include "core/baselines.hpp"

#include <vector>

#include "common/binio.hpp"

namespace risa::core {

namespace {

/// Boxes of `type` able to host `units`, in id order.
[[nodiscard]] std::vector<BoxId> feasible_boxes(const topo::Cluster& cluster,
                                                ResourceType type,
                                                Units units) {
  std::vector<BoxId> out;
  for (BoxId id : cluster.boxes_of_type(type)) {
    if (cluster.box(id).available_units() >= units) out.push_back(id);
  }
  return out;
}

}  // namespace

Result<Placement, DropReason> RandomAllocator::try_place(
    const wl::VmRequest& vm) {
  const UnitVector units = demand_units(vm);
  PerResource<BoxId> boxes{BoxId::invalid(), BoxId::invalid(), BoxId::invalid()};
  for (ResourceType t : kAllResources) {
    const auto feasible = feasible_boxes(*ctx().cluster, t, units[t]);
    if (feasible.empty()) {
      return Err{DropReason::NoComputeResources};
    }
    boxes[t] = feasible[static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(feasible.size()) - 1))];
  }
  return commit(vm, units, boxes, net::LinkSelectPolicy::FirstFit,
                /*used_fallback=*/false);
}

void RandomAllocator::save_state(std::ostream& os) const {
  for (std::uint64_t word : rng_.generator().state()) bin::put_u64(os, word);
}

void RandomAllocator::restore_state(std::istream& is) {
  Xoshiro256::State s;
  for (auto& word : s) word = bin::get_u64(is);
  rng_.generator().set_state(s);
}

Result<Placement, DropReason> FirstFitAllocator::try_place(
    const wl::VmRequest& vm) {
  const UnitVector units = demand_units(vm);
  PerResource<BoxId> boxes{BoxId::invalid(), BoxId::invalid(), BoxId::invalid()};
  for (ResourceType t : kAllResources) {
    BoxId found = BoxId::invalid();
    for (BoxId id : ctx().cluster->boxes_of_type(t)) {
      if (ctx().cluster->box(id).available_units() >= units[t]) {
        found = id;
        break;
      }
    }
    if (!found.valid()) {
      return Err{DropReason::NoComputeResources};
    }
    boxes[t] = found;
  }
  return commit(vm, units, boxes, net::LinkSelectPolicy::FirstFit,
                /*used_fallback=*/false);
}

Result<Placement, DropReason> WorstFitAllocator::try_place(
    const wl::VmRequest& vm) {
  const UnitVector units = demand_units(vm);
  PerResource<BoxId> boxes{BoxId::invalid(), BoxId::invalid(), BoxId::invalid()};
  for (ResourceType t : kAllResources) {
    BoxId best = BoxId::invalid();
    Units best_avail = -1;
    for (BoxId id : ctx().cluster->boxes_of_type(t)) {
      const Units avail = ctx().cluster->box(id).available_units();
      if (avail >= units[t] && avail > best_avail) {
        best = id;
        best_avail = avail;
      }
    }
    if (!best.valid()) {
      return Err{DropReason::NoComputeResources};
    }
    boxes[t] = best;
  }
  return commit(vm, units, boxes, net::LinkSelectPolicy::FirstFit,
                /*used_fallback=*/false);
}

}  // namespace risa::core
