#include "core/risa.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/binio.hpp"
#include "core/nulb.hpp"
#include "core/shard_walk.hpp"

namespace risa::core {

RisaAllocator::RisaAllocator(AllocContext ctx, RisaOptions options)
    : Allocator(ctx), options_(std::move(options)) {
  if (options_.display_name.empty()) {
    switch (options_.packing) {
      case RackPacking::NextFit: name_ = "RISA"; break;
      case RackPacking::BestFit: name_ = "RISA-BF"; break;
      case RackPacking::FirstFit: name_ = "RISA-FF"; break;
    }
  } else {
    name_ = options_.display_name;
  }
  cursors_.assign(this->ctx().cluster->num_racks(),
                  PerResource<std::uint32_t>{0, 0, 0});
}

void RisaAllocator::reset() {
  rr_next_rack_ = 0;
  fallbacks_ = 0;
  std::fill(cursors_.begin(), cursors_.end(),
            PerResource<std::uint32_t>{0, 0, 0});
}

void RisaAllocator::save_state(std::ostream& os) const {
  bin::put_u32(os, rr_next_rack_);
  bin::put_u64(os, fallbacks_);
  bin::put_u64(os, cursors_.size());
  for (const auto& c : cursors_) {
    for (ResourceType t : kAllResources) bin::put_u32(os, c[t]);
  }
}

void RisaAllocator::restore_state(std::istream& is) {
  rr_next_rack_ = bin::get_u32(is);
  fallbacks_ = bin::get_u64(is);
  if (bin::get_u64(is) != cursors_.size()) {
    throw std::runtime_error("RisaAllocator: checkpoint rack count mismatch");
  }
  for (auto& c : cursors_) {
    for (ResourceType t : kAllResources) c[t] = bin::get_u32(is);
  }
}

std::vector<RackId> RisaAllocator::intra_rack_pool(const UnitVector& units) const {
  RackSet mask;
  ctx().cluster->eligible_racks(units, mask);
  std::vector<RackId> pool;
  pool.reserve(mask.count());
  mask.for_each([&](RackId r) { pool.push_back(r); });
  return pool;
}

PerResource<std::vector<RackId>> RisaAllocator::super_rack(
    const UnitVector& units) const {
  PerResource<std::vector<RackId>> lists;
  RackSet mask;
  for (ResourceType t : kAllResources) {
    ctx().cluster->eligible_racks(t, units[t], mask);
    lists[t].reserve(mask.count());
    mask.for_each([&](RackId r) { lists[t].push_back(r); });
  }
  return lists;
}

BoxId RisaAllocator::pick_box_in_rack(RackId rack, ResourceType type,
                                      Units units) {
  const topo::Cluster& cluster = *ctx().cluster;
  const auto& boxes = cluster.rack_unchecked(rack).boxes(type);
  const auto count = static_cast<std::uint32_t>(boxes.size());
  if (count == 0) return BoxId::invalid();

  switch (options_.packing) {
    case RackPacking::NextFit: {
      // First-fit with a roving pointer: scan from the cursor, wrapping;
      // the cursor stays on the chosen box (Table 4 semantics).
      auto& cursor = cursors_[rack.value()][type];
      const std::uint32_t start = cursor % count;
      for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint32_t idx = (start + k) % count;
        if (cluster.box_unchecked(boxes[idx]).available_units() >= units) {
          cursor = idx;
          return boxes[idx];
        }
      }
      return BoxId::invalid();
    }
    case RackPacking::BestFit: {
      BoxId best = BoxId::invalid();
      Units best_avail = 0;
      for (BoxId id : boxes) {
        const Units avail = cluster.box_unchecked(id).available_units();
        if (avail < units) continue;
        if (!best.valid() || avail < best_avail) {
          best = id;
          best_avail = avail;
        }
      }
      return best;
    }
    case RackPacking::FirstFit: {
      for (BoxId id : boxes) {
        if (cluster.box_unchecked(id).available_units() >= units) return id;
      }
      return BoxId::invalid();
    }
  }
  return BoxId::invalid();
}

Result<Placement, DropReason> RisaAllocator::try_place(const wl::VmRequest& vm) {
  const UnitVector units = demand_units(vm);
  const topo::RackAvailabilityIndex& index = ctx().cluster->rack_index();

  // O(1) reject off the cluster-wide maxima: a component no box anywhere
  // can host means the matching SUPER_RACK list below would come up empty,
  // and the intra-rack pool (a subset of every SUPER_RACK list) with it --
  // the same NoComputeResources drop without walking a single shard.  On a
  // saturated cluster this is the common case.
  for (ResourceType t : kAllResources) {
    if (index.cluster_max(t) < units[t]) {
      return Err{DropReason::NoComputeResources};
    }
  }

  const net::BandwidthDemand demand = ctx().bandwidth.demand(units);
  // An intra-rack placement consumes each flow on two box uplinks of the
  // rack (source box -> rack switch -> destination box).
  const MbitsPerSec intra_bw_needed = 2 * demand.cpu_ram + 2 * demand.ram_sto;

  // INTRA_RACK_POOL, sharded: the walk materializes one 64-rack eligibility
  // word of the index at a time, in the exact cyclic ascending order the
  // eager pool bitmask was walked in -- racks the round-robin rotation
  // never reaches are never even queried.  The cursor then moves past the
  // chosen rack.
  {
    ShardedPoolWalk walk(index, units,
                         options_.selection == RackSelection::RoundRobin
                             ? rr_next_rack_
                             : 0);
    for (RackId rack = walk.next(); rack.valid(); rack = walk.next()) {
      if (ctx().fabric->rack_intra_available(rack) < intra_bw_needed) continue;
      PerResource<BoxId> boxes{BoxId::invalid(), BoxId::invalid(),
                               BoxId::invalid()};
      bool found = true;
      for (ResourceType t : kAllResources) {
        boxes[t] = pick_box_in_rack(rack, t, units[t]);
        if (!boxes[t].valid()) {
          found = false;
          break;
        }
      }
      if (found) {
        auto placed = commit(vm, units, boxes, net::LinkSelectPolicy::FirstFit,
                             /*used_fallback=*/false);
        if (placed.ok()) {
          if (options_.selection == RackSelection::RoundRobin) {
            rr_next_rack_ = (rack.value() + 1) % ctx().cluster->num_racks();
          }
          return placed;
        }
        // Per-link granularity can reject a rack that passed the aggregate
        // check; commit() rolled back, so the next pool rack can be tried.
      }
    }
  }

  // SUPER_RACK fallback: NULB restricted to racks that can host each
  // resource individually (inter-rack assignment is now unavoidable).
  // The cluster_max gate above already proved every list non-empty.
  PerResource<RackSet> lists;
  for (ResourceType t : kAllResources) {
    ctx().cluster->eligible_racks(t, units[t], lists[t]);
  }
  auto boxes = nulb_find_boxes(*ctx().cluster, *ctx().fabric, units,
                               NeighborOrder::BoxIdOrder,
                               CompanionSearch::GlobalOrder,
                               RackFilter{std::move(lists)}, scratch());
  if (!boxes.ok()) {
    return Err{boxes.error()};
  }
  auto placed = commit(vm, units, boxes.value(),
                       net::LinkSelectPolicy::FirstFit, /*used_fallback=*/true);
  if (placed.ok()) ++fallbacks_;
  return placed;
}

std::unique_ptr<RisaAllocator> make_risa(AllocContext ctx) {
  return std::make_unique<RisaAllocator>(ctx, RisaOptions{});
}

std::unique_ptr<RisaAllocator> make_risa_bf(AllocContext ctx) {
  RisaOptions options;
  options.packing = RackPacking::BestFit;
  return std::make_unique<RisaAllocator>(ctx, std::move(options));
}

}  // namespace risa::core
