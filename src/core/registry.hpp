// Allocator factory: builds any of the paper's four algorithms by name.
// The canonical names ("NULB", "NALB", "RISA", "RISA-BF") match the paper's
// figures; lookup is case-insensitive.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/search.hpp"

namespace risa::core {

/// Cross-algorithm construction options.
struct AllocatorOptions {
  /// Companion-search interpretation for NULB/NALB (and RISA's fallback);
  /// see CompanionSearch.  GlobalOrder reproduces the paper's results.
  CompanionSearch companion = CompanionSearch::GlobalOrder;
};

/// All algorithm names in the paper's presentation order.
[[nodiscard]] std::vector<std::string> algorithm_names();

/// Construct by name; throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Allocator> make_allocator(
    const std::string& name, AllocContext ctx, AllocatorOptions options = {});

}  // namespace risa::core
