// Placement record: everything needed to account for and later release one
// scheduled VM (compute slices in three boxes + two network circuits).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"
#include "network/bandwidth.hpp"
#include "topology/box.hpp"

namespace risa::core {

/// Why a VM was dropped (the paper's scheduling failure modes: compute
/// allocation failure or network allocation failure, §4.1).
enum class DropReason : std::uint8_t {
  NoComputeResources = 0,
  NoNetworkResources = 1,
};

/// Number of DropReason values (dense, so they can index tally arrays).
inline constexpr std::size_t kNumDropReasons = 2;

[[nodiscard]] constexpr std::string_view name(DropReason r) noexcept {
  switch (r) {
    case DropReason::NoComputeResources: return "no-compute";
    case DropReason::NoNetworkResources: return "no-network";
  }
  return "?";
}

struct Placement {
  VmId vm;
  UnitVector units;                       ///< demand in allocation units
  std::array<topo::BoxAllocation, kNumResourceTypes> compute;  ///< by type
  std::array<RackId, kNumResourceTypes> racks;                 ///< by type
  net::BandwidthDemand demand;            ///< circuit bandwidths
  bool inter_rack = false;   ///< any resource pair spans racks
  bool used_fallback = false;///< RISA/RISA-BF: placed via SUPER_RACK + NULB

  [[nodiscard]] BoxId box(ResourceType t) const noexcept {
    return compute[index(t)].box;
  }
  [[nodiscard]] RackId rack(ResourceType t) const noexcept {
    return racks[index(t)];
  }
};

}  // namespace risa::core
