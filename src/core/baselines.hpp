// Extension baselines beyond the paper's NULB/NALB comparison set.
//
// These are the classic placement disciplines the DDC-scheduling literature
// compares against (cf. Papaioannou et al. [16], Call et al. [4]); they
// share the two-phase commit of the Allocator base, differing only in box
// choice:
//   * RandomAllocator   -- uniformly random feasible box per type (the
//                          load-balancing strawman; seeded, deterministic);
//   * FirstFitAllocator -- global first-fit per type, no contention anchor
//                          (what NULB degenerates to without CR ordering);
//   * WorstFitAllocator -- emptiest box per type (spreads load, maximizes
//                          per-box headroom -- the anti-RISA).
// They participate in the registry ("RANDOM", "FF", "WF") and in the
// extension bench, quantifying how much of RISA's win comes from rack
// affinity rather than mere load balancing.
#pragma once

#include "common/rng.hpp"
#include "core/allocator.hpp"

namespace risa::core {

class RandomAllocator : public Allocator {
 public:
  explicit RandomAllocator(AllocContext ctx, std::uint64_t seed = 0x5eed)
      : Allocator(ctx), seed_(seed), rng_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "RANDOM";
  }

  [[nodiscard]] Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) override;

  void reset() override { rng_ = Rng(seed_); }

  void save_state(std::ostream& os) const override;
  void restore_state(std::istream& is) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
};

class FirstFitAllocator : public Allocator {
 public:
  explicit FirstFitAllocator(AllocContext ctx) : Allocator(ctx) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "FF"; }

  [[nodiscard]] Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) override;
};

class WorstFitAllocator : public Allocator {
 public:
  explicit WorstFitAllocator(AllocContext ctx) : Allocator(ctx) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "WF"; }

  [[nodiscard]] Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) override;
};

}  // namespace risa::core
