// NULB: the Network-Unaware Locality-Based baseline of Zervas et al. [20]
// (Algorithm 2).
//
// Compute phase: compute per-type contention ratios (CR); first-fit the most
// contended type in box-id order; BFS the remaining types (same rack first,
// then other racks).  Network phase: first available link per hop.
//
// The box-finding core is exposed standalone because RISA resorts to NULB
// restricted to the SUPER_RACK when its intra-rack pool cannot host a VM
// (Algorithm 1).
#pragma once

#include "core/allocator.hpp"
#include "core/search.hpp"

namespace risa::core {

/// NULB's compute-phase search: CR -> anchor first-fit -> BFS for the rest.
/// `order` selects NULB (BoxIdOrder) or NALB (BandwidthDescending) neighbor
/// ordering; `companion` selects the search-interpretation (see
/// CompanionSearch); `filter` optionally restricts racks per type
/// (SUPER_RACK).
[[nodiscard]] Result<PerResource<BoxId>, DropReason> nulb_find_boxes(
    const topo::Cluster& cluster, const net::Fabric& fabric,
    const UnitVector& units, NeighborOrder order, CompanionSearch companion,
    const RackFilter& filter, SearchScratch& scratch);

/// Convenience overload with a transient scratch (tests / one-off calls).
[[nodiscard]] Result<PerResource<BoxId>, DropReason> nulb_find_boxes(
    const topo::Cluster& cluster, const net::Fabric& fabric,
    const UnitVector& units, NeighborOrder order, CompanionSearch companion,
    const RackFilter& filter);

class NulbAllocator : public Allocator {
 public:
  explicit NulbAllocator(AllocContext ctx,
                         CompanionSearch companion = CompanionSearch::GlobalOrder)
      : Allocator(ctx), companion_(companion) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "NULB"; }

  [[nodiscard]] Result<Placement, DropReason> try_place(
      const wl::VmRequest& vm) override;

 private:
  CompanionSearch companion_;
};

}  // namespace risa::core
