// Contention ratio (CR): "the amount of a resource required by a VM over
// the total amount of that available resource" (§4.1).  NULB/NALB start
// their compute phase at the resource with the highest CR; RISA's fallback
// computes CR over the SUPER_RACK-restricted availability.
#pragma once

#include <limits>
#include <span>

#include "common/rack_set.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "topology/cluster.hpp"

namespace risa::core {

/// Per-type contention ratios.  A type with zero availability but non-zero
/// demand gets +infinity (it is maximally contended); zero demand gives 0.
[[nodiscard]] inline PerResource<double> contention_ratios(
    const UnitVector& demand, const PerResource<Units>& available) {
  PerResource<double> cr{0.0, 0.0, 0.0};
  for (ResourceType t : kAllResources) {
    if (demand[t] <= 0) {
      cr[t] = 0.0;
    } else if (available[t] <= 0) {
      cr[t] = std::numeric_limits<double>::infinity();
    } else {
      cr[t] = static_cast<double>(demand[t]) / static_cast<double>(available[t]);
    }
  }
  return cr;
}

/// Cluster-wide availability (NULB/NALB standalone scope).
[[nodiscard]] inline PerResource<Units> cluster_availability(
    const topo::Cluster& cluster) {
  PerResource<Units> avail{0, 0, 0};
  for (ResourceType t : kAllResources) {
    avail[t] = cluster.total_available(t);
  }
  return avail;
}

/// Availability restricted to a per-type rack set (the SUPER_RACK scope of
/// RISA's fallback).  `racks[t]` lists the racks eligible for type t.
[[nodiscard]] inline PerResource<Units> restricted_availability(
    const topo::Cluster& cluster,
    const PerResource<std::vector<RackId>>& racks) {
  PerResource<Units> avail{0, 0, 0};
  for (ResourceType t : kAllResources) {
    for (RackId r : racks[t]) {
      avail[t] += cluster.rack(r).total_available(t);
    }
  }
  return avail;
}

/// Same, over per-type rack bitmasks (the hot-path SUPER_RACK encoding).
[[nodiscard]] inline PerResource<Units> restricted_availability(
    const topo::Cluster& cluster, const PerResource<RackSet>& racks) {
  PerResource<Units> avail{0, 0, 0};
  for (ResourceType t : kAllResources) {
    racks[t].for_each([&](RackId r) {
      avail[t] += cluster.rack(r).total_available(t);
    });
  }
  return avail;
}

/// argmax over CRs with a deterministic tie-break (canonical CPU, RAM,
/// storage order -- first maximum wins).
[[nodiscard]] inline ResourceType most_contended(const PerResource<double>& cr) {
  ResourceType best = ResourceType::Cpu;
  for (ResourceType t : kAllResources) {
    if (cr[t] > cr[best]) best = t;
  }
  return best;
}

}  // namespace risa::core
