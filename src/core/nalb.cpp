#include "core/nalb.hpp"

#include "core/nulb.hpp"

namespace risa::core {

Result<Placement, DropReason> NalbAllocator::try_place(const wl::VmRequest& vm) {
  const UnitVector units = demand_units(vm);
  auto boxes = nulb_find_boxes(*ctx().cluster, *ctx().fabric, units,
                               NeighborOrder::BandwidthDescending, companion_,
                               std::nullopt, scratch());
  if (!boxes.ok()) {
    return Err{boxes.error()};
  }
  return commit(vm, units, boxes.value(), net::LinkSelectPolicy::MostAvailable,
                /*used_fallback=*/false);
}

}  // namespace risa::core
