#include "core/nulb.hpp"

#include "core/contention.hpp"

namespace risa::core {

Result<PerResource<BoxId>, DropReason> nulb_find_boxes(
    const topo::Cluster& cluster, const net::Fabric& fabric,
    const UnitVector& units, NeighborOrder order, CompanionSearch companion,
    const RackFilter& filter, SearchScratch& scratch) {
  // CR over the search scope's availability.
  const PerResource<Units> avail =
      filter.restricted() ? restricted_availability(cluster, filter.masks())
                          : cluster_availability(cluster);
  const ResourceType res_max = most_contended(contention_ratios(units, avail));

  // Anchor: first box able to host the most contended demand.
  const BoxId anchor = first_fit_box(cluster, res_max, units[res_max], filter);
  if (!anchor.valid()) {
    return Err{DropReason::NoComputeResources};
  }
  const RackId anchor_rack = cluster.box_unchecked(anchor).rack();

  PerResource<BoxId> boxes{BoxId::invalid(), BoxId::invalid(), BoxId::invalid()};
  boxes[res_max] = anchor;
  for (ResourceType t : kAllResources) {
    if (t == res_max) continue;
    const BoxId found = bfs_search(cluster, fabric, anchor_rack, t, units[t],
                                   order, companion, filter, scratch);
    if (!found.valid()) {
      return Err{DropReason::NoComputeResources};
    }
    boxes[t] = found;
  }
  return boxes;
}

Result<PerResource<BoxId>, DropReason> nulb_find_boxes(
    const topo::Cluster& cluster, const net::Fabric& fabric,
    const UnitVector& units, NeighborOrder order, CompanionSearch companion,
    const RackFilter& filter) {
  SearchScratch scratch;
  return nulb_find_boxes(cluster, fabric, units, order, companion, filter,
                         scratch);
}

Result<Placement, DropReason> NulbAllocator::try_place(const wl::VmRequest& vm) {
  const UnitVector units = demand_units(vm);
  auto boxes = nulb_find_boxes(*ctx().cluster, *ctx().fabric, units,
                               NeighborOrder::BoxIdOrder, companion_,
                               std::nullopt, scratch());
  if (!boxes.ok()) {
    return Err{boxes.error()};
  }
  return commit(vm, units, boxes.value(), net::LinkSelectPolicy::FirstFit,
                /*used_fallback=*/false);
}

}  // namespace risa::core
