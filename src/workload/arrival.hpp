// The paper's arrival/lifetime process (§5.1):
//
//   * arrivals follow a Poisson process with mean inter-arrival 10 tu;
//   * "the VM life cycle begins at 6300 time units, with an increment of
//     360 time units for each set of 100 requests":
//     lifetime(i) = 6300 + 360 * floor(i / 100).
//
// The same process is applied to the Azure-like subsets (the paper does not
// specify a separate one; documented in DESIGN.md §2.2).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace risa::wl {

struct ArrivalModel {
  double mean_interarrival_tu = 10.0;
  double base_lifetime_tu = 6300.0;
  double lifetime_increment_tu = 360.0;
  std::size_t increment_every = 100;

  void validate() const {
    if (mean_interarrival_tu <= 0) {
      throw std::invalid_argument("ArrivalModel: non-positive interarrival");
    }
    if (base_lifetime_tu <= 0 || lifetime_increment_tu < 0) {
      throw std::invalid_argument("ArrivalModel: bad lifetime parameters");
    }
    if (increment_every == 0) {
      throw std::invalid_argument("ArrivalModel: increment_every == 0");
    }
  }

  /// Deterministic lifetime of the i-th request (0-based).
  [[nodiscard]] SimTime lifetime(std::size_t index) const {
    return base_lifetime_tu +
           lifetime_increment_tu *
               static_cast<double>(index / increment_every);
  }
};

/// Stamp arrivals (cumulative exponential gaps) and lifetimes onto an
/// ordered list of size `n`; returns the arrival times.
template <typename StampFn>
void stamp_arrivals(const ArrivalModel& model, std::size_t n, Rng& rng,
                    StampFn&& stamp) {
  model.validate();
  SimTime t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(model.mean_interarrival_tu);
    stamp(i, t, model.lifetime(i));
  }
}

}  // namespace risa::wl
