#include "workload/characterize.hpp"

#include <algorithm>
#include <stdexcept>

namespace risa::wl {

Characterization characterize(const Workload& vms, std::size_t bins) {
  if (vms.empty()) throw std::invalid_argument("characterize: empty workload");
  std::vector<double> cores;
  std::vector<double> ram;
  cores.reserve(vms.size());
  ram.reserve(vms.size());
  for (const VmRequest& vm : vms) {
    cores.push_back(static_cast<double>(vm.cores));
    ram.push_back(to_gb(vm.ram_mb));
  }
  return Characterization{Histogram::from_data(cores, bins),
                          Histogram::from_data(ram, bins)};
}

WorkloadSummary summarize(const Workload& vms) {
  if (vms.empty()) throw std::invalid_argument("summarize: empty workload");
  WorkloadSummary s;
  s.count = vms.size();
  double min_life = vms.front().lifetime;
  double max_life = vms.front().lifetime;
  double first = vms.front().arrival;
  double last = vms.front().arrival;
  for (const VmRequest& vm : vms) {
    s.mean_cores += static_cast<double>(vm.cores);
    s.mean_ram_gb += to_gb(vm.ram_mb);
    s.mean_storage_gb += to_gb(vm.storage_mb);
    min_life = std::min(min_life, vm.lifetime);
    max_life = std::max(max_life, vm.lifetime);
    first = std::min(first, vm.arrival);
    last = std::max(last, vm.arrival);
  }
  const auto n = static_cast<double>(vms.size());
  s.mean_cores /= n;
  s.mean_ram_gb /= n;
  s.mean_storage_gb /= n;
  s.first_arrival = first;
  s.last_arrival = last;
  s.min_lifetime = min_life;
  s.max_lifetime = max_life;
  return s;
}

}  // namespace risa::wl
