// The paper's synthetic random workload (§5.1):
//   * 2500 VMs;
//   * CPU ~ uniform{1..32} cores, RAM ~ uniform{1..32} GB, storage 128 GB;
//   * Poisson arrivals (mean gap 10 tu), lifetime 6300 + 360 * floor(i/100).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/vm.hpp"

namespace risa::wl {

struct SyntheticConfig {
  std::size_t count = 2500;
  std::int64_t min_cores = 1;
  std::int64_t max_cores = 32;
  double min_ram_gb = 1.0;
  double max_ram_gb = 32.0;
  double storage_gb = 128.0;
  ArrivalModel arrivals{};

  void validate() const {
    if (count == 0) throw std::invalid_argument("SyntheticConfig: zero VMs");
    if (min_cores < 1 || max_cores < min_cores) {
      throw std::invalid_argument("SyntheticConfig: bad core range");
    }
    if (min_ram_gb <= 0 || max_ram_gb < min_ram_gb) {
      throw std::invalid_argument("SyntheticConfig: bad RAM range");
    }
    if (storage_gb <= 0) {
      throw std::invalid_argument("SyntheticConfig: bad storage size");
    }
    arrivals.validate();
  }
};

/// Generate the workload deterministically from `seed`.
[[nodiscard]] Workload generate_synthetic(const SyntheticConfig& config,
                                          std::uint64_t seed);

}  // namespace risa::wl
