// Pull-based arrival streams: the engine's workload front end.
//
// The engine historically materialized the whole workload as a
// std::vector<VmRequest> plus a sorted index before the first event fired,
// making memory -- not the placement core -- the scaling wall past a few
// million VMs.  ArrivalSource inverts that: the engine pulls small batches
// of arrival-ordered requests on demand (DESIGN.md §11), so a 10M+-VM run
// holds only the live census plus one refill chunk.
//
// Contract (enforced by the engine): across the whole stream, `vm.arrival`
// is nondecreasing, and within equal arrival times `index` is strictly
// increasing.  `index` is the request's position in the ORIGINAL workload
// (generation order, not arrival order) -- the engine's deterministic
// victim scans and the historical "arrival seq = workload index" numbering
// both key off it, which is what keeps streaming runs bit-identical to the
// materialized path even for unsorted input workloads.
//
// Backends:
//   * WorkloadSource        -- adapter over an in-memory Workload
//                              (sorts by (arrival, index); the bit-identical
//                              fast path for everything that already has a
//                              vector);
//   * SyntheticStreamSource -- the §5.1 generator emitting on demand from
//                              the seeded RNG, O(1) memory in the count;
//   * AzureStreamSource     -- the Figure 6 marginal generator; attribute
//                              tables are precomputed (the marginals cap N
//                              at 7500) but arrivals stream;
//   * TraceStreamSource     -- chunked CSV trace reader (line-numbered
//                              errors, never materializes the file);
//   * MergeSource           -- k-way (time, child-order) merge of several
//                              tenant streams into one renumbered stream.
//
// Every source supports save_position/restore_position so an engine
// checkpoint can freeze mid-stream and resume bit-identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/azure.hpp"
#include "workload/synthetic.hpp"
#include "workload/vm.hpp"

namespace risa::wl {

/// One arrival as the engine consumes it: the request plus its original
/// workload index (the determinism anchor; see file comment).
struct ArrivalItem {
  VmRequest vm;
  std::uint32_t index = 0;
};

class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Fill `out` with the next arrivals in (arrival, index) order; returns
  /// the number written (0 = exhausted).  A short return before exhaustion
  /// is allowed; the engine keeps pulling until it sees 0.
  virtual std::size_t next_batch(std::span<ArrivalItem> out) = 0;

  /// Restart the stream from the beginning (engine-reuse path).
  virtual void rewind() = 0;

  /// Total request count when known up front, 0 when unknown (e.g. a
  /// trace file).  Only used to seed injected-event sequence numbering,
  /// where a uniform base shift is behaviorally unobservable (DESIGN.md
  /// §11), so "unknown" is always safe.
  [[nodiscard]] virtual std::uint64_t size_hint() const noexcept { return 0; }

  /// Serialize/restore the stream position for engine checkpoints.  A
  /// restored source continues the identical item sequence.  Sources that
  /// cannot (a non-seekable stream) throw std::runtime_error.
  virtual void save_position(std::ostream& os) const = 0;
  virtual void restore_position(std::istream& is) = 0;
};

/// Adapter over a materialized workload (non-owning; the vector must
/// outlive the source).  Sorts an index by (arrival, original index) --
/// exactly the engine's historical arrival cursor -- and streams it.
class WorkloadSource final : public ArrivalSource {
 public:
  explicit WorkloadSource(const Workload& workload);

  std::size_t next_batch(std::span<ArrivalItem> out) override;
  void rewind() override { cursor_ = 0; }
  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return workload_->size();
  }
  void save_position(std::ostream& os) const override;
  void restore_position(std::istream& is) override;

 private:
  const Workload* workload_;
  std::vector<std::uint32_t> order_;  // arrival-sorted original indices
  std::size_t cursor_ = 0;
};

/// Streams the §5.1 synthetic workload without materializing it.
///
/// generate_synthetic draws every VM's attributes (2 uniform_int per VM)
/// BEFORE stamping arrivals from the same generator, so the arrival draws
/// sit 2N calls deep in the RNG stream.  Lemire's uniform_int consumes a
/// variable number of raw draws (rejection), so that offset cannot be
/// computed arithmetically: construction replays the 2N attribute calls
/// once into a second generator (O(N) time, O(1) memory), after which both
/// attribute and arrival streams advance lazily per batch, bit-identical
/// to the materialized doubles.
class SyntheticStreamSource final : public ArrivalSource {
 public:
  SyntheticStreamSource(SyntheticConfig config, std::uint64_t seed);

  std::size_t next_batch(std::span<ArrivalItem> out) override;
  void rewind() override;
  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return config_.count;
  }
  void save_position(std::ostream& os) const override;
  void restore_position(std::istream& is) override;

 private:
  SyntheticConfig config_;
  std::uint64_t seed_;
  Rng attr_rng_;   // attribute stream, 2 draws consumed per VM emitted
  Rng arr_rng_;    // arrival stream, pre-advanced past all attribute draws
  SimTime t_ = 0.0;
  std::size_t index_ = 0;
};

/// Streams an Azure-like subset.  The rank-coupled attribute permutation
/// needs the full shuffle (O(N) precompute, but the Figure 6 marginals cap
/// N at 7500 so the table is a few hundred KB); arrivals stream from the
/// post-shuffle generator state exactly as generate_azure continues it.
class AzureStreamSource final : public ArrivalSource {
 public:
  AzureStreamSource(AzureSpec spec, std::uint64_t seed);

  std::size_t next_batch(std::span<ArrivalItem> out) override;
  void rewind() override;
  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return cores_.size();
  }
  void save_position(std::ostream& os) const override;
  void restore_position(std::istream& is) override;

 private:
  AzureSpec spec_;
  std::uint64_t seed_;
  std::vector<std::int64_t> cores_;    // post-shuffle, per emission index
  std::vector<Megabytes> ram_mb_;      // post-shuffle, per emission index
  Xoshiro256::State post_shuffle_;     // rng state after the order shuffle
  Rng rng_;                            // arrival stream
  SimTime t_ = 0.0;
  std::size_t index_ = 0;
};

/// Chunked CSV trace reader: parses rows on demand, never holding the
/// file.  Requires the trace sorted by arrival (a streaming source cannot
/// sort) and reports malformed or out-of-order rows with their 1-based
/// file line number.  Positions are saved as byte offsets, so checkpoints
/// only work on seekable files (the load_trace path).
class TraceStreamSource final : public ArrivalSource {
 public:
  explicit TraceStreamSource(const std::string& path);
  ~TraceStreamSource() override;

  std::size_t next_batch(std::span<ArrivalItem> out) override;
  void rewind() override;
  void save_position(std::ostream& os) const override;
  void restore_position(std::istream& is) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// K-way merge of several tenant streams into one (time, child-order)
/// ordered stream.  Children must individually satisfy the ArrivalSource
/// ordering contract; ties between children break by child position in the
/// constructor list.  Emitted items are renumbered: the merged stream
/// assigns fresh consecutive indices (and VmIds) in merge order, since the
/// children's original indices collide (DESIGN.md §11).
class MergeSource final : public ArrivalSource {
 public:
  explicit MergeSource(std::vector<std::unique_ptr<ArrivalSource>> children);

  std::size_t next_batch(std::span<ArrivalItem> out) override;
  void rewind() override;
  [[nodiscard]] std::uint64_t size_hint() const noexcept override;
  void save_position(std::ostream& os) const override;
  void restore_position(std::istream& is) override;

 private:
  struct Child {
    std::unique_ptr<ArrivalSource> source;
    ArrivalItem pending{};
    bool has_pending = false;
    bool exhausted = false;
  };
  void prime(Child& c);

  std::vector<Child> children_;
  std::uint32_t next_index_ = 0;
  bool primed_ = false;
};

}  // namespace risa::wl
