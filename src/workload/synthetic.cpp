#include "workload/synthetic.hpp"

namespace risa::wl {

Workload generate_synthetic(const SyntheticConfig& config, std::uint64_t seed) {
  config.validate();
  Rng rng(seed);

  Workload vms(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    VmRequest& vm = vms[i];
    vm.id = VmId{static_cast<std::uint32_t>(i)};
    vm.cores = rng.uniform_int(config.min_cores, config.max_cores);
    // "a random amount of RAM from 1 to 32 GB": integer GB, uniform.
    vm.ram_mb = gb(static_cast<double>(rng.uniform_int(
        static_cast<std::int64_t>(config.min_ram_gb),
        static_cast<std::int64_t>(config.max_ram_gb))));
    vm.storage_mb = gb(config.storage_gb);
  }
  stamp_arrivals(config.arrivals, config.count, rng,
                 [&](std::size_t i, SimTime arrival, SimTime lifetime) {
                   vms[i].arrival = arrival;
                   vms[i].lifetime = lifetime;
                 });
  return vms;
}

}  // namespace risa::wl
