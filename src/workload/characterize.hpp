// Workload characterization reproducing Figure 6: 10-bin histograms of the
// CPU-core and RAM-GB distributions of each workload, with matplotlib
// binning semantics (equal-width bins over [min, max], last bin closed).
#pragma once

#include <string>

#include "common/histogram.hpp"
#include "workload/vm.hpp"

namespace risa::wl {

struct Characterization {
  Histogram cpu;
  Histogram ram;
};

/// Build the Figure 6 histograms for a workload (`bins` defaults to the
/// paper's 10).
[[nodiscard]] Characterization characterize(const Workload& vms,
                                            std::size_t bins = 10);

/// Summary statistics of a workload used in reports.
struct WorkloadSummary {
  std::size_t count = 0;
  double mean_cores = 0.0;
  double mean_ram_gb = 0.0;
  double mean_storage_gb = 0.0;
  double first_arrival = 0.0;
  double last_arrival = 0.0;
  double min_lifetime = 0.0;
  double max_lifetime = 0.0;
};

[[nodiscard]] WorkloadSummary summarize(const Workload& vms);

}  // namespace risa::wl
