// VM request model.
//
// A VM asks for cores, RAM and storage; per the paper's problem definition
// each requirement is always smaller than one box's capacity (§2), storage
// is fixed at 128 GB for both workload families (§5.1-5.2), and requests
// arrive dynamically with a lifetime after which resources are released.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"

namespace risa::wl {

struct VmRequest {
  VmId id;
  std::int64_t cores = 0;     ///< CPU demand, cores
  Megabytes ram_mb = 0;       ///< RAM demand
  Megabytes storage_mb = 0;   ///< storage demand
  SimTime arrival = 0.0;      ///< arrival time, simulated time units
  SimTime lifetime = 0.0;     ///< residency duration, simulated time units

  /// Demand converted to allocation units (ceil per Table 1 granularity).
  [[nodiscard]] UnitVector units(const UnitScale& scale) const {
    return UnitVector{
        scale.to_units(ResourceType::Cpu, cores),
        scale.to_units(ResourceType::Ram, ram_mb),
        scale.to_units(ResourceType::Storage, storage_mb),
    };
  }

  [[nodiscard]] SimTime departure() const noexcept { return arrival + lifetime; }

  friend bool operator==(const VmRequest&, const VmRequest&) = default;
};

using Workload = std::vector<VmRequest>;

}  // namespace risa::wl
