// CSV trace round-trip: export generated workloads for external plotting,
// re-import recorded traces to drive the simulator.
//
// Format (header required):
//   vm_id,cores,ram_mb,storage_mb,arrival,lifetime
#pragma once

#include <iosfwd>
#include <string>

#include "workload/vm.hpp"

namespace risa::wl {

void write_trace(std::ostream& os, const Workload& vms);
[[nodiscard]] Workload read_trace(std::istream& is);

/// File-path conveniences; throw std::runtime_error on IO failure.
void save_trace(const std::string& path, const Workload& vms);
[[nodiscard]] Workload load_trace(const std::string& path);

}  // namespace risa::wl
