// CSV trace round-trip: export generated workloads for external plotting,
// re-import recorded traces to drive the simulator.
//
// Format (header required):
//   vm_id,cores,ram_mb,storage_mb,arrival,lifetime
//
// Reading is streaming: TraceReader parses one record per call with real
// 1-based file line numbers on every error, and read_trace/load_trace are
// thin accumulation wrappers over it.  A malformed row always throws --
// records are never silently truncated or skipped.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/vm.hpp"

namespace risa::wl {

/// Incremental trace parser.  Construction consumes and validates the
/// header line; each next() parses one record.  Malformed records throw
/// std::runtime_error naming the 1-based file line (blank lines are
/// tolerated and counted, matching what editors show).
class TraceReader {
 public:
  explicit TraceReader(std::istream& is);

  /// Parse the next record into `out`; returns false at end of file.
  [[nodiscard]] bool next(VmRequest& out);

  /// 1-based file line of the record last returned by next() (the header
  /// line right after construction).
  [[nodiscard]] std::size_t line_number() const noexcept { return line_; }

  /// Stream byte offset of the next unread line, for checkpointable
  /// sources (only meaningful on seekable streams).
  [[nodiscard]] std::streampos tell() const;
  /// Jump to a previously tell()ed offset, restoring the line counter.
  void seek(std::streampos pos, std::size_t line);

 private:
  /// Next non-empty line into cells_; false at EOF.
  [[nodiscard]] bool next_row();

  std::istream* is_;
  std::size_t line_ = 0;
  std::string linebuf_;
  std::vector<std::string> cells_;
};

void write_trace(std::ostream& os, const Workload& vms);
[[nodiscard]] Workload read_trace(std::istream& is);

/// File-path conveniences; throw std::runtime_error on IO failure.
void save_trace(const std::string& path, const Workload& vms);
[[nodiscard]] Workload load_trace(const std::string& path);

}  // namespace risa::wl
