#include "workload/arrival_source.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/binio.hpp"
#include "workload/trace_io.hpp"

namespace risa::wl {

// ---- WorkloadSource --------------------------------------------------------

WorkloadSource::WorkloadSource(const Workload& workload)
    : workload_(&workload) {
  const std::size_t n = workload.size();
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    order_[i] = static_cast<std::uint32_t>(i);
  }
  // Same cursor the engine historically built: identity when the workload
  // is already arrival-sorted (every generated workload), else sorted by
  // (arrival, original index) -- ties keep generation order.
  const bool sorted = std::is_sorted(
      workload.begin(), workload.end(),
      [](const VmRequest& a, const VmRequest& b) { return a.arrival < b.arrival; });
  if (!sorted) {
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (workload[a].arrival != workload[b].arrival) {
                  return workload[a].arrival < workload[b].arrival;
                }
                return a < b;
              });
  }
}

std::size_t WorkloadSource::next_batch(std::span<ArrivalItem> out) {
  const std::size_t n =
      std::min(out.size(), order_.size() - cursor_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t idx = order_[cursor_ + i];
    out[i].vm = (*workload_)[idx];
    out[i].index = idx;
  }
  cursor_ += n;
  return n;
}

void WorkloadSource::save_position(std::ostream& os) const {
  bin::put_u64(os, cursor_);
}

void WorkloadSource::restore_position(std::istream& is) {
  const std::uint64_t cursor = bin::get_u64(is);
  if (cursor > order_.size()) {
    throw std::runtime_error("WorkloadSource: position beyond workload");
  }
  cursor_ = static_cast<std::size_t>(cursor);
}

// ---- SyntheticStreamSource -------------------------------------------------

SyntheticStreamSource::SyntheticStreamSource(SyntheticConfig config,
                                             std::uint64_t seed)
    : config_(std::move(config)), seed_(seed), attr_rng_(seed), arr_rng_(seed) {
  config_.validate();
  rewind();
}

void SyntheticStreamSource::rewind() {
  attr_rng_ = Rng(seed_);
  arr_rng_ = Rng(seed_);
  // Advance the arrival generator past the 2N attribute draws
  // generate_synthetic performs first.  Lemire rejection consumes a
  // data-dependent number of raw words per draw, so the only way to land
  // on the identical stream position is to replay the calls.
  for (std::size_t i = 0; i < config_.count; ++i) {
    (void)arr_rng_.uniform_int(config_.min_cores, config_.max_cores);
    (void)arr_rng_.uniform_int(static_cast<std::int64_t>(config_.min_ram_gb),
                               static_cast<std::int64_t>(config_.max_ram_gb));
  }
  t_ = 0.0;
  index_ = 0;
}

std::size_t SyntheticStreamSource::next_batch(std::span<ArrivalItem> out) {
  const std::size_t n = std::min(out.size(), config_.count - index_);
  for (std::size_t i = 0; i < n; ++i) {
    VmRequest& vm = out[i].vm;
    vm.id = VmId{static_cast<std::uint32_t>(index_)};
    vm.cores = attr_rng_.uniform_int(config_.min_cores, config_.max_cores);
    vm.ram_mb = gb(static_cast<double>(attr_rng_.uniform_int(
        static_cast<std::int64_t>(config_.min_ram_gb),
        static_cast<std::int64_t>(config_.max_ram_gb))));
    vm.storage_mb = gb(config_.storage_gb);
    t_ += arr_rng_.exponential(config_.arrivals.mean_interarrival_tu);
    vm.arrival = t_;
    vm.lifetime = config_.arrivals.lifetime(index_);
    out[i].index = static_cast<std::uint32_t>(index_);
    ++index_;
  }
  return n;
}

void SyntheticStreamSource::save_position(std::ostream& os) const {
  bin::put_u64(os, index_);
  bin::put_f64(os, t_);
  for (std::uint64_t w : attr_rng_.generator().state()) bin::put_u64(os, w);
  for (std::uint64_t w : arr_rng_.generator().state()) bin::put_u64(os, w);
}

void SyntheticStreamSource::restore_position(std::istream& is) {
  index_ = static_cast<std::size_t>(bin::get_u64(is));
  if (index_ > config_.count) {
    throw std::runtime_error("SyntheticStreamSource: position beyond count");
  }
  t_ = bin::get_f64(is);
  Xoshiro256::State s;
  for (auto& w : s) w = bin::get_u64(is);
  attr_rng_.generator().set_state(s);
  for (auto& w : s) w = bin::get_u64(is);
  arr_rng_.generator().set_state(s);
}

// ---- AzureStreamSource -----------------------------------------------------

AzureStreamSource::AzureStreamSource(AzureSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  spec_.validate();
  const auto n = static_cast<std::size_t>(spec_.total_vms());

  // Same expansion + rank coupling as generate_azure.
  std::vector<std::int64_t> cores;
  cores.reserve(n);
  for (const auto& [c, count] : spec_.cpu_marginal) {
    cores.insert(cores.end(), static_cast<std::size_t>(count), c);
  }
  std::vector<double> ram_gb;
  ram_gb.reserve(n);
  for (const auto& [r, count] : spec_.ram_marginal) {
    ram_gb.insert(ram_gb.end(), static_cast<std::size_t>(count), r);
  }
  std::sort(cores.begin(), cores.end());
  std::sort(ram_gb.begin(), ram_gb.end());

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(seed);
  rng.shuffle(order);

  cores_.resize(n);
  ram_mb_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores_[i] = cores[order[i]];
    ram_mb_[i] = gb(ram_gb[order[i]]);
  }
  post_shuffle_ = rng.generator().state();
  rng_ = rng;
  // stamp_arrivals validates the model before drawing; match that here so
  // a bad ArrivalModel fails at construction, not mid-stream.
  spec_.arrivals.validate();
}

void AzureStreamSource::rewind() {
  rng_.generator().set_state(post_shuffle_);
  t_ = 0.0;
  index_ = 0;
}

std::size_t AzureStreamSource::next_batch(std::span<ArrivalItem> out) {
  const std::size_t n = std::min(out.size(), cores_.size() - index_);
  for (std::size_t i = 0; i < n; ++i) {
    VmRequest& vm = out[i].vm;
    vm.id = VmId{static_cast<std::uint32_t>(index_)};
    vm.cores = cores_[index_];
    vm.ram_mb = ram_mb_[index_];
    vm.storage_mb = gb(spec_.storage_gb);
    t_ += rng_.exponential(spec_.arrivals.mean_interarrival_tu);
    vm.arrival = t_;
    vm.lifetime = spec_.arrivals.lifetime(index_);
    out[i].index = static_cast<std::uint32_t>(index_);
    ++index_;
  }
  return n;
}

void AzureStreamSource::save_position(std::ostream& os) const {
  bin::put_u64(os, index_);
  bin::put_f64(os, t_);
  for (std::uint64_t w : rng_.generator().state()) bin::put_u64(os, w);
}

void AzureStreamSource::restore_position(std::istream& is) {
  index_ = static_cast<std::size_t>(bin::get_u64(is));
  if (index_ > cores_.size()) {
    throw std::runtime_error("AzureStreamSource: position beyond count");
  }
  t_ = bin::get_f64(is);
  Xoshiro256::State s;
  for (auto& w : s) w = bin::get_u64(is);
  rng_.generator().set_state(s);
}

// ---- TraceStreamSource -----------------------------------------------------

struct TraceStreamSource::Impl {
  std::string path;
  std::ifstream file;
  TraceReader reader;
  std::uint32_t index = 0;
  SimTime last_arrival = -std::numeric_limits<SimTime>::infinity();

  explicit Impl(const std::string& p) : path(p), file(open(p)), reader(file) {}

  static std::ifstream open(const std::string& p) {
    std::ifstream is(p);
    if (!is) throw std::runtime_error("trace: cannot open for read: " + p);
    return is;
  }
};

TraceStreamSource::TraceStreamSource(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}

TraceStreamSource::~TraceStreamSource() = default;

std::size_t TraceStreamSource::next_batch(std::span<ArrivalItem> out) {
  std::size_t n = 0;
  VmRequest vm;
  while (n < out.size() && impl_->reader.next(vm)) {
    if (vm.arrival < impl_->last_arrival) {
      throw std::runtime_error(
          "trace: line " + std::to_string(impl_->reader.line_number()) +
          " is out of arrival order (a streaming source cannot sort; use "
          "read_trace for unsorted traces)");
    }
    impl_->last_arrival = vm.arrival;
    out[n].vm = vm;
    out[n].index = impl_->index++;
    ++n;
  }
  return n;
}

void TraceStreamSource::rewind() {
  impl_ = std::make_unique<Impl>(impl_->path);
}

void TraceStreamSource::save_position(std::ostream& os) const {
  const auto pos = impl_->reader.tell();
  if (pos == std::streampos(-1)) {
    throw std::runtime_error("trace: stream position unavailable");
  }
  bin::put_i64(os, static_cast<std::int64_t>(pos));
  bin::put_u64(os, impl_->reader.line_number());
  bin::put_u64(os, impl_->index);
  bin::put_f64(os, impl_->last_arrival);
}

void TraceStreamSource::restore_position(std::istream& is) {
  const auto pos = static_cast<std::streamoff>(bin::get_i64(is));
  const auto line = static_cast<std::size_t>(bin::get_u64(is));
  const auto index = static_cast<std::uint32_t>(bin::get_u64(is));
  const SimTime last_arrival = bin::get_f64(is);
  impl_ = std::make_unique<Impl>(impl_->path);
  impl_->reader.seek(pos, line);
  impl_->index = index;
  impl_->last_arrival = last_arrival;
}

// ---- MergeSource -----------------------------------------------------------

MergeSource::MergeSource(std::vector<std::unique_ptr<ArrivalSource>> children) {
  if (children.empty()) {
    throw std::invalid_argument("MergeSource: no children");
  }
  children_.reserve(children.size());
  for (auto& c : children) {
    if (c == nullptr) throw std::invalid_argument("MergeSource: null child");
    children_.push_back(Child{std::move(c)});
    prime(children_.back());
  }
}

void MergeSource::prime(Child& c) {
  if (c.exhausted) return;
  ArrivalItem item;
  if (c.source->next_batch(std::span<ArrivalItem>(&item, 1)) == 1) {
    c.pending = item;
    c.has_pending = true;
  } else {
    c.has_pending = false;
    c.exhausted = true;
  }
}

std::size_t MergeSource::next_batch(std::span<ArrivalItem> out) {
  std::size_t n = 0;
  while (n < out.size()) {
    std::size_t best = children_.size();
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i].has_pending) continue;
      if (best == children_.size() ||
          children_[i].pending.vm.arrival < children_[best].pending.vm.arrival) {
        best = i;  // ties keep the earliest child (constructor order)
      }
    }
    if (best == children_.size()) break;
    out[n] = children_[best].pending;
    // Renumber: children's original indices collide across tenants, and
    // the engine's determinism contract keys off a single global index
    // space (DESIGN.md §11).  Merge order IS the new generation order.
    out[n].index = next_index_;
    out[n].vm.id = VmId{next_index_};
    ++next_index_;
    ++n;
    prime(children_[best]);
  }
  return n;
}

void MergeSource::rewind() {
  for (Child& c : children_) {
    c.source->rewind();
    c.has_pending = false;
    c.exhausted = false;
    prime(c);
  }
  next_index_ = 0;
}

std::uint64_t MergeSource::size_hint() const noexcept {
  std::uint64_t total = 0;
  for (const Child& c : children_) {
    const std::uint64_t hint = c.source->size_hint();
    if (hint == 0) return 0;  // any unknown child makes the total unknown
    total += hint;
  }
  return total;
}

void MergeSource::save_position(std::ostream& os) const {
  bin::put_u32(os, next_index_);
  bin::put_u64(os, children_.size());
  for (const Child& c : children_) {
    bin::put_u8(os, c.exhausted ? 1 : 0);
    bin::put_u8(os, c.has_pending ? 1 : 0);
    if (c.has_pending) {
      bin::put_u32(os, c.pending.vm.id.value());
      bin::put_i64(os, c.pending.vm.cores);
      bin::put_i64(os, c.pending.vm.ram_mb);
      bin::put_i64(os, c.pending.vm.storage_mb);
      bin::put_f64(os, c.pending.vm.arrival);
      bin::put_f64(os, c.pending.vm.lifetime);
      bin::put_u32(os, c.pending.index);
    }
    c.source->save_position(os);
  }
}

void MergeSource::restore_position(std::istream& is) {
  next_index_ = bin::get_u32(is);
  if (bin::get_u64(is) != children_.size()) {
    throw std::runtime_error("MergeSource: checkpoint child count mismatch");
  }
  for (Child& c : children_) {
    c.exhausted = bin::get_u8(is) != 0;
    c.has_pending = bin::get_u8(is) != 0;
    if (c.has_pending) {
      c.pending.vm.id = VmId{bin::get_u32(is)};
      c.pending.vm.cores = bin::get_i64(is);
      c.pending.vm.ram_mb = bin::get_i64(is);
      c.pending.vm.storage_mb = bin::get_i64(is);
      c.pending.vm.arrival = bin::get_f64(is);
      c.pending.vm.lifetime = bin::get_f64(is);
      c.pending.index = bin::get_u32(is);
    }
    c.source->restore_position(is);
  }
}

}  // namespace risa::wl
