#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace risa::wl {

namespace {
constexpr const char* kHeader[] = {"vm_id",      "cores",   "ram_mb",
                                   "storage_mb", "arrival", "lifetime"};
constexpr std::size_t kColumns = 6;
}  // namespace

void write_trace(std::ostream& os, const Workload& vms) {
  CsvWriter writer(os);
  writer.write_row({kHeader[0], kHeader[1], kHeader[2], kHeader[3], kHeader[4],
                    kHeader[5]});
  for (const VmRequest& vm : vms) {
    std::ostringstream arrival, lifetime;
    arrival.precision(17);
    lifetime.precision(17);
    arrival << vm.arrival;
    lifetime << vm.lifetime;
    writer.write_row({std::to_string(vm.id.value()), std::to_string(vm.cores),
                      std::to_string(vm.ram_mb), std::to_string(vm.storage_mb),
                      arrival.str(), lifetime.str()});
  }
}

Workload read_trace(std::istream& is) {
  const auto rows = CsvReader::read_all(is);
  if (rows.empty()) throw std::runtime_error("trace: empty file");
  if (rows.front().size() != kColumns || rows.front()[0] != kHeader[0]) {
    throw std::runtime_error("trace: bad header");
  }
  Workload vms;
  vms.reserve(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != kColumns) {
      throw std::runtime_error("trace: row " + std::to_string(i) +
                               " has wrong column count");
    }
    VmRequest vm;
    vm.id = VmId{static_cast<std::uint32_t>(parse_i64(row[0]))};
    vm.cores = parse_i64(row[1]);
    vm.ram_mb = parse_i64(row[2]);
    vm.storage_mb = parse_i64(row[3]);
    vm.arrival = parse_f64(row[4]);
    vm.lifetime = parse_f64(row[5]);
    if (vm.cores <= 0 || vm.ram_mb <= 0 || vm.storage_mb <= 0 ||
        vm.arrival < 0 || vm.lifetime <= 0) {
      throw std::runtime_error("trace: row " + std::to_string(i) +
                               " has out-of-range values");
    }
    vms.push_back(vm);
  }
  return vms;
}

void save_trace(const std::string& path, const Workload& vms) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open for write: " + path);
  write_trace(os, vms);
  if (!os) throw std::runtime_error("trace: write failed: " + path);
}

Workload load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace: cannot open for read: " + path);
  return read_trace(is);
}

}  // namespace risa::wl
