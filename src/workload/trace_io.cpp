#include "workload/trace_io.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace risa::wl {

namespace {
constexpr const char* kHeader[] = {"vm_id",      "cores",   "ram_mb",
                                   "storage_mb", "arrival", "lifetime"};
constexpr std::size_t kColumns = 6;
}  // namespace

void write_trace(std::ostream& os, const Workload& vms) {
  CsvWriter writer(os);
  writer.write_row({kHeader[0], kHeader[1], kHeader[2], kHeader[3], kHeader[4],
                    kHeader[5]});
  for (const VmRequest& vm : vms) {
    std::ostringstream arrival, lifetime;
    arrival.precision(17);
    lifetime.precision(17);
    arrival << vm.arrival;
    lifetime << vm.lifetime;
    writer.write_row({std::to_string(vm.id.value()), std::to_string(vm.cores),
                      std::to_string(vm.ram_mb), std::to_string(vm.storage_mb),
                      arrival.str(), lifetime.str()});
  }
}

TraceReader::TraceReader(std::istream& is) : is_(&is) {
  if (!next_row()) throw std::runtime_error("trace: empty file");
  bool header_ok = cells_.size() == kColumns;
  for (std::size_t c = 0; header_ok && c < kColumns; ++c) {
    header_ok = cells_[c] == kHeader[c];
  }
  if (!header_ok) {
    throw std::runtime_error("trace: bad header at line " +
                             std::to_string(line_));
  }
}

bool TraceReader::next_row() {
  while (std::getline(*is_, linebuf_)) {
    ++line_;
    if (linebuf_.empty() || (linebuf_.size() == 1 && linebuf_[0] == '\r')) {
      continue;
    }
    cells_ = CsvReader::parse_line(linebuf_);
    return true;
  }
  return false;
}

bool TraceReader::next(VmRequest& out) {
  if (!next_row()) return false;
  if (cells_.size() != kColumns) {
    throw std::runtime_error("trace: line " + std::to_string(line_) +
                             " has wrong column count");
  }
  out.id = VmId{static_cast<std::uint32_t>(parse_i64(cells_[0]))};
  out.cores = parse_i64(cells_[1]);
  out.ram_mb = parse_i64(cells_[2]);
  out.storage_mb = parse_i64(cells_[3]);
  out.arrival = parse_f64(cells_[4]);
  out.lifetime = parse_f64(cells_[5]);
  if (out.cores <= 0 || out.ram_mb <= 0 || out.storage_mb <= 0 ||
      out.arrival < 0 || out.lifetime <= 0) {
    throw std::runtime_error("trace: line " + std::to_string(line_) +
                             " has out-of-range values");
  }
  return true;
}

std::streampos TraceReader::tell() const { return is_->tellg(); }

void TraceReader::seek(std::streampos pos, std::size_t line) {
  is_->clear();
  is_->seekg(pos);
  if (!*is_) throw std::runtime_error("trace: seek failed");
  line_ = line;
}

Workload read_trace(std::istream& is) {
  TraceReader reader(is);
  Workload vms;
  VmRequest vm;
  while (reader.next(vm)) vms.push_back(vm);
  return vms;
}

void save_trace(const std::string& path, const Workload& vms) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open for write: " + path);
  write_trace(os, vms);
  if (!os) throw std::runtime_error("trace: write failed: " + path);
}

Workload load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace: cannot open for read: " + path);
  return read_trace(is);
}

}  // namespace risa::wl
