#include "workload/azure.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace risa::wl {

std::int64_t AzureSpec::total_vms() const {
  std::int64_t n = 0;
  for (const auto& [cores, count] : cpu_marginal) n += count;
  return n;
}

void AzureSpec::validate() const {
  if (cpu_marginal.empty() || ram_marginal.empty()) {
    throw std::invalid_argument("AzureSpec: empty marginal");
  }
  std::int64_t cpu_total = 0, ram_total = 0;
  for (const auto& [cores, count] : cpu_marginal) {
    if (cores <= 0 || count < 0) throw std::invalid_argument("AzureSpec: bad CPU row");
    cpu_total += count;
  }
  for (const auto& [ram, count] : ram_marginal) {
    if (ram <= 0 || count < 0) throw std::invalid_argument("AzureSpec: bad RAM row");
    ram_total += count;
  }
  if (cpu_total != ram_total) {
    throw std::invalid_argument("AzureSpec: CPU/RAM marginal totals differ");
  }
  if (storage_gb <= 0) throw std::invalid_argument("AzureSpec: bad storage");
  arrivals.validate();
}

std::vector<std::pair<double, std::int64_t>> split_small_ram(
    std::int64_t count, const Bin0Split& split) {
  if (count < 0) throw std::invalid_argument("split_small_ram: negative count");
  const double sum = split.frac_075 + split.frac_175 + split.frac_35;
  if (sum <= 0.99 || sum >= 1.01) {
    throw std::invalid_argument("split_small_ram: fractions must sum to 1");
  }
  const auto n075 = static_cast<std::int64_t>(
      static_cast<double>(count) * split.frac_075);
  const auto n35 = static_cast<std::int64_t>(
      static_cast<double>(count) * split.frac_35);
  const std::int64_t n175 = count - n075 - n35;  // remainder to 1.75 GB
  return {{0.75, n075}, {1.75, n175}, {3.5, n35}};
}

namespace {

AzureSpec make_spec(std::string label,
                    std::vector<std::pair<std::int64_t, std::int64_t>> cpu,
                    std::int64_t small_ram,
                    std::vector<std::pair<double, std::int64_t>> big_ram) {
  AzureSpec spec;
  spec.label = std::move(label);
  spec.cpu_marginal = std::move(cpu);
  spec.ram_marginal = split_small_ram(small_ram);
  spec.ram_marginal.insert(spec.ram_marginal.end(), big_ram.begin(),
                           big_ram.end());
  spec.validate();
  return spec;
}

}  // namespace

AzureSpec azure_3000() {
  return make_spec("Azure-3000",
                   {{1, 1326}, {2, 1269}, {4, 316}, {8, 89}},
                   2591,
                   {{7.0, 299}, {14.0, 15}, {28.0, 17}, {56.0, 78}});
}

AzureSpec azure_5000() {
  return make_spec("Azure-5000",
                   {{1, 1931}, {2, 2514}, {4, 444}, {8, 111}},
                   4439,
                   {{7.0, 427}, {14.0, 39}, {28.0, 17}, {56.0, 78}});
}

AzureSpec azure_7500() {
  return make_spec("Azure-7500",
                   {{1, 4153}, {2, 2536}, {4, 507}, {8, 304}},
                   6682,
                   {{7.0, 488}, {14.0, 203}, {28.0, 19}, {56.0, 108}});
}

std::vector<AzureSpec> azure_all_subsets() {
  return {azure_3000(), azure_5000(), azure_7500()};
}

Workload generate_azure(const AzureSpec& spec, std::uint64_t seed) {
  spec.validate();
  const auto n = static_cast<std::size_t>(spec.total_vms());

  // Expand marginals into ascending multisets.
  std::vector<std::int64_t> cores;
  cores.reserve(n);
  for (const auto& [c, count] : spec.cpu_marginal) {
    cores.insert(cores.end(), static_cast<std::size_t>(count), c);
  }
  std::vector<double> ram_gb;
  ram_gb.reserve(n);
  for (const auto& [r, count] : spec.ram_marginal) {
    ram_gb.insert(ram_gb.end(), static_cast<std::size_t>(count), r);
  }
  std::sort(cores.begin(), cores.end());
  std::sort(ram_gb.begin(), ram_gb.end());

  // Rank-couple, then shuffle the pair order deterministically.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(seed);
  rng.shuffle(order);

  Workload vms(n);
  for (std::size_t i = 0; i < n; ++i) {
    VmRequest& vm = vms[i];
    vm.id = VmId{static_cast<std::uint32_t>(i)};
    vm.cores = cores[order[i]];
    vm.ram_mb = gb(ram_gb[order[i]]);
    vm.storage_mb = gb(spec.storage_gb);
  }
  stamp_arrivals(spec.arrivals, n, rng,
                 [&](std::size_t i, SimTime arrival, SimTime lifetime) {
                   vms[i].arrival = arrival;
                   vms[i].lifetime = lifetime;
                 });
  return vms;
}

}  // namespace risa::wl
