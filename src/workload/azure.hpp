// Azure-2017-like workload generator (§5.2, Figure 6).
//
// The 2017 public Azure trace itself is not redistributable/available
// offline, so this module synthesizes workloads whose CPU and RAM
// *marginals match Figure 6 of the paper exactly* (counts decoded from the
// 10-bin histograms; see DESIGN.md §2.1 for the decode):
//
//   subset       cores {1,2,4,8}                 RAM bins {<=3.5,7,14,28,56} GB
//   Azure-3000   1326/1269/316/89                2591/299/15/17/78
//   Azure-5000   1931/2514/444/111               4439/427/39/17/78
//   Azure-7500   4153/2536/507/304               6682/488/203/19/108
//
// The aggregated <=3.5 GB bin is split across the 2017 Azure size classes
// {0.75, 1.75, 3.5} GB with fixed documented proportions (30/50/20).  Cores
// and RAM are rank-coupled (i-th smallest cores with i-th smallest RAM),
// mirroring the strong size correlation of real Azure series (A/D-series
// pair 1.75-3.5 GB per core), then the VM order is shuffled deterministically.
// Storage is 128 GB per VM, as the paper assumes.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/arrival.hpp"
#include "workload/vm.hpp"

namespace risa::wl {

/// Exact marginal specification for one Azure-like subset.
struct AzureSpec {
  std::string label;
  /// (cores, count) pairs, ascending cores.
  std::vector<std::pair<std::int64_t, std::int64_t>> cpu_marginal;
  /// (ram_gb, count) pairs, ascending RAM.
  std::vector<std::pair<double, std::int64_t>> ram_marginal;
  double storage_gb = 128.0;
  ArrivalModel arrivals{};

  [[nodiscard]] std::int64_t total_vms() const;
  void validate() const;
};

/// The three subsets evaluated by the paper.
[[nodiscard]] AzureSpec azure_3000();
[[nodiscard]] AzureSpec azure_5000();
[[nodiscard]] AzureSpec azure_7500();

/// All three, in paper order.
[[nodiscard]] std::vector<AzureSpec> azure_all_subsets();

/// Generate a workload with marginals exactly equal to `spec`, rank-coupled
/// and deterministically shuffled by `seed`.
[[nodiscard]] Workload generate_azure(const AzureSpec& spec, std::uint64_t seed);

/// Proportions used to split Figure 6's aggregated <=3.5 GB RAM bin into
/// the 2017 Azure size classes {0.75, 1.75, 3.5} GB.
struct Bin0Split {
  double frac_075 = 0.30;
  double frac_175 = 0.50;  // remainder after rounding also lands here
  double frac_35 = 0.20;
};

/// Expand an aggregated small-RAM count into per-size counts (sums exactly
/// to `count`).
[[nodiscard]] std::vector<std::pair<double, std::int64_t>> split_small_ram(
    std::int64_t count, const Bin0Split& split = {});

}  // namespace risa::wl
