// Aggregates optical-component energy over a simulation run and converts it
// to the average-power figure the paper reports (Figure 9: "power
// consumption for optical components" = transceivers + all optical switch
// energy, averaged over the simulated horizon).
#pragma once

#include <cstddef>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "network/circuit.hpp"
#include "network/fabric.hpp"
#include "photonics/switch_energy.hpp"
#include "photonics/transceiver.hpp"

namespace risa::phot {

struct PhotonicConfig {
  SwitchEnergyConfig switch_energy{};
  TransceiverParams transceiver{};

  void validate() const {
    switch_energy.validate();
    transceiver.validate();
  }
};

/// Instantaneous holding power of one active circuit, watts: the trimming
/// power of every MRR cell along its switch path (alpha * n * P_trim per
/// switch) plus its transceiver draw.  Used by the timeline recorder; the
/// time-integral of this quantity equals the ledger's trimming+transceiver
/// energy.
[[nodiscard]] double circuit_holding_power_w(const PhotonicConfig& config,
                                             const net::Fabric& fabric,
                                             const net::Circuit& circuit);

/// Energy attributed to one VM's circuits, joules.
struct VmEnergy {
  double switch_switching_j = 0.0;
  double switch_trimming_j = 0.0;
  double transceiver_j = 0.0;

  [[nodiscard]] double total_j() const noexcept {
    return switch_switching_j + switch_trimming_j + transceiver_j;
  }
};

class PowerLedger {
 public:
  PowerLedger(const PhotonicConfig& config, const net::Fabric& fabric)
      : config_(config), fabric_(&fabric) {
    config_.validate();
  }

  /// Charge the energy of one circuit held for `lifetime_tu` simulated time
  /// units: Eq. (1) per switch traversed plus transceiver energy per link
  /// hop.  Returns the decomposition for metrics.
  VmEnergy charge_circuit(const net::Circuit& circuit, double lifetime_tu);

  /// Charge every circuit `vm` currently holds in `table` (both circuits
  /// of a placed VM), allocation-free via
  /// CircuitTable::for_each_circuit_of.
  VmEnergy charge_vm(const net::CircuitTable& table, VmId vm,
                     double lifetime_tu);

  [[nodiscard]] double total_energy_j() const noexcept { return total_.total_j(); }
  [[nodiscard]] const VmEnergy& totals() const noexcept { return total_; }
  [[nodiscard]] std::size_t circuits_charged() const noexcept { return charged_; }

  /// Average power over a horizon of `horizon_tu` simulated time units.
  [[nodiscard]] double average_power_w(double horizon_tu) const;

  /// Per-VM total-energy distribution (joules).
  [[nodiscard]] const RunningStats& per_circuit_energy() const noexcept {
    return per_circuit_energy_;
  }

 private:
  PhotonicConfig config_;
  const net::Fabric* fabric_;
  VmEnergy total_{};
  std::size_t charged_ = 0;
  RunningStats per_circuit_energy_;
};

}  // namespace risa::phot
