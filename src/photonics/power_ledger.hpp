// Aggregates optical-component energy over a simulation run and converts it
// to the average-power figure the paper reports (Figure 9: "power
// consumption for optical components" = transceivers + all optical switch
// energy, averaged over the simulated horizon).
//
// Charging is interval-based (DESIGN.md §8): a placement OPENS a charging
// interval by prepaying the expected holding duration (charge_vm -- the
// exact arithmetic and accumulation order of the historical
// charge-full-lifetime-at-placement scheme, which is what keeps no-fault
// runs bit-identical to PR 3), and a truncation (a box failure killing the
// VM before its scheduled departure) SETTLES the interval at kill time by
// refunding the unheld tail's duration-proportional energy
// (refund_vm_truncation).  Switching energy is the one-time
// reconfiguration term of Eq. (1) and is never refunded -- the circuit was
// really established.  A placement that runs to its scheduled departure
// needs no settlement: the prepaid interval already equals the held one.
#pragma once

#include <cstddef>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "network/circuit.hpp"
#include "network/fabric.hpp"
#include "photonics/switch_energy.hpp"
#include "photonics/transceiver.hpp"

namespace risa::phot {

struct PhotonicConfig {
  SwitchEnergyConfig switch_energy{};
  TransceiverParams transceiver{};

  void validate() const {
    switch_energy.validate();
    transceiver.validate();
  }
};

/// Instantaneous holding power of one active circuit, watts: the trimming
/// power of every MRR cell along its switch path (alpha * n * P_trim per
/// switch) plus its transceiver draw.  Used by the timeline recorder; the
/// time-integral of this quantity equals the ledger's trimming+transceiver
/// energy.
[[nodiscard]] double circuit_holding_power_w(const PhotonicConfig& config,
                                             const net::Fabric& fabric,
                                             const net::Circuit& circuit);

/// Energy attributed to one VM's circuits, joules.
struct VmEnergy {
  double switch_switching_j = 0.0;
  double switch_trimming_j = 0.0;
  double transceiver_j = 0.0;

  [[nodiscard]] double total_j() const noexcept {
    return switch_switching_j + switch_trimming_j + transceiver_j;
  }
};

class PowerLedger {
 public:
  PowerLedger(const PhotonicConfig& config, const net::Fabric& fabric)
      : config_(config), fabric_(&fabric) {
    config_.validate();
  }

  /// Charge the energy of one circuit held for `lifetime_tu` simulated time
  /// units: Eq. (1) per switch traversed plus transceiver energy per link
  /// hop.  Returns the decomposition for metrics.
  VmEnergy charge_circuit(const net::Circuit& circuit, double lifetime_tu);

  /// Open the charging interval of `vm`'s circuits at its expected length:
  /// charge every circuit `vm` currently holds in `table` (both circuits
  /// of a placed VM) for `lifetime_tu`, allocation-free via
  /// CircuitTable::for_each_circuit_of.
  VmEnergy charge_vm(const net::CircuitTable& table, VmId vm,
                     double lifetime_tu);

  /// Settle a truncated interval: the VM was killed `unused_tu` time units
  /// before its prepaid interval ended.  Refunds the duration-proportional
  /// components (switch trimming + transceiver) for the unheld tail of
  /// every circuit `vm` still holds in `table`; call BEFORE the circuits
  /// are torn down.  The one-time switching energy stays charged.  A
  /// non-positive `unused_tu` is a no-op that leaves the totals bit-for-bit
  /// untouched (the untruncated case).  Returns the refunded decomposition.
  VmEnergy refund_vm_truncation(const net::CircuitTable& table, VmId vm,
                                double unused_tu);

  /// Per-circuit variant of the truncation settlement, for callers that
  /// retire a SUBSET of a VM's circuits (the migration path: the old
  /// circuits settle at the sweep instant while the freshly established
  /// ones open their own intervals).  Shares the refund arithmetic with
  /// refund_vm_truncation but subtracts from the totals per circuit; the
  /// kill path keeps its whole-VM accumulate-then-subtract order, which is
  /// frozen bit-for-bit (DESIGN.md §8.4).  Non-positive `unused_tu` is a
  /// no-op.
  VmEnergy refund_circuit_truncation(const net::Circuit& circuit,
                                     double unused_tu);

  [[nodiscard]] double total_energy_j() const noexcept { return total_.total_j(); }
  [[nodiscard]] const VmEnergy& totals() const noexcept { return total_; }
  [[nodiscard]] std::size_t circuits_charged() const noexcept { return charged_; }
  /// Circuits whose interval was settled short by a truncation refund.
  [[nodiscard]] std::size_t circuits_refunded() const noexcept {
    return refunded_;
  }

  /// Average power over a horizon of `horizon_tu` simulated time units.
  [[nodiscard]] double average_power_w(double horizon_tu) const;

  /// Per-circuit energy distribution (joules), recorded at interval OPEN
  /// (prepaid values; truncation refunds do not retro-adjust samples).
  [[nodiscard]] const RunningStats& per_circuit_energy() const noexcept {
    return per_circuit_energy_;
  }

  /// Checkpointable accumulated state (the config/fabric wiring is
  /// reconstructed by the owner; only the run-dependent totals move).
  struct State {
    VmEnergy total;
    std::uint64_t charged;
    std::uint64_t refunded;
    RunningStats::State per_circuit_energy;
  };
  [[nodiscard]] State save() const noexcept {
    return {total_, static_cast<std::uint64_t>(charged_),
            static_cast<std::uint64_t>(refunded_),
            per_circuit_energy_.save()};
  }
  void restore(const State& s) noexcept {
    total_ = s.total;
    charged_ = static_cast<std::size_t>(s.charged);
    refunded_ = static_cast<std::size_t>(s.refunded);
    per_circuit_energy_.restore(s.per_circuit_energy);
  }

 private:
  /// Append one circuit's duration-proportional refund terms (per-switch
  /// trimming, then transceiver -- the shared arithmetic of both public
  /// settlement entry points) into `refund` and count the circuit.
  void accumulate_circuit_refund(const net::Circuit& circuit,
                                 double unused_tu, VmEnergy& refund);

  PhotonicConfig config_;
  const net::Fabric* fabric_;
  VmEnergy total_{};
  std::size_t charged_ = 0;
  std::size_t refunded_ = 0;
  RunningStats per_circuit_energy_;
};

}  // namespace risa::phot
