// The paper's optical-switch energy model, Eq. (1):
//
//   E_sw = (n/2 * P_swcell * lat_sw) + (alpha * n * P_trimcell * T)
//
// where n is the number of cells along the circuit's path through a switch
// (one per Beneš stage), lat_sw the cell-switching latency (a function of
// switch size, per HyCo [6]), alpha the cell-sharing factor and T the VM
// lifetime.  The first term is the one-time reconfiguration energy (n/2 of
// the cells are assumed to change state); the second is the holding energy
// for the circuit's lifetime.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "photonics/benes.hpp"
#include "photonics/mrr.hpp"

namespace risa::phot {

struct SwitchEnergyConfig {
  MrrParams mrr{};

  /// lat_sw(N) = base * log2(N).  The cited latency source [6] is
  /// summarized only as "based on the switch size"; this linear-in-log2
  /// model is our documented assumption (DESIGN.md §2.5).  The switching
  /// term is ~9 orders of magnitude below the trimming term, so results are
  /// insensitive to it (pinned by a test).
  double switch_latency_base_s = 1e-6;

  /// Wall-clock seconds represented by one simulated time unit.
  double seconds_per_time_unit = 1.0;

  void validate() const {
    mrr.validate();
    if (switch_latency_base_s < 0) {
      throw std::invalid_argument("SwitchEnergyConfig: negative latency base");
    }
    if (seconds_per_time_unit <= 0) {
      throw std::invalid_argument("SwitchEnergyConfig: non-positive tu scale");
    }
  }
};

/// Decomposed per-switch energy, joules.
struct SwitchEnergy {
  double switching_j = 0.0;  ///< (n/2) * P_swcell * lat_sw
  double trimming_j = 0.0;   ///< alpha * n * P_trimcell * T

  [[nodiscard]] double total_j() const noexcept { return switching_j + trimming_j; }
};

/// Cell-switching latency for an N-port switch.
[[nodiscard]] inline double switch_latency_s(const SwitchEnergyConfig& cfg,
                                             std::uint32_t ports) {
  return cfg.switch_latency_base_s * static_cast<double>(ceil_log2(ports));
}

/// Eq. (1) for one circuit through one N-port switch held for
/// `lifetime_time_units` simulated time units.
[[nodiscard]] inline SwitchEnergy circuit_switch_energy(
    const SwitchEnergyConfig& cfg, std::uint32_t ports,
    double lifetime_time_units) {
  if (lifetime_time_units < 0) {
    throw std::invalid_argument("circuit_switch_energy: negative lifetime");
  }
  const auto n = static_cast<double>(benes_path_cells(ports));
  SwitchEnergy e;
  e.switching_j =
      (n / 2.0) * cfg.mrr.switch_power_w * switch_latency_s(cfg, ports);
  e.trimming_j = cfg.mrr.alpha * n * cfg.mrr.trim_power_w *
                 lifetime_time_units * cfg.seconds_per_time_unit;
  return e;
}

}  // namespace risa::phot
