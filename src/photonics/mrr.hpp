// Microring-resonator (MRR) cell electrical parameters (§3.2).
//
// Values from Mirza et al., TCAD 2022 [13], as adopted by the paper:
//   P_trim  = 22.67 mW  (holding a cell in its state)
//   P_swcell = 13.75 mW (reconfiguring a cell)
// and the sharing factor alpha = 0.9 (two VMs can share a cell; alpha is
// bounded by [0.5, 1.0]).
#pragma once

#include <stdexcept>

namespace risa::phot {

struct MrrParams {
  double trim_power_w = 22.67e-3;    ///< P_trimcell, watts
  double switch_power_w = 13.75e-3;  ///< P_swcell, watts
  double alpha = 0.9;                ///< cell-sharing factor in [0.5, 1.0]

  void validate() const {
    if (trim_power_w < 0 || switch_power_w < 0) {
      throw std::invalid_argument("MrrParams: negative power");
    }
    if (alpha < 0.5 || alpha > 1.0) {
      throw std::invalid_argument("MrrParams: alpha outside [0.5, 1.0]");
    }
  }
};

}  // namespace risa::phot
