// Beneš-network geometry for MRR-based optical switches (§3.2).
//
// An N-port Beneš network has 2*ceil(log2 N) - 1 stages of 2x2 crossing
// cells, N/2 cells per stage.  A circuit through the switch occupies one
// cell per stage, which is the `n` of the paper's Eq. (1).  Reference for
// the cell-count dependence on port count: Lee & Dupuis, JLT 2019 [10].
#pragma once

#include <cstdint>
#include <stdexcept>

namespace risa::phot {

/// ceil(log2(n)) for n >= 1.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("ceil_log2: zero");
  std::uint32_t bits = 0;
  std::uint32_t v = n - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits == 0 ? 1 : bits;  // a 1-port "switch" still has one stage
}

/// Number of cell stages in an N-port Beneš network: 2*ceil(log2 N) - 1.
[[nodiscard]] constexpr std::uint32_t benes_stages(std::uint32_t ports) {
  if (ports < 2) throw std::invalid_argument("benes_stages: ports < 2");
  return 2 * ceil_log2(ports) - 1;
}

/// Total 2x2 cells in an N-port Beneš network: (N/2) * stages.
[[nodiscard]] constexpr std::uint64_t benes_total_cells(std::uint32_t ports) {
  return static_cast<std::uint64_t>(ports / 2) * benes_stages(ports);
}

/// Cells occupied by one circuit through an N-port Beneš switch (one per
/// stage) -- the `n` of Eq. (1).
[[nodiscard]] constexpr std::uint32_t benes_path_cells(std::uint32_t ports) {
  return benes_stages(ports);
}

}  // namespace risa::phot
