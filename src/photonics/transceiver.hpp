// SiP mid-board optical transceiver model (§3.1).
//
// The Luxtera commercial module [12]: 8 spatially-multiplexed channels of
// 25 Gb/s (200 Gb/s per link), single-mode.  The paper takes its energy
// cost as 22.5 pJ/bit [20].  A link hop engages one module per endpoint
// (tx + rx), so a circuit of rate R crossing H links dissipates
// 2 * H * R * 22.5 pJ/bit of power while active.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "common/units.hpp"

namespace risa::phot {

struct TransceiverParams {
  std::uint32_t channels = 8;              ///< spatial channels per module
  MbitsPerSec channel_rate = gbps(25.0);   ///< per-channel bit rate
  double energy_per_bit_j = 22.5e-12;      ///< 22.5 pJ/bit
  std::uint32_t modules_per_hop = 2;       ///< tx + rx per link traversal

  [[nodiscard]] MbitsPerSec link_rate() const noexcept {
    return static_cast<MbitsPerSec>(channels) * channel_rate;
  }

  void validate() const {
    if (channels == 0 || channel_rate <= 0) {
      throw std::invalid_argument("TransceiverParams: bad channel config");
    }
    if (energy_per_bit_j < 0) {
      throw std::invalid_argument("TransceiverParams: negative energy/bit");
    }
    if (modules_per_hop == 0) {
      throw std::invalid_argument("TransceiverParams: zero modules per hop");
    }
  }
};

/// Power drawn by the transceivers of one circuit of rate `rate` crossing
/// `hops` links, watts.
[[nodiscard]] inline double transceiver_power_w(const TransceiverParams& p,
                                                MbitsPerSec rate,
                                                std::size_t hops) {
  if (rate < 0) throw std::invalid_argument("transceiver_power_w: negative rate");
  const double bits_per_s = static_cast<double>(rate) * 1e6;
  return static_cast<double>(p.modules_per_hop) * static_cast<double>(hops) *
         bits_per_s * p.energy_per_bit_j;
}

/// Energy over a circuit lifetime, joules.
[[nodiscard]] inline double transceiver_energy_j(const TransceiverParams& p,
                                                 MbitsPerSec rate,
                                                 std::size_t hops,
                                                 double lifetime_s) {
  if (lifetime_s < 0) {
    throw std::invalid_argument("transceiver_energy_j: negative lifetime");
  }
  return transceiver_power_w(p, rate, hops) * lifetime_s;
}

}  // namespace risa::phot
