#include "photonics/power_ledger.hpp"

#include <stdexcept>

namespace risa::phot {

double circuit_holding_power_w(const PhotonicConfig& config,
                               const net::Fabric& fabric,
                               const net::Circuit& circuit) {
  double power = 0.0;
  for (SwitchId sw : circuit.path.switches) {
    const auto& node = fabric.switch_node(sw);
    power += config.switch_energy.mrr.alpha *
             static_cast<double>(benes_path_cells(node.ports)) *
             config.switch_energy.mrr.trim_power_w;
  }
  power += transceiver_power_w(config.transceiver, circuit.bandwidth,
                               circuit.path.hop_count());
  return power;
}

VmEnergy PowerLedger::charge_circuit(const net::Circuit& circuit,
                                     double lifetime_tu) {
  VmEnergy e;
  for (SwitchId sw : circuit.path.switches) {
    const auto& node = fabric_->switch_node(sw);
    const SwitchEnergy se =
        circuit_switch_energy(config_.switch_energy, node.ports, lifetime_tu);
    e.switch_switching_j += se.switching_j;
    e.switch_trimming_j += se.trimming_j;
  }
  const double lifetime_s =
      lifetime_tu * config_.switch_energy.seconds_per_time_unit;
  e.transceiver_j += transceiver_energy_j(
      config_.transceiver, circuit.bandwidth, circuit.path.hop_count(),
      lifetime_s);

  total_.switch_switching_j += e.switch_switching_j;
  total_.switch_trimming_j += e.switch_trimming_j;
  total_.transceiver_j += e.transceiver_j;
  ++charged_;
  per_circuit_energy_.add(e.total_j());
  return e;
}

VmEnergy PowerLedger::charge_vm(const net::CircuitTable& table, VmId vm,
                                double lifetime_tu) {
  VmEnergy sum;
  table.for_each_circuit_of(vm, [&](const net::Circuit& c) {
    const VmEnergy e = charge_circuit(c, lifetime_tu);
    sum.switch_switching_j += e.switch_switching_j;
    sum.switch_trimming_j += e.switch_trimming_j;
    sum.transceiver_j += e.transceiver_j;
  });
  return sum;
}

void PowerLedger::accumulate_circuit_refund(const net::Circuit& circuit,
                                            double unused_tu,
                                            VmEnergy& refund) {
  for (SwitchId sw : circuit.path.switches) {
    const auto& node = fabric_->switch_node(sw);
    // Only the holding (trimming) term of Eq. (1) scales with duration;
    // the switching term is sunk reconfiguration cost.
    refund.switch_trimming_j +=
        circuit_switch_energy(config_.switch_energy, node.ports, unused_tu)
            .trimming_j;
  }
  const double unused_s =
      unused_tu * config_.switch_energy.seconds_per_time_unit;
  refund.transceiver_j += transceiver_energy_j(
      config_.transceiver, circuit.bandwidth, circuit.path.hop_count(),
      unused_s);
  ++refunded_;
}

VmEnergy PowerLedger::refund_vm_truncation(const net::CircuitTable& table,
                                           VmId vm, double unused_tu) {
  VmEnergy refund;
  if (unused_tu <= 0.0) return refund;  // interval ran to its prepaid end
  // One accumulator across all circuits, subtracted from the totals once:
  // the exact FP accumulation order of the historical kill path (frozen --
  // see the header).  The per-circuit settlement below shares the helper
  // but subtracts per circuit.
  table.for_each_circuit_of(vm, [&](const net::Circuit& c) {
    accumulate_circuit_refund(c, unused_tu, refund);
  });
  total_.switch_trimming_j -= refund.switch_trimming_j;
  total_.transceiver_j -= refund.transceiver_j;
  return refund;
}

VmEnergy PowerLedger::refund_circuit_truncation(const net::Circuit& circuit,
                                                double unused_tu) {
  VmEnergy refund;
  if (unused_tu <= 0.0) return refund;  // interval ran to its prepaid end
  accumulate_circuit_refund(circuit, unused_tu, refund);
  total_.switch_trimming_j -= refund.switch_trimming_j;
  total_.transceiver_j -= refund.transceiver_j;
  return refund;
}

double PowerLedger::average_power_w(double horizon_tu) const {
  if (horizon_tu <= 0) {
    throw std::invalid_argument("average_power_w: non-positive horizon");
  }
  const double horizon_s =
      horizon_tu * config_.switch_energy.seconds_per_time_unit;
  return total_.total_j() / horizon_s;
}

}  // namespace risa::phot
