// Capacity planning what-if: how many racks does a workload need under each
// scheduler before drops appear?  Demonstrates sweeping ClusterConfig
// through the scenario axis of a SweepSpec and reading SimMetrics
// programmatically -- the kind of study a datacenter operator would run
// with this library.
//
//   $ ./capacity_planning [--workload=azure-5000|azure-3000|azure-7500|synthetic]
//                         [--threads=N]
#include <iostream>

#include "common/flags.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("workload", "azure-5000",
               "Workload: synthetic | azure-3000 | azure-5000 | azure-7500");
  flags.define("max-drop-pct", "1.0",
               "Acceptable drop rate (percent) for the sizing verdict");
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  const std::string which = flags.str("workload");
  sim::SweepSpec spec;
  try {
    spec.workloads = {which == "synthetic" ? sim::WorkloadSpec::synthetic()
                                           : sim::WorkloadSpec::azure(which)};
  } catch (const std::exception&) {
    std::cerr << "unknown workload '" << which << "'\n";
    return 1;
  }
  const double max_drop = flags.f64("max-drop-pct") / 100.0;

  constexpr std::uint32_t kRacks[] = {6u, 9u, 12u, 15u, 18u};
  for (std::uint32_t racks : kRacks) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.cluster.racks = racks;
    spec.scenarios.emplace_back(std::to_string(racks), scenario);
  }
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "Capacity planning for " << which << " ("
            << runs.front().total_vms << " VMs), acceptable drop rate "
            << TextTable::pct(max_drop, 1) << ":\n\n";

  TextTable t({"Racks", "Algorithm", "Placed", "Drop %", "Peak STO %",
               "Power kW", "Verdict"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      const sim::SimMetrics& m = runs[spec.cell_index(s, 0, 0, a)];
      t.add_row({spec.scenarios[s].first, m.algorithm,
                 std::to_string(m.placed),
                 TextTable::pct(m.drop_fraction(), 2),
                 TextTable::pct(m.peak_utilization.storage(), 1),
                 TextTable::num(m.avg_optical_power_w / 1000.0, 2),
                 m.drop_fraction() <= max_drop ? "fits" : "undersized"});
    }
  }
  std::cout << t
            << "\nStorage peaks first on the Azure-like workloads (the "
               "paper's 'most contended resource'\nobservation); the RISA "
               "family reaches the same placement rate at every size while "
               "consuming\nless optical power.\n";
  return 0;
}
