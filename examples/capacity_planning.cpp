// Capacity planning what-if: how many racks does a workload need under each
// scheduler before drops appear?  Demonstrates sweeping ClusterConfig and
// reading SimMetrics programmatically -- the kind of study a datacenter
// operator would run with this library.
//
//   $ ./capacity_planning [--workload=azure-5000|azure-3000|azure-7500|synthetic]
#include <iostream>

#include "common/flags.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("workload", "azure-5000",
               "Workload: synthetic | azure-3000 | azure-5000 | azure-7500");
  flags.define("max-drop-pct", "1.0",
               "Acceptable drop rate (percent) for the sizing verdict");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }

  const std::string which = flags.str("workload");
  wl::Workload workload;
  if (which == "synthetic") {
    workload = sim::synthetic_workload();
  } else {
    for (auto& [label, w] : sim::azure_workloads()) {
      if (to_lower(label) == which) workload = std::move(w);
    }
  }
  if (workload.empty()) {
    std::cerr << "unknown workload '" << which << "'\n";
    return 1;
  }
  const double max_drop = flags.f64("max-drop-pct") / 100.0;

  std::cout << "Capacity planning for " << which << " (" << workload.size()
            << " VMs), acceptable drop rate "
            << TextTable::pct(max_drop, 1) << ":\n\n";

  TextTable t({"Racks", "Algorithm", "Placed", "Drop %", "Peak STO %",
               "Power kW", "Verdict"});
  for (std::uint32_t racks : {6u, 9u, 12u, 15u, 18u}) {
    for (const std::string& algo : core::algorithm_names()) {
      sim::Scenario scenario = sim::Scenario::paper_defaults();
      scenario.cluster.racks = racks;
      sim::Engine engine(scenario, algo);
      const sim::SimMetrics m = engine.run(workload, which);
      t.add_row({std::to_string(racks), algo, std::to_string(m.placed),
                 TextTable::pct(m.drop_fraction(), 2),
                 TextTable::pct(m.peak_utilization.storage(), 1),
                 TextTable::num(m.avg_optical_power_w / 1000.0, 2),
                 m.drop_fraction() <= max_drop ? "fits" : "undersized"});
    }
  }
  std::cout << t
            << "\nStorage peaks first on the Azure-like workloads (the "
               "paper's 'most contended resource'\nobservation); the RISA "
               "family reaches the same placement rate at every size while "
               "consuming\nless optical power.\n";
  return 0;
}
