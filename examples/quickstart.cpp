// Quickstart: build the paper's disaggregated cluster (Table 1), schedule a
// small batch of VMs with RISA, and print where everything landed.
//
//   $ ./quickstart [--algorithm=RISA] [--vms=20] [--seed=1]
//
// This demonstrates the minimal public API surface: Scenario -> Engine ->
// run(workload), plus direct allocator access for step-by-step placement.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  risa::Flags flags;
  flags.define("algorithm", "RISA", "Scheduler: NULB | NALB | RISA | RISA-BF");
  flags.define("vms", "20", "Number of synthetic VMs to schedule");
  flags.define("seed", "1", "Workload RNG seed");
  if (!flags.parse_or_usage(argc, argv)) return 1;

  // 1. The paper's evaluation platform: 18 racks x 6 boxes x 8 bricks x 16
  //    units, two-tier optical fabric, Table 2 bandwidth demands.
  risa::sim::Scenario scenario = risa::sim::Scenario::paper_defaults();

  // 2. A small synthetic workload (CPU 1-32 cores, RAM 1-32 GB, 128 GB
  //    storage, Poisson arrivals).
  risa::wl::SyntheticConfig wl_config;
  wl_config.count = static_cast<std::size_t>(flags.i64("vms"));
  const risa::wl::Workload vms = risa::wl::generate_synthetic(
      wl_config, static_cast<std::uint64_t>(flags.i64("seed")));

  // 3. Run the discrete-event simulation with the chosen scheduler.
  risa::sim::Engine engine(scenario, flags.str("algorithm"));
  const risa::sim::SimMetrics metrics = engine.run(vms, "quickstart");

  std::cout << "RISA quickstart -- " << metrics.algorithm << " scheduling "
            << metrics.total_vms << " VMs onto "
            << scenario.cluster.racks << " racks\n\n";

  risa::TextTable summary({"Metric", "Value"});
  summary.add_row({"placed", std::to_string(metrics.placed)});
  summary.add_row({"dropped", std::to_string(metrics.dropped)});
  summary.add_row({"inter-rack placements",
                   std::to_string(metrics.inter_rack_placements)});
  summary.add_row({"avg CPU utilization",
                   risa::TextTable::pct(metrics.avg_utilization.cpu())});
  summary.add_row({"avg RAM utilization",
                   risa::TextTable::pct(metrics.avg_utilization.ram())});
  summary.add_row({"avg storage utilization",
                   risa::TextTable::pct(metrics.avg_utilization.storage())});
  summary.add_row({"avg intra-rack net utilization",
                   risa::TextTable::pct(metrics.avg_intra_net_utilization)});
  summary.add_row({"avg optical power (W)",
                   risa::TextTable::num(metrics.avg_optical_power_w, 1)});
  summary.add_row({"avg CPU-RAM RTT (ns)",
                   risa::TextTable::num(metrics.cpu_ram_latency_ns.mean(), 1)});
  summary.add_row({"scheduler time (ms)",
                   risa::TextTable::num(metrics.scheduler_exec_seconds * 1e3, 3)});
  std::cout << summary << '\n';

  // 4. Direct allocator access: place one VM by hand and inspect it.
  risa::wl::VmRequest vm;
  vm.id = risa::VmId{9999};
  vm.cores = 8;
  vm.ram_mb = risa::gb(16.0);
  vm.storage_mb = risa::gb(128.0);
  vm.arrival = 0.0;
  vm.lifetime = 100.0;
  auto placed = engine.allocator().try_place(vm);
  if (placed.ok()) {
    const auto& p = placed.value();
    std::cout << "Hand-placed VM 9999 (8 cores / 16 GB / 128 GB):\n";
    for (risa::ResourceType t : risa::kAllResources) {
      std::cout << "  " << risa::name(t) << " -> box "
                << p.box(t).value() << " (rack " << p.rack(t).value()
                << ")\n";
    }
    std::cout << "  inter-rack: " << (p.inter_rack ? "yes" : "no") << "\n";
    engine.allocator().release(p);
  } else {
    std::cout << "Hand placement dropped: " << risa::core::name(placed.error())
              << "\n";
  }
  return 0;
}
