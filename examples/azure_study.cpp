// Practical-workload study (paper §5.2): runs all four schedulers over the
// Azure-like subsets (3000/5000/7500 VMs) and prints the Figure 7-10 series:
// inter-rack percentage, network utilization, optical power and CPU-RAM
// round-trip latency.
//
//   $ ./azure_study [--seed=20231112] [--subset=all|3000|5000|7500]
#include <iostream>

#include "common/flags.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  risa::Flags flags;
  flags.define("seed", std::to_string(risa::sim::kDefaultSeed),
               "Workload RNG seed");
  flags.define("subset", "all", "Which subset to run: all | 3000 | 5000 | 7500");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }

  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));
  const std::string subset = flags.str("subset");

  const auto scenario = risa::sim::Scenario::paper_defaults();
  std::vector<risa::sim::SimMetrics> runs;
  for (auto& [label, workload] : risa::sim::azure_workloads(seed)) {
    if (subset != "all" && label.find(subset) == std::string::npos) continue;
    std::cout << "Running " << label << " (" << workload.size()
              << " VMs) x 4 algorithms...\n";
    auto batch = risa::sim::run_all_algorithms(scenario, workload, label);
    runs.insert(runs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  std::cout << '\n';

  std::cout << "Figure 7 -- % inter-rack VM assignments:\n"
            << risa::sim::figure7_table(runs) << '\n'
            << "Figure 8 -- network utilization:\n"
            << risa::sim::figure8_table(runs) << '\n'
            << "Figure 9 -- optical component power:\n"
            << risa::sim::figure9_table(runs) << '\n'
            << "Figure 10 -- average CPU-RAM round-trip latency:\n"
            << risa::sim::figure10_table(runs) << '\n'
            << "Figure 12 -- scheduler execution time shape:\n"
            << risa::sim::exec_time_table(runs, "fig12") << '\n'
            << "Full metrics:\n"
            << risa::sim::full_metrics_table(runs);
  return 0;
}
