// Practical-workload study (paper §5.2): runs all four schedulers over the
// Azure-like subsets (3000/5000/7500 VMs) and prints the Figure 7-10 series:
// inter-rack percentage, network utilization, optical power and CPU-RAM
// round-trip latency.
//
//   $ ./azure_study [--seed=20231112] [--subset=all|3000|5000|7500]
//                   [--threads=N]
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  risa::Flags flags;
  flags.define("seed", std::to_string(risa::sim::kDefaultSeed),
               "Workload RNG seed");
  flags.define("subset", "all", "Which subset to run: all | 3000 | 5000 | 7500");
  risa::define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));
  const std::string subset = flags.str("subset");

  risa::sim::SweepSpec spec;
  spec.scenarios = {{"paper", risa::sim::Scenario::paper_defaults()}};
  if (subset == "all") {
    spec.workloads = risa::sim::WorkloadSpec::azure_all();
  } else {
    try {
      spec.workloads = {risa::sim::WorkloadSpec::azure(subset)};
    } catch (const std::exception&) {
      std::cerr << "unknown subset '" << subset << "'\n";
      return 1;
    }
  }
  spec.seeds = {seed};
  spec.algorithms = risa::core::algorithm_names();

  const risa::sim::SweepRunner runner(risa::thread_count(flags));
  std::cout << "Running " << spec.workloads.size() << " subset(s) x "
            << spec.algorithms.size() << " algorithms on "
            << runner.threads() << " thread(s)...\n\n";
  const auto runs = risa::sim::metrics_of(runner.run(spec));

  std::cout << "Figure 7 -- % inter-rack VM assignments:\n"
            << risa::sim::figure7_table(runs) << '\n'
            << "Figure 8 -- network utilization:\n"
            << risa::sim::figure8_table(runs) << '\n'
            << "Figure 9 -- optical component power:\n"
            << risa::sim::figure9_table(runs) << '\n'
            << "Figure 10 -- average CPU-RAM round-trip latency:\n"
            << risa::sim::figure10_table(runs) << '\n'
            << "Figure 12 -- scheduler execution time shape:\n"
            << risa::sim::exec_time_table(runs, "fig12") << '\n'
            << "Full metrics:\n"
            << risa::sim::full_metrics_table(runs);
  return 0;
}
