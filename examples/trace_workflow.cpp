// Trace workflow: generate -> save -> reload -> verify -> simulate.
// Demonstrates the CSV trace format as the interchange point between the
// generators and external tooling (or recorded production traces).
//
//   $ ./trace_workflow [--out=/tmp/azure3000.csv]
#include <iostream>

#include "common/flags.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "workload/azure.hpp"
#include "workload/trace_io.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("out", "/tmp/risa_azure3000_trace.csv", "Trace file to write");
  if (!flags.parse_or_usage(argc, argv)) return 1;
  const std::string path = flags.str("out");

  // 1. Generate the Azure-3000-like workload and persist it.
  const wl::Workload original =
      wl::generate_azure(wl::azure_3000(), sim::kDefaultSeed);
  wl::save_trace(path, original);
  std::cout << "wrote " << original.size() << " VMs to " << path << '\n';

  // 2. Reload and verify the round trip is exact.
  const wl::Workload reloaded = wl::load_trace(path);
  if (reloaded != original) {
    std::cerr << "round-trip mismatch!\n";
    return 1;
  }
  std::cout << "round-trip verified: traces identical\n";

  // 3. Drive the simulator from the reloaded trace -- identical results to
  //    the in-memory workload, demonstrating trace-driven reproducibility.
  //    One engine serves both runs: run() restores the pristine state in
  //    place, so back-to-back runs behave like fresh stacks.
  sim::Engine engine(sim::Scenario::paper_defaults(), "RISA");
  const auto m1 = engine.run(original, "in-memory");
  const auto m2 = engine.run(reloaded, "from-trace");
  std::cout << "in-memory : placed " << m1.placed << ", power "
            << m1.avg_optical_power_w << " W\n"
            << "from-trace: placed " << m2.placed << ", power "
            << m2.avg_optical_power_w << " W\n";
  return m1.placed == m2.placed ? 0 : 1;
}
