// Synthetic-workload study (paper §5.1): runs NULB, NALB, RISA and RISA-BF
// over the 2500-VM random workload and reports the Figure 5 inter-rack
// counts, the §5.1 average utilizations, and scheduler timing.
//
//   $ ./synthetic_study [--seed=20231112] [--vms=2500]
#include <iostream>

#include "common/flags.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "workload/characterize.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  risa::Flags flags;
  flags.define("seed", std::to_string(risa::sim::kDefaultSeed),
               "Workload RNG seed");
  flags.define("vms", "2500", "Number of synthetic VMs");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage(argv[0]);
    return 1;
  }

  risa::wl::SyntheticConfig config;
  config.count = static_cast<std::size_t>(flags.i64("vms"));
  const auto workload = risa::wl::generate_synthetic(
      config, static_cast<std::uint64_t>(flags.i64("seed")));

  const auto summary = risa::wl::summarize(workload);
  std::cout << "Synthetic workload: " << summary.count << " VMs, mean "
            << summary.mean_cores << " cores / " << summary.mean_ram_gb
            << " GB RAM / " << summary.mean_storage_gb << " GB storage\n"
            << "arrivals span [" << summary.first_arrival << ", "
            << summary.last_arrival << "] tu, lifetimes ["
            << summary.min_lifetime << ", " << summary.max_lifetime
            << "] tu\n\n";

  const auto scenario = risa::sim::Scenario::paper_defaults();
  const auto runs =
      risa::sim::run_all_algorithms(scenario, workload, "Synthetic");

  std::cout << "Figure 5 -- inter-rack VM assignments:\n"
            << risa::sim::figure5_table(runs) << '\n'
            << "Average utilization (paper: CPU 64.66 / RAM 65.11 / STO 31.72):\n"
            << risa::sim::utilization_table(runs) << '\n'
            << "Figure 11 -- scheduler execution time shape:\n"
            << risa::sim::exec_time_table(runs, "fig11") << '\n'
            << "Full metrics:\n"
            << risa::sim::full_metrics_table(runs);
  return 0;
}
