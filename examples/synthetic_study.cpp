// Synthetic-workload study (paper §5.1): runs NULB, NALB, RISA and RISA-BF
// over the 2500-VM random workload and reports the Figure 5 inter-rack
// counts, the §5.1 average utilizations, and scheduler timing.
//
//   $ ./synthetic_study [--seed=20231112] [--vms=2500] [--threads=N]
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "workload/characterize.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  risa::Flags flags;
  flags.define("seed", std::to_string(risa::sim::kDefaultSeed),
               "Workload RNG seed");
  flags.define("vms", "2500", "Number of synthetic VMs");
  risa::define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  const auto count = static_cast<std::size_t>(flags.i64("vms"));
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));

  {
    risa::wl::SyntheticConfig config;
    config.count = count;
    const auto workload = risa::wl::generate_synthetic(config, seed);
    const auto summary = risa::wl::summarize(workload);
    std::cout << "Synthetic workload: " << summary.count << " VMs, mean "
              << summary.mean_cores << " cores / " << summary.mean_ram_gb
              << " GB RAM / " << summary.mean_storage_gb << " GB storage\n"
              << "arrivals span [" << summary.first_arrival << ", "
              << summary.last_arrival << "] tu, lifetimes ["
              << summary.min_lifetime << ", " << summary.max_lifetime
              << "] tu\n\n";
  }

  risa::sim::SweepSpec spec;
  spec.scenarios = {{"paper", risa::sim::Scenario::paper_defaults()}};
  spec.workloads = {risa::sim::WorkloadSpec::synthetic(count)};
  spec.seeds = {seed};
  spec.algorithms = risa::core::algorithm_names();
  const auto runs = risa::sim::metrics_of(
      risa::sim::SweepRunner(risa::thread_count(flags)).run(spec));

  std::cout << "Figure 5 -- inter-rack VM assignments:\n"
            << risa::sim::figure5_table(runs) << '\n'
            << "Average utilization (paper: CPU 64.66 / RAM 65.11 / STO 31.72):\n"
            << risa::sim::utilization_table(runs) << '\n'
            << "Figure 11 -- scheduler execution time shape:\n"
            << risa::sim::exec_time_table(runs, "fig11") << '\n'
            << "Full metrics:\n"
            << risa::sim::full_metrics_table(runs);
  return 0;
}
