// The full figure-suite sweep in one command: every table behind Figures 5
// and 7-12 (plus the §5.1 utilization text), computed from a single
// (scenario x workload x seed x algorithm) matrix on the thread pool and
// emitted through the unified JSON/CSV reporters.
//
//   $ ./figure_suite                         # all tables, default threads
//   $ ./figure_suite --threads=8             # explicit worker count
//   $ ./figure_suite --json=suite.json --csv=suite.csv
//   $ ./figure_suite --verify                # run twice, compare digests
//
// The sweep is byte-deterministic at any thread count; --verify proves it
// on the spot by re-running serially and comparing metric fingerprints.
// Scheduler timing (Figures 11/12 shape) is reported from whatever thread
// count you pick; for publication-grade timing use the dedicated
// bench_fig11/bench_fig12 binaries, which sweep serially.
#include <chrono>
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  flags.define("seed", std::to_string(sim::kDefaultSeed), "Workload RNG seed");
  flags.define("json", "", "Write the unified sweep JSON to this file");
  flags.define("csv", "", "Write the unified sweep CSV to this file");
  flags.define("faults", "",
               "FaultPlan JSON file applied to every cell of the matrix");
  flags.define("migrations", "",
               "MigrationPlan JSON file applied to every cell of the matrix");
  flags.define("trace-dir", "",
               "Write a per-cell Perfetto trace into this directory "
               "(must exist; observation only, results are unchanged)");
  flags.define("trace-categories", "all",
               "Trace categories for --trace-dir: csv of "
               "lifecycle,placement,power,calendar | all | none");
  flags.define("verify", "false",
               "Re-run the matrix serially and compare bit-exact digests");
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));
  sim::SweepSpec spec = sim::SweepSpec::figure_matrix(seed);
  if (!flags.str("faults").empty()) {
    const sim::FaultPlan plan = sim::load_fault_plan_file(flags.str("faults"));
    // A one-entry fault axis (factor 1: cell count and indexing unchanged)
    // so every result row carries the plan's label.
    spec.fault_plans.emplace_back(flags.str("faults"), plan);
    std::cout << "fault plan applied: " << plan.actions.size()
              << " action(s), retry max_attempts=" << plan.retry.max_attempts
              << "\n\n";
  }
  if (!flags.str("migrations").empty()) {
    const sim::MigrationPlan plan =
        sim::load_migration_plan_file(flags.str("migrations"));
    // Same one-entry-axis trick as --faults: factor 1, labeled rows.
    spec.migration_plans.emplace_back(flags.str("migrations"), plan);
    std::cout << "migration plan applied: period=" << plan.period_tu
              << " tu, per_sweep=" << plan.per_sweep_budget
              << ", total_budget=" << plan.total_budget << "\n\n";
  }
  if (!flags.str("trace-dir").empty()) {
    spec.trace_dir = flags.str("trace-dir");
    spec.telemetry.categories =
        sim::parse_trace_categories(flags.str("trace-categories"));
    std::cout << "per-cell traces: " << spec.trace_dir << "/cell<i>.*.json\n\n";
  }
  const sim::SweepRunner runner(thread_count(flags));

  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto results = runner.run(spec);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const auto runs = sim::metrics_of(results);

  std::cout << "figure suite: " << spec.cell_count() << " cells on "
            << runner.threads() << " thread(s) in "
            << TextTable::num(wall_s, 2) << " s\n\n";

  // Synthetic rows feed Figures 5/11; Azure rows feed Figures 7-10/12.
  std::vector<sim::SimMetrics> synthetic, azure;
  for (const auto& m : runs) {
    (m.workload == "Synthetic" ? synthetic : azure).push_back(m);
  }

  std::cout << "=== Figure 5: inter-rack VM assignments (synthetic) ===\n"
            << sim::figure5_table(synthetic) << '\n'
            << "=== SS5.1 text: average utilization (synthetic) ===\n"
            << sim::utilization_table(synthetic) << '\n'
            << "=== Figure 7: % inter-rack VM assignments (Azure) ===\n"
            << sim::figure7_table(azure) << '\n'
            << "=== Figure 8: network utilization (Azure) ===\n"
            << sim::figure8_table(azure) << '\n'
            << "=== Figure 9: optical component power (Azure) ===\n"
            << sim::figure9_table(azure) << '\n'
            << "=== Figure 10: CPU-RAM round-trip latency (Azure) ===\n"
            << sim::figure10_table(azure) << '\n'
            << "=== Figure 11 shape: scheduler execution time (synthetic) "
               "===\n"
            << sim::exec_time_table(synthetic, "fig11") << '\n'
            << "=== Figure 12 shape: scheduler execution time (Azure) ===\n"
            << sim::exec_time_table(azure, "fig12") << '\n'
            << "=== Full metrics ===\n"
            << sim::full_metrics_table(runs);
  if (!flags.str("faults").empty()) {
    std::cout << "\n=== Lifecycle outcomes (fault plan) ===\n"
              << sim::lifecycle_table(results);
  }
  if (!flags.str("migrations").empty()) {
    std::cout << "\n=== Defragmentation outcomes (migration plan) ===\n"
              << sim::migration_table(results);
  }

  if (!flags.str("json").empty() &&
      !sim::write_sweep_json(flags.str("json"), "figure_suite", results)) {
    return 1;
  }
  if (!flags.str("json").empty()) {
    std::cout << "\nwrote sweep JSON: " << flags.str("json") << '\n';
  }
  if (!flags.str("csv").empty() &&
      !sim::write_sweep_csv(flags.str("csv"), results)) {
    return 1;
  }
  if (!flags.str("csv").empty()) {
    std::cout << "wrote sweep CSV: " << flags.str("csv") << '\n';
  }

  if (flags.b("verify")) {
    const auto serial = sim::SweepRunner(1).run(spec);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (sim::metrics_fingerprint(results[i].metrics) !=
          sim::metrics_fingerprint(serial[i].metrics)) {
        std::cerr << "DETERMINISM VIOLATION in cell " << i << " ("
                  << results[i].metrics.workload << ", "
                  << results[i].metrics.algorithm << ")\n";
        return 1;
      }
    }
    std::cout << "\nverified: " << results.size() << " cells bit-identical "
              << "between " << runner.threads() << " thread(s) and serial\n";
  }
  return 0;
}
