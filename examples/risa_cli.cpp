// risa_cli: the full-featured simulation CLI.
//
// Drives any scheduler over any workload with optional scenario overrides
// from a config file, CSV trace input/output, and time-series export --
// the tool a datacenter researcher would actually run.
//
// Examples:
//   risa_cli --algorithm=RISA --workload=azure-5000
//   risa_cli --algorithm=NALB --workload=synthetic --timeline-csv=run.csv
//   risa_cli --scenario=my.conf --trace-in=recorded.csv
//   risa_cli --workload=synthetic --trace-out=synthetic.csv --dry-run
//
// Streaming mode (`--streaming`) pulls arrivals from an on-demand source
// (synthetic/azure generators or --trace-in) instead of materializing the
// workload -- bit-identical metrics, bounded memory (DESIGN.md §11) -- and
// unlocks checkpointing: `--checkpoint-out=F --checkpoint-every=N` rewrites
// F with the full engine state every N events, and `--resume=F` continues
// such a run bit-identically (pass the same workload/seed flags so the
// source regenerates the identical stream):
//   risa_cli --streaming --count=10000000
//            --checkpoint-out=run.ckpt --checkpoint-every=1000000
//   risa_cli --streaming --count=10000000 --resume=run.ckpt
#include <fstream>
#include <iostream>
#include <memory>

#include "common/flags.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/scenario_io.hpp"
#include "sim/sweep.hpp"
#include "sim/telemetry.hpp"
#include "sim/timeline.hpp"
#include "workload/arrival_source.hpp"
#include "workload/azure.hpp"
#include "workload/characterize.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("algorithm", "RISA",
               "NULB | NALB | RISA | RISA-BF | RANDOM | FF | WF");
  flags.define("workload", "synthetic",
               "synthetic | azure-3000 | azure-5000 | azure-7500");
  flags.define("seed", std::to_string(sim::kDefaultSeed), "Workload RNG seed");
  flags.define("scenario", "", "Scenario config file (see sim/scenario_io.hpp)");
  flags.define("faults", "",
               "FaultPlan JSON file: scripted box/link fail/repair + retry "
               "policy");
  flags.define("migrations", "",
               "MigrationPlan JSON file: periodic defragmentation sweeps");
  flags.define("dump-scenario", "", "Write the resolved scenario to this file");
  flags.define("trace-in", "", "Load the workload from this CSV trace instead");
  flags.define("trace-out", "", "Save the generated workload to this CSV trace");
  flags.define("timeline-csv", "", "Export a per-event time series to this CSV");
  flags.define("dry-run", "false", "Generate/convert workloads without simulating");
  flags.define("streaming", "false",
               "Pull arrivals from a streaming source (bounded memory, "
               "bit-identical metrics)");
  flags.define("count", "0",
               "Override the synthetic workload's VM count (0 = default)");
  flags.define("checkpoint-out", "",
               "Rewrite this file with the engine state every "
               "--checkpoint-every events (requires --streaming)");
  flags.define("checkpoint-every", "0",
               "Checkpoint cadence in executed events (0 = off)");
  flags.define("resume", "",
               "Resume a streaming run from this checkpoint file (implies "
               "--streaming; pass the original workload/seed flags)");
  flags.define("profile", "false",
               "Print the phase-attributed wall-time breakdown of the run "
               "(sim/phase_profiler.hpp); metrics are unchanged");
  flags.define("trace", "",
               "Write a Chrome-trace/Perfetto JSON of the run to this file "
               "(sim/telemetry.hpp); metrics are unchanged");
  flags.define("trace-categories", "all",
               "Comma list of trace categories: "
               "lifecycle,placement,power,calendar | all | none");
  flags.define("trace-cadence", "0",
               "Minimum sim-time units between counter-track samples "
               "(0 = sample at every window boundary)");
  flags.define("metrics-json", "",
               "Export the run's MetricsRegistry snapshot (counters incl. "
               "the drop-reason breakdown) as JSON to this file; requires "
               "--trace or --trace-categories");
  flags.define("trace-summary", "",
               "Offline mode: summarize an existing trace file (top spans, "
               "counter min/mean/max, drop counts) and exit; no simulation");
  if (!flags.parse_or_usage(argc, argv)) return 1;

  // Offline trace inspection: parse + aggregate + well-formedness check.
  // Exit 0 only for a parseable, well-formed trace (CI leans on this).
  if (!flags.str("trace-summary").empty()) {
    try {
      const sim::TraceSummary summary =
          sim::summarize_trace_file(flags.str("trace-summary"));
      std::cout << format_trace_summary(summary);
      return summary.well_formed() ? 0 : 1;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
  }

  try {
    // 1. Scenario.
    sim::Scenario scenario = flags.str("scenario").empty()
                                 ? sim::Scenario::paper_defaults()
                                 : sim::load_scenario_file(flags.str("scenario"));
    if (!flags.str("faults").empty()) {
      scenario.faults = sim::load_fault_plan_file(flags.str("faults"));
      std::cout << "fault plan: " << scenario.faults.actions.size()
                << " action(s), retry max_attempts="
                << scenario.faults.retry.max_attempts << '\n';
    }
    if (!flags.str("migrations").empty()) {
      scenario.migrations =
          sim::load_migration_plan_file(flags.str("migrations"));
      std::cout << "migration plan: period="
                << scenario.migrations.period_tu << " tu, per_sweep="
                << scenario.migrations.per_sweep_budget << ", total_budget="
                << scenario.migrations.total_budget << '\n';
    }
    if (!flags.str("dump-scenario").empty()) {
      sim::save_scenario_file(flags.str("dump-scenario"), scenario);
      std::cout << "scenario written to " << flags.str("dump-scenario") << '\n';
      if (!scenario.faults.empty()) {
        // The flat key=value format cannot express the fault plan; dump it
        // alongside so the pair reproduces this run.
        const std::string faults_path =
            flags.str("dump-scenario") + ".faults.json";
        sim::save_fault_plan_file(faults_path, scenario.faults);
        std::cout << "fault plan written to " << faults_path
                  << " (pass it back via --faults; the scenario file alone "
                     "runs fault-free)\n";
      }
      if (!scenario.migrations.empty()) {
        const std::string mig_path =
            flags.str("dump-scenario") + ".migrations.json";
        sim::save_migration_plan_file(mig_path, scenario.migrations);
        std::cout << "migration plan written to " << mig_path
                  << " (pass it back via --migrations)\n";
      }
    }

    // 2. Workload.
    const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));
    const bool streaming = flags.b("streaming") || !flags.str("resume").empty();
    wl::Workload workload;
    std::unique_ptr<wl::ArrivalSource> source;
    std::string label = flags.str("workload");
    if (streaming) {
      if (flags.b("dry-run") || !flags.str("trace-out").empty()) {
        std::cerr << "--streaming never materializes the workload; it is "
                     "incompatible with --dry-run and --trace-out\n";
        return 1;
      }
      if (!flags.str("trace-in").empty()) {
        source = std::make_unique<wl::TraceStreamSource>(flags.str("trace-in"));
        label = flags.str("trace-in");
      } else if (label == "synthetic") {
        wl::SyntheticConfig cfg;
        if (flags.i64("count") > 0) {
          cfg.count = static_cast<std::size_t>(flags.i64("count"));
        }
        source = std::make_unique<wl::SyntheticStreamSource>(cfg, seed);
      } else {
        for (const wl::AzureSpec& spec : wl::azure_all_subsets()) {
          if (to_lower(spec.label) == to_lower(label)) {
            source = std::make_unique<wl::AzureStreamSource>(spec, seed);
          }
        }
        if (source == nullptr) {
          std::cerr << "unknown workload '" << label << "'\n";
          return 1;
        }
      }
      std::cout << "workload: " << label << " (streaming)\n";
    } else {
      if (!flags.str("trace-in").empty()) {
        workload = wl::load_trace(flags.str("trace-in"));
        label = flags.str("trace-in");
      } else if (label == "synthetic") {
        wl::SyntheticConfig cfg;
        if (flags.i64("count") > 0) {
          cfg.count = static_cast<std::size_t>(flags.i64("count"));
        }
        workload = wl::generate_synthetic(cfg, seed);
      } else {
        for (auto& [name, w] : sim::azure_workloads(seed)) {
          if (to_lower(name) == to_lower(label)) workload = std::move(w);
        }
        if (workload.empty()) {
          std::cerr << "unknown workload '" << label << "'\n";
          return 1;
        }
      }
      if (!flags.str("trace-out").empty()) {
        wl::save_trace(flags.str("trace-out"), workload);
        std::cout << "trace written to " << flags.str("trace-out") << " ("
                  << workload.size() << " VMs)\n";
      }

      const auto summary = wl::summarize(workload);
      std::cout << "workload: " << label << " -- " << summary.count
                << " VMs, mean " << TextTable::num(summary.mean_cores, 2)
                << " cores / " << TextTable::num(summary.mean_ram_gb, 2)
                << " GB RAM / " << TextTable::num(summary.mean_storage_gb, 0)
                << " GB storage\n";
      if (flags.b("dry-run")) return 0;
    }

    // 3. Simulate.
    sim::Engine engine(scenario, flags.str("algorithm"));
    engine.set_profiling(flags.b("profile"));
    sim::Timeline timeline;
    if (!flags.str("timeline-csv").empty()) {
      engine.set_timeline(&timeline);
    }
    // Telemetry (DESIGN.md §14): armed by --trace (file output) or
    // --metrics-json (registry-only).  Observation only -- the printed
    // metrics and fingerprint are identical with or without it.
    std::unique_ptr<sim::Telemetry> telemetry;
    if (!flags.str("trace").empty() || !flags.str("metrics-json").empty()) {
      sim::TelemetryConfig tcfg;
      tcfg.trace_path = flags.str("trace");
      tcfg.categories =
          sim::parse_trace_categories(flags.str("trace-categories"));
      tcfg.sample_cadence_tu = flags.f64("trace-cadence");
      telemetry = std::make_unique<sim::Telemetry>(std::move(tcfg));
      engine.set_telemetry(telemetry.get());
    }
    sim::SimMetrics m;
    if (streaming) {
      const std::string ckpt_path = flags.str("checkpoint-out");
      const auto ckpt_every =
          static_cast<std::uint64_t>(flags.i64("checkpoint-every"));
      if (ckpt_path.empty() != (ckpt_every == 0)) {
        std::cerr << "--checkpoint-out and --checkpoint-every must be given "
                     "together\n";
        return 1;
      }
      sim::CheckpointPolicy policy;
      policy.every_events = ckpt_every;
      policy.emit = [&ckpt_path](const std::string& bytes) {
        std::ofstream os(ckpt_path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!os) {
          throw std::runtime_error("checkpoint write failed: " + ckpt_path);
        }
      };
      const sim::CheckpointPolicy* p = ckpt_every > 0 ? &policy : nullptr;
      if (!flags.str("resume").empty()) {
        std::ifstream is(flags.str("resume"), std::ios::binary);
        if (!is) {
          throw std::runtime_error("cannot open checkpoint: " +
                                   flags.str("resume"));
        }
        m = engine.resume_stream(is, *source, p);
        std::cout << "resumed from " << flags.str("resume") << '\n';
      } else {
        m = engine.run_stream(*source, label, p);
      }
      if (ckpt_every > 0) {
        std::cout << "checkpoints (every " << ckpt_every << " events) -> "
                  << ckpt_path << '\n';
      }
      // The bit-exact digest (sweep.hpp): lets a resumed run be diffed
      // against an uninterrupted one by comparing a single line.
      std::cout << "fingerprint: " << sim::metrics_fingerprint(m) << '\n';
    } else {
      m = engine.run(workload, label);
    }

    std::cout << '\n' << sim::full_metrics_table({m});
    if (m.killed > 0 || m.requeued > 0 || m.degraded_tu > 0.0) {
      std::cout << "lifecycle: killed=" << m.killed
                << " requeued=" << m.requeued
                << " retry_placed=" << m.retry_placed << " degraded_tu="
                << TextTable::num(m.degraded_tu, 1) << '\n';
    }
    if (m.migrated > 0 || !scenario.migrations.empty()) {
      std::cout << "migrations: migrated=" << m.migrated
                << " interrack_recovered=" << m.interrack_vms_recovered
                << " migration_tu=" << TextTable::num(m.migration_tu, 1)
                << '\n';
    }
    if (m.dropped > 0) {
      std::cout << "drops by reason:";
      for (const auto& [reason, count] : m.drops_by_reason.items()) {
        std::cout << "  " << reason << "=" << count;
      }
      std::cout << '\n';
    }

    if (m.profile.recorded) {
      std::cout << "phase profile (seconds; exclusive spans, sum <= sim_s="
                << TextTable::num(m.sim_wall_seconds, 4) << "):\n";
      for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
        std::cout << "  " << sim::kPhaseNames[p] << ": "
                  << TextTable::num(m.profile.seconds[p], 4) << '\n';
      }
      std::cout << "  (unattributed: "
                << TextTable::num(m.sim_wall_seconds - m.profile.total(), 4)
                << ")\n";
    }

    if (!flags.str("timeline-csv").empty()) {
      timeline.save_csv(flags.str("timeline-csv"));
      std::cout << "timeline (" << timeline.size() << " points, peak "
                << timeline.peak_active_vms() << " active VMs) written to "
                << flags.str("timeline-csv") << '\n';
    }
    if (telemetry != nullptr) {
      telemetry->close();
      if (!flags.str("trace").empty()) {
        std::cout << "trace (" << telemetry->writer().emitted()
                  << " events, " << telemetry->writer().dropped()
                  << " overflow-dropped) written to " << flags.str("trace")
                  << '\n';
      }
      if (!flags.str("metrics-json").empty()) {
        std::ofstream os(flags.str("metrics-json"), std::ios::trunc);
        os << telemetry->registry().snapshot_json() << '\n';
        if (!os) {
          throw std::runtime_error("metrics JSON write failed: " +
                                   flags.str("metrics-json"));
        }
        std::cout << "metrics registry written to "
                  << flags.str("metrics-json") << '\n';
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
