// Interactive walk-through of the paper's §4.3 toy examples, placing one
// VM at a time and printing the cluster state between steps.  A compact
// demonstration of driving allocators directly (no simulation engine).
//
//   $ ./toy_examples
#include <iostream>

#include "common/table.hpp"
#include "core/registry.hpp"
#include "sim/experiments.hpp"

using namespace risa;

namespace {

void print_cluster_state(const topo::Cluster& cluster) {
  TextTable t({"Type", "id", "rack", "capacity", "available"});
  for (ResourceType type : kAllResources) {
    for (BoxId id : cluster.boxes_of_type(type)) {
      const topo::Box& box = cluster.box(id);
      t.add_row({std::string(name(type)),
                 std::to_string(box.index_in_type()),
                 std::to_string(box.rack().value()),
                 std::to_string(box.capacity_units()),
                 std::to_string(box.available_units())});
    }
  }
  std::cout << t;
}

}  // namespace

int main() {
  std::cout << "Toy example 1 -- the Table 3 state:\n";
  {
    auto stack = sim::make_table3_stack();
    print_cluster_state(stack->cluster());

    const wl::VmRequest vm = sim::toy_vm(0, 8, 16.0, 128.0);
    std::cout << "\nPlacing a VM of 8 cores / 16 GB RAM / 128 GB storage "
                 "with each algorithm:\n";
    for (const std::string& algo : core::algorithm_names()) {
      auto fresh = sim::make_table3_stack();
      auto allocator = core::make_allocator(algo, fresh->context());
      auto placed = allocator->try_place(vm);
      std::cout << "  " << algo << ": ";
      if (!placed.ok()) {
        std::cout << "dropped (" << core::name(placed.error()) << ")\n";
        continue;
      }
      for (ResourceType t : kAllResources) {
        std::cout << name(t) << "->box"
                  << fresh->cluster().box(placed->box(t)).index_in_type()
                  << "(rack" << placed->rack(t).value() << ") ";
      }
      std::cout << (placed->inter_rack ? "[INTER-RACK]" : "[intra-rack]")
                << '\n';
    }
  }

  std::cout << "\nToy example 2 -- next-fit vs best-fit packing, step by "
               "step:\n";
  {
    auto stack = sim::make_table4_stack();
    auto risa = core::make_allocator("RISA", stack->context());
    constexpr std::int64_t kSeq[] = {15, 10, 30, 12, 5, 8, 16, 4};
    const auto& cluster = stack->cluster();
    const auto& rack1_cpu =
        cluster.boxes_of_type_in_rack(RackId{1}, ResourceType::Cpu);
    for (std::size_t i = 0; i < std::size(kSeq); ++i) {
      auto placed = risa->try_place(
          sim::toy_vm(static_cast<std::uint32_t>(i), kSeq[i], 1.0, 64.0));
      std::cout << "  VM " << i << " (" << kSeq[i] << " cores): ";
      if (placed.ok()) {
        std::cout << "box "
                  << cluster.box(placed->box(ResourceType::Cpu)).index_in_type() - 2;
      } else {
        std::cout << "DROPPED";
      }
      std::cout << "   [rack-1 boxes now "
                << cluster.box(rack1_cpu[0]).available_units() << " / "
                << cluster.box(rack1_cpu[1]).available_units()
                << " cores free]\n";
    }
  }
  return 0;
}
