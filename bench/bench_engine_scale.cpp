// Engine-scale churn: end-to-end DES throughput as the workload grows
// from 10k to 500k VMs (google-benchmark harness); the committed baseline
// additionally measures a 5M-VM row.
//
// Where Figures 11/12 isolate the *policy* (sched_s = time inside
// Allocator::try_place), this bench measures the *dispatch loop* around
// it: sim_s (whole Engine::run wall time) and events/sec (one event per
// arrival plus one per departure).  Under the paper's arrival process the
// live-VM census is bounded (by lifetime/interarrival, and past ~10k VMs
// by cluster capacity -- the cluster saturates and placements ride on
// departures), so larger N means a longer steady-state churn phase at the
// same heap depth -- exactly the regime the typed calendar + arrival
// cursor design targets (DESIGN.md §7).
//
// Driver mode: `--emit_json[=path]` replays every (count x algorithm)
// cell through a serial latency-recording sweep and writes the committed
// BENCH_engine.json baseline via the unified emitter.  One unrecorded
// warmup sweep always runs first (page faults, allocator pools and the
// workload cache land outside the measurement), and `--repeat=N` measures
// N recorded sweeps keeping each cell's best (lowest sim_s) -- placement
// counts must be identical across repeats or the driver aborts, so the
// baseline stays a determinism witness.
// CI smoke: `--benchmark_filter=10000$ --benchmark_min_time=...` runs
// just the smallest count per algorithm.
//
// Streaming mode: `--streaming[=COUNT]` (default 10M VMs) replaces the
// interactive grid with pull-based Engine::run_stream rows at 500k VMs
// (the materialized-comparison point) and COUNT VMs, recording peak RSS
// (VmHWM from /proc/self/status) per row.  Streaming rows execute before
// anything materializes a workload, so the process-wide high-water mark
// they record is genuinely the streaming pipeline's.  Each row also
// records source_s -- the stream drained standalone -- because sim_s in a
// pull run includes on-the-fly synthesis that materialized rows pay
// before their timer starts; events / (sim_s - source_s) is the
// apples-to-apples engine throughput (Engine::run and run_stream share
// one loop, so the pipeline itself adds no per-event work).  `--rss_limit_mb=N`
// exits nonzero when the post-streaming VmHWM exceeds N (the CI bounded-
// memory assertion), and `--rss` prints the final VmHWM for any mode.
// With `--emit_json`, streaming rows are appended to the committed
// baseline after the materialized grid.
//
// `--trace[=PATH]` (default bench_engine_trace.json) runs one extra
// telemetry-armed 500k streaming row at the very end -- outside every
// timed window, so the measured rows stay a fair disabled-path baseline
// (the CI telemetry job compares a traced risa_cli run against them).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "sim/telemetry.hpp"
#include "workload/arrival_source.hpp"
#include "workload/synthetic.hpp"

namespace {

constexpr std::size_t kScaleCounts[] = {10'000, 50'000, 100'000, 500'000};

/// Driver-mode grid: the committed baseline additionally carries a 5M-VM
/// row (events scale 10x past the largest interactive count; the live-VM
/// census stays cluster-bounded, so this probes the long steady-state
/// churn phase, not a bigger heap).  Kept out of the google-benchmark grid
/// to keep interactive runs quick.
constexpr std::size_t kBaselineCounts[] = {10'000, 50'000, 100'000, 500'000,
                                           5'000'000};

const risa::wl::Workload& workload(std::size_t count) {
  static std::map<std::size_t, risa::wl::Workload> cache;
  auto it = cache.find(count);
  if (it == cache.end()) {
    risa::wl::SyntheticConfig cfg;
    cfg.count = count;
    it = cache.emplace(count, risa::wl::generate_synthetic(
                                  cfg, risa::sim::kDefaultSeed)).first;
  }
  return it->second;
}

std::string scale_label(std::size_t count) {
  return "synthetic-" + std::to_string(count);
}

void run_churn(benchmark::State& state, const char* algo) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const risa::wl::Workload& w = workload(count);
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  // One unmeasured warmup run: the engine's pools/calendars reach their
  // high-water marks, so measured iterations see the steady-state reuse
  // path (and first-touch page faults stay out of the numbers).
  { const auto warm = engine.run(w, scale_label(count)); benchmark::DoNotOptimize(warm.placed); }
  double sim_seconds = 0.0;
  double sched_seconds = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const risa::sim::SimMetrics m = engine.run(w, scale_label(count));
    sim_seconds += m.sim_wall_seconds;
    sched_seconds += m.scheduler_exec_seconds;
    events = m.events_executed;
    benchmark::DoNotOptimize(m.placed);
  }
  state.counters["sim_s"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kAvgIterations);
  state.counters["sched_s"] =
      benchmark::Counter(sched_seconds, benchmark::Counter::kAvgIterations);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events) * static_cast<double>(state.iterations()) /
          sim_seconds,
      benchmark::Counter::kDefaults);
}

void BM_Churn_Nulb(benchmark::State& s) { run_churn(s, "NULB"); }
void BM_Churn_Nalb(benchmark::State& s) { run_churn(s, "NALB"); }
void BM_Churn_Risa(benchmark::State& s) { run_churn(s, "RISA"); }
void BM_Churn_RisaBf(benchmark::State& s) { run_churn(s, "RISA-BF"); }

void scale_args(benchmark::internal::Benchmark* b) {
  for (std::size_t count : kScaleCounts) {
    b->Arg(static_cast<std::int64_t>(count));
  }
  b->Unit(benchmark::kMillisecond);
}

// No hardcoded MinTime (see bench_fig11): the CI smoke cap must win.
BENCHMARK(BM_Churn_Nulb)->Apply(scale_args);
BENCHMARK(BM_Churn_Nalb)->Apply(scale_args);
BENCHMARK(BM_Churn_Risa)->Apply(scale_args);
BENCHMARK(BM_Churn_RisaBf)->Apply(scale_args);

/// Consume `--repeat=N` from argv before benchmark::Initialize sees it
/// (same contract as consume_emit_json_flag).  Returns max(N, 1).
int consume_repeat_flag(int& argc, char** argv) {
  int repeats = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--repeat=", 0) == 0) {
      repeats = std::atoi(argv[i] + 9);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  return repeats > 1 ? repeats : 1;
}

/// Consume `--NAME` or `--NAME=V` (same contract as consume_emit_json_flag).
/// Returns `absent` when missing, `bare` for the valueless form, else V.
std::int64_t consume_i64_flag(int& argc, char** argv, std::string_view name,
                              std::int64_t absent, std::int64_t bare) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind(name, 0) != 0) continue;
    const std::string_view rest = arg.substr(name.size());
    if (!rest.empty() && rest[0] != '=') continue;
    const std::int64_t value =
        rest.empty() ? bare : std::atoll(arg.data() + name.size() + 1);
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    return value;
  }
  return absent;
}

/// Consume `--baseline[=PATH]` (same contract as consume_emit_json_flag):
/// the committed JSON to diff profiled rows against.  Bare form and absence
/// both mean the committed default -- the diff is best-effort and prints
/// nothing when the file is missing.
std::string consume_baseline_flag(int& argc, char** argv) {
  std::string path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--baseline", 0) != 0) continue;
    const std::string_view rest = arg.substr(10);
    if (!rest.empty() && rest[0] != '=') continue;
    if (!rest.empty()) path.assign(rest.substr(1));
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    break;
  }
  return path;
}

/// Consume `--trace[=PATH]` (same contract as consume_baseline_flag).
/// Empty when absent; the bare form names the conventional output.
std::string consume_trace_flag(int& argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--trace", 0) != 0) continue;
    const std::string_view rest = arg.substr(7);
    if (!rest.empty() && rest[0] != '=') continue;
    path = rest.empty() ? "bench_engine_trace.json"
                        : std::string(rest.substr(1));
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    break;
  }
  return path;
}

/// One committed row's wall-clock figures, hand-extracted from the pretty-
/// printed baseline JSON (one key per line; see write_scheduler_bench_json).
struct BaselineRow {
  bool found = false;
  double sim_s = 0.0;
  double events_per_sec = 0.0;
  std::array<double, risa::sim::kNumPhases> phase_s{};
  std::array<bool, risa::sim::kNumPhases> phase_present{};
};

/// First number after `"key":` within `region`, or `fallback`.
double extract_number(std::string_view region, const std::string& key,
                      double fallback) {
  const std::size_t at = region.find("\"" + key + "\":");
  if (at == std::string_view::npos) return fallback;
  return std::atof(region.data() + at + key.size() + 3);
}

/// Find the (workload, algorithm) entry in the committed baseline.  The
/// emitter writes entries workload-outer/algorithm-inner with one
/// "workload" key each, so entry regions are delimited by that key.
BaselineRow find_baseline_row(const std::string& json,
                              const std::string& workload,
                              const std::string& algo) {
  BaselineRow row;
  const std::string workload_key = "\"workload\": \"" + workload + "\"";
  const std::string algo_key = "\"algorithm\": \"" + algo + "\"";
  std::size_t at = 0;
  while ((at = json.find(workload_key, at)) != std::string::npos) {
    std::size_t end = json.find("\"workload\"", at + workload_key.size());
    if (end == std::string::npos) end = json.size();
    const std::string_view region(json.data() + at, end - at);
    at = end;
    if (region.find(algo_key) == std::string_view::npos) continue;
    row.found = true;
    row.sim_s = extract_number(region, "sim_s", 0.0);
    row.events_per_sec = extract_number(region, "events_per_sec", 0.0);
    const std::size_t prof = region.find("\"profile\"");
    if (prof != std::string_view::npos) {
      const std::string_view prof_region = region.substr(prof);
      for (std::size_t p = 0; p < risa::sim::kNumPhases; ++p) {
        const std::string name(risa::sim::kPhaseNames[p]);
        row.phase_present[p] =
            prof_region.find("\"" + name + "\":") != std::string_view::npos;
        if (row.phase_present[p]) {
          row.phase_s[p] = extract_number(prof_region, name, 0.0);
        }
      }
    }
    return row;
  }
  return row;
}

/// The --profile rider: per-phase wall-time delta of a freshly measured
/// row against the committed baseline, so a perf PR's attribution shift is
/// visible in the bench output itself (phases the baseline predates --
/// e.g. `merge` before §13 -- are marked "new").
void print_profile_delta(const risa::sim::SchedulerBenchEntry& e,
                         const std::string& baseline_json,
                         const std::string& baseline_path) {
  const BaselineRow base =
      find_baseline_row(baseline_json, e.workload, e.algorithm);
  if (!base.found) return;
  std::cout << "  delta vs " << baseline_path << ":";
  for (std::size_t p = 0; p < risa::sim::kNumPhases; ++p) {
    std::cout << " " << risa::sim::kPhaseNames[p] << "=";
    if (base.phase_present[p]) {
      const double d = e.profile.seconds[p] - base.phase_s[p];
      std::cout << (d >= 0.0 ? "+" : "") << d;
    } else {
      std::cout << "+" << e.profile.seconds[p] << "(new)";
    }
  }
  std::cout << " | sim_s " << base.sim_s << "->" << e.sim_s;
  if (base.events_per_sec > 0.0) {
    const double pct =
        100.0 * (e.events_per_sec / base.events_per_sec - 1.0);
    std::cout << " events_per_sec " << (pct >= 0.0 ? "+" : "") << pct << "%";
  }
  std::cout << "\n";
}

/// Process-wide peak resident set (VmHWM) in MB, or -1 when unreadable.
/// Monotone over the process lifetime -- which is exactly why the streaming
/// rows run before anything materializes a workload.
double read_peak_rss_mb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atof(line.c_str() + 6) / 1024.0;  // value is in kB
    }
  }
  return -1.0;
}

/// One streaming row: a pull-based run over the on-demand synthetic
/// generator with the bounded Log2Histogram as the latency sink (a vector
/// sink would itself be O(N) memory and defeat the measurement).
risa::sim::SchedulerBenchEntry run_streaming_row(const std::string& algo,
                                                 std::size_t count,
                                                 bool profile) {
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  engine.set_profiling(profile);
  risa::wl::SyntheticConfig cfg;
  {
    // Unmeasured warmup at 100k: pools and calendars reach their
    // cluster-bounded high-water marks outside the timed run.
    cfg.count = 100'000;
    risa::wl::SyntheticStreamSource warm(cfg, risa::sim::kDefaultSeed);
    const auto m = engine.run_stream(warm, "warmup");
    benchmark::DoNotOptimize(m.placed);
  }
  cfg.count = count;
  risa::wl::SyntheticStreamSource source(cfg, risa::sim::kDefaultSeed);
  risa::Log2Histogram latency;
  // Best of two recorded runs, mirroring the materialized grid's
  // warmup-then-measure discipline (run_stream rewinds the source; the
  // second run rides the engine's steady-state reuse path).  Counts are
  // deterministic, so keeping the faster run only picks wall-clock.
  engine.set_latency_histogram(&latency);
  risa::sim::SimMetrics m =
      engine.run_stream(source, scale_label(count) + "-stream");
  latency.clear();
  const risa::sim::SimMetrics again =
      engine.run_stream(source, scale_label(count) + "-stream");
  if (again.sim_wall_seconds < m.sim_wall_seconds) m = again;
  engine.set_latency_histogram(nullptr);

  risa::sim::SchedulerBenchEntry e;
  e.workload = m.workload;
  e.algorithm = m.algorithm;
  e.total_vms = m.total_vms;
  e.placed = m.placed;
  e.dropped = m.dropped;
  e.inter_rack = m.inter_rack_placements;
  e.sched_s = m.scheduler_exec_seconds;
  e.placements_per_sec =
      e.sched_s > 0.0 ? static_cast<double>(m.total_vms) / e.sched_s : 0.0;
  e.sim_s = m.sim_wall_seconds;
  e.events_per_sec = m.events_per_sec();
  if (latency.total() > 0) {
    e.p50_ns = latency.percentile(50.0);
    e.p99_ns = latency.percentile(99.0);
  }
  e.profile = m.profile;  // from the kept (faster) run; empty when not asked
  // The generator's own synthesis cost, measured by draining the same
  // stream without the engine.  sim_s above *includes* it (a pull run
  // synthesizes arrivals inside the timed window; a materialized row pays
  // generation before its timer starts), so the engine-only throughput
  // comparable with the materialized grid is events / (sim_s - source_s).
  {
    std::array<risa::wl::ArrivalItem, 1024> buf;
    double best = -1.0;
    for (int rep = 0; rep < 2; ++rep) {
      source.rewind();
      const auto t0 = std::chrono::steady_clock::now();
      while (const std::size_t n = source.next_batch(buf)) {
        benchmark::DoNotOptimize(buf[n - 1].index);
      }
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (best < 0.0 || s < best) best = s;
    }
    e.source_s = best;
  }
  e.peak_rss_mb = read_peak_rss_mb();
  return e;
}

/// The streaming grid: the 500k materialized-comparison point plus the
/// headline `big_count` row, per algorithm (workload outer, algorithm
/// inner, matching the baseline's row order).
std::vector<risa::sim::SchedulerBenchEntry> run_streaming_rows(
    std::size_t big_count, bool profile, const std::string& baseline_json,
    const std::string& baseline_path) {
  std::vector<risa::sim::SchedulerBenchEntry> rows;
  std::vector<std::size_t> counts = {500'000};
  if (big_count != 500'000) counts.push_back(big_count);
  for (std::size_t count : counts) {
    for (const std::string& algo : risa::core::algorithm_names()) {
      rows.push_back(run_streaming_row(algo, count, profile));
      const risa::sim::SchedulerBenchEntry& e = rows.back();
      // engine_only backs the synthesis seconds out of the timed window,
      // making the figure comparable with the materialized grid (which
      // pays generation before its timer starts).
      const double engine_s = std::max(e.sim_s - e.source_s, 1e-9);
      std::cout << e.workload << " " << e.algorithm << ": events_per_sec="
                << static_cast<std::uint64_t>(e.events_per_sec)
                << " engine_only="
                << static_cast<std::uint64_t>(e.events_per_sec * e.sim_s /
                                              engine_s)
                << " sim_s=" << e.sim_s << " source_s=" << e.source_s
                << " peak_rss_mb=" << e.peak_rss_mb << "\n";
      if (e.profile.recorded) {
        std::cout << "  profile:";
        for (std::size_t p = 0; p < risa::sim::kNumPhases; ++p) {
          std::cout << " " << risa::sim::kPhaseNames[p] << "="
                    << e.profile.seconds[p];
        }
        std::cout << " (sum=" << e.profile.total() << " of sim_s=" << e.sim_s
                  << ")\n";
        if (!baseline_json.empty()) {
          print_profile_delta(e, baseline_json, baseline_path);
        }
      }
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      risa::sim::consume_emit_json_flag(argc, argv, "BENCH_engine.json");
  const int repeats = consume_repeat_flag(argc, argv);
  const std::int64_t streaming_count = consume_i64_flag(
      argc, argv, "--streaming", /*absent=*/-1, /*bare=*/10'000'000);
  const std::int64_t rss_limit_mb =
      consume_i64_flag(argc, argv, "--rss_limit_mb", -1, -1);
  const bool report_rss = consume_i64_flag(argc, argv, "--rss", 0, 1) != 0;
  const bool profile = consume_i64_flag(argc, argv, "--profile", 0, 1) != 0;
  const std::int64_t events_floor =
      consume_i64_flag(argc, argv, "--events_floor", -1, -1);
  const std::string baseline_path = consume_baseline_flag(argc, argv);
  const std::string trace_path = consume_trace_flag(argc, argv);

  // Load the committed baseline once for the --profile delta rider; a
  // missing file just disables the diff (fresh clones, renamed baselines).
  std::string baseline_json;
  if (profile) {
    std::ifstream in(baseline_path);
    if (in.good()) {
      baseline_json.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }
  }

  // Streaming rows first: VmHWM is process-wide and monotone, so they must
  // run before the interactive grid / baseline sweep materializes anything.
  std::vector<risa::sim::SchedulerBenchEntry> streaming_rows;
  if (streaming_count > 0) {
    streaming_rows = run_streaming_rows(
        static_cast<std::size_t>(streaming_count), profile, baseline_json,
        baseline_path);
    const double peak = read_peak_rss_mb();
    if (rss_limit_mb > 0 && !(peak >= 0.0 && peak <= static_cast<double>(rss_limit_mb))) {
      std::cerr << "bench_engine_scale: streaming peak RSS " << peak
                << " MB exceeds limit " << rss_limit_mb << " MB\n";
      return 1;
    }
    if (profile) {
      // CI smoke contract: a recorded profile with any negative phase or a
      // phase sum past the measured wall time means the span accounting
      // broke (the spans are exclusive, so sum <= sim_s by construction).
      // On the headline rows the sum must also cover >= 90% of sim_s with
      // the merge phase present -- the honest-attribution floor: §13's
      // Merge span exists precisely so the loop's residual scaffolding is
      // measured instead of vanishing into the sum-vs-wall gap.
      const std::string headline =
          scale_label(static_cast<std::size_t>(streaming_count)) + "-stream";
      for (const risa::sim::SchedulerBenchEntry& e : streaming_rows) {
        if (!e.profile.recorded) {
          std::cerr << "bench_engine_scale: --profile row missing profile\n";
          return 1;
        }
        for (double s : e.profile.seconds) {
          if (!(s >= 0.0)) {
            std::cerr << "bench_engine_scale: negative profile phase\n";
            return 1;
          }
        }
        if (e.profile.total() > e.sim_s * 1.001) {
          std::cerr << "bench_engine_scale: profile sum " << e.profile.total()
                    << " exceeds sim_s " << e.sim_s << "\n";
          return 1;
        }
        if (e.workload != headline) continue;
        if (!(e.profile[risa::sim::Phase::Merge] > 0.0)) {
          std::cerr << "bench_engine_scale: " << e.workload << " "
                    << e.algorithm << " recorded no merge-phase time\n";
          return 1;
        }
        if (e.profile.total() < 0.90 * e.sim_s) {
          std::cerr << "bench_engine_scale: " << e.workload << " "
                    << e.algorithm << " attributed only " << e.profile.total()
                    << " of sim_s " << e.sim_s << " (< 90%)\n";
          return 1;
        }
      }
    }
    if (events_floor > 0) {
      // Throughput floor over the headline-count rows (the 10M churn smoke
      // in CI): a regression past the floor fails the job.
      const std::string headline =
          scale_label(static_cast<std::size_t>(streaming_count)) + "-stream";
      for (const risa::sim::SchedulerBenchEntry& e : streaming_rows) {
        if (e.workload != headline) continue;
        if (e.events_per_sec < static_cast<double>(events_floor)) {
          std::cerr << "bench_engine_scale: " << e.workload << " "
                    << e.algorithm << " events_per_sec " << e.events_per_sec
                    << " below floor " << events_floor << "\n";
          return 1;
        }
      }
    }
  } else if (rss_limit_mb > 0 || events_floor > 0) {
    std::cerr << "bench_engine_scale: --rss_limit_mb/--events_floor require "
                 "--streaming\n";
    return 1;
  }

  if (streaming_count <= 0) {
    // Streaming mode is a driver mode: it replaces the interactive grid
    // (whose materialized workload cache would dwarf the streaming RSS).
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  if (!json_path.empty()) {
    // The committed baseline comes from serial latency-recording sweeps
    // (SweepRunner(1)): each cell's sim_s/sched_s is measured alone, so the
    // JSON is comparable run to run (DESIGN.md §5-6).
    risa::sim::SweepSpec spec;
    spec.scenarios = {{"paper", risa::sim::Scenario::paper_defaults()}};
    for (std::size_t count : kBaselineCounts) {
      spec.workloads.push_back(risa::sim::WorkloadSpec::fixed(
          scale_label(count), workload(count)));
    }
    spec.seeds = {risa::sim::kDefaultSeed};
    spec.algorithms = risa::core::algorithm_names();
    spec.record_latency = true;
    spec.record_profile = profile;

    // Warmup sweep (unrecorded), then best-of-N recorded sweeps.  Counts
    // must be byte-identical across repeats -- only the wall-clock fields
    // may differ -- which doubles as a determinism check on the whole grid.
    (void)risa::sim::SweepRunner(1).run(spec);
    auto entries =
        risa::sim::scheduler_bench_entries(risa::sim::SweepRunner(1).run(spec));
    for (int rep = 1; rep < repeats; ++rep) {
      const auto again = risa::sim::scheduler_bench_entries(
          risa::sim::SweepRunner(1).run(spec));
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (again[i].placed != entries[i].placed ||
            again[i].dropped != entries[i].dropped ||
            again[i].inter_rack != entries[i].inter_rack) {
          throw std::logic_error(
              "bench_engine_scale: placement counts diverged across repeats");
        }
        if (again[i].sim_s < entries[i].sim_s) entries[i] = again[i];
      }
    }
    // Streaming rows ride along after the materialized grid (single-shot:
    // they were measured before anything materialized, so repeating them
    // here would record a polluted RSS high-water mark).
    entries.insert(entries.end(), streaming_rows.begin(), streaming_rows.end());
    if (!risa::sim::write_scheduler_bench_json(json_path, "engine_scale_churn",
                                               entries)) {
      return 1;
    }
    std::cout << "\nwrote engine-scale baseline: " << json_path << " (best of "
              << repeats << ")\n";
  }
  if (!trace_path.empty()) {
    // One telemetry-armed 500k streaming row, deliberately last: every
    // timed measurement above ran with the disabled (null-pointer) path,
    // so the trace costs nothing they could have absorbed.
    risa::sim::TelemetryConfig cfg;
    cfg.trace_path = trace_path;
    risa::sim::Telemetry tel(cfg);
    risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), "RISA");
    engine.set_telemetry(&tel);
    risa::wl::SyntheticConfig wcfg;
    wcfg.count = 500'000;
    risa::wl::SyntheticStreamSource source(wcfg, risa::sim::kDefaultSeed);
    const auto m = engine.run_stream(source, scale_label(500'000) + "-stream");
    engine.set_telemetry(nullptr);
    tel.close();
    std::cout << "traced run: " << m.events_executed << " sim events -> "
              << trace_path << " (" << tel.writer().emitted()
              << " trace events, " << tel.writer().dropped()
              << " overflow-dropped)\n";
  }
  if (report_rss) {
    std::cout << "peak_rss_mb: " << read_peak_rss_mb() << "\n";
  }
  return 0;
}
