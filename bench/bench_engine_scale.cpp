// Engine-scale churn: end-to-end DES throughput as the workload grows
// from 10k to 500k VMs (google-benchmark harness); the committed baseline
// additionally measures a 5M-VM row.
//
// Where Figures 11/12 isolate the *policy* (sched_s = time inside
// Allocator::try_place), this bench measures the *dispatch loop* around
// it: sim_s (whole Engine::run wall time) and events/sec (one event per
// arrival plus one per departure).  Under the paper's arrival process the
// live-VM census is bounded (by lifetime/interarrival, and past ~10k VMs
// by cluster capacity -- the cluster saturates and placements ride on
// departures), so larger N means a longer steady-state churn phase at the
// same heap depth -- exactly the regime the typed calendar + arrival
// cursor design targets (DESIGN.md §7).
//
// Driver mode: `--emit_json[=path]` replays every (count x algorithm)
// cell through a serial latency-recording sweep and writes the committed
// BENCH_engine.json baseline via the unified emitter.  One unrecorded
// warmup sweep always runs first (page faults, allocator pools and the
// workload cache land outside the measurement), and `--repeat=N` measures
// N recorded sweeps keeping each cell's best (lowest sim_s) -- placement
// counts must be identical across repeats or the driver aborts, so the
// baseline stays a determinism witness.
// CI smoke: `--benchmark_filter=10000$ --benchmark_min_time=...` runs
// just the smallest count per algorithm.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace {

constexpr std::size_t kScaleCounts[] = {10'000, 50'000, 100'000, 500'000};

/// Driver-mode grid: the committed baseline additionally carries a 5M-VM
/// row (events scale 10x past the largest interactive count; the live-VM
/// census stays cluster-bounded, so this probes the long steady-state
/// churn phase, not a bigger heap).  Kept out of the google-benchmark grid
/// to keep interactive runs quick.
constexpr std::size_t kBaselineCounts[] = {10'000, 50'000, 100'000, 500'000,
                                           5'000'000};

const risa::wl::Workload& workload(std::size_t count) {
  static std::map<std::size_t, risa::wl::Workload> cache;
  auto it = cache.find(count);
  if (it == cache.end()) {
    risa::wl::SyntheticConfig cfg;
    cfg.count = count;
    it = cache.emplace(count, risa::wl::generate_synthetic(
                                  cfg, risa::sim::kDefaultSeed)).first;
  }
  return it->second;
}

std::string scale_label(std::size_t count) {
  return "synthetic-" + std::to_string(count);
}

void run_churn(benchmark::State& state, const char* algo) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const risa::wl::Workload& w = workload(count);
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  // One unmeasured warmup run: the engine's pools/calendars reach their
  // high-water marks, so measured iterations see the steady-state reuse
  // path (and first-touch page faults stay out of the numbers).
  { const auto warm = engine.run(w, scale_label(count)); benchmark::DoNotOptimize(warm.placed); }
  double sim_seconds = 0.0;
  double sched_seconds = 0.0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const risa::sim::SimMetrics m = engine.run(w, scale_label(count));
    sim_seconds += m.sim_wall_seconds;
    sched_seconds += m.scheduler_exec_seconds;
    events = m.events_executed;
    benchmark::DoNotOptimize(m.placed);
  }
  state.counters["sim_s"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kAvgIterations);
  state.counters["sched_s"] =
      benchmark::Counter(sched_seconds, benchmark::Counter::kAvgIterations);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events) * static_cast<double>(state.iterations()) /
          sim_seconds,
      benchmark::Counter::kDefaults);
}

void BM_Churn_Nulb(benchmark::State& s) { run_churn(s, "NULB"); }
void BM_Churn_Nalb(benchmark::State& s) { run_churn(s, "NALB"); }
void BM_Churn_Risa(benchmark::State& s) { run_churn(s, "RISA"); }
void BM_Churn_RisaBf(benchmark::State& s) { run_churn(s, "RISA-BF"); }

void scale_args(benchmark::internal::Benchmark* b) {
  for (std::size_t count : kScaleCounts) {
    b->Arg(static_cast<std::int64_t>(count));
  }
  b->Unit(benchmark::kMillisecond);
}

// No hardcoded MinTime (see bench_fig11): the CI smoke cap must win.
BENCHMARK(BM_Churn_Nulb)->Apply(scale_args);
BENCHMARK(BM_Churn_Nalb)->Apply(scale_args);
BENCHMARK(BM_Churn_Risa)->Apply(scale_args);
BENCHMARK(BM_Churn_RisaBf)->Apply(scale_args);

/// Consume `--repeat=N` from argv before benchmark::Initialize sees it
/// (same contract as consume_emit_json_flag).  Returns max(N, 1).
int consume_repeat_flag(int& argc, char** argv) {
  int repeats = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--repeat=", 0) == 0) {
      repeats = std::atoi(argv[i] + 9);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  return repeats > 1 ? repeats : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      risa::sim::consume_emit_json_flag(argc, argv, "BENCH_engine.json");
  const int repeats = consume_repeat_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    // The committed baseline comes from serial latency-recording sweeps
    // (SweepRunner(1)): each cell's sim_s/sched_s is measured alone, so the
    // JSON is comparable run to run (DESIGN.md §5-6).
    risa::sim::SweepSpec spec;
    spec.scenarios = {{"paper", risa::sim::Scenario::paper_defaults()}};
    for (std::size_t count : kBaselineCounts) {
      spec.workloads.push_back(risa::sim::WorkloadSpec::fixed(
          scale_label(count), workload(count)));
    }
    spec.seeds = {risa::sim::kDefaultSeed};
    spec.algorithms = risa::core::algorithm_names();
    spec.record_latency = true;

    // Warmup sweep (unrecorded), then best-of-N recorded sweeps.  Counts
    // must be byte-identical across repeats -- only the wall-clock fields
    // may differ -- which doubles as a determinism check on the whole grid.
    (void)risa::sim::SweepRunner(1).run(spec);
    auto entries =
        risa::sim::scheduler_bench_entries(risa::sim::SweepRunner(1).run(spec));
    for (int rep = 1; rep < repeats; ++rep) {
      const auto again = risa::sim::scheduler_bench_entries(
          risa::sim::SweepRunner(1).run(spec));
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (again[i].placed != entries[i].placed ||
            again[i].dropped != entries[i].dropped ||
            again[i].inter_rack != entries[i].inter_rack) {
          throw std::logic_error(
              "bench_engine_scale: placement counts diverged across repeats");
        }
        if (again[i].sim_s < entries[i].sim_s) entries[i] = again[i];
      }
    }
    if (!risa::sim::write_scheduler_bench_json(json_path, "engine_scale_churn",
                                               entries)) {
      return 1;
    }
    std::cout << "\nwrote engine-scale baseline: " << json_path << " (best of "
              << repeats << ")\n";
  }
  return 0;
}
