// Extension E-A8: two-tier (the paper's topology) vs three-tier (the pod
// structure of the RL scheduler's setting [17] that §2 contrasts against).
//
// The paper argues its two-tier problem differs fundamentally from [17]'s
// three-tier one.  This bench quantifies the other direction: on a
// three-tier fabric, inter-rack placements get *more* expensive (cross-pod
// circuits traverse two extra Beneš switches and pay 550 ns RTT), so
// RISA's rack-affinity advantage widens -- evidence the heuristic transfers
// to the deeper topology unchanged.
#include <iostream>

#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

int main() {
  auto subsets = sim::azure_workloads();
  const auto& [label, workload] = subsets[0];  // Azure-3000

  std::cout << "=== Extension: two-tier vs three-tier fabric (" << label
            << ") ===\n";
  TextTable t({"Fabric", "Algorithm", "Inter-rack %", "Power kW", "RTT ns",
               "RISA power advantage"});
  for (const std::uint32_t racks_per_pod : {0u, 6u, 3u}) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.fabric.racks_per_pod = racks_per_pod;
    const std::string fabric_label =
        racks_per_pod == 0
            ? "two-tier (paper)"
            : "three-tier, " + std::to_string(racks_per_pod) + " racks/pod";

    double nulb_kw = 0.0, risa_kw = 0.0;
    std::vector<sim::SimMetrics> runs;
    for (const char* algo : {"NULB", "RISA"}) {
      sim::Engine engine(scenario, algo);
      runs.push_back(engine.run(workload, label));
    }
    nulb_kw = runs[0].avg_optical_power_w / 1000.0;
    risa_kw = runs[1].avg_optical_power_w / 1000.0;
    for (const auto& m : runs) {
      t.add_row({fabric_label, m.algorithm,
                 TextTable::pct(m.inter_rack_fraction(), 1),
                 TextTable::num(m.avg_optical_power_w / 1000.0, 2),
                 TextTable::num(m.cpu_ram_latency_ns.mean(), 1),
                 m.algorithm == "RISA"
                     ? TextTable::pct(1.0 - risa_kw / nulb_kw, 1)
                     : std::string("-")});
    }
  }
  std::cout << t
            << "Deeper aggregation makes inter-rack placement costlier; "
               "RISA's placements are\nunaffected (always intra-rack), so "
               "its power and latency advantages widen with\ntopology "
               "depth.\n";
  return 0;
}
