// Extension E-A8: two-tier (the paper's topology) vs three-tier (the pod
// structure of the RL scheduler's setting [17] that §2 contrasts against).
//
// The paper argues its two-tier problem differs fundamentally from [17]'s
// three-tier one.  This bench quantifies the other direction: on a
// three-tier fabric, inter-rack placements get *more* expensive (cross-pod
// circuits traverse two extra Beneš switches and pay 550 ns RTT), so
// RISA's rack-affinity advantage widens -- evidence the heuristic transfers
// to the deeper topology unchanged.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  for (const std::uint32_t racks_per_pod : {0u, 6u, 3u}) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.fabric.racks_per_pod = racks_per_pod;
    spec.scenarios.emplace_back(
        racks_per_pod == 0
            ? "two-tier (paper)"
            : "three-tier, " + std::to_string(racks_per_pod) + " racks/pod",
        scenario);
  }
  spec.workloads = {sim::WorkloadSpec::azure("3000")};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = {"NULB", "RISA"};
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Extension: two-tier vs three-tier fabric ("
            << spec.workloads[0].label << ") ===\n";
  TextTable t({"Fabric", "Algorithm", "Inter-rack %", "Power kW", "RTT ns",
               "RISA power advantage"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    const double nulb_kw =
        runs[spec.cell_index(s, 0, 0, 0)].avg_optical_power_w / 1000.0;
    const double risa_kw =
        runs[spec.cell_index(s, 0, 0, 1)].avg_optical_power_w / 1000.0;
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      const auto& m = runs[spec.cell_index(s, 0, 0, a)];
      t.add_row({spec.scenarios[s].first, m.algorithm,
                 TextTable::pct(m.inter_rack_fraction(), 1),
                 TextTable::num(m.avg_optical_power_w / 1000.0, 2),
                 TextTable::num(m.cpu_ram_latency_ns.mean(), 1),
                 m.algorithm == "RISA"
                     ? TextTable::pct(1.0 - risa_kw / nulb_kw, 1)
                     : std::string("-")});
    }
  }
  std::cout << t
            << "Deeper aggregation makes inter-rack placement costlier; "
               "RISA's placements are\nunaffected (always intra-rack), so "
               "its power and latency advantages widen with\ntopology "
               "depth.\n";
  return 0;
}
