// Ablation E-A2: intra-rack packing rule (next-fit = RISA, best-fit =
// RISA-BF, plus plain first-fit) under tightening capacity pressure.
// Sweeps the cluster size downward so packing quality becomes the binding
// factor, and reports placement rates.
#include <iostream>

#include "common/table.hpp"
#include "core/risa.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

namespace {

sim::SimMetrics run(core::RackPacking packing, std::uint32_t racks,
                    const wl::Workload& workload) {
  // The engine builds allocators by registry name; for the packing sweep we
  // run the allocator directly through a DES-free replay with departures
  // honored in arrival order (tests cover the DES path; here the packing
  // effect is isolated).
  sim::Scenario scenario = sim::Scenario::paper_defaults();
  scenario.cluster.racks = racks;
  const std::string name = packing == core::RackPacking::NextFit ? "RISA"
                           : packing == core::RackPacking::BestFit
                               ? "RISA-BF"
                               : "RISA";
  sim::Engine engine(scenario, name);
  return engine.run(workload, "packing");
}

}  // namespace

int main() {
  const wl::Workload workload = sim::synthetic_workload();
  std::cout << "=== Ablation: intra-rack packing under capacity pressure "
               "(synthetic, 2500 VMs) ===\n";
  TextTable t({"Racks", "RISA placed", "RISA-BF placed", "RISA drops",
               "RISA-BF drops", "BF advantage"});
  for (std::uint32_t racks : {18u, 14u, 12u, 10u, 8u}) {
    const auto nf = run(core::RackPacking::NextFit, racks, workload);
    const auto bf = run(core::RackPacking::BestFit, racks, workload);
    const auto advantage =
        static_cast<std::int64_t>(bf.placed) -
        static_cast<std::int64_t>(nf.placed);
    t.add_row({std::to_string(racks), std::to_string(nf.placed),
               std::to_string(bf.placed), std::to_string(nf.dropped),
               std::to_string(bf.dropped),
               (advantage >= 0 ? "+" : "") + std::to_string(advantage)});
  }
  std::cout << t
            << "At the paper's 18-rack scale the two variants are nearly "
               "identical, matching Figure 5's\n7-vs-2 near-tie.  Under "
               "dynamic churn best-fit does NOT dominate next-fit (it can "
               "even lose\nslightly -- a classic bin-packing result); its "
               "advantage is realized on adversarial static\nsequences, "
               "demonstrated by bench_toy_examples' corrected scenario.\n";
  return 0;
}
