// Ablation E-A2: intra-rack packing rule (next-fit = RISA, best-fit =
// RISA-BF) under tightening capacity pressure.  Sweeps the cluster size
// downward so packing quality becomes the binding factor, and reports
// placement rates.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  constexpr std::uint32_t kRacks[] = {18u, 14u, 12u, 10u, 8u};
  sim::SweepSpec spec;
  for (std::uint32_t racks : kRacks) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.cluster.racks = racks;
    spec.scenarios.emplace_back(std::to_string(racks), scenario);
  }
  spec.workloads = {sim::WorkloadSpec::synthetic()};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = {"RISA", "RISA-BF"};
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Ablation: intra-rack packing under capacity pressure "
               "(synthetic, 2500 VMs) ===\n";
  TextTable t({"Racks", "RISA placed", "RISA-BF placed", "RISA drops",
               "RISA-BF drops", "BF advantage"});
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    const auto& nf = runs[spec.cell_index(s, 0, 0, 0)];
    const auto& bf = runs[spec.cell_index(s, 0, 0, 1)];
    const auto advantage = static_cast<std::int64_t>(bf.placed) -
                           static_cast<std::int64_t>(nf.placed);
    t.add_row({spec.scenarios[s].first, std::to_string(nf.placed),
               std::to_string(bf.placed), std::to_string(nf.dropped),
               std::to_string(bf.dropped),
               (advantage >= 0 ? "+" : "") + std::to_string(advantage)});
  }
  std::cout << t
            << "At the paper's 18-rack scale the two variants are nearly "
               "identical, matching Figure 5's\n7-vs-2 near-tie.  Under "
               "dynamic churn best-fit does NOT dominate next-fit (it can "
               "even lose\nslightly -- a classic bin-packing result); its "
               "advantage is realized on adversarial static\nsequences, "
               "demonstrated by bench_toy_examples' corrected scenario.\n";
  return 0;
}
