// Figure 9: power consumption of optical components (transceivers + all
// Beneš switch energy per Eq. (1)) on the Azure subsets.
//   paper: Azure-3000 NULB 5.22 / NALB 5.27 / RISA(-BF) 3.36 kW (33% less);
//          Azure-7500 NULB 6.70 / NALB 6.72 kW.
//   reproduced shape: RISA family ~30-40% below the baselines, growing
//   with subset size.
#include <iostream>

#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

int main() {
  using namespace risa;
  std::vector<sim::SimMetrics> runs;
  for (auto& [label, workload] : sim::azure_workloads()) {
    auto batch = sim::run_all_algorithms(sim::Scenario::paper_defaults(),
                                         workload, label);
    runs.insert(runs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  std::cout << "=== Figure 9: optical component power (Azure subsets) ===\n"
            << sim::figure9_table(runs) << '\n';

  // The headline claim: RISA's reduction vs the baselines.
  TextTable t({"Workload", "NULB kW", "RISA kW", "Reduction (measured)",
               "Reduction (paper)"});
  for (std::size_t i = 0; i + 3 < runs.size(); i += 4) {
    const double nulb = runs[i].avg_optical_power_w;
    const double risa = runs[i + 2].avg_optical_power_w;
    t.add_row({runs[i].workload, TextTable::num(nulb / 1000.0, 2),
               TextTable::num(risa / 1000.0, 2),
               TextTable::pct(1.0 - risa / nulb, 1),
               runs[i].workload == "Azure-3000" ? "33%" : "-"});
  }
  std::cout << t;
  return 0;
}
