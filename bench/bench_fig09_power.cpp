// Figure 9: power consumption of optical components (transceivers + all
// Beneš switch energy per Eq. (1)) on the Azure subsets.
//   paper: Azure-3000 NULB 5.22 / NALB 5.27 / RISA(-BF) 3.36 kW (33% less);
//          Azure-7500 NULB 6.70 / NALB 6.72 kW.
//   reproduced shape: RISA family ~30-40% below the baselines, growing
//   with subset size.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = sim::WorkloadSpec::azure_all();
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto results = sim::SweepRunner(thread_count(flags)).run(spec);
  const auto runs = sim::metrics_of(results);

  std::cout << "=== Figure 9: optical component power (Azure subsets) ===\n"
            << sim::figure9_table(runs) << '\n';

  // The headline claim: RISA's reduction vs the baselines.  Cells are
  // addressed through the spec's index math rather than stride arithmetic.
  TextTable t({"Workload", "NULB kW", "RISA kW", "Reduction (measured)",
               "Reduction (paper)"});
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    const auto& nulb = runs[spec.cell_index(0, w, 0, 0)];
    const auto& risa = runs[spec.cell_index(0, w, 0, 2)];
    t.add_row({nulb.workload,
               TextTable::num(nulb.avg_optical_power_w / 1000.0, 2),
               TextTable::num(risa.avg_optical_power_w / 1000.0, 2),
               TextTable::pct(
                   1.0 - risa.avg_optical_power_w / nulb.avg_optical_power_w,
                   1),
               nulb.workload == "Azure-3000" ? "33%" : "-"});
  }
  std::cout << t;
  return 0;
}
