// Ablation E-A3: sweep of the MRR cell-sharing factor alpha in Eq. (1).
// The paper bounds alpha in [0.5 (every cell shared), 1.0 (no sharing)] and
// picks 0.9; this bench shows optical power is linear in alpha and that the
// RISA-vs-NULB ranking is invariant across the whole range.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  // Alpha is a scenario parameter, so the sweep's scenario axis carries it.
  constexpr double kAlphas[] = {0.5, 0.7, 0.9, 1.0};
  sim::SweepSpec spec;
  for (double alpha : kAlphas) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.photonics.switch_energy.mrr.alpha = alpha;
    spec.scenarios.emplace_back(TextTable::num(alpha, 2), scenario);
  }
  spec.workloads = {sim::WorkloadSpec::azure("3000")};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = {"NULB", "RISA"};
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Ablation: alpha sweep of Eq. (1), "
            << spec.workloads[0].label << " ===\n";
  TextTable t({"alpha", "NULB kW", "RISA kW", "RISA reduction"});
  for (std::size_t a = 0; a < spec.scenarios.size(); ++a) {
    const double nulb_kw =
        runs[spec.cell_index(a, 0, 0, 0)].avg_optical_power_w / 1000.0;
    const double risa_kw =
        runs[spec.cell_index(a, 0, 0, 1)].avg_optical_power_w / 1000.0;
    t.add_row({spec.scenarios[a].first, TextTable::num(nulb_kw, 3),
               TextTable::num(risa_kw, 3),
               TextTable::pct(1.0 - risa_kw / nulb_kw, 1)});
  }
  std::cout << t
            << "Power scales linearly with alpha (trimming dominates); the "
               "paper's conclusion is\ninsensitive to the alpha choice.\n";
  return 0;
}
