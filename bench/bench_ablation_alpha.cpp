// Ablation E-A3: sweep of the MRR cell-sharing factor alpha in Eq. (1).
// The paper bounds alpha in [0.5 (every cell shared), 1.0 (no sharing)] and
// picks 0.9; this bench shows optical power is linear in alpha and that the
// RISA-vs-NULB ranking is invariant across the whole range.
#include <iostream>

#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

int main() {
  auto subsets = sim::azure_workloads();
  const auto& [label, workload] = subsets[0];  // Azure-3000

  std::cout << "=== Ablation: alpha sweep of Eq. (1), " << label << " ===\n";
  TextTable t({"alpha", "NULB kW", "RISA kW", "RISA reduction"});
  for (double alpha : {0.5, 0.7, 0.9, 1.0}) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.photonics.switch_energy.mrr.alpha = alpha;
    sim::Engine nulb(scenario, "NULB");
    sim::Engine risa(scenario, "RISA");
    const double nulb_kw =
        nulb.run(workload, label).avg_optical_power_w / 1000.0;
    const double risa_kw =
        risa.run(workload, label).avg_optical_power_w / 1000.0;
    t.add_row({TextTable::num(alpha, 2), TextTable::num(nulb_kw, 3),
               TextTable::num(risa_kw, 3),
               TextTable::pct(1.0 - risa_kw / nulb_kw, 1)});
  }
  std::cout << t
            << "Power scales linearly with alpha (trimming dominates); the "
               "paper's conclusion is\ninsensitive to the alpha choice.\n";
  return 0;
}
