// Tables 1, 2 and 5: prints the resolved evaluation configuration -- the
// disaggregated architecture, the network demand model, the photonic
// parameters, and the host running this reproduction (the analog of the
// paper's Table 5 system configuration).
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "sim/scenario.hpp"

int main() {
  using risa::TextTable;
  const risa::sim::Scenario s = risa::sim::Scenario::paper_defaults();

  std::cout << "=== Table 1: disaggregated architecture configuration ===\n";
  TextTable t1({"Parameter", "Value", "Paper"});
  t1.add_row({"Cluster size", std::to_string(s.cluster.racks) + " racks",
              "18 racks"});
  t1.add_row({"Rack size",
              std::to_string(s.cluster.total_boxes_per_rack()) + " boxes",
              "6 boxes"});
  t1.add_row({"Box size", std::to_string(s.cluster.bricks_per_box) + " bricks",
              "8 bricks"});
  t1.add_row({"Brick size",
              std::to_string(s.cluster.units_per_brick) + " units",
              "16 units"});
  t1.add_row({"CPU unit",
              std::to_string(s.cluster.unit_scale.cores_per_cpu_unit) +
                  " cores",
              "4 cores"});
  t1.add_row({"RAM unit",
              TextTable::num(risa::to_gb(s.cluster.unit_scale.mb_per_ram_unit),
                             0) + " GB",
              "4 GB"});
  t1.add_row({"Storage unit",
              TextTable::num(
                  risa::to_gb(s.cluster.unit_scale.mb_per_storage_unit), 0) +
                  " GB",
              "64 GB"});
  std::cout << t1 << '\n';

  std::cout << "=== Table 2: network requirements ===\n";
  TextTable t2({"Flow", "Rate", "Basis", "Paper"});
  t2.add_row({"CPU-RAM",
              TextTable::num(risa::to_gbps(s.bandwidth.cpu_ram_per_unit), 0) +
                  " Gb/s/unit",
              std::string(risa::net::name(s.bandwidth.cpu_ram_basis)),
              "5 Gb/s/unit"});
  t2.add_row({"RAM-STO",
              TextTable::num(risa::to_gbps(s.bandwidth.ram_sto_per_unit), 0) +
                  " Gb/s/unit",
              std::string(risa::net::name(s.bandwidth.ram_sto_basis)),
              "1 Gb/s/unit"});
  std::cout << t2 << '\n';

  std::cout << "=== Fabric provisioning (calibrated; see DESIGN.md SS2.3) ===\n";
  TextTable t3({"Parameter", "Value"});
  t3.add_row({"Link capacity",
              TextTable::num(risa::to_gbps(s.fabric.link_capacity), 0) +
                  " Gb/s (8 x 25 Gb/s SiP)"});
  t3.add_row({"Box uplinks", std::to_string(s.fabric.links_per_box)});
  t3.add_row({"Rack uplinks", std::to_string(s.fabric.links_per_rack)});
  t3.add_row({"Box switch ports", std::to_string(s.fabric.box_switch_ports)});
  t3.add_row({"Rack switch ports", std::to_string(s.fabric.rack_switch_ports)});
  t3.add_row({"Inter-rack switch ports",
              std::to_string(s.fabric.inter_rack_switch_ports)});
  std::cout << t3 << '\n';

  std::cout << "=== Photonic parameters (SS3.2) ===\n";
  TextTable t4({"Parameter", "Value", "Source"});
  t4.add_row({"P_trimcell",
              TextTable::num(s.photonics.switch_energy.mrr.trim_power_w * 1e3,
                             2) + " mW",
              "[13]"});
  t4.add_row({"P_swcell",
              TextTable::num(
                  s.photonics.switch_energy.mrr.switch_power_w * 1e3, 2) +
                  " mW",
              "[13]"});
  t4.add_row({"alpha",
              TextTable::num(s.photonics.switch_energy.mrr.alpha, 2),
              "paper SS3.2"});
  t4.add_row({"Transceiver energy",
              TextTable::num(s.photonics.transceiver.energy_per_bit_j * 1e12,
                             1) + " pJ/bit",
              "[20]"});
  std::cout << t4 << '\n';

  std::cout << "=== Table 5 analog: this host ===\n";
  TextTable t5({"Component", "Specification"});
  t5.add_row({"Hardware threads",
              std::to_string(std::thread::hardware_concurrency())});
  t5.add_row({"Paper testbed", "AMD Ryzen 7 2700X, 4.3 GHz, 32 GB DDR4"});
  std::cout << t5;
  return 0;
}
