// Extension E-A7: RISA against classic placement disciplines (RANDOM,
// global first-fit, worst-fit).  Separates RISA's two ingredients --
// rack affinity and round-robin balancing -- from mere load balancing:
// worst-fit balances load perfectly yet splits nearly every VM across
// racks.
#include <iostream>

#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

int main() {
  auto subsets = sim::azure_workloads();
  const auto& [label, workload] = subsets[0];  // Azure-3000
  const wl::Workload synthetic = sim::synthetic_workload();

  std::cout << "=== Extension: RISA vs classic placement disciplines ===\n";
  TextTable t({"Workload", "Algorithm", "Placed", "Inter-rack %", "Power kW",
               "RTT ns"});
  const std::vector<std::pair<std::string, const wl::Workload*>> cases = {
      {label, &workload}, {"Synthetic", &synthetic}};
  for (const auto& [case_label, case_workload] : cases) {
    for (const char* algo : {"RISA", "NULB", "FF", "WF", "RANDOM"}) {
      sim::Engine engine(sim::Scenario::paper_defaults(), algo);
      const sim::SimMetrics m = engine.run(*case_workload, case_label);
      t.add_row({case_label, algo, std::to_string(m.placed),
                 TextTable::pct(m.inter_rack_fraction(), 1),
                 TextTable::num(m.avg_optical_power_w / 1000.0, 2),
                 TextTable::num(m.cpu_ram_latency_ns.count() > 0
                                    ? m.cpu_ram_latency_ns.mean()
                                    : 0.0,
                                1)});
    }
  }
  std::cout << t
            << "Load balancing without rack affinity (WF, RANDOM) maximizes "
               "inter-rack traffic;\nfirst-fit concentrates but still splits "
               "resource types; only RISA gets both\nutilization and "
               "locality.\n";
  return 0;
}
