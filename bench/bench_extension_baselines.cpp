// Extension E-A7: RISA against classic placement disciplines (RANDOM,
// global first-fit, worst-fit).  Separates RISA's two ingredients --
// rack affinity and round-robin balancing -- from mere load balancing:
// worst-fit balances load perfectly yet splits nearly every VM across
// racks.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = {sim::WorkloadSpec::azure("3000"),
                    sim::WorkloadSpec::synthetic()};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = {"RISA", "NULB", "FF", "WF", "RANDOM"};
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Extension: RISA vs classic placement disciplines ===\n";
  TextTable t({"Workload", "Algorithm", "Placed", "Inter-rack %", "Power kW",
               "RTT ns"});
  for (const auto& m : runs) {
    t.add_row({m.workload, m.algorithm, std::to_string(m.placed),
               TextTable::pct(m.inter_rack_fraction(), 1),
               TextTable::num(m.avg_optical_power_w / 1000.0, 2),
               TextTable::num(m.cpu_ram_latency_ns.count() > 0
                                  ? m.cpu_ram_latency_ns.mean()
                                  : 0.0,
                              1)});
  }
  std::cout << t
            << "Load balancing without rack affinity (WF, RANDOM) maximizes "
               "inter-rack traffic;\nfirst-fit concentrates but still splits "
               "resource types; only RISA gets both\nutilization and "
               "locality.\n";
  return 0;
}
