// Ablation E-A5: the NULB/NALB companion-search interpretation
// (DESIGN.md §2, CompanionSearch).  Algorithm 2's prose ("same rack first")
// cannot produce the paper's measured 48-52% inter-rack assignments; the
// global-id-order reading can.  This bench runs both readings through the
// identical simulation engine.
#include <iostream>

#include "common/table.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

int main() {
  auto subsets = sim::azure_workloads();
  std::cout << "=== Ablation: companion-search interpretation for NULB/NALB "
               "===\n";
  TextTable t({"Workload", "Algorithm", "Reading", "Inter-rack %", "Paper %"});
  for (const auto& [label, workload] : subsets) {
    for (const char* algo : {"NULB", "NALB"}) {
      for (const auto companion : {core::CompanionSearch::GlobalOrder,
                                   core::CompanionSearch::AnchorRackFirst}) {
        sim::Scenario scenario = sim::Scenario::paper_defaults();
        scenario.allocator.companion = companion;
        sim::Engine engine(scenario, algo);
        const auto m = engine.run(workload, label);
        t.add_row({label, algo,
                   companion == core::CompanionSearch::GlobalOrder
                       ? "global id order (default)"
                       : "anchor-rack first (literal Alg. 2)",
                   TextTable::pct(m.inter_rack_fraction(), 1),
                   sim::paper_cell("fig7", label, algo, 0)});
      }
    }
  }
  std::cout << t
            << "The literal 'same rack first' reading yields almost no "
               "inter-rack assignments --\nirreconcilable with the paper's "
               "Figures 7/10; the global-order reading reproduces them.\n";
  return 0;
}
