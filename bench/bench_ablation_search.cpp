// Ablation E-A5: the NULB/NALB companion-search interpretation
// (DESIGN.md §2, CompanionSearch).  Algorithm 2's prose ("same rack first")
// cannot produce the paper's measured 48-52% inter-rack assignments; the
// global-id-order reading can.  This bench runs both readings through the
// identical simulation engine.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/search.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  for (const auto companion : {core::CompanionSearch::GlobalOrder,
                               core::CompanionSearch::AnchorRackFirst}) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.allocator.companion = companion;
    spec.scenarios.emplace_back(companion == core::CompanionSearch::GlobalOrder
                                    ? "global id order (default)"
                                    : "anchor-rack first (literal Alg. 2)",
                                scenario);
  }
  spec.workloads = sim::WorkloadSpec::azure_all();
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = {"NULB", "NALB"};
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Ablation: companion-search interpretation for NULB/NALB "
               "===\n";
  TextTable t({"Workload", "Algorithm", "Reading", "Inter-rack %", "Paper %"});
  // Table rows follow workload -> algorithm -> reading; the sweep expanded
  // reading-major, so rows address cells through the spec's index math.
  for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
        const auto& m = runs[spec.cell_index(s, w, 0, a)];
        t.add_row({m.workload, m.algorithm, spec.scenarios[s].first,
                   TextTable::pct(m.inter_rack_fraction(), 1),
                   sim::paper_cell("fig7", m.workload, m.algorithm, 0)});
      }
    }
  }
  std::cout << t
            << "The literal 'same rack first' reading yields almost no "
               "inter-rack assignments --\nirreconcilable with the paper's "
               "Figures 7/10; the global-order reading reproduces them.\n";
  return 0;
}
