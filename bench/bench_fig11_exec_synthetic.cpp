// Figure 11: scheduler execution time on the synthetic workload
// (google-benchmark harness).
//
//   paper (AMD Ryzen 7 2700X): NULB 233 s, NALB 865 s, RISA 111 s,
//   RISA-BF 112 s -- i.e. NALB ~7.8x RISA, NULB ~2.1x RISA.
//   reproduced claim is the ORDERING and rough ratios, not absolute time
//   (this implementation is C++ and orders of magnitude faster).
//
// Each benchmark replays the full 2500-VM discrete-event simulation; the
// `sched_s` counter isolates time spent inside Allocator::try_place, which
// is what the paper's figure measures.
// Driver mode: `--emit_json[=path]` additionally replays every algorithm
// once with per-placement latency recording and writes the scheduler perf
// baseline (sched_s, placements/sec, p50/p99 latency) as JSON -- the
// committed BENCH_scheduler.json is produced this way.
// `--threads N` controls the paper-shape summary sweep; it defaults to 1
// (serial) because this binary's whole point is timing fidelity, and the
// JSON baseline always runs serial regardless (see DESIGN.md §6).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace {

const risa::wl::Workload& workload() {
  static const risa::wl::Workload w = risa::sim::synthetic_workload();
  return w;
}

void run_algorithm(benchmark::State& state, const char* algo) {
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  double sched_seconds = 0.0;
  std::uint64_t placed = 0;
  for (auto _ : state) {
    const risa::sim::SimMetrics m = engine.run(workload(), "Synthetic");
    sched_seconds += m.scheduler_exec_seconds;
    placed = m.placed;
    benchmark::DoNotOptimize(m.placed);
  }
  state.counters["sched_s"] = benchmark::Counter(
      sched_seconds, benchmark::Counter::kAvgIterations);
  state.counters["placed"] = static_cast<double>(placed);
}

void BM_Nulb(benchmark::State& s) { run_algorithm(s, "NULB"); }
void BM_Nalb(benchmark::State& s) { run_algorithm(s, "NALB"); }
void BM_Risa(benchmark::State& s) { run_algorithm(s, "RISA"); }
void BM_RisaBf(benchmark::State& s) { run_algorithm(s, "RISA-BF"); }

// No hardcoded MinTime: google-benchmark gives per-benchmark MinTime()
// precedence over --benchmark_min_time, which would make the CI smoke cap
// (and the DESIGN.md 0.25s baseline recipe) silently ineffective.
BENCHMARK(BM_Nulb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Nalb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Risa)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RisaBf)->Unit(benchmark::kMillisecond);

risa::sim::SweepSpec fig11_spec() {
  risa::sim::SweepSpec spec;
  spec.scenarios = {{"paper", risa::sim::Scenario::paper_defaults()}};
  spec.workloads = {risa::sim::WorkloadSpec::synthetic()};
  spec.seeds = {risa::sim::kDefaultSeed};
  spec.algorithms = risa::core::algorithm_names();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      risa::sim::consume_emit_json_flag(argc, argv, "BENCH_scheduler.json");
  const int threads = risa::consume_threads_flag(argc, argv, /*absent=*/1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Paper-shape summary from one clean sweep (serial by default: this
  // table reports per-cell scheduler wall-clock).
  const auto runs = risa::sim::metrics_of(
      risa::sim::SweepRunner(threads).run(fig11_spec()));
  std::cout << "\n=== Figure 11: scheduler execution time, synthetic ===\n"
            << risa::sim::exec_time_table(runs, "fig11");

  if (!json_path.empty()) {
    // The committed baseline always comes from a serial latency-recording
    // sweep so sched_s / p50 / p99 are free of cross-cell interference.
    risa::sim::SweepSpec spec = fig11_spec();
    spec.record_latency = true;
    const auto entries = risa::sim::scheduler_bench_entries(
        risa::sim::SweepRunner(1).run(spec));
    if (!risa::sim::write_scheduler_bench_json(json_path,
                                               "fig11_exec_synthetic", entries)) {
      return 1;
    }
    std::cout << "\nwrote scheduler baseline: " << json_path << "\n";
  }
  return 0;
}
