// Figure 11: scheduler execution time on the synthetic workload
// (google-benchmark harness).
//
//   paper (AMD Ryzen 7 2700X): NULB 233 s, NALB 865 s, RISA 111 s,
//   RISA-BF 112 s -- i.e. NALB ~7.8x RISA, NULB ~2.1x RISA.
//   reproduced claim is the ORDERING and rough ratios, not absolute time
//   (this implementation is C++ and orders of magnitude faster).
//
// Each benchmark replays the full 2500-VM discrete-event simulation; the
// `sched_s` counter isolates time spent inside Allocator::try_place, which
// is what the paper's figure measures.
#include <benchmark/benchmark.h>

#include <iostream>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

namespace {

const risa::wl::Workload& workload() {
  static const risa::wl::Workload w = risa::sim::synthetic_workload();
  return w;
}

void run_algorithm(benchmark::State& state, const char* algo) {
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  double sched_seconds = 0.0;
  std::uint64_t placed = 0;
  for (auto _ : state) {
    const risa::sim::SimMetrics m = engine.run(workload(), "Synthetic");
    sched_seconds += m.scheduler_exec_seconds;
    placed = m.placed;
    benchmark::DoNotOptimize(m.placed);
  }
  state.counters["sched_s"] = benchmark::Counter(
      sched_seconds, benchmark::Counter::kAvgIterations);
  state.counters["placed"] = static_cast<double>(placed);
}

void BM_Nulb(benchmark::State& s) { run_algorithm(s, "NULB"); }
void BM_Nalb(benchmark::State& s) { run_algorithm(s, "NALB"); }
void BM_Risa(benchmark::State& s) { run_algorithm(s, "RISA"); }
void BM_RisaBf(benchmark::State& s) { run_algorithm(s, "RISA-BF"); }

BENCHMARK(BM_Nulb)->Unit(benchmark::kMillisecond)->MinTime(0.25);
BENCHMARK(BM_Nalb)->Unit(benchmark::kMillisecond)->MinTime(0.25);
BENCHMARK(BM_Risa)->Unit(benchmark::kMillisecond)->MinTime(0.25);
BENCHMARK(BM_RisaBf)->Unit(benchmark::kMillisecond)->MinTime(0.25);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Paper-shape summary from one clean sweep.
  const auto runs = risa::sim::run_all_algorithms(
      risa::sim::Scenario::paper_defaults(), workload(), "Synthetic");
  std::cout << "\n=== Figure 11: scheduler execution time, synthetic ===\n"
            << risa::sim::exec_time_table(runs, "fig11");
  return 0;
}
