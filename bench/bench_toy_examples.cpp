// Tables 3-4 / §4.3: the paper's two toy walk-throughs, printed step by
// step with the paper's expected outcome next to ours.  Includes the
// documented Table 4 erratum (total demand 100 cores vs 96 available) and
// the corrected scenario showing the intended best-fit advantage.
#include <iostream>

#include "common/table.hpp"
#include "core/contention.hpp"
#include "core/nulb.hpp"
#include "core/registry.hpp"
#include "core/risa.hpp"
#include "sim/experiments.hpp"

using namespace risa;

namespace {

void run_example1() {
  std::cout << "=== Toy example 1 (Table 3): one VM of 8 cores / 16 GB / "
               "128 GB ===\n";
  const wl::VmRequest vm = sim::toy_vm(0, 8, 16.0, 128.0);

  {
    auto stack = sim::make_table3_stack();
    const UnitVector demand = vm.units(stack->cluster().config().unit_scale);
    const auto cr = core::contention_ratios(
        demand, core::cluster_availability(stack->cluster()));
    TextTable crt({"Resource", "CR (measured)", "CR (paper)"});
    crt.add_row({"CPU", TextTable::num(cr[ResourceType::Cpu], 3), "0.08"});
    crt.add_row({"RAM", TextTable::num(cr[ResourceType::Ram], 3), "0.25"});
    crt.add_row({"STO", TextTable::num(cr[ResourceType::Storage], 3), "0.17"});
    std::cout << crt;
  }

  TextTable t({"Algorithm", "(CPU, RAM, STO) ids", "Paper", "Inter-rack?"});
  for (const char* algo : {"NULB", "NALB", "RISA", "RISA-BF"}) {
    auto stack = sim::make_table3_stack();
    auto allocator = core::make_allocator(algo, stack->context());
    auto placed = allocator->try_place(vm);
    std::string ids = "drop";
    std::string inter = "-";
    if (placed.ok()) {
      const auto& p = placed.value();
      ids = "(" +
            std::to_string(
                stack->cluster().box(p.box(ResourceType::Cpu)).index_in_type()) +
            ", " +
            std::to_string(
                stack->cluster().box(p.box(ResourceType::Ram)).index_in_type()) +
            ", " +
            std::to_string(stack->cluster()
                               .box(p.box(ResourceType::Storage))
                               .index_in_type()) +
            ")";
      inter = p.inter_rack ? "yes" : "no";
    }
    // The paper narrates NULB/NALB -> (2,1,2) and RISA -> (2,2,2); RISA-BF
    // is not walked through (best-fit legitimately picks the tighter
    // intra-rack boxes (3,3,2)).
    std::string paper = "-";
    if (std::string(algo) == "NULB" || std::string(algo) == "NALB") {
      paper = "(2, 1, 2)";
    } else if (std::string(algo) == "RISA") {
      paper = "(2, 2, 2)";
    }
    t.add_row({algo, ids, paper, inter});
  }
  std::cout << t << '\n';
}

void run_example2() {
  std::cout << "=== Toy example 2 (Table 4): CPU sequence 15,10,30,12,5,8,16,4"
               " on rack-1 boxes (64, 32 free cores) ===\n"
            << "NOTE: the paper's RISA-BF column claims all 8 VMs fit, but "
               "total demand (100 cores)\nexceeds total availability (96); "
               "VM 6 must drop under any algorithm (see EXPERIMENTS.md).\n";
  constexpr std::int64_t kSeq[] = {15, 10, 30, 12, 5, 8, 16, 4};
  const char* paper_risa[] = {"0", "0", "0", "1", "1", "1", "NA", "1"};
  const char* paper_bf[] = {"1", "1", "0", "0", "1", "0", "0*", "0"};

  auto run_variant = [&](bool best_fit) {
    auto stack = sim::make_table4_stack();
    auto allocator = best_fit ? core::make_risa_bf(stack->context())
                              : core::make_risa(stack->context());
    std::vector<std::string> out;
    for (std::size_t i = 0; i < std::size(kSeq); ++i) {
      auto placed = allocator->try_place(
          sim::toy_vm(static_cast<std::uint32_t>(i), kSeq[i], 1.0, 64.0));
      if (!placed.ok()) {
        out.push_back("NA");
      } else {
        const auto& box = stack->cluster().box(placed->box(ResourceType::Cpu));
        out.push_back(std::to_string(box.index_in_type() - 2));  // rack-local
      }
    }
    return out;
  };

  const auto risa_col = run_variant(false);
  const auto bf_col = run_variant(true);
  TextTable t({"VM id", "CPU req.", "RISA box (measured)", "RISA (paper)",
               "RISA-BF box (measured)", "RISA-BF (paper)"});
  for (std::size_t i = 0; i < std::size(kSeq); ++i) {
    t.add_row({std::to_string(i), std::to_string(kSeq[i]), risa_col[i],
               paper_risa[i], bf_col[i], paper_bf[i]});
  }
  std::cout << t << "(* = paper erratum: infeasible placement)\n\n";
}

void run_corrected() {
  std::cout << "=== Corrected packing scenario: boxes (33, 32), requests "
               "32, 31, 2 ===\n";
  auto build = [] {
    auto cfg = topo::ClusterConfig::toy_example();
    cfg.box_units_override = UnitVector{33, 64, 8};
    auto stack = std::make_unique<sim::ToyStack>(cfg);
    stack->set_availability(ResourceType::Cpu, 0, 0);
    stack->set_availability(ResourceType::Cpu, 1, 0);
    stack->set_availability(ResourceType::Cpu, 3, 32);
    return stack;
  };
  const std::int64_t reqs[] = {32, 31, 2};
  TextTable t({"Packing", "Placed", "Outcome"});
  for (const bool best_fit : {false, true}) {
    auto stack = build();
    auto allocator = best_fit ? core::make_risa_bf(stack->context())
                              : core::make_risa(stack->context());
    int placed = 0;
    for (std::size_t i = 0; i < std::size(reqs); ++i) {
      if (allocator
              ->try_place(sim::toy_vm(static_cast<std::uint32_t>(i), reqs[i],
                                      1.0, 64.0))
              .ok()) {
        ++placed;
      }
    }
    t.add_row({best_fit ? "best-fit (RISA-BF)" : "next-fit (RISA)",
               std::to_string(placed) + "/3",
               placed == 3 ? "packs exactly" : "strands capacity"});
  }
  std::cout << t;
}

}  // namespace

int main() {
  run_example1();
  run_example2();
  run_corrected();
  return 0;
}
