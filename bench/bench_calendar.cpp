// Calendar microbench: the reference BasicCalendar 4-ary heap against the
// engine's LadderCalendar (des/ladder_calendar.hpp) under the classic
// hold model -- a steady-state census of N pending events where each
// operation pops the minimum and pushes a successor at popped.time +
// delta.  That is exactly the engine's churn regime (DESIGN.md §7/§12):
// the heap pays O(log N) per hold, the ladder O(1) amortized.
//
// Three delta distributions bracket the engine's workloads:
//   churny    -- uniform holds (the synthetic stream's steady state)
//   tie_heavy -- 70% zero deltas: long equal-time runs (settlement windows)
//   bimodal   -- 80% short / 20% epoch-length holds (rung + top traffic)
//
// Driver mode: `--emit_json[=path]` writes the committed BENCH_calendar.json
// (structure x distribution x census grid, best-of-3 timed hold loops).
// Interactive mode runs the same grid through google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "des/calendar.hpp"
#include "des/ladder_calendar.hpp"
#include "sim/report.hpp"

namespace {

using Heap = risa::des::BasicCalendar<std::uint32_t, 4>;
using Ladder = risa::des::LadderCalendar<std::uint32_t>;

enum class Dist { Churny, TieHeavy, Bimodal };

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::Churny: return "churny";
    case Dist::TieHeavy: return "tie_heavy";
    default: return "bimodal";
  }
}

double next_delta(Dist d, risa::Rng& rng) {
  switch (d) {
    case Dist::Churny:
      return static_cast<double>(rng.uniform_int(0, 200));
    case Dist::TieHeavy:
      return rng.uniform_int(0, 9) < 7
                 ? 0.0
                 : static_cast<double>(rng.uniform_int(1, 8));
    default:  // Bimodal
      return rng.uniform_int(0, 9) < 8
                 ? static_cast<double>(rng.uniform_int(0, 50))
                 : static_cast<double>(rng.uniform_int(50'000, 200'000));
  }
}

/// Fill `cal` to a steady-state census, then run `ops` hold operations.
/// Returns a checksum so the work cannot be optimized away.
template <typename Calendar>
std::uint64_t hold_loop(Calendar& cal, Dist d, std::size_t census,
                        std::size_t ops, std::uint64_t seed) {
  risa::Rng rng(seed);
  cal.reset();
  for (std::size_t i = 0; i < census; ++i) {
    cal.push(next_delta(d, rng), static_cast<std::uint32_t>(i));
  }
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto e = cal.pop();
    sum += e.seq;
    cal.push(e.time + next_delta(d, rng), e.payload);
  }
  while (!cal.empty()) sum += cal.pop().seq;
  return sum;
}

template <typename Calendar>
void run_hold(benchmark::State& state, Dist d) {
  const auto census = static_cast<std::size_t>(state.range(0));
  Calendar cal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hold_loop(cal, d, census, census * 4, 42));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(census * 4));
}

void BM_Heap_Churny(benchmark::State& s) { run_hold<Heap>(s, Dist::Churny); }
void BM_Ladder_Churny(benchmark::State& s) { run_hold<Ladder>(s, Dist::Churny); }
void BM_Heap_TieHeavy(benchmark::State& s) { run_hold<Heap>(s, Dist::TieHeavy); }
void BM_Ladder_TieHeavy(benchmark::State& s) {
  run_hold<Ladder>(s, Dist::TieHeavy);
}
void BM_Heap_Bimodal(benchmark::State& s) { run_hold<Heap>(s, Dist::Bimodal); }
void BM_Ladder_Bimodal(benchmark::State& s) {
  run_hold<Ladder>(s, Dist::Bimodal);
}

void census_args(benchmark::internal::Benchmark* b) {
  b->Arg(1'000)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Heap_Churny)->Apply(census_args);
BENCHMARK(BM_Ladder_Churny)->Apply(census_args);
BENCHMARK(BM_Heap_TieHeavy)->Apply(census_args);
BENCHMARK(BM_Ladder_TieHeavy)->Apply(census_args);
BENCHMARK(BM_Heap_Bimodal)->Apply(census_args);
BENCHMARK(BM_Ladder_Bimodal)->Apply(census_args);

/// One driver-mode row: best-of-3 timed hold loops, and a differential
/// checksum (heap and ladder must agree on every grid point -- the bench
/// doubles as a cheap order-identity witness at scales the unit tests
/// do not reach).
struct Row {
  std::string structure;
  std::string distribution;
  std::size_t census = 0;
  std::size_t ops = 0;
  double seconds = 0.0;
};

template <typename Calendar>
Row measure(const char* structure, Dist d, std::size_t census) {
  Row r;
  r.structure = structure;
  r.distribution = dist_name(d);
  r.census = census;
  r.ops = census * 20;
  Calendar cal;
  (void)hold_loop(cal, d, census, r.ops, 42);  // warmup
  double best = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(hold_loop(cal, d, census, r.ops, 42));
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (best < 0.0 || s < best) best = s;
  }
  r.seconds = best;
  return r;
}

std::string rows_json(const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n  \"benchmark\": \"calendar_hold\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"structure\": \"" << r.structure << "\", \"distribution\": \""
       << r.distribution << "\", \"census\": " << r.census
       << ", \"ops\": " << r.ops << ", \"seconds\": "
       << risa::strformat("%.6f", r.seconds) << ", \"ops_per_sec\": "
       << risa::strformat("%.0f",
                          static_cast<double>(r.ops) / r.seconds)
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      risa::sim::consume_emit_json_flag(argc, argv, "BENCH_calendar.json");
  if (!json_path.empty()) {
    std::vector<Row> rows;
    for (const Dist d : {Dist::Churny, Dist::TieHeavy, Dist::Bimodal}) {
      for (const std::size_t census : {std::size_t{1'000}, std::size_t{10'000},
                                       std::size_t{100'000}}) {
        // Same seed, same schedule: the checksums must match exactly or
        // the two structures disagreed on pop order.
        Heap heap;
        Ladder ladder;
        if (hold_loop(heap, d, census, census * 4, 42) !=
            hold_loop(ladder, d, census, census * 4, 42)) {
          std::cerr << "bench_calendar: heap/ladder divergence at "
                    << dist_name(d) << "/" << census << "\n";
          return 1;
        }
        rows.push_back(measure<Heap>("heap", d, census));
        rows.push_back(measure<Ladder>("ladder", d, census));
        const Row& h = rows[rows.size() - 2];
        const Row& l = rows.back();
        std::cout << dist_name(d) << " census=" << census << ": heap "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(h.ops) / h.seconds)
                  << " ops/s, ladder "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(l.ops) / l.seconds)
                  << " ops/s (" << risa::strformat("%.2f", h.seconds / l.seconds)
                  << "x)\n";
      }
    }
    std::ofstream out(json_path);
    out << rows_json(rows);
    if (!out) {
      std::cerr << "bench_calendar: write to " << json_path << " failed\n";
      return 1;
    }
    std::cout << "wrote calendar baseline: " << json_path << "\n";
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
