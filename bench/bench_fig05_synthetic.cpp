// Figure 5 + §5.1 text: inter-rack VM assignments and average utilization
// for the 2500-VM synthetic random workload, all four algorithms.
//
//   paper: NULB 255, NALB 255, RISA 7, RISA-BF 2 inter-rack assignments;
//          average utilization CPU 64.66% / RAM 65.11% / STO 31.72%.
#include <iostream>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

int main() {
  using namespace risa;
  const wl::Workload workload = sim::synthetic_workload();
  const auto runs = sim::run_all_algorithms(sim::Scenario::paper_defaults(),
                                            workload, "Synthetic");

  std::cout << "=== Figure 5: number of inter-rack VM assignments "
               "(synthetic, 2500 VMs) ===\n"
            << sim::figure5_table(runs) << '\n'
            << "=== SS5.1 text: average utilization ===\n"
            << sim::utilization_table(runs) << '\n'
            << "=== Full metrics ===\n"
            << sim::full_metrics_table(runs);
  return 0;
}
