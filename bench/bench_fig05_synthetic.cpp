// Figure 5 + §5.1 text: inter-rack VM assignments and average utilization
// for the 2500-VM synthetic random workload, all four algorithms.
//
//   paper: NULB 255, NALB 255, RISA 7, RISA-BF 2 inter-rack assignments;
//          average utilization CPU 64.66% / RAM 65.11% / STO 31.72%.
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = {sim::WorkloadSpec::synthetic()};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Figure 5: number of inter-rack VM assignments "
               "(synthetic, 2500 VMs) ===\n"
            << sim::figure5_table(runs) << '\n'
            << "=== SS5.1 text: average utilization ===\n"
            << sim::utilization_table(runs) << '\n'
            << "=== Full metrics ===\n"
            << sim::full_metrics_table(runs);
  return 0;
}
