// Ablation E-A4: Table 2's "Gb/s per unit" is ambiguous about WHICH units
// scale each flow (DESIGN.md §2.4).  This bench sweeps the basis choice and
// shows the paper's headline results (inter-rack counts, power ranking) are
// robust to the interpretation.
#include <iostream>

#include "common/table.hpp"
#include "network/bandwidth.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

int main() {
  auto subsets = sim::azure_workloads();
  const auto& [label, workload] = subsets[0];  // Azure-3000

  struct Case {
    const char* name;
    net::BandwidthBasis cpu_ram;
    net::BandwidthBasis ram_sto;
  };
  const Case cases[] = {
      {"cpu-units / ram-units (default)", net::BandwidthBasis::CpuUnits,
       net::BandwidthBasis::RamUnits},
      {"cpu-units / sto-units", net::BandwidthBasis::CpuUnits,
       net::BandwidthBasis::StorageUnits},
      {"ram-units / ram-units", net::BandwidthBasis::RamUnits,
       net::BandwidthBasis::RamUnits},
      {"ram-units / sto-units", net::BandwidthBasis::RamUnits,
       net::BandwidthBasis::StorageUnits},
  };

  std::cout << "=== Ablation: Table 2 bandwidth-basis interpretation, "
            << label << " ===\n";
  TextTable t({"Basis (cpu-ram / ram-sto)", "NULB inter-rack %",
               "RISA inter-rack %", "NULB kW", "RISA kW", "Drops (all)"});
  for (const Case& c : cases) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.bandwidth.cpu_ram_basis = c.cpu_ram;
    scenario.bandwidth.ram_sto_basis = c.ram_sto;
    const auto runs = sim::run_all_algorithms(scenario, workload, label);
    const auto& nulb = runs[0];
    const auto& risa = runs[2];
    std::uint64_t drops = 0;
    for (const auto& m : runs) drops += m.dropped;
    t.add_row({c.name, TextTable::pct(nulb.inter_rack_fraction(), 1),
               TextTable::pct(risa.inter_rack_fraction(), 1),
               TextTable::num(nulb.avg_optical_power_w / 1000.0, 2),
               TextTable::num(risa.avg_optical_power_w / 1000.0, 2),
               std::to_string(drops)});
  }
  std::cout << t
            << "Every interpretation preserves the paper's conclusions: "
               "RISA at 0% inter-rack and\nmaterially lower optical power.\n";
  return 0;
}
