// Ablation E-A4: Table 2's "Gb/s per unit" is ambiguous about WHICH units
// scale each flow (DESIGN.md §2.4).  This bench sweeps the basis choice and
// shows the paper's headline results (inter-rack counts, power ranking) are
// robust to the interpretation.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "network/bandwidth.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

using namespace risa;

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  struct Case {
    const char* name;
    net::BandwidthBasis cpu_ram;
    net::BandwidthBasis ram_sto;
  };
  const Case cases[] = {
      {"cpu-units / ram-units (default)", net::BandwidthBasis::CpuUnits,
       net::BandwidthBasis::RamUnits},
      {"cpu-units / sto-units", net::BandwidthBasis::CpuUnits,
       net::BandwidthBasis::StorageUnits},
      {"ram-units / ram-units", net::BandwidthBasis::RamUnits,
       net::BandwidthBasis::RamUnits},
      {"ram-units / sto-units", net::BandwidthBasis::RamUnits,
       net::BandwidthBasis::StorageUnits},
  };

  sim::SweepSpec spec;
  for (const Case& c : cases) {
    sim::Scenario scenario = sim::Scenario::paper_defaults();
    scenario.bandwidth.cpu_ram_basis = c.cpu_ram;
    scenario.bandwidth.ram_sto_basis = c.ram_sto;
    spec.scenarios.emplace_back(c.name, scenario);
  }
  spec.workloads = {sim::WorkloadSpec::azure("3000")};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Ablation: Table 2 bandwidth-basis interpretation, "
            << spec.workloads[0].label << " ===\n";
  TextTable t({"Basis (cpu-ram / ram-sto)", "NULB inter-rack %",
               "RISA inter-rack %", "NULB kW", "RISA kW", "Drops (all)"});
  for (std::size_t c = 0; c < spec.scenarios.size(); ++c) {
    const auto& nulb = runs[spec.cell_index(c, 0, 0, 0)];
    const auto& risa = runs[spec.cell_index(c, 0, 0, 2)];
    std::uint64_t drops = 0;
    for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
      drops += runs[spec.cell_index(c, 0, 0, a)].dropped;
    }
    t.add_row({spec.scenarios[c].first,
               TextTable::pct(nulb.inter_rack_fraction(), 1),
               TextTable::pct(risa.inter_rack_fraction(), 1),
               TextTable::num(nulb.avg_optical_power_w / 1000.0, 2),
               TextTable::num(risa.avg_optical_power_w / 1000.0, 2),
               std::to_string(drops)});
  }
  std::cout << t
            << "Every interpretation preserves the paper's conclusions: "
               "RISA at 0% inter-rack and\nmaterially lower optical power.\n";
  return 0;
}
