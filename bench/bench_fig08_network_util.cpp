// Figure 8: intra- and inter-rack network utilization on the Azure subsets.
//   paper shape: intra identical across algorithms (30.4 / 35.4 / 42.6 %
//   against the authors' unstated provisioning); inter exactly 0 for RISA
//   and RISA-BF.  Our absolute intra level differs because utilization is
//   reported against this repo's calibrated link provisioning
//   (see EXPERIMENTS.md); equality-across-algorithms and the zero rows are
//   the reproduced claims.
#include <iostream>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

int main() {
  using namespace risa;
  std::vector<sim::SimMetrics> runs;
  for (auto& [label, workload] : sim::azure_workloads()) {
    auto batch = sim::run_all_algorithms(sim::Scenario::paper_defaults(),
                                         workload, label);
    runs.insert(runs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  std::cout << "=== Figure 8: network utilization (Azure subsets) ===\n"
            << sim::figure8_table(runs);
  return 0;
}
