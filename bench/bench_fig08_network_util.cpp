// Figure 8: intra- and inter-rack network utilization on the Azure subsets.
//   paper shape: intra identical across algorithms (30.4 / 35.4 / 42.6 %
//   against the authors' unstated provisioning); inter exactly 0 for RISA
//   and RISA-BF.  Our absolute intra level differs because utilization is
//   reported against this repo's calibrated link provisioning
//   (see EXPERIMENTS.md); equality-across-algorithms and the zero rows are
//   the reproduced claims.
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = sim::WorkloadSpec::azure_all();
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Figure 8: network utilization (Azure subsets) ===\n"
            << sim::figure8_table(runs);
  return 0;
}
