// Figure 6: CPU and RAM distributions of the Azure-like subsets, binned
// with the paper's 10-bin histogram semantics.  The generator is built to
// match the decoded counts exactly; this bench prints the verification.
#include <iostream>
#include <optional>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiments.hpp"
#include "workload/azure.hpp"
#include "workload/characterize.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  // The counts decoded from the paper's Figure 6 bars (DESIGN.md §2.1).
  const std::vector<std::int64_t> cpu_expected[3] = {
      {1326, 1269, 0, 0, 316, 0, 0, 0, 0, 89},
      {1931, 2514, 0, 0, 444, 0, 0, 0, 0, 111},
      {4153, 2536, 0, 0, 507, 0, 0, 0, 0, 304}};
  const std::vector<std::int64_t> ram_expected[3] = {
      {2591, 299, 15, 0, 17, 0, 0, 0, 0, 78},
      {4439, 427, 39, 0, 17, 0, 0, 0, 0, 78},
      {6682, 488, 203, 0, 19, 0, 0, 0, 0, 108}};

  // Generate and characterize the three subsets in parallel (each is a
  // pure function of its spec + seed); printing stays in paper order.
  const auto specs = wl::azure_all_subsets();
  std::vector<std::optional<wl::Characterization>> characterized(specs.size());
  ThreadPool pool(thread_count(flags));
  pool.run_indexed(specs.size(), [&](std::size_t, std::size_t i) {
    const wl::Workload workload =
        wl::generate_azure(specs[i], sim::kDefaultSeed);
    characterized[i] = wl::characterize(workload, 10);
  });

  int subset = 0;
  bool all_match = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string& label = specs[i].label;
    const wl::Characterization& ch = *characterized[i];
    std::cout << "=== Figure 6 (" << label << "): CPU cores histogram ===\n";
    TextTable cpu_table({"Bin", "Range", "Count (measured)", "Count (paper)"});
    for (std::size_t b = 0; b < 10; ++b) {
      cpu_table.add_row(
          {std::to_string(b),
           TextTable::num(ch.cpu.bin_lo(b), 2) + " - " +
               TextTable::num(ch.cpu.bin_hi(b), 2),
           std::to_string(ch.cpu.count(b)),
           std::to_string(cpu_expected[subset][b])});
      all_match &= ch.cpu.count(b) == cpu_expected[subset][b];
    }
    std::cout << cpu_table;

    std::cout << "=== Figure 6 (" << label << "): RAM GB histogram ===\n";
    TextTable ram_table({"Bin", "Range", "Count (measured)", "Count (paper)"});
    for (std::size_t b = 0; b < 10; ++b) {
      ram_table.add_row(
          {std::to_string(b),
           TextTable::num(ch.ram.bin_lo(b), 2) + " - " +
               TextTable::num(ch.ram.bin_hi(b), 2),
           std::to_string(ch.ram.count(b)),
           std::to_string(ram_expected[subset][b])});
      all_match &= ch.ram.count(b) == ram_expected[subset][b];
    }
    std::cout << ram_table << '\n';
    ++subset;
  }
  std::cout << (all_match
                    ? "All histogram counts match the paper's Figure 6.\n"
                    : "MISMATCH against the paper's Figure 6 counts!\n");
  return all_match ? 0 : 1;
}
