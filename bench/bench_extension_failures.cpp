// Extension E-A6: resilience under box failures (the reliability angle of
// the paper's related work, e.g. Radar [8] / Guo et al. [7]).
//
// Protocol: replay Azure-3000 through the Engine's merged lifecycle event
// stream (DESIGN.md §8); when 1500 VMs have been admitted, fail K random
// boxes (seeded draw, uniform over all types).  Resident VMs on failed
// boxes are killed -- their photonic charging interval is settled at kill
// time and their circuits torn down -- and scheduling continues on the
// degraded cluster.  A retry variant requeues drops and kills with a
// bounded budget.  The whole (fault plan x algorithm) matrix is one
// SweepSpec cell grid: deterministic at any thread count, reported per
// scheduler as killed VMs, final placement outcomes, inter-rack share and
// degraded-operation time -- quantifying how gracefully each policy
// absorbs capacity loss.
//
//   $ ./bench_extension_failures --threads=2
//   $ ./bench_extension_failures --emit_json=BENCH_failures.json
#include <iostream>

#include "common/flags.hpp"
#include "core/registry.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

using namespace risa;

namespace {

/// Fail `boxes` random boxes once 1500 VMs have been admitted.
sim::FaultPlan fail_after_1500(std::uint32_t boxes, std::uint32_t retries) {
  sim::FaultPlan plan;
  sim::FaultAction fail;
  fail.kind = sim::FaultAction::Kind::Fail;
  fail.after_admissions = 1500;
  fail.random_boxes = boxes;
  plan.actions.push_back(fail);
  plan.seed = 99;  // victim-draw stream, independent of the workload seed
  if (retries > 0) {
    plan.retry.max_attempts = retries;
    plan.retry.delay_tu = 25.0;
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("emit_json", "",
               "Write the unified sweep JSON to this file "
               "(BENCH_failures.json when given without a value)");
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = {sim::WorkloadSpec::azure("azure-3000")};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  for (const std::uint32_t k : {2u, 6u, 12u}) {
    spec.fault_plans.emplace_back("fail" + std::to_string(k),
                                  fail_after_1500(k, 0));
  }
  // The requeue variant of the middle point: drops and kills get two
  // deferred re-placement attempts each.
  spec.fault_plans.emplace_back("fail6+retry", fail_after_1500(6, 2));

  const sim::SweepRunner runner(thread_count(flags));
  const auto results = runner.run(spec);

  std::cout << "=== Extension: resilience to box failures (Azure-3000, fail "
               "K boxes after 1500 admissions; "
            << results.size() << " cells on " << runner.threads()
            << " thread(s)) ===\n"
            << sim::lifecycle_table(results)
            << "RISA keeps placing VMs intra-rack around offline boxes (its "
               "pool simply excludes\nracks whose surviving boxes are too "
               "small); the baselines keep scheduling but at\ntheir usual "
               "inter-rack cost.  The retry plan recovers most drops/kills "
               "at the price\nof deferred placements.\n";

  std::string json_path = flags.str("emit_json");
  if (json_path == "true") json_path = "BENCH_failures.json";  // bare flag
  if (!json_path.empty()) {
    if (!sim::write_sweep_json(json_path, "extension_failures", results)) {
      return 1;
    }
    std::cout << "wrote sweep JSON: " << json_path << '\n';
  }
  return 0;
}
