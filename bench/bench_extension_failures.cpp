// Extension E-A6: resilience under box failures (the reliability angle of
// the paper's related work, e.g. Radar [8] / Guo et al. [7]).
//
// Protocol: replay Azure-3000 in arrival order; when 1500 VMs have been
// admitted, fail K random boxes.  Resident VMs on failed boxes are killed
// (their circuits torn down, counted), and scheduling continues on the
// degraded cluster.  Reported per scheduler: killed VMs, post-failure drop
// rate, and post-failure inter-rack share -- quantifying how gracefully
// each policy absorbs capacity loss.
#include <iostream>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/registry.hpp"
#include "sim/experiments.hpp"

using namespace risa;

namespace {

struct Outcome {
  std::uint64_t killed = 0;
  std::uint64_t placed_after = 0;
  std::uint64_t dropped_after = 0;
  std::uint64_t inter_rack_after = 0;
};

Outcome run(const std::string& algo, const wl::Workload& workload,
            std::size_t fail_at, int failures, std::uint64_t seed) {
  topo::Cluster cluster((topo::ClusterConfig()));
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  core::AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  auto allocator = core::make_allocator(algo, ctx);

  Outcome out;
  std::vector<std::pair<double, core::Placement>> live;
  bool failed_yet = false;
  Rng rng(seed);

  for (std::size_t i = 0; i < workload.size(); ++i) {
    const wl::VmRequest& vm = workload[i];
    // Departures before this arrival.
    for (std::size_t j = 0; j < live.size();) {
      if (live[j].first <= vm.arrival) {
        allocator->release(live[j].second);
        live[j] = std::move(live.back());
        live.pop_back();
      } else {
        ++j;
      }
    }

    if (!failed_yet && i == fail_at) {
      failed_yet = true;
      // Fail `failures` random boxes (uniform over all types).
      for (int f = 0; f < failures; ++f) {
        const BoxId victim{static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cluster.num_boxes()) - 1))};
        cluster.set_box_offline(victim, true);
        // Kill resident VMs of that box.
        for (std::size_t j = 0; j < live.size();) {
          bool resident = false;
          for (ResourceType t : kAllResources) {
            if (live[j].second.box(t) == victim) resident = true;
          }
          if (resident) {
            allocator->release(live[j].second);
            live[j] = std::move(live.back());
            live.pop_back();
            ++out.killed;
          } else {
            ++j;
          }
        }
      }
    }

    auto placed = allocator->try_place(vm);
    if (placed.ok()) {
      if (failed_yet) {
        ++out.placed_after;
        if (placed->rack(ResourceType::Cpu) != placed->rack(ResourceType::Ram)) {
          ++out.inter_rack_after;
        }
      }
      live.emplace_back(vm.departure(), std::move(placed.value()));
    } else if (failed_yet) {
      ++out.dropped_after;
    }
  }
  for (auto& [t, p] : live) allocator->release(p);
  cluster.check_invariants();
  fabric.check_invariants();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  auto subsets = sim::azure_workloads();
  const auto& [label, workload] = subsets[0];  // Azure-3000

  std::cout << "=== Extension: resilience to box failures (" << label
            << ", fail K boxes after 1500 admissions) ===\n";
  TextTable t({"K failed", "Algorithm", "VMs killed", "Placed after",
               "Dropped after", "Inter-rack % after"});
  // Each (K, algorithm) protocol run owns a private stack and RNG, so the
  // matrix parallelizes cell-wise exactly like an engine sweep.
  const int fail_counts[] = {2, 6, 12};
  const auto algos = core::algorithm_names();
  std::vector<Outcome> outcomes(std::size(fail_counts) * algos.size());
  ThreadPool pool(thread_count(flags));
  pool.run_indexed(outcomes.size(), [&](std::size_t, std::size_t i) {
    outcomes[i] = run(algos[i % algos.size()], workload, 1500,
                      fail_counts[i / algos.size()], 99);
  });
  for (std::size_t k = 0; k < std::size(fail_counts); ++k) {
    const int failures = fail_counts[k];
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const std::string& algo = algos[a];
      const Outcome& o = outcomes[k * algos.size() + a];
      const double inter_pct =
          o.placed_after > 0 ? 100.0 * static_cast<double>(o.inter_rack_after) /
                                   static_cast<double>(o.placed_after)
                             : 0.0;
      t.add_row({std::to_string(failures), algo, std::to_string(o.killed),
                 std::to_string(o.placed_after),
                 std::to_string(o.dropped_after),
                 TextTable::num(inter_pct, 1)});
    }
  }
  std::cout << t
            << "RISA keeps placing VMs intra-rack around offline boxes (its "
               "pool simply excludes\nracks whose surviving boxes are too "
               "small); the baselines keep scheduling but at\ntheir usual "
               "inter-rack cost.\n";
  return 0;
}
