// Figure 12: scheduler execution time on the Azure subsets
// (google-benchmark harness).
//
//   paper (Azure-7500): NULB 10361 s, NALB 15929 s, RISA 3679 s,
//   RISA-BF 4013 s -- RISA 2.81x faster than NULB, 4.33x faster than NALB.
//   reproduced claim: the ordering NALB > NULB > RISA-BF ~ RISA and the
//   growth with subset size.
// Driver mode: `--emit_json[=path]` additionally replays every (subset,
// algorithm) pair once with per-placement latency recording and writes the
// practical-workload scheduler baseline as JSON.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

namespace {

const std::vector<std::pair<std::string, risa::wl::Workload>>& subsets() {
  static const auto w = risa::sim::azure_workloads();
  return w;
}

void run_case(benchmark::State& state, const char* algo, std::size_t subset) {
  const auto& [label, workload] = subsets()[subset];
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  double sched_seconds = 0.0;
  for (auto _ : state) {
    const risa::sim::SimMetrics m = engine.run(workload, label);
    sched_seconds += m.scheduler_exec_seconds;
    benchmark::DoNotOptimize(m.placed);
  }
  state.counters["sched_s"] = benchmark::Counter(
      sched_seconds, benchmark::Counter::kAvgIterations);
  state.SetLabel(label);
}

void BM_Exec(benchmark::State& state) {
  static const char* kAlgos[] = {"NULB", "NALB", "RISA", "RISA-BF"};
  run_case(state, kAlgos[state.range(0)],
           static_cast<std::size_t>(state.range(1)));
}

// No hardcoded MinTime so --benchmark_min_time (CI smoke, baseline recipe)
// stays effective.
BENCHMARK(BM_Exec)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = risa::sim::consume_emit_json_flag(
      argc, argv, "BENCH_scheduler_practical.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<risa::sim::SimMetrics> runs;
  for (const auto& [label, workload] : subsets()) {
    auto batch = risa::sim::run_all_algorithms(
        risa::sim::Scenario::paper_defaults(), workload, label);
    runs.insert(runs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  std::cout << "\n=== Figure 12: scheduler execution time, practical ===\n"
            << risa::sim::exec_time_table(runs, "fig12");

  if (!json_path.empty()) {
    std::vector<risa::sim::SchedulerBenchEntry> entries;
    for (const auto& [label, workload] : subsets()) {
      for (const char* algo : {"NULB", "NALB", "RISA", "RISA-BF"}) {
        entries.push_back(risa::sim::scheduler_bench_entry(
            risa::sim::Scenario::paper_defaults(), algo, workload, label));
      }
    }
    if (!risa::sim::write_scheduler_bench_json(
            json_path, "fig12_exec_practical", entries)) {
      return 1;
    }
    std::cout << "\nwrote scheduler baseline: " << json_path << "\n";
  }
  return 0;
}
