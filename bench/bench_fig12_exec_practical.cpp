// Figure 12: scheduler execution time on the Azure subsets
// (google-benchmark harness).
//
//   paper (Azure-7500): NULB 10361 s, NALB 15929 s, RISA 3679 s,
//   RISA-BF 4013 s -- RISA 2.81x faster than NULB, 4.33x faster than NALB.
//   reproduced claim: the ordering NALB > NULB > RISA-BF ~ RISA and the
//   growth with subset size.
// Driver mode: `--emit_json[=path]` additionally replays every (subset,
// algorithm) pair once with per-placement latency recording and writes the
// practical-workload scheduler baseline as JSON.
// `--threads N` controls the paper-shape summary sweep; it defaults to 1
// (serial) because this binary's whole point is timing fidelity, and the
// JSON baseline always runs serial regardless (see DESIGN.md §6).
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

namespace {

const std::vector<std::pair<std::string, risa::wl::Workload>>& subsets() {
  static const auto w = risa::sim::azure_workloads();
  return w;
}

void run_case(benchmark::State& state, const char* algo, std::size_t subset) {
  const auto& [label, workload] = subsets()[subset];
  risa::sim::Engine engine(risa::sim::Scenario::paper_defaults(), algo);
  double sched_seconds = 0.0;
  for (auto _ : state) {
    const risa::sim::SimMetrics m = engine.run(workload, label);
    sched_seconds += m.scheduler_exec_seconds;
    benchmark::DoNotOptimize(m.placed);
  }
  state.counters["sched_s"] = benchmark::Counter(
      sched_seconds, benchmark::Counter::kAvgIterations);
  state.SetLabel(label);
}

void BM_Exec(benchmark::State& state) {
  static const char* kAlgos[] = {"NULB", "NALB", "RISA", "RISA-BF"};
  run_case(state, kAlgos[state.range(0)],
           static_cast<std::size_t>(state.range(1)));
}

// No hardcoded MinTime so --benchmark_min_time (CI smoke, baseline recipe)
// stays effective.
BENCHMARK(BM_Exec)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

risa::sim::SweepSpec fig12_spec() {
  risa::sim::SweepSpec spec;
  spec.scenarios = {{"paper", risa::sim::Scenario::paper_defaults()}};
  spec.workloads = risa::sim::WorkloadSpec::azure_all();
  spec.seeds = {risa::sim::kDefaultSeed};
  spec.algorithms = risa::core::algorithm_names();
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = risa::sim::consume_emit_json_flag(
      argc, argv, "BENCH_scheduler_practical.json");
  const int threads = risa::consume_threads_flag(argc, argv, /*absent=*/1);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto runs = risa::sim::metrics_of(
      risa::sim::SweepRunner(threads).run(fig12_spec()));
  std::cout << "\n=== Figure 12: scheduler execution time, practical ===\n"
            << risa::sim::exec_time_table(runs, "fig12");

  if (!json_path.empty()) {
    risa::sim::SweepSpec spec = fig12_spec();
    spec.record_latency = true;
    const auto entries = risa::sim::scheduler_bench_entries(
        risa::sim::SweepRunner(1).run(spec));
    if (!risa::sim::write_scheduler_bench_json(
            json_path, "fig12_exec_practical", entries)) {
      return 1;
    }
    std::cout << "\nwrote scheduler baseline: " << json_path << "\n";
  }
  return 0;
}
