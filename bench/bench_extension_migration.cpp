// Extension E-A7: live-migration defragmentation under fault+churn
// (DESIGN.md §9; the re-allocation direction of Shabka & Zervas's RL
// scheduler, PAPERS.md).
//
// Protocol: replay Azure-3000 while an MTBF-style stochastic fault process
// (compile_mtbf_plan: seeded Poisson failures, exponential repairs,
// bounded requeue) churns boxes underneath, and sweep a MigrationPlan
// budget axis from "none" to an aggressive defragmenter.  Each MIGRATE
// event re-places the worst-spread live VMs through the normal allocator
// with their current boxes excluded, double-charging the transfer window
// on both placements.  The whole (fault x migration x algorithm) matrix is
// one SweepSpec cell grid: deterministic at any thread count, reported per
// scheduler as migrations committed, inter-rack VMs recovered, the
// admission vs net-of-recovered inter-rack fraction, and optical power --
// quantifying how much of the fragmentation cost a migration budget buys
// back, and where the double-charge window stops paying for itself.
//
//   $ ./bench_extension_migration --threads=2
//   $ ./bench_extension_migration --emit_json=BENCH_migration.json
#include <iostream>

#include "common/flags.hpp"
#include "core/registry.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

using namespace risa;

namespace {

/// The churn underneath the defrag: ~15 seeded box failures over the
/// Azure-3000 horizon (~46750 tu), each repaired ~800 tu later, with two
/// bounded requeue attempts per victim.  Requeued VMs placed while their
/// home rack is degraded are exactly the stragglers migration recovers.
sim::FaultPlan mtbf_churn() {
  sim::MtbfSpec spec;
  spec.mtbf_tu = 3000.0;
  spec.mttr_tu = 800.0;
  spec.seed = 99;  // failure-process stream, independent of the workload
  spec.horizon_tu = 45000.0;
  spec.num_boxes = sim::Scenario::paper_defaults().cluster.total_boxes();
  sim::FaultPlan plan = sim::compile_mtbf_plan(spec);
  plan.retry.max_attempts = 2;
  plan.retry.delay_tu = 25.0;
  return plan;
}

/// A defragmentation plan: sweeps every `period` tu, up to `per_sweep`
/// moves each, `total` over the run.  Transfer time is charged on both
/// placements; sweeps wait out degraded windows (migrating into a
/// crippled fabric wastes the budget the repairs are about to restore).
sim::MigrationPlan defrag(double period, std::uint32_t per_sweep,
                          std::uint32_t total) {
  sim::MigrationPlan plan;
  plan.period_tu = period;
  plan.per_sweep_budget = per_sweep;
  plan.total_budget = total;
  plan.charge_transfer = true;
  plan.only_if_improves = true;
  plan.skip_while_degraded = true;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("emit_json", "",
               "Write the unified sweep JSON to this file "
               "(BENCH_migration.json when given without a value)");
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = {sim::WorkloadSpec::azure("azure-3000")};
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  spec.fault_plans = {{"mtbf15", mtbf_churn()}};
  spec.migration_plans = {
      {"none", sim::MigrationPlan{}},
      {"defrag-light", defrag(500.0, 4, 200)},
      {"defrag-medium", defrag(250.0, 8, 1000)},
      {"defrag-heavy", defrag(100.0, 16, 4000)},
  };

  const sim::SweepRunner runner(thread_count(flags));
  const auto results = runner.run(spec);

  std::cout << "=== Extension: live-migration defragmentation (Azure-3000, "
               "MTBF churn, migration-budget axis; "
            << results.size() << " cells on " << runner.threads()
            << " thread(s)) ===\n"
            << sim::migration_table(results)
            << "The fragmenting baselines (NULB/NALB admit ~2/3 of VMs "
               "inter-rack) recover a\nlarge share of their stragglers: "
               "watch NULB's net inter-rack fraction and power\nfall as "
               "the budget grows.  RISA admits intra-rack to begin with, "
               "so its sweeps\nfind nothing to move -- defragmentation is "
               "a complement to a fragmenting\nscheduler, not a substitute "
               "for a good one.  The heavy NALB cell shows the\nlimit: "
               "re-placing through a bandwidth-greedy policy can re-spread "
               "future\nadmissions and give part of the win back.\n";

  std::string json_path = flags.str("emit_json");
  if (json_path == "true") json_path = "BENCH_migration.json";  // bare flag
  if (!json_path.empty()) {
    if (!sim::write_sweep_json(json_path, "extension_migration", results)) {
      return 1;
    }
    std::cout << "wrote sweep JSON: " << json_path << '\n';
  }
  return 0;
}
