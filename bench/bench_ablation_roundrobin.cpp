// Ablation E-A1: RISA's round-robin rack selection vs a first-eligible
// policy.  The paper motivates round-robin with "this helps to make the
// utilization of the racks more uniform" (§4.2); this bench quantifies
// that: rack-utilization spread (max - min across racks, sampled at the
// placement peak) and the downstream effects.
#include <iostream>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/risa.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"

using namespace risa;

namespace {

struct Outcome {
  std::uint64_t placed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t fallbacks = 0;
  double rack_util_spread = 0.0;  // max-min CPU utilization across racks
};

Outcome run(core::RackSelection selection, const wl::Workload& workload) {
  topo::Cluster cluster((topo::ClusterConfig()));
  net::Fabric fabric(topo::ClusterConfig{}, net::FabricConfig{});
  net::Router router(fabric);
  net::CircuitTable circuits(router);
  core::AllocContext ctx;
  ctx.cluster = &cluster;
  ctx.fabric = &fabric;
  ctx.router = &router;
  ctx.circuits = &circuits;
  core::RisaOptions options;
  options.selection = selection;
  core::RisaAllocator risa(ctx, options);

  // Offline replay (arrival order, no departures) to expose the packing
  // imbalance most clearly, sampling the spread when half the VMs landed.
  Outcome out;
  std::vector<core::Placement> live;
  std::size_t i = 0;
  for (const wl::VmRequest& vm : workload) {
    auto placed = risa.try_place(vm);
    if (placed.ok()) {
      live.push_back(std::move(placed.value()));
      ++out.placed;
    } else {
      ++out.dropped;
    }
    if (++i == workload.size() / 2) {
      double mx = 0.0, mn = 1.0;
      for (std::uint32_t r = 0; r < cluster.num_racks(); ++r) {
        const auto& rack = cluster.rack(RackId{r});
        const double cap =
            static_cast<double>(2 * cluster.config().box_units(ResourceType::Cpu));
        const double used =
            cap - static_cast<double>(rack.total_available(ResourceType::Cpu));
        const double util = used / cap;
        mx = std::max(mx, util);
        mn = std::min(mn, util);
      }
      out.rack_util_spread = mx - mn;
    }
  }
  out.fallbacks = risa.fallback_count();
  for (const auto& p : live) risa.release(p);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  // Use the first half of the synthetic workload so nothing departs.
  wl::Workload workload = sim::synthetic_workload();
  workload.resize(1200);

  // The two policy replays are independent (each builds its own stack);
  // run them through the shared pool.
  const core::RackSelection policies[] = {core::RackSelection::RoundRobin,
                                          core::RackSelection::FirstEligible};
  Outcome outcomes[2];
  ThreadPool pool(thread_count(flags));
  pool.run_indexed(2, [&](std::size_t, std::size_t i) {
    outcomes[i] = run(policies[i], workload);
  });
  const Outcome& rr = outcomes[0];
  const Outcome& fe = outcomes[1];

  std::cout << "=== Ablation: RISA rack selection policy (1200 synthetic "
               "VMs, no departures) ===\n";
  TextTable t({"Policy", "Placed", "Dropped", "Fallbacks",
               "Rack CPU-util spread @50%"});
  t.add_row({"round-robin (paper)", std::to_string(rr.placed),
             std::to_string(rr.dropped), std::to_string(rr.fallbacks),
             TextTable::pct(rr.rack_util_spread, 1)});
  t.add_row({"first-eligible", std::to_string(fe.placed),
             std::to_string(fe.dropped), std::to_string(fe.fallbacks),
             TextTable::pct(fe.rack_util_spread, 1)});
  std::cout << t
            << "Round-robin keeps rack utilization uniform (small spread); "
               "first-eligible fills\nrack 0 first, creating the skew the "
               "paper designed RISA to avoid.\n";
  return 0;
}
