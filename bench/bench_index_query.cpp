// RackAvailabilityIndex microbenchmark: query/update latency isolated from
// the engine loop (DESIGN.md §10), so index regressions are visible without
// re-running the end-to-end churn bench.
//
// Both kernel flavours are measured in one binary: the dispatched
// simd::ge_mask64 (whatever backend this build selected -- see the
// `backend` field of the JSON) and the always-compiled scalar reference
// simd::detail::ge_mask64_scalar.  On a RISA_ENABLE_SIMD=OFF build the two
// rows coincide, which is itself useful: the committed baseline records the
// vectorization speedup explicitly instead of implying it.
//
// Driver mode: `--emit_json[=path]` writes the committed BENCH_index.json
// via steady_clock timing loops (warmup + best-of-3), independent of the
// google-benchmark harness so the baseline stays dependency-light.
// CI smoke: `--benchmark_filter=... --benchmark_min_time=...` as usual.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rack_set.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "sim/report.hpp"
#include "topology/cluster.hpp"

namespace {

using risa::RackId;
using risa::RackSet;
using risa::ResourceType;
using risa::Rng;
using risa::Units;
using risa::UnitVector;
using risa::kAllResources;
using risa::topo::RackAvailabilityIndex;

constexpr std::uint32_t kRackCounts[] = {64, 256};
constexpr std::uint64_t kSeed = 0x1DE5C5EEDULL;

/// A standalone index with random per-rack maxima in [0, 128] -- the range
/// real rack maxima live in under the paper's box sizes -- plus a few
/// saturated lanes so the exact-path branch stays representative.
RackAvailabilityIndex make_index(std::uint32_t racks) {
  RackAvailabilityIndex index(racks);
  Rng rng(kSeed ^ racks);
  for (std::uint32_t r = 0; r < racks; ++r) {
    for (ResourceType t : kAllResources) {
      const Units v = rng.uniform_int(0, 20) == 0
                          ? RackAvailabilityIndex::kLaneMax + 1
                          : rng.uniform_int(0, 128);
      index.update(RackId{r}, t, v);
    }
  }
  return index;
}

/// Pre-generated random demands (kept off the timed path).
std::vector<UnitVector> make_demands(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<UnitVector> demands(n);
  for (auto& d : demands) {
    for (ResourceType t : kAllResources) d[t] = rng.uniform_int(0, 128);
  }
  return demands;
}

/// Pre-generated update stream: (rack, type, value) triples whose values
/// swing across the previous maxima, so both the O(1) no-change path and
/// the shard-max shrink rescan are exercised.
struct UpdateOp {
  RackId rack;
  ResourceType type;
  Units value;
};

std::vector<UpdateOp> make_updates(std::uint32_t racks, std::size_t n,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<UpdateOp> ops(n);
  for (auto& op : ops) {
    op.rack = RackId{static_cast<std::uint32_t>(rng.uniform_int(0, racks - 1))};
    op.type = kAllResources[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    op.value = rng.uniform_int(0, 128);
  }
  return ops;
}

// ---- google-benchmark grid --------------------------------------------------

void BM_KernelDispatched(benchmark::State& state) {
  alignas(32) std::array<std::uint16_t, 64> lanes{};
  Rng rng(kSeed);
  for (auto& l : lanes) l = static_cast<std::uint16_t>(rng.uniform_int(0, 200));
  std::uint16_t thr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(risa::simd::ge_mask64(lanes.data(), thr));
    thr = static_cast<std::uint16_t>((thr + 7) & 0xFF);
  }
  state.SetLabel(risa::simd::kBackend);
}
BENCHMARK(BM_KernelDispatched);

void BM_KernelScalar(benchmark::State& state) {
  alignas(32) std::array<std::uint16_t, 64> lanes{};
  Rng rng(kSeed);
  for (auto& l : lanes) l = static_cast<std::uint16_t>(rng.uniform_int(0, 200));
  std::uint16_t thr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        risa::simd::detail::ge_mask64_scalar(lanes.data(), thr));
    thr = static_cast<std::uint16_t>((thr + 7) & 0xFF);
  }
}
BENCHMARK(BM_KernelScalar);

void BM_PoolMask(benchmark::State& state) {
  const auto racks = static_cast<std::uint32_t>(state.range(0));
  const RackAvailabilityIndex index = make_index(racks);
  const auto demands = make_demands(1024, kSeed);
  RackSet out;
  std::size_t i = 0;
  for (auto _ : state) {
    index.pool_mask(demands[i], out);
    benchmark::DoNotOptimize(out);
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_PoolMask)->Arg(64)->Arg(256);

void BM_TypeMask(benchmark::State& state) {
  const auto racks = static_cast<std::uint32_t>(state.range(0));
  const RackAvailabilityIndex index = make_index(racks);
  const auto demands = make_demands(1024, kSeed);
  RackSet out;
  std::size_t i = 0;
  for (auto _ : state) {
    index.type_mask(ResourceType::Cpu, demands[i][ResourceType::Cpu], out);
    benchmark::DoNotOptimize(out);
    i = (i + 1) & 1023;
  }
}
BENCHMARK(BM_TypeMask)->Arg(64)->Arg(256);

void BM_Update(benchmark::State& state) {
  const auto racks = static_cast<std::uint32_t>(state.range(0));
  RackAvailabilityIndex index = make_index(racks);
  const auto ops = make_updates(racks, 4096, kSeed);
  std::size_t i = 0;
  for (auto _ : state) {
    const UpdateOp& op = ops[i];
    index.update(op.rack, op.type, op.value);
    benchmark::DoNotOptimize(index.epoch());
    i = (i + 1) & 4095;
  }
}
BENCHMARK(BM_Update)->Arg(64)->Arg(256);

// ---- committed-baseline driver ----------------------------------------------

/// ns/op of `fn` called `iters` times: one warmup pass, then best of 3.
template <typename F>
double measure_ns(std::size_t iters, F&& fn) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep <= 3; ++rep) {  // rep 0 is the warmup
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn(i);
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        static_cast<double>(iters);
    if (rep == 1 || (rep > 1 && ns < best)) best = ns;
  }
  return best;
}

struct BaselineRow {
  std::string name;
  std::uint32_t racks;  ///< 0 = rack-count-independent (raw kernel)
  double ns_per_op;
};

std::vector<BaselineRow> measure_baseline() {
  std::vector<BaselineRow> rows;
  constexpr std::size_t kIters = 1'000'000;

  {
    alignas(32) std::array<std::uint16_t, 64> lanes{};
    Rng rng(kSeed);
    for (auto& l : lanes) {
      l = static_cast<std::uint16_t>(rng.uniform_int(0, 200));
    }
    rows.push_back({"kernel_ge_mask64", 0, measure_ns(kIters, [&](std::size_t i) {
      benchmark::DoNotOptimize(risa::simd::ge_mask64(
          lanes.data(), static_cast<std::uint16_t>((i * 7) & 0xFF)));
    })});
    rows.push_back({"kernel_ge_mask64_scalar", 0,
                    measure_ns(kIters, [&](std::size_t i) {
      benchmark::DoNotOptimize(risa::simd::detail::ge_mask64_scalar(
          lanes.data(), static_cast<std::uint16_t>((i * 7) & 0xFF)));
    })});
  }

  for (std::uint32_t racks : kRackCounts) {
    const RackAvailabilityIndex index = make_index(racks);
    const auto demands = make_demands(1024, kSeed);
    RackSet out;
    rows.push_back({"pool_mask", racks, measure_ns(kIters, [&](std::size_t i) {
      index.pool_mask(demands[i & 1023], out);
      benchmark::DoNotOptimize(out);
    })});
    rows.push_back({"type_mask", racks, measure_ns(kIters, [&](std::size_t i) {
      index.type_mask(ResourceType::Cpu,
                      demands[i & 1023][ResourceType::Cpu], out);
      benchmark::DoNotOptimize(out);
    })});
    rows.push_back({"pool_word_per_shard", racks,
                    measure_ns(kIters, [&](std::size_t i) {
      const std::uint32_t s =
          static_cast<std::uint32_t>(i) % index.num_shards();
      benchmark::DoNotOptimize(index.pool_word(s, demands[i & 1023]));
    })});

    RackAvailabilityIndex mut = make_index(racks);
    const auto ops = make_updates(racks, 4096, kSeed);
    rows.push_back({"update", racks, measure_ns(kIters, [&](std::size_t i) {
      const UpdateOp& op = ops[i & 4095];
      mut.update(op.rack, op.type, op.value);
      benchmark::DoNotOptimize(mut.epoch());
    })});
  }
  return rows;
}

bool write_baseline_json(const std::string& path) {
  const auto rows = measure_baseline();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_index_query: cannot open " << path << "\n";
    return false;
  }
  out << "{\n  \"benchmark\": \"index_query\",\n";
  out << "  \"backend\": \"" << risa::simd::kBackend << "\",\n";
  out << "  \"simd_enabled\": " << (risa::simd::kEnabled ? "true" : "false")
      << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"name\": \"" << rows[i].name << "\", \"racks\": "
        << rows[i].racks << ", \"ns_per_op\": " << rows[i].ns_per_op << "}"
        << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      risa::sim::consume_emit_json_flag(argc, argv, "BENCH_index.json");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    if (!write_baseline_json(json_path)) return 1;
    std::cout << "\nwrote index baseline: " << json_path << "\n";
  }
  return 0;
}
