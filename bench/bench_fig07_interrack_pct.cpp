// Figure 7: percentage of inter-rack VM assignments on the Azure subsets.
//   paper: NULB up to 52%, NALB up to 48%; RISA and RISA-BF exactly 0%.
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = sim::WorkloadSpec::azure_all();
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Figure 7: % inter-rack VM assignments (Azure subsets) "
               "===\n"
            << sim::figure7_table(runs);
  return 0;
}
