// Figure 7: percentage of inter-rack VM assignments on the Azure subsets.
//   paper: NULB up to 52%, NALB up to 48%; RISA and RISA-BF exactly 0%.
#include <iostream>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

int main() {
  using namespace risa;
  std::vector<sim::SimMetrics> runs;
  for (auto& [label, workload] : sim::azure_workloads()) {
    auto batch = sim::run_all_algorithms(sim::Scenario::paper_defaults(),
                                         workload, label);
    runs.insert(runs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  std::cout << "=== Figure 7: % inter-rack VM assignments (Azure subsets) "
               "===\n"
            << sim::figure7_table(runs);
  return 0;
}
