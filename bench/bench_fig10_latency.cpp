// Figure 10: average CPU-RAM round-trip latency on the Azure subsets
// (110 ns intra-rack, 330 ns inter-rack, from [20]).
//   paper: Azure-3000 NULB 226 / NALB 216 / RISA(-BF) 110 ns -- RISA halves
//   the baseline latency.
#include <iostream>

#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"

int main() {
  using namespace risa;
  std::vector<sim::SimMetrics> runs;
  for (auto& [label, workload] : sim::azure_workloads()) {
    auto batch = sim::run_all_algorithms(sim::Scenario::paper_defaults(),
                                         workload, label);
    runs.insert(runs.end(), std::make_move_iterator(batch.begin()),
                std::make_move_iterator(batch.end()));
  }
  std::cout << "=== Figure 10: average CPU-RAM round-trip latency ===\n"
            << sim::figure10_table(runs);
  return 0;
}
