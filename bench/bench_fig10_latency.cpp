// Figure 10: average CPU-RAM round-trip latency on the Azure subsets
// (110 ns intra-rack, 330 ns inter-rack, from [20]).
//   paper: Azure-3000 NULB 226 / NALB 216 / RISA(-BF) 110 ns -- RISA halves
//   the baseline latency.
#include <iostream>

#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "sim/report.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  using namespace risa;
  Flags flags;
  define_threads_flag(flags);
  if (!flags.parse_or_usage(argc, argv)) return 1;

  sim::SweepSpec spec;
  spec.scenarios = {{"paper", sim::Scenario::paper_defaults()}};
  spec.workloads = sim::WorkloadSpec::azure_all();
  spec.seeds = {sim::kDefaultSeed};
  spec.algorithms = core::algorithm_names();
  const auto runs =
      sim::metrics_of(sim::SweepRunner(thread_count(flags)).run(spec));

  std::cout << "=== Figure 10: average CPU-RAM round-trip latency ===\n"
            << sim::figure10_table(runs);
  return 0;
}
