// Network substrate: fabric construction, link accounting, routing policies,
// circuit life cycle, aggregate invariants.
#include <gtest/gtest.h>

#include "network/bandwidth.hpp"
#include "network/circuit.hpp"
#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "topology/config.hpp"

namespace risa::net {
namespace {

topo::ClusterConfig paper_cluster() { return topo::ClusterConfig{}; }

TEST(Fabric, BuildsTwoTierTopology) {
  const Fabric fabric(paper_cluster(), FabricConfig{});
  const FabricConfig& cfg = fabric.config();
  // 108 box switches + 18 rack switches + 1 core switch.
  EXPECT_EQ(fabric.num_switches(), 108u + 18u + 1u);
  EXPECT_EQ(fabric.num_links(),
            108u * cfg.links_per_box + 18u * cfg.links_per_rack);
  EXPECT_EQ(fabric.intra_capacity(),
            static_cast<MbitsPerSec>(108 * cfg.links_per_box) *
                cfg.link_capacity);
  EXPECT_EQ(fabric.inter_capacity(),
            static_cast<MbitsPerSec>(18 * cfg.links_per_rack) *
                cfg.link_capacity);
  fabric.check_invariants();
}

TEST(Fabric, SwitchRadicesMatchPaper) {
  const Fabric fabric(paper_cluster(), FabricConfig{});
  EXPECT_EQ(fabric.switch_node(fabric.box_switch(BoxId{0})).ports, 64u);
  EXPECT_EQ(fabric.switch_node(fabric.rack_switch(RackId{0})).ports, 256u);
  EXPECT_EQ(fabric.switch_node(fabric.core_switch()).ports, 512u);
}

TEST(Fabric, BoxUplinksBelongToBoxAndRack) {
  const Fabric fabric(paper_cluster(), FabricConfig{});
  const BoxId box{13};  // rack 2 (6 boxes per rack)
  const auto uplinks = fabric.box_uplinks(box);
  EXPECT_EQ(uplinks.size(), fabric.config().links_per_box);
  for (LinkId id : uplinks) {
    const Link& l = fabric.link(id);
    EXPECT_EQ(l.kind(), LinkKind::BoxUplink);
    EXPECT_EQ(l.box(), box);
    EXPECT_EQ(l.rack().value(), 2u);
    EXPECT_EQ(l.capacity(), gbps(200.0));
  }
}

TEST(Fabric, AllocateUpdatesAggregatesAndRackAvailability) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  const LinkId intra_link = fabric.box_uplinks(BoxId{0})[0];
  const LinkId inter_link = fabric.rack_uplinks(RackId{0})[0];
  const MbitsPerSec before_rack0 = fabric.rack_intra_available(RackId{0});

  ASSERT_TRUE(fabric.allocate(intra_link, gbps(40.0)).ok());
  ASSERT_TRUE(fabric.allocate(inter_link, gbps(10.0)).ok());
  EXPECT_EQ(fabric.intra_allocated(), gbps(40.0));
  EXPECT_EQ(fabric.inter_allocated(), gbps(10.0));
  EXPECT_EQ(fabric.rack_intra_available(RackId{0}),
            before_rack0 - gbps(40.0));
  EXPECT_EQ(fabric.rack_intra_available(RackId{1}), before_rack0);
  fabric.check_invariants();

  fabric.release(intra_link, gbps(40.0));
  fabric.release(inter_link, gbps(10.0));
  EXPECT_EQ(fabric.intra_allocated(), 0);
  EXPECT_EQ(fabric.inter_allocated(), 0);
  fabric.check_invariants();
}

TEST(Fabric, LinkNeverOversubscribes) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  const LinkId link = fabric.box_uplinks(BoxId{0})[0];
  ASSERT_TRUE(fabric.allocate(link, gbps(200.0)).ok());
  EXPECT_FALSE(fabric.allocate(link, 1).ok());
  EXPECT_EQ(fabric.link(link).available(), 0);
  EXPECT_THROW(fabric.release(link, gbps(201.0)), std::logic_error);
  fabric.release(link, gbps(200.0));
  EXPECT_THROW(fabric.release(link, 1), std::logic_error);
}

TEST(Router, FirstFitPicksFirstFeasibleLink) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  const auto group = fabric.box_uplinks(BoxId{0});
  ASSERT_TRUE(fabric.allocate(group[0], gbps(190.0)).ok());  // 10 free
  auto pick = router.select_link(group, gbps(50.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(pick.value(), group[1]);
}

TEST(Router, MostAvailablePicksLargestHeadroom) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  const auto group = fabric.box_uplinks(BoxId{0});
  ASSERT_TRUE(fabric.allocate(group[0], gbps(50.0)).ok());   // 150 free
  ASSERT_TRUE(fabric.allocate(group[1], gbps(120.0)).ok());  // 80 free
  auto pick =
      router.select_link(group, gbps(10.0), LinkSelectPolicy::MostAvailable);
  ASSERT_TRUE(pick.ok());
  // Remaining links are untouched (200 free) -> one of them wins.
  EXPECT_EQ(fabric.link(pick.value()).available(), gbps(200.0));
}

TEST(Router, IntraRackPathHasTwoHopsThreeSwitches) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  // Boxes 0 (CPU) and 2 (RAM) are both in rack 0.
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{2}, RackId{0},
                               gbps(5.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  EXPECT_FALSE(path->inter_rack);
  EXPECT_EQ(path->hop_count(), 2u);
  ASSERT_EQ(path->switches.size(), 3u);  // box -> rack -> box
}

TEST(Router, InterRackPathHasFourHopsFiveSwitches) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  // Box 0 in rack 0; box 8 lives in rack 1 (6 boxes per rack).
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{8}, RackId{1},
                               gbps(5.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->inter_rack);
  EXPECT_EQ(path->hop_count(), 4u);
  ASSERT_EQ(path->switches.size(), 5u);  // box, rack, core, rack, box
  EXPECT_EQ(path->switches[2], fabric.core_switch());
}

TEST(Router, SameBoxPathRejected) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{0}, RackId{0},
                               gbps(1.0), LinkSelectPolicy::FirstFit);
  EXPECT_FALSE(path.ok());
}

TEST(Router, ReserveRollsBackOnPartialFailure) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{2}, RackId{0},
                               gbps(5.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  // Exhaust the second hop after the path was found.
  const LinkId second = path->links[1];
  ASSERT_TRUE(fabric.allocate(second, fabric.link(second).available()).ok());
  const MbitsPerSec intra_before = fabric.intra_allocated();
  auto reserved = router.reserve(path.value(), gbps(5.0));
  EXPECT_FALSE(reserved.ok());
  EXPECT_EQ(fabric.intra_allocated(), intra_before);  // rollback complete
  fabric.check_invariants();
}

TEST(Router, GroupAvailabilityHelpers) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  const auto group = fabric.box_uplinks(BoxId{4});
  const auto n = static_cast<MbitsPerSec>(group.size());
  EXPECT_EQ(router.group_available(group), n * gbps(200.0));
  EXPECT_EQ(router.group_max_available(group), gbps(200.0));
  ASSERT_TRUE(fabric.allocate(group[0], gbps(150.0)).ok());
  EXPECT_EQ(router.group_available(group), n * gbps(200.0) - gbps(150.0));
  EXPECT_EQ(router.group_max_available(group), gbps(200.0));
}

TEST(CircuitTable, EstablishAndTeardownRestoresFabric) {
  Fabric fabric(paper_cluster(), FabricConfig{});
  Router router(fabric);
  CircuitTable table(router);

  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{2}, RackId{0},
                               gbps(20.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  auto cid = table.establish(VmId{1}, FlowKind::CpuRam, gbps(20.0),
                             std::move(path.value()));
  ASSERT_TRUE(cid.ok());
  EXPECT_EQ(table.active_count(), 1u);
  EXPECT_EQ(fabric.intra_allocated(), 2 * gbps(20.0));
  EXPECT_EQ(table.circuits_of(VmId{1}).size(), 1u);
  EXPECT_TRUE(table.circuits_of(VmId{2}).empty());

  EXPECT_EQ(table.teardown_vm(VmId{1}), 1u);
  EXPECT_EQ(table.active_count(), 0u);
  EXPECT_EQ(fabric.intra_allocated(), 0);
  EXPECT_EQ(table.teardown_vm(VmId{1}), 0u);  // idempotent
  fabric.check_invariants();
}

TEST(Bandwidth, Table2Demands) {
  const BandwidthModel model;
  // A VM of 8 cores (2 units), 16 GB (4 units), 128 GB (2 units):
  // CPU-RAM = 5 Gb/s x 2 = 10 Gb/s, RAM-STO = 1 Gb/s x 4 = 4 Gb/s.
  const BandwidthDemand d = model.demand(UnitVector{2, 4, 2});
  EXPECT_EQ(d.cpu_ram, gbps(10.0));
  EXPECT_EQ(d.ram_sto, gbps(4.0));
  EXPECT_EQ(d.total(), gbps(14.0));
}

TEST(Bandwidth, ConfigurableBasis) {
  BandwidthModel model;
  model.ram_sto_basis = BandwidthBasis::StorageUnits;
  const BandwidthDemand d = model.demand(UnitVector{2, 4, 2});
  EXPECT_EQ(d.ram_sto, gbps(2.0));  // follows storage units now
}

TEST(FabricConfig, ValidationRejectsBadShapes) {
  FabricConfig cfg;
  cfg.links_per_box = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = FabricConfig{};
  cfg.link_capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = FabricConfig{};
  cfg.box_switch_ports = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace risa::net
