// SlotArena: the generation-stamped slab + paged directory behind the
// engine's per-VM record table (DESIGN.md §13).  The core tests are the
// stability contract U32Map cannot give (references survive arbitrary
// later insertions) and a randomized churn differential against U32Map
// shaped like the engine's lifecycle ops: admit, depart, kill, migrate,
// retry.  Generation stamps, directory-page recycling, and deterministic
// slot reuse are pinned explicitly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/slot_arena.hpp"
#include "common/u32_map.hpp"

namespace risa {
namespace {

TEST(SlotArena, InsertFindErase) {
  SlotArena<int> arena;
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.find(3), nullptr);

  arena.find_or_insert(3) = 30;
  arena.find_or_insert(5) = 50;
  EXPECT_EQ(arena.size(), 2u);
  ASSERT_NE(arena.find(3), nullptr);
  EXPECT_EQ(*arena.find(3), 30);
  EXPECT_EQ(*arena.find(5), 50);

  // find_or_insert on a present key returns the existing value.
  arena.find_or_insert(3) += 1;
  EXPECT_EQ(*arena.find(3), 31);

  EXPECT_TRUE(arena.erase(3));
  EXPECT_FALSE(arena.erase(3));
  EXPECT_EQ(arena.find(3), nullptr);
  EXPECT_EQ(arena.size(), 1u);
}

TEST(SlotArena, ReservedSentinelKeyThrows) {
  SlotArena<int> arena;
  EXPECT_THROW(arena.find_or_insert(0xFFFFFFFFu), std::invalid_argument);
  EXPECT_EQ(arena.find(0xFFFFFFFFu), nullptr);
  EXPECT_FALSE(arena.erase(0xFFFFFFFFu));
}

TEST(SlotArena, ReferencesSurviveArbitraryLaterInsertions) {
  // The contract the engine's admission/retry paths lean on, and exactly
  // what U32Map's find_or_insert cannot promise (a growth rehash moves
  // resident entries): a reference handed out stays valid until its own
  // key is erased, across thousands of later insertions.
  SlotArena<std::uint64_t> arena;
  std::vector<std::pair<std::uint32_t, std::uint64_t*>> held;
  for (std::uint32_t k = 0; k < 32; ++k) {
    std::uint64_t& v = arena.find_or_insert(k);
    v = 1000 + k;
    held.emplace_back(k, &v);
  }
  // Force many slab pages and directory pages into existence.
  for (std::uint32_t k = 100; k < 20000; ++k) arena.find_or_insert(k) = k;
  for (const auto& [key, ptr] : held) {
    EXPECT_EQ(arena.find(key), ptr) << "key " << key;
    EXPECT_EQ(*ptr, 1000 + key);
  }
}

TEST(SlotArena, GenerationBumpsOnEveryReuse) {
  // LIFO free list: erase + insert recycles the same slot, and each death
  // bumps the stamp, so a stale slot id is always detectable.
  SlotArena<int> arena;
  arena.find_or_insert(7) = 1;
  const std::uint32_t s = arena.slot_of(7);
  ASSERT_NE(s, SlotArena<int>::kNoSlot);
  const std::uint32_t g0 = arena.slot_generation(s);

  arena.erase(7);
  EXPECT_EQ(arena.slot_generation(s), g0 + 1);
  arena.find_or_insert(9) = 2;  // the freed slot is lowest-on-top
  EXPECT_EQ(arena.slot_of(9), s);
  EXPECT_EQ(arena.slot_generation(s), g0 + 1);  // claim does not bump
  arena.erase(9);
  EXPECT_EQ(arena.slot_generation(s), g0 + 2);
}

TEST(SlotArena, DirectoryPagesRecycleUnderSlidingKeyWindow) {
  // The engine's streaming shape: a 10M-wide key space with a small live
  // census.  Live directory pages must track the key *window*, not the
  // stream length, with dead pages pooled for reuse.
  SlotArena<int> arena;
  constexpr std::uint32_t kWindow = 2000;
  constexpr std::uint32_t kStream = 200000;
  for (std::uint32_t k = 0; k < kStream; ++k) {
    arena.find_or_insert(k) = 1;
    if (k >= kWindow) {
      EXPECT_TRUE(arena.erase(k - kWindow));
    }
    if (k % 9973 == 0) {
      // 2000 live keys span at most ceil(2000/4096)+1 = 2 pages.
      EXPECT_LE(arena.directory_pages_live(), 2u) << "at key " << k;
    }
  }
  EXPECT_EQ(arena.size(), kWindow);
  EXPECT_GT(arena.directory_pages_pooled(), 0u);
  // Slab capacity tracks peak occupancy, not the stream.
  EXPECT_LT(arena.slab_capacity(), 2u * kWindow + 1024u);
}

TEST(SlotArena, ClearRetainsCapacityAndResetsValues) {
  SlotArena<std::vector<int>> arena;
  for (std::uint32_t i = 0; i < 100; ++i) {
    arena.find_or_insert(i).assign(4, static_cast<int>(i));
  }
  const std::size_t cap = arena.slab_capacity();
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.slab_capacity(), cap);
  EXPECT_EQ(arena.find(7), nullptr);
  // Reclaimed slots must hand back freshly constructed values.
  EXPECT_TRUE(arena.find_or_insert(7).empty());
}

TEST(SlotArena, ClearAndReserveKeepSlotSequenceDeterministic) {
  // The engine reuses one arena across runs: after clear() (and after a
  // fresh reserve()) the slot assignment sequence must replay exactly, so
  // reused-engine runs stay bit-identical to fresh ones.
  SlotArena<int> a;
  std::vector<std::uint32_t> first;
  for (std::uint32_t k = 0; k < 700; ++k) {
    a.find_or_insert(k) = 1;
    first.push_back(a.slot_of(k));
  }
  a.clear();
  for (std::uint32_t k = 0; k < 700; ++k) {
    a.find_or_insert(k + 50000) = 2;  // different keys, same slot order
    EXPECT_EQ(a.slot_of(k + 50000), first[k]) << "k " << k;
  }

  SlotArena<int> b;
  b.reserve(700);
  for (std::uint32_t k = 0; k < 700; ++k) {
    b.find_or_insert(k) = 3;
    EXPECT_EQ(b.slot_of(k), first[k]) << "k " << k;
  }
}

TEST(SlotArena, ForEachVisitsEveryEntryOnce) {
  SlotArena<std::uint64_t> arena;
  std::uint64_t want_sum = 0;
  for (std::uint32_t i = 1; i <= 500; ++i) {
    arena.find_or_insert(i * 17) = i;
    want_sum += i;
  }
  std::uint64_t sum = 0;
  std::size_t visits = 0;
  arena.for_each([&](std::uint32_t key, const std::uint64_t& v) {
    EXPECT_EQ(key, v * 17);
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 500u);
  EXPECT_EQ(sum, want_sum);
}

TEST(SlotArena, RandomLifecycleChurnMatchesU32Map) {
  // Operation-by-operation differential against U32Map under the engine's
  // op mix: admit (insert), depart/kill (erase), migrate (mutate in
  // place), retry (find + mutate), lookup.  On top of the value agreement,
  // every op round re-checks that references captured at admission are
  // still where the arena said they were -- the stability contract --
  // and that slot reuse always came with a generation bump.
  Rng rng(20230813);
  SlotArena<std::string> arena;
  U32Map<std::string> ref;
  // key -> (address at admission, slot id, generation at admission)
  struct Held {
    std::string* ptr;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  std::unordered_map<std::uint32_t, Held> held;

  for (int op = 0; op < 60000; ++op) {
    const auto key = static_cast<std::uint32_t>(rng.uniform_int(0, 1499));
    const auto action = rng.uniform_int(0, 9);
    if (action < 4) {  // admit
      const std::string value = "vm" + std::to_string(op);
      const bool fresh = arena.find(key) == nullptr;
      std::string& v = arena.find_or_insert(key);
      v = value;
      ref.find_or_insert(key) = value;
      if (fresh) {
        held[key] = Held{&v, arena.slot_of(key),
                         arena.slot_generation(arena.slot_of(key))};
      }
    } else if (action < 7) {  // depart / kill
      const bool erased_ref = ref.erase(key);
      EXPECT_EQ(arena.erase(key), erased_ref) << "key " << key;
      if (erased_ref) {
        // Death bumps the stamp past what the holder saw.
        const Held& h = held.at(key);
        EXPECT_GT(arena.slot_generation(h.slot), h.gen) << "key " << key;
        held.erase(key);
      }
    } else if (action < 8) {  // migrate / retry: mutate through find()
      std::string* a = arena.find(key);
      std::string* r = ref.find(key);
      ASSERT_EQ(a == nullptr, r == nullptr) << "key " << key;
      if (a != nullptr) {
        a->append("+m");
        r->append("+m");
      }
    } else {  // lookup
      const std::string* a = arena.find(key);
      const std::string* r = ref.find(key);
      if (r == nullptr) {
        EXPECT_EQ(a, nullptr) << "key " << key;
      } else {
        ASSERT_NE(a, nullptr) << "key " << key;
        EXPECT_EQ(*a, *r);
      }
    }
    ASSERT_EQ(arena.size(), ref.size());
    if (op % 5000 == 4999) {
      // Stability sweep: every admission-time reference still live.
      for (const auto& [k, h] : held) {
        ASSERT_EQ(arena.find(k), h.ptr) << "key " << k;
        EXPECT_EQ(arena.slot_of(k), h.slot) << "key " << k;
      }
    }
  }

  // Full agreement at the end, both directions.
  ref.for_each([&](std::uint32_t key, const std::string& value) {
    const std::string* found = arena.find(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(*found, value);
  });
  std::size_t visits = 0;
  arena.for_each([&](std::uint32_t key, const std::string& value) {
    const std::string* found = ref.find(key);
    ASSERT_NE(found, nullptr) << "key " << key;
    EXPECT_EQ(*found, value);
    ++visits;
  });
  EXPECT_EQ(visits, ref.size());
}

TEST(SlotArena, DrainToEmptyAndRefill) {
  SlotArena<int> arena;
  for (std::uint32_t i = 0; i < 300; ++i) arena.find_or_insert(i) = 1;
  for (std::uint32_t i = 0; i < 300; ++i) EXPECT_TRUE(arena.erase(i));
  EXPECT_TRUE(arena.empty());
  for (std::uint32_t i = 100000; i < 100300; ++i) arena.find_or_insert(i) = 2;
  EXPECT_EQ(arena.size(), 300u);
  for (std::uint32_t i = 100000; i < 100300; ++i) {
    ASSERT_NE(arena.find(i), nullptr);
    EXPECT_EQ(*arena.find(i), 2);
  }
}

}  // namespace
}  // namespace risa
