// LadderCalendar (des/ladder_calendar.hpp): the engine's O(1)-amortized
// event calendar must pop in *exactly* the (time, seq) order of the
// reference BasicCalendar heap -- the differential tests here pin the
// order-identity argument of DESIGN.md §12 -- plus checkpoint round-trips
// with entries resident in every tier, and the phase-attributed profiler's
// accounting bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "des/calendar.hpp"
#include "des/ladder_calendar.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/scenario.hpp"
#include "sim/sweep.hpp"
#include "workload/synthetic.hpp"

namespace risa {
namespace {

using Heap = des::BasicCalendar<std::uint32_t, 4>;
using Ladder = des::LadderCalendar<std::uint32_t>;

/// Drive the heap and the ladder through one identical interleaved
/// push/pop schedule and demand bit-identical pop streams.  `next_delta`
/// yields the next push's offset from the last popped time (the engine's
/// no-past-scheduling contract: every push lands at now + delta, delta >=
/// 0).  Pops interleave with pushes so the ladder exercises mid-drain
/// routing (pushes below top_start_ landing in live rungs and in bottom).
template <typename DeltaFn>
void expect_differential_identical(DeltaFn next_delta, int rounds,
                                   int pushes_per_round, Rng& rng,
                                   Heap& heap, Ladder& ladder) {
  double now = 0.0;
  std::uint32_t id = 0;
  auto pop_both = [&] {
    const auto h = heap.pop();
    const auto l = ladder.pop();
    ASSERT_EQ(l.time, h.time);
    ASSERT_EQ(l.seq, h.seq);
    ASSERT_EQ(l.payload, h.payload);
    now = h.time;
  };
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < pushes_per_round; ++i) {
      const double t = now + next_delta();
      heap.push(t, id);
      ladder.push(t, id);
      ++id;
    }
    const int drain = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < drain && !heap.empty(); ++i) pop_both();
    ASSERT_EQ(ladder.size(), heap.size());
  }
  while (!heap.empty()) pop_both();
  EXPECT_TRUE(ladder.empty());
  EXPECT_EQ(ladder.scheduled_total(), heap.scheduled_total());
}

TEST(LadderCalendar, ChurnyUniformMatchesHeap) {
  Rng rng(101);
  Heap heap;
  Ladder ladder;
  Rng deltas(7);
  expect_differential_identical(
      [&] { return static_cast<double>(deltas.uniform_int(0, 50)); },
      /*rounds=*/400, /*pushes_per_round=*/8, rng, heap, ladder);
}

TEST(LadderCalendar, TieStormsMatchHeapFifo) {
  // Integer deltas with a heavy mass at zero: long equal-time runs that
  // must pop FIFO by seq, including runs larger than any bucket/bottom
  // threshold (a tie storm cannot be split by a finer rung width).
  Rng rng(202);
  Heap heap;
  Ladder ladder;
  Rng deltas(13);
  expect_differential_identical(
      [&] {
        return deltas.uniform_int(0, 9) < 7
                   ? 0.0
                   : static_cast<double>(deltas.uniform_int(1, 4));
      },
      /*rounds=*/200, /*pushes_per_round=*/16, rng, heap, ladder);
}

TEST(LadderCalendar, BimodalHoldTimesMatchHeap) {
  // The engine's real shape: most departures land near now (short holds),
  // a tail lands epochs away (long holds), so pushes straddle every tier.
  Rng rng(303);
  Heap heap;
  Ladder ladder;
  Rng deltas(17);
  expect_differential_identical(
      [&] {
        return deltas.uniform_int(0, 9) < 8
                   ? static_cast<double>(deltas.uniform_int(0, 30))
                   : static_cast<double>(deltas.uniform_int(5'000, 20'000));
      },
      /*rounds=*/300, /*pushes_per_round=*/12, rng, heap, ladder);
}

TEST(LadderCalendar, FractionalTimesMatchHeap) {
  // Continuous times (no manufactured ties): exercises the floating-point
  // bucket-index routing over irregular spans.
  Rng rng(404);
  Heap heap;
  Ladder ladder;
  Rng deltas(29);
  expect_differential_identical(
      [&] { return deltas.uniform(0.0, 37.5); },
      /*rounds=*/400, /*pushes_per_round=*/8, rng, heap, ladder);
}

TEST(LadderCalendar, ResetAndReuseMatchesHeap) {
  // The engine-reuse path: a drained calendar is reset (with a nonzero
  // first_seq, like the departure calendar seeded at the arrival count)
  // and must behave exactly like a fresh one, schedule after schedule.
  Rng rng(505);
  Heap heap;
  Ladder ladder;
  for (std::uint64_t round = 0; round < 4; ++round) {
    const std::uint64_t first_seq = round * 10'000;
    heap.reset(first_seq);
    ladder.reset(first_seq);
    Rng deltas(31 + round);
    expect_differential_identical(
        [&] { return static_cast<double>(deltas.uniform_int(0, 25)); },
        /*rounds=*/120, /*pushes_per_round=*/10, rng, heap, ladder);
  }
}

TEST(LadderCalendar, SortedEntriesIsAscendingAndCoversEveryTier) {
  // Build a calendar with entries provably resident in all three tiers:
  // 500 spread entries + one pop forces a surface (spawns a rung and fills
  // bottom: 500 > the bottom threshold); pushes below top_start_ then land
  // in rung buckets or bottom, and pushes at/after top_start_ land in the
  // reopened top epoch.
  Rng rng(606);
  Ladder ladder;
  std::uint32_t id = 0;
  for (int i = 0; i < 500; ++i) {
    ladder.push(rng.uniform(0.0, 1000.0), id++);
  }
  const auto first = ladder.pop();  // surfaces: bottom + rungs live
  ladder.push(first.time + 1.0, id++);      // below top_start_: rung/bottom
  ladder.push(first.time + 2000.0, id++);   // at/after top_start_: top epoch
  const auto entries = ladder.sorted_entries();
  ASSERT_EQ(entries.size(), ladder.size());
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const bool ascending =
        entries[i - 1].time < entries[i].time ||
        (entries[i - 1].time == entries[i].time &&
         entries[i - 1].seq < entries[i].seq);
    ASSERT_TRUE(ascending) << "entry " << i << " out of order";
  }

  // Round-trip: a fresh ladder restored from the snapshot must continue
  // exactly like the original, including pushes made after the restore.
  Ladder restored;
  restored.restore(entries, ladder.scheduled_total());
  EXPECT_EQ(restored.size(), ladder.size());
  double now = first.time;
  Rng deltas(37);
  while (!ladder.empty()) {
    if (deltas.uniform_int(0, 3) == 0) {
      const double t = now + static_cast<double>(deltas.uniform_int(0, 500));
      ladder.push(t, id);
      restored.push(t, id);
      ++id;
    }
    const auto a = ladder.pop();
    const auto b = restored.pop();
    ASSERT_EQ(b.time, a.time);
    ASSERT_EQ(b.seq, a.seq);
    ASSERT_EQ(b.payload, a.payload);
    now = a.time;
  }
  EXPECT_TRUE(restored.empty());
}

TEST(LadderCalendar, RestoresV1HeapArrayBitIdentically) {
  // Back-compat: a v1 checkpoint serialized BasicCalendar's raw heap
  // array.  restore() must accept that order (it reloads any permutation
  // as a fresh pushed-everything-popped-nothing top epoch) and continue
  // with the identical pop stream.
  Rng rng(707);
  Heap heap;
  std::uint32_t id = 0;
  for (int i = 0; i < 300; ++i) {
    heap.push(static_cast<double>(rng.uniform_int(0, 120)), id++);
  }
  Ladder ladder;
  std::vector<Ladder::Entry> v1;
  v1.reserve(heap.entries().size());
  for (const Heap::Entry& e : heap.entries()) {
    v1.push_back(Ladder::Entry{e.time, e.seq, e.payload});
  }
  ladder.restore(std::move(v1), heap.scheduled_total());
  double now = 0.0;
  Rng deltas(41);
  while (!heap.empty()) {
    if (deltas.uniform_int(0, 2) == 0) {
      const double t = now + static_cast<double>(deltas.uniform_int(0, 60));
      heap.push(t, id);
      ladder.push(t, id);
      ++id;
    }
    const auto h = heap.pop();
    const auto l = ladder.pop();
    ASSERT_EQ(l.time, h.time);
    ASSERT_EQ(l.seq, h.seq);
    ASSERT_EQ(l.payload, h.payload);
    now = h.time;
  }
  EXPECT_TRUE(ladder.empty());
}

// Ladder::Entry and Heap::Entry must stay layout-compatible: the engine's
// checkpoint reader deserializes either generation's array into
// decltype(events_)::Entry fields.
static_assert(sizeof(Ladder::Entry) == sizeof(Heap::Entry));

// --- Phase-attributed profiler (sim/phase_profiler.hpp) ----------------------

TEST(PhaseProfiler, RecordedPhasesAreNonNegativeAndBoundedByWall) {
  wl::SyntheticConfig cfg;
  cfg.count = 4000;
  wl::SyntheticStreamSource source(cfg, sim::kDefaultSeed);
  sim::Engine engine(sim::Scenario::paper_defaults(), "RISA");
  engine.set_profiling(true);
  const sim::SimMetrics m = engine.run_stream(source, "profiled");
  ASSERT_TRUE(m.profile.recorded);
  for (std::size_t p = 0; p < sim::kNumPhases; ++p) {
    EXPECT_GE(m.profile.seconds[p], 0.0) << sim::kPhaseNames[p];
  }
  // The spans are exclusive under nesting, so their sum can never exceed
  // the wall clock that brackets them (small epsilon for the calibration's
  // two distinct clock reads).
  EXPECT_LE(m.profile.total(), m.sim_wall_seconds * 1.001);
  // A 4000-VM run spends real time placing and pulling arrivals.
  EXPECT_GT(m.profile[sim::Phase::Placement], 0.0);
  EXPECT_GT(m.profile[sim::Phase::SourcePull], 0.0);
}

TEST(PhaseProfiler, DisabledRunRecordsNothingAndMetricsMatch) {
  wl::SyntheticConfig cfg;
  cfg.count = 4000;
  sim::Engine engine(sim::Scenario::paper_defaults(), "RISA");

  wl::SyntheticStreamSource plain_src(cfg, sim::kDefaultSeed);
  const sim::SimMetrics plain = engine.run_stream(plain_src, "w");
  EXPECT_FALSE(plain.profile.recorded);
  EXPECT_EQ(plain.profile.total(), 0.0);

  engine.set_profiling(true);
  wl::SyntheticStreamSource profiled_src(cfg, sim::kDefaultSeed);
  const sim::SimMetrics profiled = engine.run_stream(profiled_src, "w");
  EXPECT_TRUE(profiled.profile.recorded);

  // Profiling is measurement, not simulation: every deterministic output
  // is bit-identical with it on or off.
  EXPECT_EQ(sim::metrics_fingerprint(plain), sim::metrics_fingerprint(profiled));
}

}  // namespace
}  // namespace risa
