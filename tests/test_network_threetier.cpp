// Three-tier (pod) fabric extension: construction, routing and latency.
#include <gtest/gtest.h>

#include "network/fabric.hpp"
#include "network/routing.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "topology/config.hpp"

namespace risa::net {
namespace {

FabricConfig three_tier(std::uint32_t racks_per_pod = 6) {
  FabricConfig cfg;
  cfg.racks_per_pod = racks_per_pod;
  return cfg;
}

TEST(ThreeTier, BuildsPodLayer) {
  const Fabric fabric(topo::ClusterConfig{}, three_tier());
  EXPECT_EQ(fabric.num_pods(), 3u);  // 18 racks / 6 per pod
  // Switch census: 108 box + 18 rack + 3 pod + 1 core.
  EXPECT_EQ(fabric.num_switches(), 108u + 18u + 3u + 1u);
  EXPECT_EQ(fabric.pod_of_rack(RackId{0}), 0u);
  EXPECT_EQ(fabric.pod_of_rack(RackId{5}), 0u);
  EXPECT_EQ(fabric.pod_of_rack(RackId{6}), 1u);
  EXPECT_EQ(fabric.pod_of_rack(RackId{17}), 2u);
  EXPECT_TRUE(fabric.same_pod(RackId{0}, RackId{5}));
  EXPECT_FALSE(fabric.same_pod(RackId{0}, RackId{6}));
  EXPECT_EQ(fabric.pod_uplinks(0).size(), fabric.config().links_per_pod);
  fabric.check_invariants();
}

TEST(ThreeTier, UnevenPodDivisionRoundsUp) {
  const Fabric fabric(topo::ClusterConfig{}, three_tier(7));
  EXPECT_EQ(fabric.num_pods(), 3u);  // ceil(18 / 7)
  EXPECT_EQ(fabric.pod_of_rack(RackId{14}), 2u);
}

TEST(ThreeTier, TwoTierHasNoPods) {
  const Fabric fabric(topo::ClusterConfig{}, FabricConfig{});
  EXPECT_EQ(fabric.num_pods(), 0u);
  EXPECT_TRUE(fabric.same_pod(RackId{0}, RackId{17}));
  EXPECT_THROW((void)fabric.pod_of_rack(RackId{0}), std::logic_error);
  EXPECT_THROW((void)fabric.pod_switch(0), std::out_of_range);
}

TEST(ThreeTier, IntraPodPathUsesPodSwitch) {
  Fabric fabric(topo::ClusterConfig{}, three_tier());
  Router router(fabric);
  // Racks 0 and 1 share pod 0: box -> rack -> pod -> rack -> box.
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{8}, RackId{1},
                               gbps(5.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->inter_rack);
  EXPECT_EQ(path->hop_count(), 4u);
  ASSERT_EQ(path->switches.size(), 5u);
  EXPECT_EQ(fabric.switch_node(path->switches[2]).kind, SwitchKind::PodSwitch);
}

TEST(ThreeTier, CrossPodPathTraversesSixHops) {
  Fabric fabric(topo::ClusterConfig{}, three_tier());
  Router router(fabric);
  // Rack 0 (pod 0) to rack 6 (pod 1): box, rack, pod, core, pod, rack, box.
  auto path = router.find_path(BoxId{0}, RackId{0}, BoxId{38}, RackId{6},
                               gbps(5.0), LinkSelectPolicy::FirstFit);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->hop_count(), 6u);
  ASSERT_EQ(path->switches.size(), 7u);
  EXPECT_EQ(fabric.switch_node(path->switches[2]).kind, SwitchKind::PodSwitch);
  EXPECT_EQ(path->switches[3], fabric.core_switch());
  EXPECT_EQ(fabric.switch_node(path->switches[4]).kind, SwitchKind::PodSwitch);
  // Reserving and releasing keeps aggregates clean across all three tiers.
  ASSERT_TRUE(router.reserve(path.value(), gbps(5.0)).ok());
  fabric.check_invariants();
  router.release(path.value(), gbps(5.0));
  EXPECT_EQ(fabric.inter_allocated(), 0);
  fabric.check_invariants();
}

TEST(ThreeTier, LatencyModelDistinguishesPods) {
  sim::LatencyModel latency;
  EXPECT_DOUBLE_EQ(latency.rtt_ns(false, false), 110.0);
  EXPECT_DOUBLE_EQ(latency.rtt_ns(true, false), 330.0);
  EXPECT_DOUBLE_EQ(latency.rtt_ns(true, true), 550.0);
  latency.inter_pod_ns = 100.0;  // below inter-rack: invalid
  EXPECT_THROW(latency.validate(), std::invalid_argument);
}

TEST(ThreeTier, EngineRunsAndRisaStaysIntraRack) {
  sim::Scenario scenario = sim::Scenario::paper_defaults();
  scenario.fabric.racks_per_pod = 6;
  auto subsets = sim::azure_workloads();
  const auto& [label, workload] = subsets[0];

  sim::Engine risa(scenario, "RISA");
  const auto m_risa = risa.run(workload, label);
  EXPECT_EQ(m_risa.inter_rack_placements, 0u);
  EXPECT_DOUBLE_EQ(m_risa.cpu_ram_latency_ns.mean(), 110.0);

  // The baselines now pay the cross-pod premium: mean RTT rises above the
  // two-tier value and cross-pod samples hit 550 ns.
  sim::Engine nulb(scenario, "NULB");
  const auto m_nulb = nulb.run(workload, label);
  EXPECT_GT(m_nulb.cpu_ram_latency_ns.mean(), 200.0);
  EXPECT_DOUBLE_EQ(m_nulb.cpu_ram_latency_ns.max(), 550.0);
  // And cross-pod circuits traverse two extra switches -> more energy.
  EXPECT_GT(m_nulb.avg_optical_power_w, m_risa.avg_optical_power_w * 1.2);
}

TEST(ThreeTier, ConfigValidation) {
  FabricConfig cfg = three_tier();
  cfg.links_per_pod = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = three_tier();
  cfg.pod_switch_ports = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace risa::net
