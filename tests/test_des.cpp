// Discrete-event kernel: ordering, determinism, processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"

namespace risa::des {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&](Simulator&) { order.push_back(2); });
  sim.schedule_at(1.0, [&](Simulator&) { order.push_back(1); });
  sim.schedule_at(9.0, [&](Simulator&) { order.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed(), 3u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(7.0, [&order, i](Simulator&) { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator& s) {
    ++fired;
    s.schedule_after(2.0, [&](Simulator&) { ++fired; });
  });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [](Simulator&) {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [](Simulator&) {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [](Simulator&) {}),
               std::invalid_argument);
}

TEST(Simulator, RunUntilHorizonLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(100.0, [&](Simulator&) { ++fired; });
  sim.run(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(2.0, [&](Simulator&) { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Calendar, PopOrdersByTimeThenSequence) {
  Calendar cal;
  cal.push(2.0, [](Simulator&) {});
  cal.push(1.0, [](Simulator&) {});
  cal.push(1.0, [](Simulator&) {});
  EXPECT_EQ(cal.size(), 3u);
  const Event a = cal.pop();
  const Event b = cal.pop();
  const Event c = cal.pop();
  EXPECT_DOUBLE_EQ(a.time, 1.0);
  EXPECT_DOUBLE_EQ(b.time, 1.0);
  EXPECT_LT(a.seq, b.seq);
  EXPECT_DOUBLE_EQ(c.time, 2.0);
  EXPECT_TRUE(cal.empty());
}

// --- Typed POD calendar (the engine's departure heap) ------------------------

using PodCalendar = BasicCalendar<std::uint32_t, 4>;

TEST(TypedCalendar, EqualTimestampsPopInFifoOrder) {
  PodCalendar cal;
  for (std::uint32_t i = 0; i < 64; ++i) cal.push(3.5, i);
  std::uint64_t prev_seq = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto e = cal.pop();
    EXPECT_DOUBLE_EQ(e.time, 3.5);
    EXPECT_EQ(e.payload, i);  // FIFO: payload pushed i-th pops i-th
    if (i > 0) EXPECT_GT(e.seq, prev_seq);
    prev_seq = e.seq;
  }
  EXPECT_TRUE(cal.empty());
}

TEST(TypedCalendar, RandomStressMatchesStableSort) {
  // The 4-ary heap must order (time, seq) exactly like a stable sort of
  // the push sequence by time.
  Rng rng(7);
  PodCalendar cal;
  std::vector<std::pair<double, std::uint32_t>> ref;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    // Coarse times force plenty of exact ties.
    const double t = static_cast<double>(rng.uniform_int(0, 99));
    cal.push(t, i);
    ref.emplace_back(t, i);
  }
  std::stable_sort(ref.begin(), ref.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [t, payload] : ref) {
    const auto e = cal.pop();
    EXPECT_DOUBLE_EQ(e.time, t);
    EXPECT_EQ(e.payload, payload);
  }
  EXPECT_TRUE(cal.empty());
}

TEST(TypedCalendar, InterleavedPushPopKeepsOrdering) {
  Rng rng(11);
  PodCalendar cal;
  double last_popped = 0.0;
  std::uint32_t id = 0;
  for (int round = 0; round < 200; ++round) {
    // Push a burst at or after the last popped time (no past scheduling,
    // like departures), then drain a few.
    const int burst = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < burst; ++i) {
      cal.push(last_popped + static_cast<double>(rng.uniform_int(0, 20)), id++);
    }
    const int drain = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < drain && !cal.empty(); ++i) {
      const auto e = cal.pop();
      EXPECT_GE(e.time, last_popped);
      last_popped = e.time;
    }
  }
  while (!cal.empty()) {
    const auto e = cal.pop();
    EXPECT_GE(e.time, last_popped);
    last_popped = e.time;
  }
}

TEST(TypedCalendar, ResetRestartsSequenceAtGivenBase) {
  PodCalendar cal;
  cal.push(1.0, 0);
  (void)cal.pop();
  cal.reset(/*first_seq=*/1000);
  cal.push(5.0, 7);
  cal.push(5.0, 8);
  const auto a = cal.pop();
  const auto b = cal.pop();
  EXPECT_EQ(a.seq, 1000u);
  EXPECT_EQ(b.seq, 1001u);
  EXPECT_EQ(cal.scheduled_total(), 1002u);
}

// The engine's merged stream: arrivals (sorted array, seq = index) against
// a departures-only calendar whose seqs start at the arrival count.  The
// merge rule "arrival wins when arrival_time <= departure_time" must
// reproduce the order of one big (time, seq) heap holding both.
TEST(TypedCalendar, SortedStreamMergeMatchesSingleHeap) {
  Rng rng(23);
  const std::uint32_t n = 400;
  std::vector<double> arrival(n);
  std::vector<double> lifetime(n);
  double t = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    // Integer gaps (often zero) manufacture arrival/departure ties.
    t += static_cast<double>(rng.uniform_int(0, 3));
    arrival[i] = t;
    lifetime[i] = static_cast<double>(rng.uniform_int(0, 12));
  }

  // Reference: one heap holding arrivals (pushed first: seq 0..n-1) and
  // departures (pushed as their arrival executes).  Payload encodes
  // (is_departure, index).
  std::vector<std::pair<bool, std::uint32_t>> ref_order;
  {
    BasicCalendar<std::pair<bool, std::uint32_t>, 2> heap;
    for (std::uint32_t i = 0; i < n; ++i) heap.push(arrival[i], {false, i});
    while (!heap.empty()) {
      const auto e = heap.pop();
      ref_order.push_back(e.payload);
      if (!e.payload.first) {
        heap.push(e.time + lifetime[e.payload.second],
                  {true, e.payload.second});
      }
    }
  }

  // Merged form: arrival cursor + departures-only calendar seeded at n.
  std::vector<std::pair<bool, std::uint32_t>> merged_order;
  {
    PodCalendar departures;
    departures.reset(/*first_seq=*/n);
    std::uint32_t cursor = 0;
    while (cursor < n || !departures.empty()) {
      const bool take_arrival =
          cursor < n &&
          (departures.empty() || arrival[cursor] <= departures.next_time());
      if (take_arrival) {
        merged_order.emplace_back(false, cursor);
        departures.push(arrival[cursor] + lifetime[cursor], cursor);
        ++cursor;
      } else {
        const auto e = departures.pop();
        merged_order.emplace_back(true, e.payload);
      }
    }
  }

  ASSERT_EQ(ref_order.size(), 2u * n);
  EXPECT_EQ(merged_order, ref_order);
}

TEST(PoissonArrivals, FiresExactlyNTimesWithExpectedSpacing) {
  Simulator sim;
  Rng rng(99);
  std::vector<double> times;
  PoissonArrivals arrivals(10.0, 2000, [&](Simulator& s, std::size_t i) {
    EXPECT_EQ(i, times.size());
    times.push_back(s.now());
  });
  arrivals.start(sim, rng);
  sim.run();
  ASSERT_EQ(times.size(), 2000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_GT(times[i], times[i - 1]);
  }
  // Mean gap should approximate the paper's 10 tu.
  EXPECT_NEAR(times.back() / 2000.0, 10.0, 0.8);
}

TEST(PoissonArrivals, ZeroCountIsANoop) {
  Simulator sim;
  Rng rng(1);
  PoissonArrivals arrivals(10.0, 0, [](Simulator&, std::size_t) { FAIL(); });
  arrivals.start(sim, rng);
  sim.run();
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(PoissonArrivals, NonPositiveMeanThrows) {
  EXPECT_THROW(PoissonArrivals(0.0, 1, [](Simulator&, std::size_t) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace risa::des
