// Discrete-event kernel: ordering, determinism, processes.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "des/process.hpp"
#include "des/simulator.hpp"

namespace risa::des {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&](Simulator&) { order.push_back(2); });
  sim.schedule_at(1.0, [&](Simulator&) { order.push_back(1); });
  sim.schedule_at(9.0, [&](Simulator&) { order.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 9.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed(), 3u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(7.0, [&order, i](Simulator&) { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator& s) {
    ++fired;
    s.schedule_after(2.0, [&](Simulator&) { ++fired; });
  });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastSchedulingThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [](Simulator&) {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [](Simulator&) {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [](Simulator&) {}),
               std::invalid_argument);
}

TEST(Simulator, RunUntilHorizonLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(100.0, [&](Simulator&) { ++fired; });
  sim.run(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(2.0, [&](Simulator&) { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Calendar, PopOrdersByTimeThenSequence) {
  Calendar cal;
  cal.push(2.0, [](Simulator&) {});
  cal.push(1.0, [](Simulator&) {});
  cal.push(1.0, [](Simulator&) {});
  EXPECT_EQ(cal.size(), 3u);
  Event a = cal.pop();
  Event b = cal.pop();
  Event c = cal.pop();
  EXPECT_DOUBLE_EQ(a.time, 1.0);
  EXPECT_DOUBLE_EQ(b.time, 1.0);
  EXPECT_LT(a.seq, b.seq);
  EXPECT_DOUBLE_EQ(c.time, 2.0);
  EXPECT_TRUE(cal.empty());
}

TEST(PoissonArrivals, FiresExactlyNTimesWithExpectedSpacing) {
  Simulator sim;
  Rng rng(99);
  std::vector<double> times;
  PoissonArrivals arrivals(10.0, 2000, [&](Simulator& s, std::size_t i) {
    EXPECT_EQ(i, times.size());
    times.push_back(s.now());
  });
  arrivals.start(sim, rng);
  sim.run();
  ASSERT_EQ(times.size(), 2000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_GT(times[i], times[i - 1]);
  }
  // Mean gap should approximate the paper's 10 tu.
  EXPECT_NEAR(times.back() / 2000.0, 10.0, 0.8);
}

TEST(PoissonArrivals, ZeroCountIsANoop) {
  Simulator sim;
  Rng rng(1);
  PoissonArrivals arrivals(10.0, 0, [](Simulator&, std::size_t) { FAIL(); });
  arrivals.start(sim, rng);
  sim.run();
  EXPECT_EQ(sim.executed(), 0u);
}

TEST(PoissonArrivals, NonPositiveMeanThrows) {
  EXPECT_THROW(PoissonArrivals(0.0, 1, [](Simulator&, std::size_t) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace risa::des
