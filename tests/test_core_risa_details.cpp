// RISA fine-grained behaviours: round-robin cursor semantics, next-fit
// cursor wrap/stay rules, pool interaction with the intra-rack network
// check, fallback bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/risa.hpp"
#include "sim/experiments.hpp"

namespace risa::core {
namespace {

using sim::toy_vm;

struct Stack {
  explicit Stack(topo::ClusterConfig cfg = topo::ClusterConfig{})
      : cluster(cfg),
        fabric(cfg, net::FabricConfig{}),
        router(fabric),
        circuits(router) {}
  AllocContext context() {
    AllocContext ctx;
    ctx.cluster = &cluster;
    ctx.fabric = &fabric;
    ctx.router = &router;
    ctx.circuits = &circuits;
    return ctx;
  }
  topo::Cluster cluster;
  net::Fabric fabric;
  net::Router router;
  net::CircuitTable circuits;
};

TEST(RisaRoundRobin, CursorSkipsIneligibleRacks) {
  Stack stack;
  // Make racks 1-3 ineligible for an 8-unit CPU demand.
  for (std::uint32_t r = 1; r <= 3; ++r) {
    for (BoxId id :
         stack.cluster.boxes_of_type_in_rack(RackId{r}, ResourceType::Cpu)) {
      ASSERT_TRUE(stack.cluster.allocate(id, 122).ok());  // 6 < 8 left
    }
  }
  RisaAllocator risa(stack.context());
  // Placements walk 0 -> 4 -> 5 ... skipping the hollowed-out racks.
  auto p0 = risa.try_place(toy_vm(0, 32, 16.0, 128.0));  // 8 CPU units
  auto p1 = risa.try_place(toy_vm(1, 32, 16.0, 128.0));
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p0->rack(ResourceType::Cpu), RackId{0});
  EXPECT_EQ(p1->rack(ResourceType::Cpu), RackId{4});
}

TEST(RisaRoundRobin, CursorWrapsPastLastRack) {
  Stack stack;
  RisaAllocator risa(stack.context());
  std::uint32_t last = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {  // 18 racks -> wraps past the end
    auto placed = risa.try_place(toy_vm(i, 8, 8.0, 128.0));
    ASSERT_TRUE(placed.ok());
    last = placed->rack(ResourceType::Cpu).value();
    EXPECT_EQ(last, i % 18) << "placement " << i;
  }
}

TEST(RisaNextFit, CursorStaysOnLastChosenBox) {
  // Reproduce the roving-pointer property in isolation: after box 0 fills,
  // every later VM that fits box 1 goes to box 1 even when box 0 regains
  // space mid-sequence via a release.
  // (Toy scale is 1 core/unit, so CPU-RAM bandwidth is 5 Gb/s per core;
  // requests stay <= 40 cores to fit a single 200 Gb/s link.)
  auto stack = sim::make_table4_stack();
  RisaAllocator risa(stack->context());
  auto a = risa.try_place(toy_vm(0, 40, 1.0, 64.0));  // box 0: 24 left
  ASSERT_TRUE(a.ok());
  auto b = risa.try_place(toy_vm(1, 30, 1.0, 64.0));  // -> box 1 (cursor moves)
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(stack->cluster().box(b->box(ResourceType::Cpu)).index_in_type(),
            3u);
  risa.release(a.value());  // box 0 fully free again
  auto c = risa.try_place(toy_vm(2, 2, 1.0, 64.0));
  ASSERT_TRUE(c.ok());
  // Next-fit keeps packing box 1 (cursor there), not the freed box 0.
  EXPECT_EQ(stack->cluster().box(c->box(ResourceType::Cpu)).index_in_type(),
            3u);
}

TEST(RisaNetworkCheck, PoolRackWithoutBandwidthIsSkipped) {
  Stack stack;
  // Exhaust rack 0's intra bandwidth entirely; compute-wise it stays the
  // first eligible rack, but AVAIL_INTRA_RACK_NET must reject it.
  for (std::uint32_t b = 0; b < stack.cluster.config().total_boxes_per_rack();
       ++b) {
    for (LinkId id : stack.fabric.box_uplinks(BoxId{b})) {
      ASSERT_TRUE(
          stack.fabric.allocate(id, stack.fabric.link(id).available()).ok());
    }
  }
  RisaAllocator risa(stack.context());
  auto placed = risa.try_place(toy_vm(0, 8, 16.0, 128.0));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed->rack(ResourceType::Cpu), RackId{1});
  EXPECT_FALSE(placed->inter_rack);
  EXPECT_FALSE(placed->used_fallback);
  EXPECT_EQ(risa.fallback_count(), 0u);
}

TEST(RisaNetworkCheck, AllRacksBandwidthStarvedFallsBackThenDrops) {
  Stack stack;
  for (std::uint32_t b = 0; b < stack.cluster.num_boxes(); ++b) {
    for (LinkId id : stack.fabric.box_uplinks(BoxId{b})) {
      ASSERT_TRUE(
          stack.fabric.allocate(id, stack.fabric.link(id).available()).ok());
    }
  }
  RisaAllocator risa(stack.context());
  auto placed = risa.try_place(toy_vm(0, 8, 16.0, 128.0));
  ASSERT_FALSE(placed.ok());
  // The SUPER_RACK fallback found compute but its network phase failed.
  EXPECT_EQ(placed.error(), DropReason::NoNetworkResources);
  EXPECT_EQ(risa.fallback_count(), 0u);  // only successful fallbacks count
  EXPECT_EQ(stack.cluster.total_available(ResourceType::Cpu), 4608);
}

TEST(RisaPool, PoolAndSuperRackAgreeOnEligibility) {
  Stack stack;
  RisaAllocator risa(stack.context());
  const UnitVector demand{8, 4, 2};
  const auto pool = risa.intra_rack_pool(demand);
  const auto super = risa.super_rack(demand);
  // A rack is in the pool iff it appears in every per-type SUPER_RACK list.
  for (std::uint32_t r = 0; r < stack.cluster.num_racks(); ++r) {
    bool in_all = true;
    for (ResourceType t : kAllResources) {
      const auto& list = super[t];
      if (std::find(list.begin(), list.end(), RackId{r}) == list.end()) {
        in_all = false;
      }
    }
    const bool in_pool =
        std::find(pool.begin(), pool.end(), RackId{r}) != pool.end();
    EXPECT_EQ(in_pool, in_all) << "rack " << r;
  }
}

TEST(RisaOptionsTest, DisplayNameOverride) {
  Stack stack;
  RisaOptions options;
  options.display_name = "RISA-CUSTOM";
  RisaAllocator risa(stack.context(), options);
  EXPECT_EQ(risa.name(), "RISA-CUSTOM");
  EXPECT_EQ(name(RackPacking::NextFit), "next-fit");
  EXPECT_EQ(name(RackPacking::BestFit), "best-fit");
  EXPECT_EQ(name(RackPacking::FirstFit), "first-fit");
}

}  // namespace
}  // namespace risa::core
