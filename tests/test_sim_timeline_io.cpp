// Timeline recording and scenario (de)serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "sim/engine.hpp"
#include "sim/experiments.hpp"
#include "sim/scenario_io.hpp"
#include "sim/timeline.hpp"
#include "workload/synthetic.hpp"

namespace risa::sim {
namespace {

wl::Workload small_workload(std::size_t n = 200) {
  wl::SyntheticConfig cfg;
  cfg.count = n;
  return wl::generate_synthetic(cfg, 3);
}

TEST(Timeline, RecordsEveryPlacementAndDeparture) {
  Timeline timeline;
  Engine engine(Scenario::paper_defaults(), "RISA");
  engine.set_timeline(&timeline);
  const SimMetrics m = engine.run(small_workload(), "t");
  // One point per placement + one per departure (drops do not record).
  EXPECT_EQ(timeline.size(), 2 * m.placed);
  EXPECT_GT(timeline.peak_active_vms(), 0u);

  // Census sanity: the active count returns to zero at the end, times are
  // non-decreasing, utilizations bounded.
  const auto& points = timeline.points();
  EXPECT_EQ(points.back().active_vms, 0u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    ASSERT_GE(points[i].time, points[i - 1].time);
  }
  for (const TimelinePoint& p : points) {
    for (ResourceType t : kAllResources) {
      ASSERT_GE(p.utilization[t], 0.0);
      ASSERT_LE(p.utilization[t], 1.0);
    }
    ASSERT_GE(p.optical_power_w, -1e-9);
  }
}

TEST(Timeline, HoldingPowerIntegralMatchesLedgerEnergy) {
  // The instantaneous holding power integrated over time must equal the
  // trimming + transceiver energy the ledger charges (switching energy is
  // the one-time term, excluded from holding power).
  Timeline timeline;
  Engine engine(Scenario::paper_defaults(), "RISA");
  engine.set_timeline(&timeline);
  const SimMetrics m = engine.run(small_workload(100), "t");

  const auto& points = timeline.points();
  double integral = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    integral += points[i - 1].optical_power_w *
                (points[i].time - points[i - 1].time);
  }
  const double ledger_energy =
      m.energy.switch_trimming_j + m.energy.transceiver_j;
  EXPECT_NEAR(integral / ledger_energy, 1.0, 1e-6);
}

TEST(Timeline, SamplingReducesPointCount) {
  Timeline everything(1);
  Timeline sampled(10);
  for (int i = 0; i < 100; ++i) {
    TimelinePoint p;
    p.time = i;
    p.active_vms = static_cast<std::uint64_t>(i);
    everything.record(p);
    sampled.record(p);
  }
  EXPECT_EQ(everything.size(), 100u);
  EXPECT_EQ(sampled.size(), 10u);
  // Peak tracking sees every record even when downsampled.
  EXPECT_EQ(sampled.peak_active_vms(), 99u);
}

TEST(Timeline, CsvRoundTripShape) {
  Timeline timeline;
  Engine engine(Scenario::paper_defaults(), "NULB");
  engine.set_timeline(&timeline);
  (void)engine.run(small_workload(50), "t");

  std::stringstream ss;
  timeline.write_csv(ss);
  const auto rows = CsvReader::read_all(ss);
  ASSERT_EQ(rows.size(), timeline.size() + 1);  // header + points
  EXPECT_EQ(rows[0][0], "time");
  EXPECT_EQ(rows[0].size(), 14u);
  EXPECT_EQ(rows[0][5], "migrated_total");
  EXPECT_EQ(rows[0][7], "failed_links");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].size(), 14u);
  }
}

TEST(ScenarioIo, RoundTripsAllKeys) {
  Scenario original = Scenario::paper_defaults();
  original.cluster.racks = 9;
  original.fabric.links_per_box = 8;
  original.bandwidth.ram_sto_basis = net::BandwidthBasis::StorageUnits;
  original.photonics.switch_energy.mrr.alpha = 0.75;
  original.latency.inter_rack_ns = 400.0;
  original.allocator.companion = core::CompanionSearch::AnchorRackFirst;

  std::stringstream ss;
  save_scenario(ss, original);
  const Scenario back = load_scenario(ss);

  EXPECT_EQ(back.cluster.racks, 9u);
  EXPECT_EQ(back.fabric.links_per_box, 8u);
  EXPECT_EQ(back.bandwidth.ram_sto_basis, net::BandwidthBasis::StorageUnits);
  EXPECT_DOUBLE_EQ(back.photonics.switch_energy.mrr.alpha, 0.75);
  EXPECT_DOUBLE_EQ(back.latency.inter_rack_ns, 400.0);
  EXPECT_EQ(back.allocator.companion, core::CompanionSearch::AnchorRackFirst);
  // Untouched keys keep paper defaults.
  EXPECT_EQ(back.cluster.bricks_per_box, 8u);
  EXPECT_EQ(back.bandwidth.cpu_ram_per_unit, gbps(5.0));
}

TEST(ScenarioIo, ParsesCommentsAndWhitespace) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "  cluster.racks = 4   # trailing comment\n"
      "fabric.links_per_box=2\n");
  const Scenario s = load_scenario(ss);
  EXPECT_EQ(s.cluster.racks, 4u);
  EXPECT_EQ(s.fabric.links_per_box, 2u);
}

TEST(ScenarioIo, RejectsUnknownKeysAndBadValues) {
  std::stringstream unknown("cluster.rackz = 4\n");
  EXPECT_THROW((void)load_scenario(unknown), std::runtime_error);

  std::stringstream bad_value("cluster.racks = many\n");
  EXPECT_THROW((void)load_scenario(bad_value), std::runtime_error);

  std::stringstream no_eq("cluster.racks 4\n");
  EXPECT_THROW((void)load_scenario(no_eq), std::runtime_error);

  std::stringstream bad_basis("bandwidth.cpu_ram_basis = bogus\n");
  EXPECT_THROW((void)load_scenario(bad_basis), std::runtime_error);
}

TEST(ScenarioIo, ValidatesResultingScenario) {
  std::stringstream ss("cluster.racks = 0\n");
  EXPECT_THROW((void)load_scenario(ss), std::invalid_argument);
}

TEST(ScenarioIo, LoadedScenarioDrivesTheEngine) {
  std::stringstream ss(
      "cluster.racks = 6\n"
      "latency.inter_rack_ns = 500\n");
  const Scenario s = load_scenario(ss);
  Engine engine(s, "NULB");
  const SimMetrics m = engine.run(small_workload(100), "t");
  EXPECT_EQ(m.placed + m.dropped, 100u);
  if (m.inter_rack_placements > 0) {
    EXPECT_DOUBLE_EQ(m.cpu_ram_latency_ns.max(), 500.0);
  }
}

}  // namespace
}  // namespace risa::sim
