// Unit arithmetic: conversions of Table 1 granularity, UnitVector algebra,
// strong ids.
#include <gtest/gtest.h>

#include "common/types.hpp"
#include "common/units.hpp"

namespace risa {
namespace {

TEST(Units, GbConversionRoundTrips) {
  EXPECT_EQ(gb(4.0), 4096);
  EXPECT_EQ(gb(0.75), 768);
  EXPECT_EQ(gb(128.0), 131072);
  EXPECT_DOUBLE_EQ(to_gb(gb(56.0)), 56.0);
}

TEST(Units, GbpsConversion) {
  EXPECT_EQ(gbps(200.0), 200000);
  EXPECT_EQ(gbps(5.0), 5000);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(25.0)), 25.0);
}

TEST(Units, CeilDiv) {
  EXPECT_EQ(ceil_div<std::int64_t>(0, 4), 0);
  EXPECT_EQ(ceil_div<std::int64_t>(1, 4), 1);
  EXPECT_EQ(ceil_div<std::int64_t>(4, 4), 1);
  EXPECT_EQ(ceil_div<std::int64_t>(5, 4), 2);
  EXPECT_THROW((void)ceil_div<std::int64_t>(1, 0), std::invalid_argument);
  EXPECT_THROW((void)ceil_div<std::int64_t>(-1, 4), std::invalid_argument);
}

TEST(Units, UnitScaleMatchesTable1) {
  const UnitScale scale;
  // CPU unit = 4 cores.
  EXPECT_EQ(scale.to_units(ResourceType::Cpu, 1), 1);
  EXPECT_EQ(scale.to_units(ResourceType::Cpu, 4), 1);
  EXPECT_EQ(scale.to_units(ResourceType::Cpu, 5), 2);
  EXPECT_EQ(scale.to_units(ResourceType::Cpu, 32), 8);
  // RAM unit = 4 GB; Azure's 0.75 GB still occupies one unit.
  EXPECT_EQ(scale.to_units(ResourceType::Ram, gb(0.75)), 1);
  EXPECT_EQ(scale.to_units(ResourceType::Ram, gb(4.0)), 1);
  EXPECT_EQ(scale.to_units(ResourceType::Ram, gb(56.0)), 14);
  // Storage unit = 64 GB; the fixed 128 GB VM disk is 2 units.
  EXPECT_EQ(scale.to_units(ResourceType::Storage, gb(128.0)), 2);
  EXPECT_EQ(scale.to_units(ResourceType::Storage, gb(64.0)), 1);
  EXPECT_EQ(scale.to_units(ResourceType::Storage, gb(65.0)), 2);
}

TEST(Units, UnitVectorAlgebra) {
  const UnitVector a{4, 2, 1};
  const UnitVector b{1, 1, 1};
  EXPECT_EQ((a + b), (UnitVector{5, 3, 2}));
  EXPECT_EQ((a - b), (UnitVector{3, 1, 0}));
  EXPECT_TRUE(fits_within(b, a));
  EXPECT_FALSE(fits_within(a, b));
  EXPECT_TRUE(fits_within(a, a));
  EXPECT_FALSE(all_zero(a));
  EXPECT_TRUE(all_zero(UnitVector{0, 0, 0}));
  EXPECT_TRUE(any_negative(a - UnitVector{5, 0, 0}));
  EXPECT_EQ(to_string(a), "cpu=4,ram=2,sto=1");
}

TEST(Types, PerResourceIndexing) {
  PerResource<int> p{10, 20, 30};
  EXPECT_EQ(p[ResourceType::Cpu], 10);
  EXPECT_EQ(p[ResourceType::Ram], 20);
  EXPECT_EQ(p[ResourceType::Storage], 30);
  p[ResourceType::Ram] = 25;
  EXPECT_EQ(p.ram(), 25);
  int sum = 0;
  for (int v : p) sum += v;
  EXPECT_EQ(sum, 65);
}

TEST(Types, ResourceNames) {
  EXPECT_EQ(name(ResourceType::Cpu), "CPU");
  EXPECT_EQ(name(ResourceType::Ram), "RAM");
  EXPECT_EQ(name(ResourceType::Storage), "STO");
  EXPECT_EQ(kAllResources.size(), kNumResourceTypes);
}

TEST(Types, StrongIdsAreDistinctAndComparable) {
  const RackId r1{3};
  const RackId r2{5};
  EXPECT_LT(r1, r2);
  EXPECT_NE(r1, r2);
  EXPECT_TRUE(r1.valid());
  EXPECT_FALSE(RackId::invalid().valid());
  EXPECT_FALSE(RackId{}.valid());
  // Ids of different tags are different types (compile-time property); a
  // hash exists for container use.
  EXPECT_EQ(std::hash<RackId>{}(r1), std::hash<RackId>{}(RackId{3}));
}

}  // namespace
}  // namespace risa
